#!/usr/bin/env bash
# CI gate for the workspace. Offline-safe: every external dependency
# resolves to an in-tree shim (see shims/README.md), so no network or
# registry access is needed — `cargo --offline` is enforced throughout.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --offline --release

echo "==> cargo test (tier-1)"
cargo test --offline -q

echo "==> cargo test --release --workspace"
cargo test --offline --release --workspace -q

echo "==> kernel sanitizer gate (bench sanitize --quick)"
cargo run --offline --release -p bench -- sanitize --quick

echo "==> chaos gate (bench chaos --quick)"
cargo run --offline --release -p bench -- chaos --quick

echo "==> pool gate (bench pool --quick)"
cargo run --offline --release -p bench -- pool --quick

echo "==> replay gate (bench replay --quick)"
cargo run --offline --release -p bench -- replay --quick

echo "==> load-lab gate (bench loadlab --quick)"
cargo run --offline --release -p bench -- loadlab --quick

echo "==> symbolic proof gate (bench prove --quick)"
cargo run --offline --release -p bench -- prove --quick

echo "==> cluster gate (bench cluster --quick)"
cargo run --offline --release -p bench -- cluster --quick

echo "==> factor gate (bench factor --quick)"
cargo run --offline --release -p bench -- factor --quick

echo "==> certify gate (bench certify --quick)"
cargo run --offline --release -p bench -- certify --quick

# Surface the perf artifacts the gates above just wrote (canonical copies
# stay under target/repro/; the repo-root copies are gitignored and exist
# for CI artifact upload).
cp "${CARGO_TARGET_DIR:-target}"/repro/BENCH_*.json .
echo "==> BENCH artifacts:"
ls -1 BENCH_*.json

echo "==> CI green"
