//! Criterion benchmarks: one group per paper table/figure, measuring the
//! wall-clock cost of regenerating that experiment (simulation + CPU
//! baselines) at a reduced batch scale so iterations stay fast.
//!
//! The *simulated* GTX 280 numbers in each figure come from the `repro`
//! binary; these benches track the harness's own performance and act as a
//! regression net for the whole pipeline.

use bench::{figures, ReproConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cfg() -> ReproConfig {
    ReproConfig { scale: 0.0625, cpu_reps: 1, ..Default::default() }
}

macro_rules! figure_bench {
    ($fn_name:ident, $module:ident, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let cfg = bench_cfg();
            c.bench_function($label, |b| {
                b.iter(|| black_box(figures::$module::run(black_box(&cfg))))
            });
        }
    };
}

figure_bench!(bench_table1, table1, "table1");
figure_bench!(bench_fig6, fig6, "fig6");
figure_bench!(bench_fig7, fig7, "fig7");
figure_bench!(bench_fig8_10, fig8_10, "fig8_10");
figure_bench!(bench_fig9, fig9, "fig9");
figure_bench!(bench_fig11_12, fig11_12, "fig11_12");
figure_bench!(bench_fig13_14, fig13_14, "fig13_14");
figure_bench!(bench_fig15, fig15, "fig15");
figure_bench!(bench_fig16, fig16, "fig16");
figure_bench!(bench_fig17, fig17, "fig17");
figure_bench!(bench_fig18, fig18, "fig18");
figure_bench!(bench_ablations, ablations, "ablations");

criterion_group! {
    name = paper_figures;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig6, bench_fig7, bench_fig8_10, bench_fig9,
        bench_fig11_12, bench_fig13_14, bench_fig15, bench_fig16, bench_fig17,
        bench_fig18, bench_ablations
}
criterion_main!(paper_figures);
