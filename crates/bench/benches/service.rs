//! Criterion bench: serving-layer throughput, batched vs batch-size-1.
//!
//! Measures end-to-end systems/s of a [`SolverService`] under an open-loop
//! stream of mixed-size requests — the batched configuration amortizes
//! kernel launches across coalesced size-class batches, the unbatched one
//! pays a launch per request. `Throughput::Elements` makes criterion
//! report the rate directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use solver_service::{ServiceConfig, ServiceError, SolverService};
use std::time::Duration;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

const SIZES: [usize; 3] = [64, 128, 256];
const REQUESTS: usize = 240;

fn stream(seed: u64) -> Vec<TridiagonalSystem<f32>> {
    let mut generator = Generator::new(seed);
    (0..REQUESTS)
        .map(|i| generator.system(Workload::DiagonallyDominant, SIZES[i % SIZES.len()]))
        .collect()
}

fn drive(config: &ServiceConfig, systems: &[TridiagonalSystem<f32>]) {
    let service: SolverService<f32> = SolverService::start(config.clone());
    let mut tickets = Vec::with_capacity(systems.len());
    for system in systems {
        loop {
            match service.submit(system.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                // Honor the service's drain-rate hint when it has one.
                Err(ServiceError::QueueFull { retry_after: Some(hint), .. }) => {
                    std::thread::sleep(hint)
                }
                Err(ServiceError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("{e}"),
            }
        }
    }
    for ticket in tickets {
        let response = ticket.wait();
        assert!(response.residual.is_finite());
    }
    drop(service.shutdown());
}

fn bench_service(c: &mut Criterion) {
    let systems = stream(20100109);
    let mut group = c.benchmark_group("service");
    group.throughput(Throughput::Elements(REQUESTS as u64));
    group.sample_size(10);

    let batched = ServiceConfig {
        target_batch: 64,
        max_linger: Duration::from_millis(2),
        ..ServiceConfig::default()
    };
    group.bench_with_input(
        BenchmarkId::new("open_loop", "batched_target64"),
        &batched,
        |b, cfg| b.iter(|| drive(cfg, &systems)),
    );

    let unbatched = ServiceConfig {
        target_batch: 1,
        min_gpu_batch: 1,
        max_linger: Duration::from_millis(2),
        ..ServiceConfig::default()
    };
    group.bench_with_input(
        BenchmarkId::new("open_loop", "unbatched_target1"),
        &unbatched,
        |b, cfg| b.iter(|| drive(cfg, &systems)),
    );

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
