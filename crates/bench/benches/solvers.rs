//! Criterion benchmarks of the solver implementations themselves:
//! simulated-GPU solve pipelines (upload + simulate + download) and the
//! real CPU baselines, across the paper's system sizes.

use bench::ReproConfig;
use cpu_solvers::{solve_batch_seq, Gep, MtSolver, Thomas};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use std::hint::black_box;
use tridiag_core::dominant_batch;

/// Batch counts are scaled down so a criterion sample stays in the tens of
/// milliseconds.
const COUNT: usize = 32;

fn gpu_solvers(c: &mut Criterion) {
    let cfg = ReproConfig::default();
    let mut group = c.benchmark_group("gpu_sim_solve");
    for n in [64usize, 256, 512] {
        let batch = dominant_batch::<f32>(cfg.seed, n, COUNT);
        group.throughput(Throughput::Elements((n * COUNT) as u64));
        for alg in [
            GpuAlgorithm::Cr,
            GpuAlgorithm::Pcr,
            GpuAlgorithm::Rd(RdMode::Plain),
            GpuAlgorithm::CrPcr { m: (n / 2).max(2) },
            GpuAlgorithm::CrRd { m: (n / 4).max(2), mode: RdMode::Plain },
        ] {
            group.bench_with_input(
                BenchmarkId::new(alg.name().replace(' ', "_"), n),
                &batch,
                |b, batch| b.iter(|| black_box(solve_batch(&cfg.launcher, alg, black_box(batch)))),
            );
        }
    }
    group.finish();
}

fn cpu_solvers(c: &mut Criterion) {
    let cfg = ReproConfig::default();
    let mut group = c.benchmark_group("cpu_solve");
    for n in [64usize, 256, 512] {
        let batch = dominant_batch::<f32>(cfg.seed, n, COUNT);
        group.throughput(Throughput::Elements((n * COUNT) as u64));
        group.bench_with_input(BenchmarkId::new("GE", n), &batch, |b, batch| {
            b.iter(|| black_box(solve_batch_seq(&Thomas, black_box(batch))))
        });
        group.bench_with_input(BenchmarkId::new("GEP", n), &batch, |b, batch| {
            b.iter(|| black_box(solve_batch_seq(&Gep, black_box(batch))))
        });
        let mt = MtSolver::new(4);
        group.bench_with_input(BenchmarkId::new("MT", n), &batch, |b, batch| {
            b.iter(|| black_box(mt.solve_batch(&Thomas, black_box(batch))))
        });
    }
    group.finish();
}

fn reference_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_reference");
    let n = 512usize;
    let batch = dominant_batch::<f64>(7, n, 1);
    let sys = batch.system(0);
    let mut x = vec![0.0f64; n];
    group.bench_function("thomas", |b| {
        b.iter(|| {
            cpu_solvers::thomas::solve_into(
                black_box(&sys.a),
                &sys.b,
                &sys.c,
                &sys.d,
                black_box(&mut x),
            )
        })
    });
    group.bench_function("cr_reference", |b| {
        b.iter(|| {
            cpu_solvers::reference::cr::solve_into(
                black_box(&sys.a),
                &sys.b,
                &sys.c,
                &sys.d,
                black_box(&mut x),
            )
        })
    });
    group.bench_function("pcr_reference", |b| {
        b.iter(|| {
            cpu_solvers::reference::pcr::solve_into(
                black_box(&sys.a),
                &sys.b,
                &sys.c,
                &sys.d,
                black_box(&mut x),
            )
        })
    });
    group.bench_function("rd_reference", |b| {
        b.iter(|| {
            cpu_solvers::reference::rd::solve_into(
                black_box(&sys.a),
                &sys.b,
                &sys.c,
                &sys.d,
                black_box(&mut x),
            )
        })
    });
    group.finish();
}

fn extension_solvers(c: &mut Criterion) {
    let cfg = ReproConfig::default();
    let mut group = c.benchmark_group("extensions");

    // Coarse-grained thread-per-system Thomas (simulated pipeline).
    let batch = dominant_batch::<f32>(cfg.seed, 512, COUNT);
    group.bench_function("thomas_per_thread_512", |b| {
        b.iter(|| black_box(gpu_solvers::solve_batch_coarse(&cfg.launcher, black_box(&batch))))
    });

    // Periodic batch via Sherman-Morrison.
    let periodic: Vec<_> = (0..COUNT)
        .map(|s| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(s as u64);
            let n = 256usize;
            let mut a: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut cvec: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..n).map(|i| a[i].abs() + cvec[i].abs() + 1.0).collect();
            let d: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            a[0] = rng.gen_range(-0.5..0.5);
            cvec[n - 1] = rng.gen_range(-0.5..0.5);
            tridiag_core::PeriodicTridiagonalSystem::new(a, b, cvec, d).unwrap()
        })
        .collect();
    group.bench_function("periodic_crpcr_256", |b| {
        b.iter(|| {
            black_box(gpu_solvers::solve_periodic_batch(
                &cfg.launcher,
                GpuAlgorithm::CrPcr { m: 128 },
                black_box(&periodic),
            ))
        })
    });

    // Block CR (2x2 blocks).
    let blocks: Vec<_> = (0..8)
        .map(|s| tridiag_core::BlockTridiagonalSystem::<f32>::random_dominant(s, 128))
        .collect();
    group.bench_function("block_cr_128", |b| {
        b.iter(|| black_box(gpu_solvers::solve_block_batch(&cfg.launcher, black_box(&blocks))))
    });

    // Wang's partition method on one large system (real CPU wall time).
    let big = tridiag_core::Generator::new(1)
        .system::<f64>(tridiag_core::Workload::DiagonallyDominant, 1 << 16);
    for p in [1usize, 2, 4, 8] {
        group.bench_function(format!("partition_65536_p{p}"), |b| {
            b.iter(|| black_box(cpu_solvers::partition::solve(black_box(&big), p)))
        });
    }

    group.finish();
}

criterion_group! {
    name = solvers;
    config = Criterion::default().sample_size(10);
    targets = gpu_solvers, cpu_solvers, reference_algorithms, extension_solvers
}
criterion_main!(solvers);
