//! Cost-model calibration aid: prints simulated timings next to the
//! paper's GTX 280 measurements so the constants in
//! `gpu_sim::CostModel::gtx280()` can be tuned. Not part of the figure
//! harness — see `repro` for that.

use gpu_sim::Launcher;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::dominant_batch;

fn main() {
    let launcher = Launcher::gtx280();

    println!("=== 512x512 kernel times (paper: CR 1.066, PCR 0.534, RD 0.612, CR+PCR 0.422, CR+RD 0.488 ms)");
    let batch = dominant_batch::<f32>(42, 512, 512);
    let mut cr_parts = (0.0, 0.0, 0.0);
    for (alg, paper) in [
        (GpuAlgorithm::Cr, 1.066),
        (GpuAlgorithm::Pcr, 0.534),
        (GpuAlgorithm::Rd(RdMode::Plain), 0.612),
        (GpuAlgorithm::CrPcr { m: 256 }, 0.422),
        (GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain }, 0.488),
    ] {
        let r = solve_batch(&launcher, alg, &batch).unwrap();
        let t = &r.timing;
        println!(
            "{:28} {:.3} ms (paper {:.3})  global {:.3} shared {:.3} compute {:.3} | sharedBW {:6.1} GB/s gflops {:6.1} | transfer {:.2} ms",
            alg.name(), t.kernel_ms, paper, t.global_ms, t.shared_ms, t.compute_ms,
            t.achieved_shared_gbps, t.gflops, t.transfer_ms
        );
        if alg == GpuAlgorithm::Cr {
            cr_parts = (t.global_ms, t.shared_ms, t.compute_ms);
        }
    }
    println!("paper CR breakdown: global 0.103 (10%), shared 0.689 (64%), compute 0.274 (26%)");
    println!(
        "ours  CR breakdown: global {:.3}, shared {:.3}, compute {:.3}",
        cr_parts.0, cr_parts.1, cr_parts.2
    );
    println!("paper PCR breakdown: global 0.106/20%, shared 0.163/30% (883GB/s), compute 0.265/50% (101.9 GFLOPS)");
    println!("paper RD  breakdown: global 0.109/18%, shared 0.262/43% (1095GB/s), compute 0.241/39% (186.7 GFLOPS)");

    println!("\n=== size sweep, kernel ms (paper Fig 6 left approx: CR 0.15/0.25/0.45/1.07; PCR ~0.1/0.15/0.25/0.53)");
    for (n, count) in [(64usize, 64usize), (128, 128), (256, 256), (512, 512)] {
        let batch = dominant_batch::<f32>(1, n, count);
        print!("{:9}", format!("{n}x{count}"));
        for alg in GpuAlgorithm::paper_five(n) {
            let r = solve_batch(&launcher, alg, &batch).unwrap();
            print!("  {}={:.3}", alg.name(), r.timing.kernel_ms);
        }
        println!();
    }

    println!("\n=== CR per-step forward reduction (Fig 9; paper conflicted: ~0.04..0.13 ms rising; conflict-free flat ~0.013-0.02)");
    let batch = dominant_batch::<f32>(42, 512, 512);
    let r = solve_batch(&launcher, GpuAlgorithm::Cr, &batch).unwrap();
    for st in r.timing.steps_in_phase(gpu_sim::Phase::ForwardReduction) {
        println!(
            "  threads {:4} conflict {:2}x: {:.4} ms (shared {:.4} compute+oh {:.4})",
            st.active_threads, st.max_conflict_degree, st.ms, st.shared_ms, st.compute_ms
        );
    }

    println!("\n=== hybrid sweep CR+PCR (Fig 17; paper: ~1.07 at m=2 falling to 0.42 at m=256, 0.53 at m=512)");
    for m in [2usize, 4, 8, 16, 32, 64, 128, 256, 512] {
        let r = solve_batch(&launcher, GpuAlgorithm::CrPcr { m }, &batch).unwrap();
        println!("  m={m:3}  {:.3} ms", r.timing.kernel_ms);
    }
}
