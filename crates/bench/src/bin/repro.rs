//! Reproduction driver: regenerates every table and figure of the paper's
//! evaluation section (plus the ablations).
//!
//! ```text
//! cargo run --release -p bench --bin repro            # everything
//! cargo run --release -p bench --bin repro fig9 fig17 # a subset
//! cargo run --release -p bench --bin repro --list     # available names
//! cargo run --release -p bench -- sanitize --quick    # sanitizer gate
//! cargo run --release -p bench -- chaos --quick       # fault-injection gate
//! cargo run --release -p bench -- pool --quick        # multi-device gate
//! cargo run --release -p bench -- replay --quick      # bit-identical replay gate
//! cargo run --release -p bench -- replay t.trace      # verify a trace file
//! cargo run --release -p bench -- loadlab --quick     # load-lab SLO gate
//! cargo run --release -p bench -- prove --quick       # symbolic proof gate
//! cargo run --release -p bench -- cluster --quick     # multi-node cluster gate
//! cargo run --release -p bench -- factor --quick      # factor-cache warm gate
//! cargo run --release -p bench -- certify --quick     # certification gate
//! ```
//!
//! Every gate shares one flag grammar (`--quick`, `--json`, whitelisted
//! extras) and one exit-code vocabulary — see [`bench::cli`].

use bench::{figures, ReproConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // The sanitizer gate is a subcommand, not an experiment: it returns a
    // non-zero exit code when any solver trips an error-severity diagnostic.
    if args.first().map(String::as_str) == Some("sanitize") {
        std::process::exit(bench::sanitize::run(&args[1..]));
    }

    // The chaos gate drives the solve service on a fault-injected device:
    // non-zero exit iff any answer escapes verification or availability
    // drops below 99%.
    if args.first().map(String::as_str) == Some("chaos") {
        std::process::exit(bench::chaos::run(&args[1..]));
    }

    // The pool gate drives the multi-device layer: throughput scaling
    // across 1..8 simulated devices, a mid-stream device-loss failover
    // cell, and large-n partitioned solves verified against CPU GEP.
    if args.first().map(String::as_str) == Some("pool") {
        std::process::exit(bench::pool::run(&args[1..]));
    }

    // The replay gate captures a fault-injected chaos run under the
    // deterministic trace-lab harness and demands a second run (and a
    // round-trip through the trace file) be bit-identical.
    if args.first().map(String::as_str) == Some("replay") {
        std::process::exit(bench::replay::run(&args[1..]));
    }

    // The load lab drives the open-loop workload matrix on the virtual
    // clock and gates each cell's SLO against checked-in baselines.
    if args.first().map(String::as_str) == Some("loadlab") {
        std::process::exit(bench::loadlab::run(&args[1..]));
    }

    // The prove gate verifies every production kernel symbolically over
    // its whole size family: non-zero exit on any Violated verdict, any
    // undocumented Unproven, or a planted fixture bug the verifier missed.
    if args.first().map(String::as_str) == Some("prove") {
        std::process::exit(bench::prove::run(&args[1..]));
    }

    // The cluster gate drives the multi-node tier: aggregate scaling to
    // 4 nodes x 8 devices, a sticky node-kill and an asymmetric
    // partition-heal failover cell, and two-level solves vs CPU GEP.
    if args.first().map(String::as_str) == Some("cluster") {
        std::process::exit(bench::cluster::run(&args[1..]));
    }

    // The factor gate runs the cold-vs-warm factorization-cache sweep:
    // non-zero exit iff the warm speedup or hit rate drops below the
    // checked-in floors or any answer escapes verification.
    if args.first().map(String::as_str) == Some("factor") {
        std::process::exit(bench::factor::run(&args[1..]));
    }

    // The certify gate runs the verify-everything vs certified sampled
    // verification sweep: non-zero exit iff coverage of the dominant pool
    // or the verify-skip speedup drops below the checked-in floors or any
    // answer escapes the acceptance bound.
    if args.first().map(String::as_str) == Some("certify") {
        std::process::exit(bench::certify::run(&args[1..]));
    }

    let all = figures::all();

    if args.iter().any(|a| a == "--list" || a == "-l" || a == "--help") {
        println!("available experiments:");
        for (name, _) in &all {
            println!("  {name}");
        }
        return;
    }

    let cfg = ReproConfig::default();
    let selected: Vec<&bench::figures::Experiment> = if args.is_empty() {
        all.iter().collect()
    } else {
        let mut picked = Vec::new();
        for arg in &args {
            match all.iter().find(|(name, _)| name == arg) {
                Some(entry) => picked.push(entry),
                None => {
                    eprintln!("unknown experiment '{arg}' — use --list");
                    std::process::exit(2);
                }
            }
        }
        picked
    };

    println!("# Fast Tridiagonal Solvers on the GPU — reproduction report");
    println!("# device: {} | seed: {}", cfg.launcher.device.name, cfg.seed);
    println!();
    for (name, run) in selected {
        eprintln!("[repro] running {name} ...");
        for table in run(&cfg) {
            println!("{table}");
        }
    }
}
