//! The `certify` subcommand: verify-everything vs certified sampled
//! verification, and reports the verify-skip speedup, certification
//! coverage, and correctness.
//!
//! ```text
//! cargo run --release -p bench -- certify            # full sweep (1200 req)
//! cargo run --release -p bench -- certify --quick    # CI gate subset
//! ```
//!
//! Two identical open-loop streams of pooled-matrix flushes run through
//! [`serve_flush`] on the simulated clock. The **verify** mode pays the
//! per-solution residual check on every flush (certified catalog off);
//! the **certified** mode turns the catalog on, so each dominant matrix
//! is analyzed exactly once, certified, and its later flushes skip the
//! residual verify (1-in-K sampled). Both modes pin the CPU cost model,
//! so the device-µs ratio is the deterministic verify-cost discount
//! (25 vs 18 ns/row in the sim model) diluted by sampled flushes and the
//! deliberately uncertifiable matrix in the pool. The gate fails (exit 1)
//! iff certification coverage of the dominant pool drops below the
//! checked-in floor, the verify-skip speedup falls under its floor, or
//! any answer in either mode escapes the acceptance bound.

use crate::report::Table;
use gpu_sim::{Clock, Launcher};
use numeric_verify::CertifiedCatalog;
use solver_service::{
    make_request_keyed, serve_flush, CircuitBreakers, CpuEngine, DeviceCtx, DispatchConfig, Engine,
    FlushReason, FlushedBatch, PlanCache, ServiceMetrics, Ticket,
};
use std::sync::Arc;
use tridiag_core::{Generator, MatrixKey, TridiagonalSystem, Workload};

/// System sizes the pooled matrices cycle over.
const SIZES: [usize; 3] = [64, 128, 256];

/// RHS per flush (every flush is one matrix × `BATCH` right-hand sides).
const BATCH: usize = 8;

/// Sampling period the certified mode runs (1-in-K residual checks).
const SAMPLE_PERIOD: usize = 8;

/// A response is "wrong" when its residual escapes this bound (the same
/// bound the chaos gate and the service property tests use for f32).
const RESIDUAL_BOUND: f64 = 1e-2;

/// What one mode (verify or certified) of the sweep produced.
struct ModeOutcome {
    completed: u64,
    wrong: u64,
    max_residual: f64,
    /// Modeled device time per served system, microseconds.
    device_us_per_system: f64,
    condest_calls: u64,
    certs_issued: u64,
    cert_skipped_verifies: u64,
    cert_sampled_verifies: u64,
    certs_revoked: u64,
    quiet: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the matrix pool: `keys − 1` strictly dominant templates plus one
/// deliberately uncertifiable matrix — a dominant system with one row
/// flattened onto the dominance boundary (`|b| = |a| + |c|`, gap 0, inside
/// the analyzer's slack), so the sweep always exercises the analyzer's
/// rejection path while staying well-conditioned enough that full
/// verification keeps every answer inside the acceptance bound.
fn pool(seed: u64, keys: usize) -> Vec<(TridiagonalSystem<f32>, MatrixKey)> {
    let mut generator = Generator::new(seed);
    (0..keys)
        .map(|k| {
            let n = SIZES[k % SIZES.len()];
            let mut system: TridiagonalSystem<f32> =
                generator.system(Workload::DiagonallyDominant, n);
            if k == keys - 1 {
                let row = n / 2;
                system.b[row] = system.a[row].abs() + system.c[row].abs();
            }
            let key = MatrixKey::of_system(&system);
            (system, key)
        })
        .collect()
}

/// Drives one mode: `total` requests in `BATCH`-sized same-matrix flushes
/// cycling over the pooled matrices, on the simulated clock.
fn drive(seed: u64, total: usize, keys: usize, certified: bool) -> ModeOutcome {
    let clock = Clock::sim();
    let launcher = Launcher::gtx280();
    let plans = PlanCache::new();
    let breakers = CircuitBreakers::default();
    let metrics = ServiceMetrics::new();
    let catalog = certified.then(|| Arc::new(CertifiedCatalog::with_sample_period(SAMPLE_PERIOD)));
    let cfg = DispatchConfig {
        // Pin the CPU Thomas cost model so the verify-vs-skip device-µs
        // ratio is the deterministic per-row discount (25 vs 18 ns/row in
        // the sim model), independent of flush composition.
        pin_engine: Some(Engine::Cpu(CpuEngine::Thomas)),
        min_gpu_batch: usize::MAX,
        sanitize_first_flush: false,
        clock: clock.clone(),
        certified: catalog,
        ..DispatchConfig::default()
    };

    let templates = pool(seed, keys);
    let flushes = (total / BATCH).max(1);
    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(flushes * BATCH);
    let mut rhs_rng = seed ^ 0xCE27_0001;
    let mut id = 0u64;
    for f in 0..flushes {
        let (template, key) = &templates[f % templates.len()];
        let n = template.n();
        let mut requests = Vec::with_capacity(BATCH);
        for _ in 0..BATCH {
            let mut system = template.clone();
            for v in system.d.iter_mut() {
                *v = (splitmix64(&mut rhs_rng) % 19) as f32 - 9.0;
            }
            let (req, ticket) = make_request_keyed(id, system, 0, None, Some(*key));
            id += 1;
            requests.push(req);
            tickets.push(ticket);
        }
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &breakers,
            &metrics,
            &cfg,
            FlushedBatch { n, requests, reason: FlushReason::Full },
        );
    }

    let mut wrong = 0u64;
    let mut max_residual = 0.0f64;
    for ticket in tickets {
        let response = ticket.try_take().expect("synchronous serve fulfils every ticket");
        if !response.residual.is_finite() || response.residual >= RESIDUAL_BOUND {
            wrong += 1;
        }
        max_residual = max_residual.max(response.residual);
    }

    let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
    let total_engine_ms: f64 = snap.engine_ms.values().sum();
    ModeOutcome {
        completed: snap.completed,
        wrong,
        max_residual,
        device_us_per_system: total_engine_ms * 1e3 / snap.completed.max(1) as f64,
        condest_calls: snap.condest_calls,
        certs_issued: snap.certs_issued,
        cert_skipped_verifies: snap.cert_skipped_verifies,
        cert_sampled_verifies: snap.cert_sampled_verifies,
        certs_revoked: snap.certs_revoked,
        quiet: snap.degradation.is_quiet(),
    }
}

fn json_row(mode: &str, out: &ModeOutcome, coverage: f64) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"certify\",\"mode\":\"{}\",",
            "\"completed\":{},\"wrong\":{},\"max_residual\":{:.3e},",
            "\"device_us_per_system\":{:.4},",
            "\"condest_calls\":{},\"certs_issued\":{},",
            "\"cert_skipped_verifies\":{},\"cert_sampled_verifies\":{},",
            "\"certs_revoked\":{},\"coverage\":{:.4}}}"
        ),
        mode,
        out.completed,
        out.wrong,
        out.max_residual,
        out.device_us_per_system,
        out.condest_calls,
        out.certs_issued,
        out.cert_skipped_verifies,
        out.cert_sampled_verifies,
        out.certs_revoked,
        coverage,
    )
}

/// Checks the sweep against `baselines/certify.json`.
fn baseline_failures(speedup: f64, coverage: f64, wrong: u64) -> Vec<String> {
    let baselines = match crate::cli::baseline_path("certify.json").map(std::fs::read_to_string) {
        Some(Ok(text)) => text,
        Some(Err(e)) => return vec![format!("baselines/certify.json unreadable: {e}")],
        None => return vec!["baselines/certify.json missing".to_string()],
    };
    let mut failures = Vec::new();
    match crate::cli::json_object_with(&baselines, "name", "certify-sweep") {
        Some(row) => {
            if let Some(min) = crate::cli::json_f64(row, "min_speedup") {
                if speedup < min {
                    failures.push(format!(
                        "certify: verify-skip speedup {speedup:.4} < baseline {min}"
                    ));
                }
            }
            if let Some(min) = crate::cli::json_f64(row, "min_coverage") {
                if coverage < min {
                    failures.push(format!("certify: coverage {coverage:.4} < baseline {min}"));
                }
            }
            if let Some(max) = crate::cli::json_u64(row, "max_wrong") {
                if wrong > max {
                    failures.push(format!("certify: wrong answers {wrong} > baseline {max}"));
                }
            }
        }
        None => failures.push("baselines/certify.json lacks a certify-sweep row".to_string()),
    }
    failures
}

/// Runs the verify-vs-certified sweep; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match crate::cli::parse("certify", args, &[], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let quick = parsed.quick;
    let (total, keys) = if quick { (240, 8) } else { (1200, 20) };
    let dominant_keys = (keys - 1) as u64;
    let seed = 20100109;

    eprintln!("[certify] verify sweep ({total} requests, catalog off) ...");
    let verify = drive(seed, total, keys, false);
    eprintln!("[certify] certified sweep ({total} requests, 1-in-{SAMPLE_PERIOD} sampling) ...");
    let certified = drive(seed, total, keys, true);

    let speedup = verify.device_us_per_system / certified.device_us_per_system.max(1e-12);
    let coverage = certified.certs_issued as f64 / dominant_keys.max(1) as f64;
    let wrong = verify.wrong + certified.wrong;

    let mut table = Table::new(
        format!(
            "Certification: {total} pooled-matrix requests/mode ({keys} keys, n ∈ {SIZES:?}, \
             {BATCH} RHS/flush), full residual verify vs 1-in-{SAMPLE_PERIOD} sampled"
        ),
        &[
            "mode",
            "served",
            "wrong",
            "max residual",
            "device µs/sys",
            "condest",
            "issued",
            "skipped",
            "sampled",
            "revoked",
        ],
    );
    for (mode, out) in [("verify", &verify), ("certified", &certified)] {
        table.row(vec![
            mode.to_string(),
            out.completed.to_string(),
            out.wrong.to_string(),
            format!("{:.2e}", out.max_residual),
            format!("{:.3}", out.device_us_per_system),
            out.condest_calls.to_string(),
            out.certs_issued.to_string(),
            out.cert_skipped_verifies.to_string(),
            out.cert_sampled_verifies.to_string(),
            out.certs_revoked.to_string(),
        ]);
    }
    table.note(format!(
        "verify-skip speedup {speedup:.3}x device-µs/system, dominant-pool coverage {:.1}% \
         ({}/{dominant_keys} keys; 1 key uncertifiable by construction)",
        coverage * 100.0,
        certified.certs_issued
    ));
    table.note(format!(
        "gate: speedup/coverage floors from baselines/certify.json, wrong answers = 0 \
         (residual bound {RESIDUAL_BOUND:.0e})"
    ));
    println!("{table}");

    let json = vec![json_row("verify", &verify, 0.0), json_row("certified", &certified, coverage)];
    if parsed.json {
        for line in &json {
            println!("{line}");
        }
    }

    let mut failures = 0usize;
    let bench = format!(
        concat!(
            "{{\"bench\":\"certify\",\"quick\":{},\"speedup\":{:.4},",
            "\"coverage\":{:.4},\"rows\":[{}]}}\n"
        ),
        quick,
        speedup,
        coverage,
        json.join(",")
    );
    match crate::cli::write_bench("BENCH_certify.json", &bench) {
        Ok(path) => eprintln!("[certify] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[certify] FAIL: writing BENCH_certify.json: {e}");
            failures += 1;
        }
    }

    // Structural sanity independent of the baseline floors: the verify
    // mode must never consult the analyzer, the certified mode must spend
    // exactly one condest call per certified key (the analyzer rejects
    // the uncertifiable key before the estimator runs), nothing may be
    // revoked on a fault-free device, and certification activity must not
    // register as degradation.
    if verify.condest_calls + verify.certs_issued + verify.cert_skipped_verifies != 0 {
        eprintln!("[certify] FAIL: verify mode touched the certified catalog");
        failures += 1;
    }
    if certified.condest_calls != certified.certs_issued {
        eprintln!(
            "[certify] FAIL: {} condest calls for {} certificates (must be 1:1)",
            certified.condest_calls, certified.certs_issued
        );
        failures += 1;
    }
    if certified.certs_revoked != 0 {
        eprintln!("[certify] FAIL: a fault-free sweep revoked a certificate");
        failures += 1;
    }
    if !verify.quiet || !certified.quiet {
        eprintln!("[certify] FAIL: a fault-free sweep left degradation counters non-quiet");
        failures += 1;
    }

    for clause in baseline_failures(speedup, coverage, wrong) {
        eprintln!("[certify] FAIL: {clause}");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[certify] FAIL: {failures} clause(s) broke the certify gate");
        crate::cli::EXIT_GATE_FAIL
    } else {
        println!(
            "[certify] PASS: verify-skip speedup {speedup:.3}x, coverage {:.1}%, \
             every answer inside the bound",
            coverage * 100.0
        );
        crate::cli::EXIT_PASS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_mode_never_touches_the_catalog_and_verifies_everything() {
        let out = drive(7, 96, 8, false);
        assert_eq!(out.completed, 96);
        assert_eq!(out.wrong, 0);
        assert_eq!(out.condest_calls + out.certs_issued + out.cert_skipped_verifies, 0);
        assert!(out.quiet);
    }

    #[test]
    fn certified_mode_certifies_the_dominant_pool_once_and_skips() {
        let out = drive(7, 240, 8, true);
        assert_eq!(out.completed, 240);
        assert_eq!(out.wrong, 0);
        // 7 dominant keys certify (one condest call each); the
        // close-values key is rejected by the class scan for free.
        assert_eq!(out.certs_issued, 7);
        assert_eq!(out.condest_calls, 7);
        assert!(out.cert_skipped_verifies > out.cert_sampled_verifies);
        assert_eq!(out.certs_revoked, 0);
        assert!(out.quiet, "certification activity is not degradation");
    }

    #[test]
    fn certified_beats_full_verification_by_the_discount_ratio() {
        let verify = drive(7, 240, 8, false);
        let certified = drive(7, 240, 8, true);
        let speedup = verify.device_us_per_system / certified.device_us_per_system;
        // 25 ns/row with the inline verify vs 18 ns/row when skipped,
        // diluted by sampled flushes and the uncertifiable pool key.
        assert!(speedup >= 1.15, "speedup {speedup}");
        assert!(speedup <= 25.0 / 18.0 + 1e-9, "speedup {speedup} above the full discount");
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(run(&["--bogus".to_string()]), 2);
    }
}
