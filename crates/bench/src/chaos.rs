//! The `chaos` subcommand: drives the solve service under injected device
//! faults and reports availability, correctness, and degradation.
//!
//! ```text
//! cargo run --release -p bench -- chaos            # full sweep (1000 req/cell)
//! cargo run --release -p bench -- chaos --quick    # CI gate subset
//! ```
//!
//! Each cell of the sweep crosses a fault mix (transient launch-failure
//! rate × bit-flip rate) with a dispatch mode (autotuned plan vs. a pinned
//! `cr+pcr` engine) and pushes an open-loop stream of mixed-size requests
//! through [`SolverService`] on a fault-injected [`Launcher`]. The gate
//! fails (exit 1) iff any cell returns a wrong answer — a response whose
//! residual escapes the verify bound — or drops availability below 99%.
//! Under the verify-and-repair contract *neither should ever happen*:
//! faults may cost latency and degrade flushes to the CPU safety net, but
//! never correctness.

use crate::report::Table;
use gpu_sim::{FaultConfig, FaultPlan, FaultStats, Launcher};
use gpu_solvers::GpuAlgorithm;
use solver_service::{Engine, ServiceConfig, ServiceError, SolverService, Ticket};
use std::sync::Arc;
use std::time::Duration;
use tridiag_core::{Generator, Workload};

/// System sizes the stream mixes — same range as the serving experiment.
const SIZES: [usize; 3] = [64, 128, 256];

/// A response is "wrong" when its residual escapes this bound (the same
/// bound the service property tests hold the pipeline to for f32).
const RESIDUAL_BOUND: f64 = 1e-2;

/// Submit attempts per request before declaring it shed (unavailable).
const MAX_SUBMIT_ATTEMPTS: usize = 200;

/// One cell of the sweep: a fault mix crossed with a dispatch mode.
struct Cell {
    label: &'static str,
    launch_rate: f64,
    flip_rate: f64,
    pin: Option<Engine>,
}

/// What one cell produced, distilled from the responses + metrics snapshot.
struct CellOutcome {
    total: usize,
    completed: u64,
    shed: u64,
    wrong: u64,
    repaired: u64,
    availability: f64,
    p50_us: u64,
    p99_us: u64,
    retries: u64,
    device_faults: u64,
    corruptions_caught: u64,
    degraded_flushes: u64,
    breaker_opened: u64,
    breaker_denials: u64,
    injected: FaultStats,
}

impl CellOutcome {
    /// The gate: verified answers only, ≥99% availability.
    fn passes(&self) -> bool {
        self.wrong == 0 && self.availability >= 0.99
    }
}

fn pin_engine() -> Engine {
    // Valid for every size in the mix (m = 32 divides all of them).
    Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })
}

/// The sweep cells for a given thoroughness.
fn cells(quick: bool) -> Vec<Cell> {
    let mut cells = vec![
        Cell { label: "baseline (no faults)", launch_rate: 0.0, flip_rate: 0.0, pin: None },
        Cell { label: "chaos 5%/1%, autotuned", launch_rate: 0.05, flip_rate: 0.01, pin: None },
        Cell {
            label: "chaos 5%/1%, pinned cr+pcr@32",
            launch_rate: 0.05,
            flip_rate: 0.01,
            pin: Some(pin_engine()),
        },
        // The storm cell is in the quick gate on purpose: at these rates
        // injection is certain even in a short run, so CI always exercises
        // retries, repair, and (often) the breaker — not just the happy path.
        Cell {
            label: "storm 20%/5%, pinned cr+pcr@32",
            launch_rate: 0.20,
            flip_rate: 0.05,
            pin: Some(pin_engine()),
        },
    ];
    if !quick {
        cells.push(Cell {
            label: "drizzle 1%/0.5%, autotuned",
            launch_rate: 0.01,
            flip_rate: 0.005,
            pin: None,
        });
        cells.push(Cell {
            label: "storm 20%/5%, autotuned",
            launch_rate: 0.20,
            flip_rate: 0.05,
            pin: None,
        });
    }
    cells
}

/// Drives one cell: `total` mixed-size requests, open loop, bounded
/// submit retries honoring the service's drain-rate hint.
fn drive(seed: u64, cell: &Cell, total: usize) -> CellOutcome {
    let plan = Arc::new(FaultPlan::new(FaultConfig::chaos(
        seed ^ 0xC4A05,
        cell.launch_rate,
        cell.flip_rate,
    )));
    // A small target batch multiplies kernel launches, giving the fault
    // plan more opportunities per run — the point here is resilience
    // coverage, not occupancy (the serving experiment measures that).
    let config = ServiceConfig {
        target_batch: 8,
        min_gpu_batch: 1,
        max_linger: Duration::from_millis(1),
        launcher: Launcher::gtx280().with_fault_plan(Arc::clone(&plan)),
        pin_engine: cell.pin,
        ..ServiceConfig::default()
    };
    let service: SolverService<f32> = SolverService::start(config);
    let mut generator = Generator::new(seed);
    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(total);
    let mut shed = 0u64;
    for i in 0..total {
        let n = SIZES[i % SIZES.len()];
        let system = generator.system(Workload::DiagonallyDominant, n);
        let mut attempts = 0usize;
        loop {
            match service.submit(system.clone()) {
                Ok(ticket) => {
                    tickets.push(ticket);
                    break;
                }
                Err(ServiceError::QueueFull { retry_after, .. })
                    if attempts < MAX_SUBMIT_ATTEMPTS =>
                {
                    attempts += 1;
                    match retry_after {
                        Some(hint) => std::thread::sleep(hint),
                        None => std::thread::yield_now(),
                    }
                }
                Err(ServiceError::QueueFull { .. }) => {
                    // Load shed for good: the request never got in.
                    shed += 1;
                    break;
                }
                Err(e) => panic!("service refused a valid request: {e}"),
            }
        }
    }
    let mut wrong = 0u64;
    for ticket in tickets {
        let response = ticket.wait();
        if !response.residual.is_finite() || response.residual >= RESIDUAL_BOUND {
            wrong += 1;
        }
    }
    let snapshot = service.shutdown();
    let deg = &snapshot.degradation;
    CellOutcome {
        total,
        completed: snapshot.completed,
        shed,
        wrong,
        repaired: snapshot.repaired,
        availability: snapshot.completed as f64 / (total.max(1)) as f64,
        p50_us: snapshot.latency_p50_us,
        p99_us: snapshot.latency_p99_us,
        retries: deg.retries,
        device_faults: deg.device_faults,
        corruptions_caught: deg.corruptions_caught,
        degraded_flushes: deg.degraded_flushes,
        breaker_opened: deg.breaker_opened,
        breaker_denials: deg.breaker_denials,
        injected: plan.stats(),
    }
}

/// One machine-readable line per cell (hand-rolled JSON, like the
/// metrics snapshot's own serialization).
fn json_row(cell: &Cell, out: &CellOutcome) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"chaos\",\"mode\":\"{}\",",
            "\"launch_rate\":{},\"flip_rate\":{},\"requests\":{},",
            "\"completed\":{},\"shed\":{},\"wrong\":{},\"availability\":{:.4},",
            "\"repaired\":{},\"p50_us\":{},\"p99_us\":{},",
            "\"retries\":{},\"device_faults\":{},\"corruptions_caught\":{},",
            "\"degraded_flushes\":{},\"breaker_opened\":{},\"breaker_denials\":{},",
            "\"injected_launch_failures\":{},\"injected_bit_flips\":{}}}"
        ),
        cell.label,
        cell.launch_rate,
        cell.flip_rate,
        out.total,
        out.completed,
        out.shed,
        out.wrong,
        out.availability,
        out.repaired,
        out.p50_us,
        out.p99_us,
        out.retries,
        out.device_faults,
        out.corruptions_caught,
        out.degraded_flushes,
        out.breaker_opened,
        out.breaker_denials,
        out.injected.launch_failures,
        out.injected.bit_flips,
    )
}

/// Checks the sweep's worst cell against `baselines/chaos.json`.
fn baseline_failures(min_availability: f64, max_wrong: u64) -> Vec<String> {
    let baselines = match crate::cli::baseline_path("chaos.json").map(std::fs::read_to_string) {
        Some(Ok(text)) => text,
        Some(Err(e)) => return vec![format!("baselines/chaos.json unreadable: {e}")],
        None => return vec!["baselines/chaos.json missing".to_string()],
    };
    let mut failures = Vec::new();
    match crate::cli::json_object_with(&baselines, "name", "chaos-sweep") {
        Some(row) => {
            if let Some(min) = crate::cli::json_f64(row, "min_availability") {
                if min_availability < min {
                    failures.push(format!(
                        "chaos: worst-cell availability {min_availability:.4} < baseline {min}"
                    ));
                }
            }
            if let Some(max) = crate::cli::json_u64(row, "max_wrong") {
                if max_wrong > max {
                    failures.push(format!("chaos: worst-cell wrong {max_wrong} > baseline {max}"));
                }
            }
        }
        None => failures.push("baselines/chaos.json lacks a chaos-sweep row".to_string()),
    }
    failures
}

/// Runs the chaos sweep; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match crate::cli::parse("chaos", args, &[], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let quick = parsed.quick;
    let total = if quick { 150 } else { 1000 };
    let seed = 20100109;

    let mut table = Table::new(
        format!(
            "Chaos sweep: {total} mixed-size requests/cell (n ∈ {SIZES:?}), \
             verify-and-repair service under injected faults"
        ),
        &[
            "cell",
            "avail %",
            "wrong",
            "repairs",
            "p50 µs",
            "p99 µs",
            "retries",
            "dev faults",
            "corrupt caught",
            "degraded",
            "brk open/deny",
            "gate",
        ],
    );
    let mut failures = 0usize;
    let mut json = Vec::new();
    let mut worst_availability = 1.0f64;
    let mut worst_wrong = 0u64;
    for cell in cells(quick) {
        eprintln!("[chaos] {} ...", cell.label);
        let out = drive(seed, &cell, total);
        let ok = out.passes();
        failures += usize::from(!ok);
        worst_availability = worst_availability.min(out.availability);
        worst_wrong = worst_wrong.max(out.wrong);
        table.row(vec![
            cell.label.to_string(),
            format!("{:.1}", out.availability * 100.0),
            out.wrong.to_string(),
            out.repaired.to_string(),
            out.p50_us.to_string(),
            out.p99_us.to_string(),
            out.retries.to_string(),
            out.device_faults.to_string(),
            out.corruptions_caught.to_string(),
            out.degraded_flushes.to_string(),
            format!("{}/{}", out.breaker_opened, out.breaker_denials),
            if ok { "pass".into() } else { "FAIL".into() },
        ]);
        json.push(json_row(&cell, &out));
    }
    table.note(format!(
        "gate: wrong answers = 0 and availability ≥ 99% (residual bound {RESIDUAL_BOUND:.0e})"
    ));
    table.note("wrong = responses whose residual escapes the verify bound (must be 0 by design)");
    table.note("degraded = flushes served off-plan (lower-ranked engine or CPU safety net)");
    println!("{table}");
    if parsed.json {
        for line in &json {
            println!("{line}");
        }
    }

    let bench =
        format!("{{\"bench\":\"chaos\",\"quick\":{quick},\"rows\":[{}]}}\n", json.join(","));
    match crate::cli::write_bench("BENCH_chaos.json", &bench) {
        Ok(path) => eprintln!("[chaos] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[chaos] FAIL: writing BENCH_chaos.json: {e}");
            failures += 1;
        }
    }

    for clause in baseline_failures(worst_availability, worst_wrong) {
        eprintln!("[chaos] FAIL: {clause}");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[chaos] FAIL: {failures} cell(s) broke the availability/correctness gate");
        crate::cli::EXIT_GATE_FAIL
    } else {
        println!("[chaos] PASS: every answer verified, availability ≥ 99% in all cells");
        crate::cli::EXIT_PASS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_cell_is_perfect() {
        let cell =
            Cell { label: "baseline", launch_rate: 0.0, flip_rate: 0.0, pin: Some(pin_engine()) };
        let out = drive(7, &cell, 45);
        assert_eq!(out.wrong, 0);
        assert_eq!(out.shed, 0);
        assert_eq!(out.completed, 45);
        assert!(out.passes());
        assert_eq!(out.injected.launch_failures, 0);
        assert_eq!(out.injected.bit_flips, 0);
    }

    #[test]
    fn chaotic_cell_still_passes_the_gate() {
        // Rates far above the sweep's: with only a handful of launches in
        // a 45-request run, 5%/1% can legitimately inject nothing. The
        // gate must hold regardless of how hard the device misbehaves.
        let cell =
            Cell { label: "chaos", launch_rate: 0.5, flip_rate: 0.25, pin: Some(pin_engine()) };
        let out = drive(7, &cell, 45);
        assert!(out.passes(), "wrong={} availability={}", out.wrong, out.availability);
        // The plan actually injected something at these rates and counts.
        assert!(
            out.injected.launch_failures + out.injected.bit_flips > 0,
            "chaos cell injected nothing: {:?}",
            out.injected
        );
    }

    #[test]
    fn json_row_is_wellformed_enough() {
        let cell = Cell { label: "x", launch_rate: 0.5, flip_rate: 0.25, pin: None };
        let out = drive(11, &cell, 9);
        let line = json_row(&cell, &out);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"launch_rate\":0.5"));
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(run(&["--bogus".to_string()]), 2);
    }
}
