//! Shared CLI conventions for the `repro` gate subcommands.
//!
//! Every gate (`sanitize`, `chaos`, `pool`, `replay`, `loadlab`) parses
//! its flags through [`parse`] and speaks the same exit-code vocabulary:
//!
//! * [`EXIT_PASS`] (0) — every gate clause held;
//! * [`EXIT_GATE_FAIL`] (1) — the run completed but a gate broke;
//! * [`EXIT_USAGE`] (2) — the invocation itself was malformed.
//!
//! The shared flags are `--quick` (CI-sized workload) and `--json`
//! (machine-readable rows on stdout alongside the human tables).
//! Subcommand-specific flags are whitelisted per call site, so a typo is
//! always a usage error, never a silently ignored option.
//!
//! This module also owns the `BENCH_*.json` plumbing: canonical copies
//! live under `target/repro/`, and checked-in SLO baselines under
//! `baselines/` are read back with a purpose-built flat-JSON scanner
//! (the serde shim has no deserializer — see shims/README.md).

use std::path::{Path, PathBuf};

/// Exit code: every gate clause held.
pub const EXIT_PASS: i32 = 0;
/// Exit code: the run completed but at least one gate clause broke.
pub const EXIT_GATE_FAIL: i32 = 1;
/// Exit code: malformed invocation (unknown flag, bad operand count).
pub const EXIT_USAGE: i32 = 2;

/// Parsed shared gate flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateArgs {
    /// `--quick`: run the CI-sized subset.
    pub quick: bool,
    /// `--json`: emit machine-readable rows on stdout.
    pub json: bool,
    /// Whitelisted subcommand-specific flags that were present, without
    /// the leading `--`.
    pub extras: Vec<String>,
    /// Positional operands (e.g. a trace path), in order.
    pub operands: Vec<String>,
}

impl GateArgs {
    /// `true` when the whitelisted extra flag `name` (no `--`) was passed.
    pub fn has(&self, name: &str) -> bool {
        self.extras.iter().any(|e| e == name)
    }
}

/// Parses `args` for `subcommand`, accepting the shared flags, the
/// whitelisted `extra_flags` (spelled without `--`), and at most
/// `max_operands` positionals. Returns `Err(`[`EXIT_USAGE`]`)` after
/// printing a usage line otherwise.
pub fn parse(
    subcommand: &str,
    args: &[String],
    extra_flags: &[&str],
    max_operands: usize,
) -> Result<GateArgs, i32> {
    let mut parsed = GateArgs::default();
    for arg in args {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--json" => parsed.json = true,
            flag if flag.starts_with("--") => {
                let name = &flag[2..];
                if extra_flags.contains(&name) {
                    parsed.extras.push(name.to_string());
                } else {
                    eprintln!("unknown {subcommand} flag '{flag}' ({})", usage(extra_flags));
                    return Err(EXIT_USAGE);
                }
            }
            operand => parsed.operands.push(operand.to_string()),
        }
    }
    if parsed.operands.len() > max_operands {
        eprintln!(
            "{subcommand}: expected at most {max_operands} operand(s), got {}",
            parsed.operands.len()
        );
        return Err(EXIT_USAGE);
    }
    Ok(parsed)
}

fn usage(extra_flags: &[&str]) -> String {
    let mut flags = vec!["--quick".to_string(), "--json".to_string()];
    flags.extend(extra_flags.iter().map(|f| format!("--{f}")));
    format!("expected {}", flags.join(" / "))
}

/// The canonical output directory for gate artifacts:
/// `$CARGO_TARGET_DIR/repro` (default `target/repro`).
pub fn repro_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    Path::new(&target).join("repro")
}

/// Writes a `BENCH_*.json` artifact under [`repro_dir`] and returns its
/// path.
pub fn write_bench(file_name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = repro_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(file_name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Locates a checked-in baseline file: `baselines/<file>` relative to the
/// working directory (a repo-root `cargo run`), falling back to the
/// workspace root derived from this crate's manifest (tests run with the
/// crate directory as cwd).
pub fn baseline_path(file_name: &str) -> Option<PathBuf> {
    let cwd_relative = Path::new("baselines").join(file_name);
    if cwd_relative.exists() {
        return Some(cwd_relative);
    }
    let from_manifest =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines").join(file_name);
    from_manifest.exists().then_some(from_manifest)
}

/// Extracts the flat JSON object (no nesting) from `text` that contains
/// the exact `"key":"value"` pair — how baseline gates find their row.
pub fn json_object_with<'a>(text: &'a str, key: &str, value: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"{value}\"");
    let at = text.find(&needle)?;
    let start = text[..at].rfind('{')?;
    let end = at + text[at..].find('}')?;
    Some(&text[start..=end])
}

/// Reads an unsigned integer field from a flat JSON object.
pub fn json_u64(object: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = object.find(&needle)? + needle.len();
    let digits: String = object[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Reads a (non-scientific) decimal field from a flat JSON object.
pub fn json_f64(object: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = object.find(&needle)? + needle.len();
    let number: String =
        object[at..].chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    number.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_flags_parse_in_any_order() {
        let args = parse("t", &strings(&["--json", "--quick"]), &[], 0).unwrap();
        assert!(args.quick && args.json);
        let args = parse("t", &strings(&["--quick"]), &[], 0).unwrap();
        assert!(args.quick && !args.json);
    }

    #[test]
    fn extras_are_whitelisted_and_typos_are_usage_errors() {
        let args = parse("t", &strings(&["--overhead"]), &["overhead"], 0).unwrap();
        assert!(args.has("overhead"));
        assert_eq!(parse("t", &strings(&["--overhead"]), &[], 0), Err(EXIT_USAGE));
        assert_eq!(parse("t", &strings(&["--quik"]), &["overhead"], 0), Err(EXIT_USAGE));
    }

    #[test]
    fn operands_are_counted() {
        let args = parse("t", &strings(&["a.trace", "--quick"]), &[], 1).unwrap();
        assert_eq!(args.operands, vec!["a.trace"]);
        assert_eq!(parse("t", &strings(&["a", "b"]), &[], 1), Err(EXIT_USAGE));
    }

    #[test]
    fn flat_json_scanning_finds_rows_and_fields() {
        let text = r#"{"bench":"x","rows":[{"name":"steady","p99_ns":1500,"availability_ppm":998000,"ratio":0.25},{"name":"bursty","p99_ns":9}]}"#;
        let row = json_object_with(text, "name", "steady").unwrap();
        assert_eq!(json_u64(row, "p99_ns"), Some(1500));
        assert_eq!(json_u64(row, "availability_ppm"), Some(998_000));
        assert_eq!(json_f64(row, "ratio"), Some(0.25));
        let row = json_object_with(text, "name", "bursty").unwrap();
        assert_eq!(json_u64(row, "p99_ns"), Some(9));
        assert!(json_object_with(text, "name", "missing").is_none());
        assert!(json_u64(row, "missing").is_none());
    }
}
