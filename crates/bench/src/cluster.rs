//! The `cluster` subcommand: multi-node aggregate scaling, node-kill and
//! partition-heal failover, and two-level large-n solve verification on
//! the simulated cluster tier.
//!
//! ```text
//! cargo run --release -p bench -- cluster            # full sweep (1→4 nodes)
//! cargo run --release -p bench -- cluster --quick    # CI gate subset
//! ```
//!
//! Four experiments, four gates (exit 1 iff any fails):
//!
//! 1. **Scaling** — one batched stream over 32 size classes through the
//!    cluster dispatch loop at 1→4 nodes × 8 devices. Aggregate
//!    throughput is `completed / makespan`, where the makespan is the max
//!    per-device simulated busy time across the *whole cluster* (the
//!    critical path of a parallel fleet). Gate: 4 nodes deliver the
//!    baseline speedup over 1 node, plus the baseline throughput floor.
//! 2. **Node kill** — a 4×8 cluster where one non-coordinator node dies
//!    sticky mid-stream. Gate: zero lost requests, zero wrong answers,
//!    the dead node serves nothing after its crash tick, and only its
//!    peer breaker opens on the coordinator.
//! 3. **Partition heal** — the coordinator loses one direction of one
//!    link for a window mid-stream. Gate: zero loss, zero wrong,
//!    traffic fails over during the window and returns to the partitioned
//!    node after the heal (gossip + breaker cooldown).
//! 4. **Two-level solve** — `solve_partitioned_cluster` at n = 2^18
//!    (and 2^21 in the full sweep) over 4×8 devices, verified against
//!    CPU GEP / the l2 residual. Gate: every row verifies.
//!
//! Everything runs on the virtual clock: every cell is a deterministic
//! replay of its cluster seed.

use crate::cli::{self, EXIT_GATE_FAIL, EXIT_PASS};
use crate::report::Table;
use cluster::{
    node_key, run_cluster_service, solve_partitioned_cluster, BlockedWindow, ClusterConfig,
    ClusterServiceConfig, ClusterWorkload, CrashWindow, NetFaultConfig, PeerState,
};
use gpu_solvers::GpuAlgorithm;
use solver_service::{BreakerConfig, BreakerState, Engine};
use std::time::Duration;
use tridiag_core::residual::l2_residual;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

/// Devices per node, fixed across the sweep (the ISSUE's 4×8 target).
const DEVICES_PER_NODE: usize = 8;

/// The 4-node scaling point the gate reads.
const GATE_NODES: usize = 4;

/// Sticky node-kill tick for the failover cell (mid-stream).
const KILL_AT: u64 = 4_000_000;

/// Partition window for the heal cell.
const PART_FROM: u64 = 3_000_000;
const PART_UNTIL: u64 = 9_000_000;

/// Scaling-stream size classes with per-cycle batch weights. The four
/// pow2 classes each hash to a distinct home node on the
/// `SCALING_VNODES` ring; the weights equalize each node's measured
/// per-cycle GPU time under the pinned engine (bigger systems cost more
/// per batch, so they arrive less often).
const SCALING_CLASSES: [(usize, usize); 4] = [(128, 10), (256, 6), (1024, 2), (2048, 1)];

/// Ring layout under which `SCALING_CLASSES` spread one-per-node across
/// 4 nodes (checked by `scaling_classes_spread_one_per_node`).
const SCALING_VNODES: usize = 48;

/// Requests per scaling cycle (19 batches of 8).
const CYCLE_REQUESTS: usize = 152;

/// Engine pinned for the scaling stream: the global-memory CR path runs
/// every class on the GPU (shared-memory kernels cap out at n = 512 for
/// f32, and the autotune tournament would demote the rest to the CPU,
/// leaving nothing for the makespan to measure).
fn scaling_pin() -> Engine {
    Engine::Gpu(GpuAlgorithm::CrGlobalOnly)
}

/// One cycle of batch sizes, interleaved by weighted round-robin so a
/// node's batches spread over the stream instead of clumping.
fn batch_cycle() -> Vec<usize> {
    let total: usize = SCALING_CLASSES.iter().map(|&(_, w)| w).sum();
    let mut err = [0isize; SCALING_CLASSES.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        for (slot, &(_, w)) in SCALING_CLASSES.iter().enumerate() {
            err[slot] += w as isize;
        }
        let k = (0..SCALING_CLASSES.len()).max_by_key(|&slot| err[slot]).expect("non-empty");
        err[k] -= total as isize;
        out.push(SCALING_CLASSES[k].0);
    }
    out
}

fn scaling_workload(cycles: usize) -> ClusterWorkload {
    // Each class arrives in runs of the flush threshold (8), so buckets
    // fill and dispatch as real GPU batches instead of lingering out as
    // singletons.
    let sizes: Vec<usize> =
        batch_cycle().into_iter().flat_map(|n| std::iter::repeat_n(n, 8)).collect();
    debug_assert_eq!(sizes.len(), CYCLE_REQUESTS);
    ClusterWorkload {
        seed: 20100109,
        requests: cycles * CYCLE_REQUESTS,
        sizes,
        interarrival: Duration::from_micros(25),
    }
}

/// The failover cells' offered load: six size classes in batch-sized
/// runs (engine choice is irrelevant there — the gates are about loss,
/// routing, and breaker isolation). Classes 48 and 384 home on node 2
/// under the default ring, so killing or partitioning node 2 forces
/// real re-routes.
fn failover_workload(requests: usize) -> ClusterWorkload {
    let sizes = [64usize, 48, 96, 80, 384, 224]
        .into_iter()
        .flat_map(|n| std::iter::repeat_n(n, 8))
        .collect();
    ClusterWorkload { seed: 20100109, requests, sizes, interarrival: Duration::from_micros(25) }
}

/// Max per-device simulated busy time across every node — the cluster
/// makespan (critical path of the fleet).
fn cluster_makespan_ms(cluster: &cluster::Cluster) -> f64 {
    (0..cluster.len())
        .flat_map(|i| cluster.node(i).pool.devices().iter().map(|d| d.busy_ms()))
        .fold(0.0f64, f64::max)
        .max(1e-12)
}

/// Sum of per-device busy time — the serial work.
fn cluster_work_ms(cluster: &cluster::Cluster) -> f64 {
    (0..cluster.len())
        .flat_map(|i| cluster.node(i).pool.devices().iter().map(|d| d.busy_ms()))
        .sum()
}

/// Outcome of one scaling cell.
struct ScalingCell {
    nodes: usize,
    completed: u64,
    wrong: u64,
    makespan_ms: f64,
    work_ms: f64,
    throughput: f64,
}

fn drive_scaling(nodes: usize, cycles: usize) -> ScalingCell {
    let mut cfg = ClusterConfig::new(nodes, DEVICES_PER_NODE);
    cfg.vnodes = SCALING_VNODES;
    let mut cluster = cfg.build();
    let svc = ClusterServiceConfig { pin_engine: Some(scaling_pin()), ..Default::default() };
    let stats = run_cluster_service(&mut cluster, &svc, &scaling_workload(cycles));
    let makespan_ms = cluster_makespan_ms(&cluster);
    ScalingCell {
        nodes,
        completed: stats.completed,
        wrong: stats.wrong,
        makespan_ms,
        work_ms: cluster_work_ms(&cluster),
        throughput: stats.completed as f64 / makespan_ms,
    }
}

/// Outcome of the node-kill cell.
struct KillOutcome {
    offered: u64,
    completed: u64,
    wrong: u64,
    rerouted: u64,
    rpc_timeouts: u64,
    dead_served_after_kill: bool,
    dead_isolated: bool,
    survivors_closed: bool,
    availability: f64,
}

impl KillOutcome {
    fn passes(&self) -> bool {
        self.completed == self.offered
            && self.wrong == 0
            && self.rerouted > 0
            && !self.dead_served_after_kill
            && self.dead_isolated
            && self.survivors_closed
    }
}

fn drive_kill(requests: usize) -> KillOutcome {
    const DEAD: usize = 2;
    let mut cfg = ClusterConfig::new(GATE_NODES, DEVICES_PER_NODE);
    cfg.net_fault = NetFaultConfig {
        crashes: vec![CrashWindow { node: DEAD, down_from: KILL_AT, up_at: None }],
        ..NetFaultConfig::quiet(0)
    };
    let mut cluster = cfg.build();
    let svc = ClusterServiceConfig::default();
    let stats = run_cluster_service(&mut cluster, &svc, &failover_workload(requests));
    let coordinator = svc.coordinator;
    let survivors_closed = (0..GATE_NODES).filter(|&j| j != DEAD && j != coordinator).all(|j| {
        cluster.node(coordinator).peer_breakers.state(&node_key(j)) != BreakerState::Open
            && cluster.gossip().view(coordinator, j) == PeerState::Alive
    });
    KillOutcome {
        offered: stats.offered,
        completed: stats.completed,
        wrong: stats.wrong,
        rerouted: stats.rerouted,
        rpc_timeouts: stats.rpc_timeouts,
        dead_served_after_kill: stats
            .batch_log
            .iter()
            .any(|&(node, at, _)| node == DEAD && at >= KILL_AT),
        // The breaker trips Open at the kill and must never re-Close; by
        // run end the cooldown may have lapsed it to HalfOpen (probing),
        // so the gate is "not Closed" plus the gossip verdict Dead.
        dead_isolated: cluster.node(coordinator).peer_breakers.state(&node_key(DEAD))
            != BreakerState::Closed
            && cluster.gossip().view(coordinator, DEAD) == PeerState::Dead,
        survivors_closed,
        availability: stats.completed as f64 / stats.offered.max(1) as f64,
    }
}

/// Outcome of the partition-heal cell.
struct HealOutcome {
    offered: u64,
    completed: u64,
    wrong: u64,
    rerouted: u64,
    served_before: bool,
    served_after_heal: bool,
    view_healed: bool,
    availability: f64,
}

impl HealOutcome {
    fn passes(&self) -> bool {
        self.completed == self.offered
            && self.wrong == 0
            && self.rerouted > 0
            && self.served_before
            && self.served_after_heal
            && self.view_healed
    }
}

fn drive_heal(requests: usize) -> HealOutcome {
    const FAR: usize = 2;
    let mut cfg = ClusterConfig::new(GATE_NODES, DEVICES_PER_NODE);
    // Breaker cooldown tuned to the gossip cadence: the peer breaker
    // trips when gossip declares FAR dead (~5 ms in), and the first
    // delivered ping after the 9 ms heal must be able to probe it closed
    // while the stream still has traffic left to send back home.
    cfg.breaker = BreakerConfig { cooldown: Duration::from_millis(2), ..BreakerConfig::default() };
    // Asymmetric: only coordinator→FAR is blocked; FAR stays up and keeps
    // answering everyone else.
    cfg.net_fault = NetFaultConfig {
        blocked: vec![BlockedWindow { src: 0, dst: FAR, from: PART_FROM, until: Some(PART_UNTIL) }],
        ..NetFaultConfig::quiet(0)
    };
    let mut cluster = cfg.build();
    let svc = ClusterServiceConfig::default();
    let stats = run_cluster_service(&mut cluster, &svc, &failover_workload(requests));
    HealOutcome {
        offered: stats.offered,
        completed: stats.completed,
        wrong: stats.wrong,
        rerouted: stats.rerouted,
        served_before: stats.batch_log.iter().any(|&(node, at, _)| node == FAR && at < PART_FROM),
        served_after_heal: stats
            .batch_log
            .iter()
            .any(|&(node, at, _)| node == FAR && at > PART_UNTIL),
        view_healed: cluster.gossip().view(0, FAR) == PeerState::Alive
            && cluster.node(0).peer_breakers.state(&node_key(FAR)) != BreakerState::Open,
        availability: stats.completed as f64 / stats.offered.max(1) as f64,
    }
}

/// Outcome of one two-level solve verification row.
struct SolveCell {
    nodes: usize,
    n: usize,
    verified: bool,
    max_rel_err: f64,
    residual: f64,
    chunks: usize,
    interface_rows: usize,
    local_ms: f64,
    interface_ms: f64,
    net_ms: f64,
}

fn drive_solve(nodes: usize, n: usize, elementwise: bool) -> SolveCell {
    let sys: TridiagonalSystem<f64> =
        Generator::new(20100109 ^ n as u64).system(Workload::DiagonallyDominant, n);
    let cluster = ClusterConfig::new(nodes, DEVICES_PER_NODE).build();
    let report = solve_partitioned_cluster(&cluster, 0, &sys, 8).expect("cluster solve");
    let residual = l2_residual(&sys, &report.x).expect("finite solution");
    let (max_rel_err, elementwise_ok) = if elementwise {
        let x_ref = cpu_solvers::gep::solve(&sys).expect("GEP reference");
        let scale = x_ref.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let max_rel =
            report.x.iter().zip(&x_ref).map(|(x, r)| (x - r).abs() / scale).fold(0.0f64, f64::max);
        (max_rel, max_rel < 1e-9)
    } else {
        (f64::NAN, true)
    };
    SolveCell {
        nodes,
        n,
        verified: elementwise_ok && residual < 1e-6,
        max_rel_err,
        residual,
        chunks: report.chunks_total,
        interface_rows: report.interface_rows,
        local_ms: report.timing.local_ms,
        interface_ms: report.timing.interface_ms,
        net_ms: report.timing.net_ms,
    }
}

fn json_scaling(cell: &ScalingCell, speedup: f64) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"cluster-scaling\",\"nodes\":{},\"devices\":{},",
            "\"completed\":{},\"wrong\":{},\"makespan_ms\":{:.3},\"work_ms\":{:.3},",
            "\"throughput_per_ms\":{:.3},\"speedup\":{:.2}}}"
        ),
        cell.nodes,
        cell.nodes * DEVICES_PER_NODE,
        cell.completed,
        cell.wrong,
        cell.makespan_ms,
        cell.work_ms,
        cell.throughput,
        speedup,
    )
}

fn json_kill(out: &KillOutcome) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"cluster-kill\",\"offered\":{},\"completed\":{},",
            "\"wrong\":{},\"rerouted\":{},\"rpc_timeouts\":{},\"availability\":{:.4},",
            "\"dead_isolated\":{},\"survivors_closed\":{}}}"
        ),
        out.offered,
        out.completed,
        out.wrong,
        out.rerouted,
        out.rpc_timeouts,
        out.availability,
        out.dead_isolated,
        out.survivors_closed,
    )
}

fn json_heal(out: &HealOutcome) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"cluster-heal\",\"offered\":{},\"completed\":{},",
            "\"wrong\":{},\"rerouted\":{},\"availability\":{:.4},",
            "\"served_before\":{},\"served_after_heal\":{},\"view_healed\":{}}}"
        ),
        out.offered,
        out.completed,
        out.wrong,
        out.rerouted,
        out.availability,
        out.served_before,
        out.served_after_heal,
        out.view_healed,
    )
}

fn json_solve(cell: &SolveCell) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"cluster-solve\",\"nodes\":{},\"n\":{},\"verified\":{},",
            "\"rel_err\":{},\"residual\":{:.3e},\"chunks\":{},\"interface_rows\":{},",
            "\"local_ms\":{:.4},\"interface_ms\":{:.4},\"net_ms\":{:.4}}}"
        ),
        cell.nodes,
        cell.n,
        cell.verified,
        if cell.max_rel_err.is_finite() {
            format!("{:.3e}", cell.max_rel_err)
        } else {
            "null".to_string()
        },
        cell.residual,
        cell.chunks,
        cell.interface_rows,
        cell.local_ms,
        cell.interface_ms,
        cell.net_ms,
    )
}

/// Checks measured numbers against `baselines/cluster.json`.
fn baseline_failures(
    gate_speedup: Option<f64>,
    gate_throughput: Option<f64>,
    kill: &KillOutcome,
    heal: &HealOutcome,
) -> Vec<String> {
    let baselines = match cli::baseline_path("cluster.json").map(std::fs::read_to_string) {
        Some(Ok(text)) => text,
        Some(Err(e)) => return vec![format!("baselines/cluster.json unreadable: {e}")],
        None => return vec!["baselines/cluster.json missing".to_string()],
    };
    let mut failures = Vec::new();
    match cli::json_object_with(&baselines, "name", "scaling-4node") {
        Some(row) => {
            if let (Some(min), Some(got)) = (cli::json_f64(row, "min_speedup"), gate_speedup) {
                if got < min {
                    failures.push(format!("scaling: 4-node speedup {got:.2} < baseline {min}"));
                }
            }
            if let (Some(min), Some(got)) =
                (cli::json_f64(row, "min_throughput_per_ms"), gate_throughput)
            {
                if got < min {
                    failures.push(format!(
                        "scaling: 4-node throughput {got:.2}/ms < baseline {min}/ms"
                    ));
                }
            }
        }
        None => failures.push("baselines/cluster.json lacks a scaling-4node row".to_string()),
    }
    match cli::json_object_with(&baselines, "name", "node-kill") {
        Some(row) => {
            if let Some(min) = cli::json_f64(row, "min_availability") {
                if kill.availability < min {
                    failures.push(format!(
                        "node-kill: availability {:.4} < baseline {min}",
                        kill.availability
                    ));
                }
            }
            if let Some(max) = cli::json_u64(row, "max_wrong") {
                if kill.wrong > max {
                    failures.push(format!("node-kill: wrong {} > baseline {max}", kill.wrong));
                }
            }
        }
        None => failures.push("baselines/cluster.json lacks a node-kill row".to_string()),
    }
    match cli::json_object_with(&baselines, "name", "partition-heal") {
        Some(row) => {
            if let Some(min) = cli::json_f64(row, "min_availability") {
                if heal.availability < min {
                    failures.push(format!(
                        "partition-heal: availability {:.4} < baseline {min}",
                        heal.availability
                    ));
                }
            }
            if let Some(max) = cli::json_u64(row, "max_wrong") {
                if heal.wrong > max {
                    failures.push(format!("partition-heal: wrong {} > baseline {max}", heal.wrong));
                }
            }
        }
        None => failures.push("baselines/cluster.json lacks a partition-heal row".to_string()),
    }
    failures
}

/// Runs the cluster sweep; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match cli::parse("cluster", args, &[], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let quick = parsed.quick;
    let requests = if quick { 512 } else { 1024 };
    let cycles = if quick { 8 } else { 16 };
    let node_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let mut failures = 0usize;
    let mut json = Vec::new();

    // 1. Scaling.
    let scaling_requests = cycles * CYCLE_REQUESTS;
    let mut scaling = Table::new(
        format!(
            "Cluster scaling: {scaling_requests} pinned cr-global requests over 4 size classes \
             (one home node each, cost-weighted arrivals), {DEVICES_PER_NODE} devices/node, \
             ring-sticky routing; throughput = completed / max per-device busy ms"
        ),
        &["nodes", "devices", "completed", "wrong", "makespan ms", "work ms", "req/ms", "speedup"],
    );
    let mut baseline: Option<f64> = None;
    let mut gate_speedup: Option<f64> = None;
    let mut gate_throughput: Option<f64> = None;
    for &nodes in node_counts {
        eprintln!("[cluster] scaling @ {nodes} node(s) ...");
        let cell = drive_scaling(nodes, cycles);
        let speedup = match baseline {
            None => {
                baseline = Some(cell.throughput);
                1.0
            }
            Some(base) => cell.throughput / base,
        };
        if nodes == GATE_NODES {
            gate_speedup = Some(speedup);
            gate_throughput = Some(cell.throughput);
        }
        if cell.wrong > 0 || cell.completed != scaling_requests as u64 {
            failures += 1;
        }
        scaling.row(vec![
            nodes.to_string(),
            (nodes * DEVICES_PER_NODE).to_string(),
            cell.completed.to_string(),
            cell.wrong.to_string(),
            format!("{:.3}", cell.makespan_ms),
            format!("{:.3}", cell.work_ms),
            format!("{:.2}", cell.throughput),
            format!("{speedup:.2}x"),
        ]);
        json.push(json_scaling(&cell, speedup));
    }
    scaling.note(format!(
        "gate (baseline): {GATE_NODES}-node speedup and throughput vs baselines/cluster.json — \
         measured {}",
        gate_speedup.map_or("n/a".to_string(), |s| format!("{s:.2}x")),
    ));
    println!("{scaling}");

    // 2. Node kill.
    eprintln!("[cluster] node kill (node 2 dies sticky at 4 ms) ...");
    let kill = drive_kill(requests);
    let kill_ok = kill.passes();
    failures += usize::from(!kill_ok);
    let mut ktable = Table::new(
        format!(
            "Node-kill failover: {GATE_NODES}x{DEVICES_PER_NODE}, node 2 dies sticky mid-stream"
        ),
        &["offered", "completed", "wrong", "rerouted", "rpc timeouts", "breakers", "gate"],
    );
    ktable.row(vec![
        kill.offered.to_string(),
        kill.completed.to_string(),
        kill.wrong.to_string(),
        kill.rerouted.to_string(),
        kill.rpc_timeouts.to_string(),
        format!(
            "node2 {}, others {}",
            if kill.dead_isolated { "tripped" } else { "NOT tripped" },
            if kill.survivors_closed { "closed" } else { "NOT closed" }
        ),
        if kill_ok { "pass".into() } else { "FAIL".into() },
    ]);
    ktable.note("gate: zero loss, zero wrong, backlog drains to survivors, only node 2 breaks");
    println!("{ktable}");
    json.push(json_kill(&kill));

    // 3. Partition heal.
    eprintln!("[cluster] partition heal (0->2 blocked 3-9 ms) ...");
    let heal = drive_heal(requests.max(600));
    let heal_ok = heal.passes();
    failures += usize::from(!heal_ok);
    let mut htable = Table::new(
        "Partition-heal failover: coordinator loses 0->2 for 6 ms; gossip detects, ring \
         re-routes, heal restores",
        &["offered", "completed", "wrong", "rerouted", "before", "after heal", "view", "gate"],
    );
    htable.row(vec![
        heal.offered.to_string(),
        heal.completed.to_string(),
        heal.wrong.to_string(),
        heal.rerouted.to_string(),
        heal.served_before.to_string(),
        heal.served_after_heal.to_string(),
        if heal.view_healed { "alive".into() } else { "NOT alive".to_string() },
        if heal_ok { "pass".into() } else { "FAIL".into() },
    ]);
    htable
        .note("gate: zero loss, zero wrong, re-route during the window, node 2 serves again after");
    println!("{htable}");
    json.push(json_heal(&heal));

    // 4. Two-level solve verification.
    let mut sizes: Vec<(usize, bool)> = vec![(1 << 18, true)];
    if !quick {
        sizes.push((1 << 21, false));
    }
    let mut stable = Table::new(
        "Two-level cluster solves (node-local modified Thomas -> cluster PCR interface -> \
         fan-out back-substitution), verified against CPU GEP",
        &[
            "nodes",
            "n",
            "chunks",
            "iface rows",
            "local ms",
            "iface ms",
            "net ms",
            "residual",
            "gate",
        ],
    );
    for &(n, elementwise) in &sizes {
        for &nodes in node_counts {
            eprintln!("[cluster] solve n=2^{} @ {nodes} node(s) ...", n.trailing_zeros());
            let cell = drive_solve(nodes, n, elementwise);
            failures += usize::from(!cell.verified);
            stable.row(vec![
                nodes.to_string(),
                format!("2^{}", n.trailing_zeros()),
                cell.chunks.to_string(),
                cell.interface_rows.to_string(),
                format!("{:.4}", cell.local_ms),
                format!("{:.4}", cell.interface_ms),
                format!("{:.4}", cell.net_ms),
                format!("{:.2e}", cell.residual),
                if cell.verified { "pass".into() } else { "FAIL".into() },
            ]);
            json.push(json_solve(&cell));
        }
    }
    stable.note("gate: element-wise rel err < 1e-9 vs GEP (2^18) and l2 residual < 1e-6");
    println!("{stable}");

    if parsed.json {
        for line in &json {
            println!("{line}");
        }
    }

    let bench =
        format!("{{\"bench\":\"cluster\",\"quick\":{quick},\"rows\":[{}]}}\n", json.join(","));
    match cli::write_bench("BENCH_cluster.json", &bench) {
        Ok(path) => eprintln!("[cluster] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[cluster] FAIL: writing BENCH_cluster.json: {e}");
            failures += 1;
        }
    }

    for clause in baseline_failures(gate_speedup, gate_throughput, &kill, &heal) {
        eprintln!("[cluster] FAIL: {clause}");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[cluster] FAIL: {failures} gate(s) broke");
        EXIT_GATE_FAIL
    } else {
        println!(
            "[cluster] PASS: {GATE_NODES}-node scaling held its floors, node-kill and \
             partition-heal lossless, all two-level solves verified"
        );
        EXIT_PASS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_cell_passes_its_gate() {
        let out = drive_kill(512);
        assert!(
            out.passes(),
            "completed={}/{} wrong={} rerouted={} open={} closed={}",
            out.completed,
            out.offered,
            out.wrong,
            out.rerouted,
            out.dead_isolated,
            out.survivors_closed
        );
    }

    #[test]
    fn heal_cell_passes_its_gate() {
        let out = drive_heal(600);
        assert!(
            out.passes(),
            "completed={}/{} wrong={} rerouted={} before={} after={} view={}",
            out.completed,
            out.offered,
            out.wrong,
            out.rerouted,
            out.served_before,
            out.served_after_heal,
            out.view_healed
        );
    }

    #[test]
    fn solve_cell_verifies_at_2_16() {
        let cell = drive_solve(4, 1 << 16, true);
        assert!(cell.verified, "rel err {:.3e} residual {:.3e}", cell.max_rel_err, cell.residual);
        assert_eq!(cell.interface_rows, 2 * cell.chunks);
    }

    #[test]
    fn scaling_classes_spread_one_per_node() {
        use cluster::HashRing;
        let ring = HashRing::new(GATE_NODES, SCALING_VNODES);
        let homes: Vec<usize> =
            SCALING_CLASSES.iter().map(|&(n, _)| ring.home(HashRing::key(n, 4))).collect();
        let mut sorted = homes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "classes must home one per node, got {homes:?}");
    }

    #[test]
    fn batch_cycle_matches_weights() {
        let cycle = batch_cycle();
        assert_eq!(cycle.len() * 8, CYCLE_REQUESTS);
        for (n, w) in SCALING_CLASSES {
            assert_eq!(cycle.iter().filter(|&&c| c == n).count(), w, "class {n}");
        }
        // Interleaved: the two largest classes never open the cycle
        // back-to-back (weighted round-robin spreads them).
        assert_eq!(cycle[0], 128);
    }

    #[test]
    fn json_rows_are_balanced() {
        let cell = drive_scaling(1, 1);
        let line = json_scaling(&cell, 1.0);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(run(&["--bogus".to_string()]), 2);
    }
}
