//! The `factor` subcommand: cold-vs-warm sweep over the factorization
//! cache and reports speedup, hit rate, and correctness.
//!
//! ```text
//! cargo run --release -p bench -- factor            # full sweep (1200 req)
//! cargo run --release -p bench -- factor --quick    # CI gate subset
//! ```
//!
//! Two identical open-loop streams of same-matrix RHS flushes run through
//! [`serve_flush`] on the simulated clock: the **cold** mode serves every
//! flush with full elimination (factor cache off), the **warm** mode
//! enables the cache so repeat-matrix flushes take the back-substitution
//! fast path. Both modes pin the CPU cost model, so the device-µs ratio
//! is the flop-count ratio itself — `O(8n)` elimination vs `O(5n)`
//! substitution — and the gate is deterministic. The gate fails (exit 1)
//! iff the warm speedup drops below the checked-in floor, the hit rate
//! collapses, or any answer in either mode escapes the verify bound.

use crate::report::Table;
use factor_cache::SharedFactorCache;
use gpu_sim::{Clock, Launcher};
use solver_service::{
    make_request_keyed, serve_flush, CircuitBreakers, CpuEngine, DeviceCtx, DispatchConfig, Engine,
    FlushReason, FlushedBatch, PlanCache, ServiceMetrics, Ticket,
};
use std::sync::Arc;
use tridiag_core::{Generator, MatrixKey, TridiagonalSystem, Workload};

/// System sizes the stream mixes — one pooled matrix per size.
const SIZES: [usize; 3] = [64, 128, 256];

/// RHS per flush (every flush is one matrix × `BATCH` right-hand sides).
const BATCH: usize = 8;

/// A response is "wrong" when its residual escapes this bound (the same
/// bound the chaos gate and the service property tests use for f32).
const RESIDUAL_BOUND: f64 = 1e-2;

/// What one mode (cold or warm) of the sweep produced.
struct ModeOutcome {
    completed: u64,
    wrong: u64,
    max_residual: f64,
    /// Modeled device time per served system, microseconds.
    device_us_per_system: f64,
    factor_hits: u64,
    factor_misses: u64,
    factor_evictions: u64,
    warm_flushes: u64,
    quiet: bool,
}

impl ModeOutcome {
    fn hit_rate(&self) -> f64 {
        let lookups = self.factor_hits + self.factor_misses;
        if lookups == 0 {
            0.0
        } else {
            self.factor_hits as f64 / lookups as f64
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives one mode: `total` requests in `BATCH`-sized same-matrix flushes
/// cycling over the pooled matrices, on the simulated clock.
fn drive(seed: u64, total: usize, warm: bool) -> ModeOutcome {
    let clock = Clock::sim();
    let launcher = Launcher::gtx280();
    let plans = PlanCache::new();
    let breakers = CircuitBreakers::default();
    let metrics = ServiceMetrics::new();
    let cache = warm.then(|| Arc::new(SharedFactorCache::new(16)));
    let cfg = DispatchConfig {
        // Pin the cold path to the CPU Thomas cost model and keep warm
        // flushes on the CPU sweep, so the cold/warm device-µs ratio is
        // the deterministic flop-count ratio (25 vs 16 ns/row in the sim
        // model), independent of flush composition.
        pin_engine: Some(Engine::Cpu(CpuEngine::Thomas)),
        min_gpu_batch: usize::MAX,
        sanitize_first_flush: false,
        clock: clock.clone(),
        factor_cache: cache,
        ..DispatchConfig::default()
    };

    let mut generator = Generator::new(seed);
    let templates: Vec<(TridiagonalSystem<f32>, MatrixKey)> = SIZES
        .iter()
        .map(|&n| {
            let system = generator.system(Workload::DiagonallyDominant, n);
            let key = MatrixKey::of_system(&system);
            (system, key)
        })
        .collect();

    let flushes = (total / BATCH).max(1);
    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(flushes * BATCH);
    let mut rhs_rng = seed ^ 0xFAC7_0001;
    let mut id = 0u64;
    for f in 0..flushes {
        let (template, key) = &templates[f % templates.len()];
        let n = template.n();
        let mut requests = Vec::with_capacity(BATCH);
        for _ in 0..BATCH {
            let mut system = template.clone();
            for v in system.d.iter_mut() {
                *v = (splitmix64(&mut rhs_rng) % 19) as f32 - 9.0;
            }
            let (req, ticket) = make_request_keyed(id, system, 0, None, Some(*key));
            id += 1;
            requests.push(req);
            tickets.push(ticket);
        }
        serve_flush(
            DeviceCtx::solo(&launcher),
            &plans,
            &breakers,
            &metrics,
            &cfg,
            FlushedBatch { n, requests, reason: FlushReason::Full },
        );
    }

    let mut wrong = 0u64;
    let mut max_residual = 0.0f64;
    for ticket in tickets {
        let response = ticket.try_take().expect("synchronous serve fulfils every ticket");
        if !response.residual.is_finite() || response.residual >= RESIDUAL_BOUND {
            wrong += 1;
        }
        max_residual = max_residual.max(response.residual);
    }

    let snap = metrics.snapshot(0, plans.tunes(), plans.hits());
    let total_engine_ms: f64 = snap.engine_ms.values().sum();
    ModeOutcome {
        completed: snap.completed,
        wrong,
        max_residual,
        device_us_per_system: total_engine_ms * 1e3 / snap.completed.max(1) as f64,
        factor_hits: snap.factor_hits,
        factor_misses: snap.factor_misses,
        factor_evictions: snap.factor_evictions,
        warm_flushes: snap.warm_flushes,
        quiet: snap.degradation.is_quiet(),
    }
}

fn json_row(mode: &str, out: &ModeOutcome) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"factor\",\"mode\":\"{}\",",
            "\"completed\":{},\"wrong\":{},\"max_residual\":{:.3e},",
            "\"device_us_per_system\":{:.4},",
            "\"factor_hits\":{},\"factor_misses\":{},\"factor_evictions\":{},",
            "\"warm_flushes\":{},\"hit_rate\":{:.4}}}"
        ),
        mode,
        out.completed,
        out.wrong,
        out.max_residual,
        out.device_us_per_system,
        out.factor_hits,
        out.factor_misses,
        out.factor_evictions,
        out.warm_flushes,
        out.hit_rate(),
    )
}

/// Checks the sweep against `baselines/factor.json`.
fn baseline_failures(speedup: f64, hit_rate: f64, wrong: u64) -> Vec<String> {
    let baselines = match crate::cli::baseline_path("factor.json").map(std::fs::read_to_string) {
        Some(Ok(text)) => text,
        Some(Err(e)) => return vec![format!("baselines/factor.json unreadable: {e}")],
        None => return vec!["baselines/factor.json missing".to_string()],
    };
    let mut failures = Vec::new();
    match crate::cli::json_object_with(&baselines, "name", "factor-sweep") {
        Some(row) => {
            if let Some(min) = crate::cli::json_f64(row, "min_speedup") {
                if speedup < min {
                    failures.push(format!("factor: warm speedup {speedup:.4} < baseline {min}"));
                }
            }
            if let Some(min) = crate::cli::json_f64(row, "min_hit_rate") {
                if hit_rate < min {
                    failures.push(format!("factor: hit rate {hit_rate:.4} < baseline {min}"));
                }
            }
            if let Some(max) = crate::cli::json_u64(row, "max_wrong") {
                if wrong > max {
                    failures.push(format!("factor: wrong answers {wrong} > baseline {max}"));
                }
            }
        }
        None => failures.push("baselines/factor.json lacks a factor-sweep row".to_string()),
    }
    failures
}

/// Runs the cold-vs-warm factor sweep; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match crate::cli::parse("factor", args, &[], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let quick = parsed.quick;
    let total = if quick { 240 } else { 1200 };
    let seed = 20100109;

    eprintln!("[factor] cold sweep ({total} requests, cache off) ...");
    let cold = drive(seed, total, false);
    eprintln!("[factor] warm sweep ({total} requests, cache on) ...");
    let warm = drive(seed, total, true);

    let speedup = cold.device_us_per_system / warm.device_us_per_system.max(1e-12);
    let wrong = cold.wrong + warm.wrong;

    let mut table = Table::new(
        format!(
            "Factor cache: {total} same-matrix-pool requests/mode (n ∈ {SIZES:?}, \
             {BATCH} RHS/flush), cold elimination vs warm back-substitution"
        ),
        &[
            "mode",
            "served",
            "wrong",
            "max residual",
            "device µs/sys",
            "hits",
            "misses",
            "evict",
            "warm flushes",
        ],
    );
    for (mode, out) in [("cold", &cold), ("warm", &warm)] {
        table.row(vec![
            mode.to_string(),
            out.completed.to_string(),
            out.wrong.to_string(),
            format!("{:.2e}", out.max_residual),
            format!("{:.3}", out.device_us_per_system),
            out.factor_hits.to_string(),
            out.factor_misses.to_string(),
            out.factor_evictions.to_string(),
            out.warm_flushes.to_string(),
        ]);
    }
    table.note(format!(
        "warm speedup {speedup:.3}x device-µs/system, hit rate {:.1}%",
        warm.hit_rate() * 100.0
    ));
    table.note(format!(
        "gate: speedup/hit-rate floors from baselines/factor.json, wrong answers = 0 \
         (residual bound {RESIDUAL_BOUND:.0e})"
    ));
    println!("{table}");

    let json = vec![json_row("cold", &cold), json_row("warm", &warm)];
    if parsed.json {
        for line in &json {
            println!("{line}");
        }
    }

    let mut failures = 0usize;
    let bench = format!(
        "{{\"bench\":\"factor\",\"quick\":{quick},\"speedup\":{speedup:.4},\"rows\":[{}]}}\n",
        json.join(",")
    );
    match crate::cli::write_bench("BENCH_factor.json", &bench) {
        Ok(path) => eprintln!("[factor] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[factor] FAIL: writing BENCH_factor.json: {e}");
            failures += 1;
        }
    }

    // Structural sanity independent of the baseline floors: the cold mode
    // must never consult the cache, the warm mode must miss exactly once
    // per pooled matrix, and warm traffic must not register as
    // degradation.
    if cold.factor_hits + cold.factor_misses + cold.warm_flushes != 0 {
        eprintln!("[factor] FAIL: cold mode touched the factor cache");
        failures += 1;
    }
    if warm.factor_misses != SIZES.len() as u64 {
        eprintln!(
            "[factor] FAIL: warm mode missed {} times for {} pooled matrices",
            warm.factor_misses,
            SIZES.len()
        );
        failures += 1;
    }
    if !warm.quiet || !cold.quiet {
        eprintln!("[factor] FAIL: a fault-free sweep left degradation counters non-quiet");
        failures += 1;
    }

    for clause in baseline_failures(speedup, warm.hit_rate(), wrong) {
        eprintln!("[factor] FAIL: {clause}");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[factor] FAIL: {failures} clause(s) broke the factor gate");
        crate::cli::EXIT_GATE_FAIL
    } else {
        println!(
            "[factor] PASS: warm speedup {speedup:.3}x, hit rate {:.1}%, every answer verified",
            warm.hit_rate() * 100.0
        );
        crate::cli::EXIT_PASS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_mode_never_touches_the_cache_and_verifies_everything() {
        let out = drive(7, 48, false);
        assert_eq!(out.completed, 48);
        assert_eq!(out.wrong, 0);
        assert_eq!(out.factor_hits + out.factor_misses + out.warm_flushes, 0);
        assert!(out.quiet);
    }

    #[test]
    fn warm_mode_misses_once_per_matrix_then_hits() {
        let out = drive(7, 96, true);
        assert_eq!(out.completed, 96);
        assert_eq!(out.wrong, 0);
        assert_eq!(out.factor_misses, SIZES.len() as u64);
        assert!(out.factor_hits > out.factor_misses);
        assert_eq!(out.factor_evictions, 0);
        assert!(out.quiet, "warm traffic is not degradation");
    }

    #[test]
    fn warm_beats_cold_by_the_flop_ratio() {
        let cold = drive(7, 240, false);
        let warm = drive(7, 240, true);
        let speedup = cold.device_us_per_system / warm.device_us_per_system;
        // 25 ns/row elimination vs 16 ns/row substitution, diluted by one
        // cold miss-flush per pooled matrix.
        assert!(speedup >= 1.3, "speedup {speedup}");
        assert!(speedup <= 25.0 / 16.0 + 1e-9, "speedup {speedup} above the flop ratio");
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(run(&["--bogus".to_string()]), 2);
    }
}
