//! Ablations beyond the paper's figures, for the design choices DESIGN.md
//! calls out:
//!
//! 1. **Bank-conflict-free CR (even/odd separation)** vs plain CR and the
//!    hybrids — footnote 1 claims Göddeke & Strzodka's variant "achieves
//!    similar performance as our hybrid CR+PCR solver, at the cost of 50%
//!    more shared memory usage".
//! 2. **Global-memory-only CR** — §4 claims "roughly 3x performance
//!    degradation" for systems exceeding shared memory.
//! 3. **RD rescaling overhead** — §5.4 warns the overflow remedy
//!    "introduces a considerable amount of control overhead".
//! 4. **Occupancy** — §5.2 attributes the 512x512 efficiency dip to
//!    single-block residency.

use crate::report::{ms, Table};
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::dominant_batch;

/// Runs all ablations.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);

    // 1. Conflict-free CR vs hybrid.
    let mut t1 = Table::new(
        "Ablation 1 (footnote 1): bank-conflict-free CR vs hybrids, 512x512",
        &["solver", "kernel ms", "shared words/block", "max conflict"],
    );
    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrPcr { m: 256 },
        GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain },
    ] {
        let r = solve_batch(&cfg.launcher, alg, &batch).expect("solve");
        t1.row(vec![
            alg.name().to_string(),
            ms(r.timing.kernel_ms),
            r.stats.shared_words.to_string(),
            format!("{}x", r.stats.max_conflict_degree()),
        ]);
    }
    t1.note("footnote 1: the even/odd variant 'achieves similar performance as our hybrid CR+PCR solver, at the cost of 50% more shared memory usage'");

    // 2. Global-only CR.
    let mut t2 = Table::new(
        "Ablation 2 (§4): global-memory-only CR vs shared-memory CR",
        &["problem", "shared CR ms", "global-only CR ms", "slowdown"],
    );
    for (nn, cc) in [(256usize, 256usize), (512, 512)] {
        let b = dominant_batch::<f32>(cfg.seed, nn, cc);
        let shared = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &b).expect("solve");
        let global = solve_batch(&cfg.launcher, GpuAlgorithm::CrGlobalOnly, &b).expect("solve");
        t2.row(vec![
            format!("{nn}x{cc}"),
            ms(shared.timing.kernel_ms),
            ms(global.timing.kernel_ms),
            format!("{:.1}x", global.timing.kernel_ms / shared.timing.kernel_ms),
        ]);
    }
    // Oversized case: only the global path works.
    let big = dominant_batch::<f32>(cfg.seed, 2048, 64);
    let global_big = solve_batch(&cfg.launcher, GpuAlgorithm::CrGlobalOnly, &big).expect("solve");
    t2.row(vec![
        "2048x64".into(),
        "exceeds shared memory".into(),
        ms(global_big.timing.kernel_ms),
        "-".into(),
    ]);
    t2.note("paper: systems of more than 512 equations are supported 'at a cost of roughly 3x performance degradation by using global memory only'");

    // 3. RD rescaling overhead.
    let mut t3 = Table::new(
        "Ablation 3 (§5.4): cost of the RD overflow-rescaling remedy, 512x512",
        &["variant", "kernel ms", "ops/system", "overflows on dominant?"],
    );
    for mode in [RdMode::Plain, RdMode::Rescaled] {
        let r = solve_batch(&cfg.launcher, GpuAlgorithm::Rd(mode), &batch).expect("solve");
        t3.row(vec![
            GpuAlgorithm::Rd(mode).name().to_string(),
            ms(r.timing.kernel_ms),
            r.stats.total_ops().to_string(),
            if r.solutions.first_non_finite().is_some() { "yes" } else { "no" }.to_string(),
        ]);
    }
    t3.note("paper: 'this method introduces a considerable amount of control overhead'");

    // 4. Occupancy: per-unknown efficiency across the paper's problem
    // sizes — the improvement from quadrupling the problem decelerates at
    // 512x512, where only one block fits per SM.
    let mut t4 = Table::new(
        "Ablation 4 (§5.2): occupancy — per-unknown cost across problem sizes (CR)",
        &["problem", "blocks/SM", "kernel ms", "ns per unknown", "improvement vs prev size"],
    );
    let mut prev_per_unknown: Option<f64> = None;
    for (nn, cc) in cfg.problem_sizes() {
        let b = dominant_batch::<f32>(cfg.seed, nn, cc);
        let r = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &b).expect("solve");
        let per_unknown_ns = r.timing.kernel_ms * 1e6 / (nn * cc) as f64;
        let improvement = prev_per_unknown
            .map(|p| format!("{:.2}x", p / per_unknown_ns))
            .unwrap_or_else(|| "-".into());
        prev_per_unknown = Some(per_unknown_ns);
        t4.row(vec![
            format!("{nn}x{cc}"),
            r.timing.occupancy.blocks_per_sm.to_string(),
            ms(r.timing.kernel_ms),
            format!("{per_unknown_ns:.2}"),
            improvement,
        ]);
    }
    t4.note("paper: 'The relative performance on the 512x512 problem size is not as high as the 256x256 problem size because the system size is too large to fit multiple blocks running simultaneously on a GPU multiprocessor' — visible as the decelerating improvement in the last row");

    // 5. Fine-grained (this paper) vs coarse-grained (thread-per-system
    // Thomas, the later cuSPARSE gtsvStridedBatch approach): the crossover.
    let mut t5 = Table::new(
        "Ablation 5: fine-grained CR+PCR vs coarse-grained thread-per-system Thomas",
        &["problem", "CR+PCR ms", "Thomas/thread ms", "winner"],
    );
    for (nn, cc) in [(512usize, 64usize), (512, 512), (64, 2048), (64, 16384)] {
        let b = dominant_batch::<f32>(cfg.seed, nn, cc);
        let fine = solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m: (nn / 2).max(2) }, &b)
            .expect("solve")
            .timing
            .kernel_ms;
        let coarse = solve_batch(&cfg.launcher, GpuAlgorithm::ThomasPerThread, &b)
            .expect("solve")
            .timing
            .kernel_ms;
        t5.row(vec![
            format!("{nn}x{cc}"),
            ms(fine),
            ms(coarse),
            if fine < coarse { "fine-grained" } else { "coarse-grained" }.to_string(),
        ]);
    }
    t5.note("paper §3: coarse-grained methods 'map larger amounts of work per thread' and were set aside; the serial recurrence makes them latency-bound, so they only win once the batch is large enough to bury the dependence chain");

    // 6. Device sensitivity: do the paper's conclusions survive on a
    // different vector architecture? (its own claim: the tradeoff "will be
    // an issue on any vector architecture").
    let mut t6 = Table::new(
        "Ablation 6: solver ranking across device generations (512x512, kernel ms)",
        &["solver", "GTX 280 (16 banks, 16 KB)", "Fermi-class (32 banks, 48 KB)"],
    );
    let fermi = gpu_sim::Launcher {
        device: gpu_sim::DeviceConfig::fermi_like(),
        cost: cfg.launcher.cost.clone(),
        sanitize: gpu_sim::SanitizeOptions::default(),
        fault: None,
    };
    for alg in [
        GpuAlgorithm::CrPcr { m: 256 },
        GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain },
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::Cr,
    ] {
        let gtx = solve_batch(&cfg.launcher, alg, &batch).expect("solve").timing.kernel_ms;
        let frm = solve_batch(&fermi, alg, &batch).expect("solve").timing.kernel_ms;
        t6.row(vec![alg.name().to_string(), ms(gtx), ms(frm)]);
    }
    t6.note("the hybrid still wins on the Fermi-class device: more banks shrink CR's conflict degrees but the step-efficiency argument persists (paper §3)");
    t6.note("48 KB of shared memory also admits n = 1024 systems that the GT200 must push to the global-memory path");

    // 7. Mixed-precision iterative refinement (the Göddeke-Strzodka
    // reference's theme): f32 GPU solves, f64 accuracy.
    let mut t7 = Table::new(
        "Ablation 7: mixed-precision refinement (f32 kernels on f64 systems, 256x64)",
        &["refinement passes", "worst residual", "total simulated ms"],
    );
    let b64: tridiag_core::SystemBatch<f64> = tridiag_core::Generator::new(cfg.seed)
        .batch(tridiag_core::Workload::DiagonallyDominant, 256, 64)
        .expect("gen");
    for iters in [0usize, 1, 2, 3] {
        let r = gpu_solvers::solve_batch_refined(
            &cfg.launcher,
            GpuAlgorithm::CrPcr { m: 128 },
            &b64,
            iters,
        )
        .expect("refined solve");
        t7.row(vec![
            iters.to_string(),
            format!("{:.2e}", r.residual_history.last().unwrap()),
            ms(r.total_kernel_ms),
        ]);
    }
    t7.note("each pass multiplies the error by O(eps_f32 * kappa); two f32 passes reach f64-level residuals while only ever running the fast single-precision kernels the paper evaluates");

    // 8. PCR+pThomas (the later cuSPARSE-style hybrid) vs the paper's
    // CR+PCR, sweeping the serial subsystem size.
    let mut t8 = Table::new(
        "Ablation 8: PCR+pThomas split sweep vs the paper's hybrid (512x512, kernel ms)",
        &["solver", "kernel ms", "algorithmic steps"],
    );
    {
        use gpu_solvers::{PcrThomasKernel, SystemHandles};
        let reference =
            solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m: 256 }, &batch).expect("solve");
        for split in [4usize, 8, 16, 32, 64] {
            let mut gmem = gpu_sim::GlobalMem::new();
            let gm = SystemHandles::upload(&mut gmem, &batch);
            let kernel = PcrThomasKernel { n, split, gm };
            let r = cfg.launcher.launch(&kernel, count, &mut gmem).expect("launch");
            let steps = r.stats.steps.iter().filter(|s| !s.phase.is_straight_line()).count();
            t8.row(vec![
                format!("PCR+pThomas (split={split})"),
                ms(r.timing.kernel_ms),
                steps.to_string(),
            ]);
        }
        let steps = reference.stats.steps.iter().filter(|s| !s.phase.is_straight_line()).count();
        t8.row(vec![
            "CR+PCR (m=256)".to_string(),
            ms(reference.timing.kernel_ms),
            steps.to_string(),
        ]);
    }
    t8.note("the serial tail keeps the sweeps in registers and unit-stride across lanes; it trades the paper's bank-conflict problem for a long low-parallelism step — another point on the same work/step frontier");

    vec![t1, t2, t3, t4, t5, t6, t7, t8]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_odd_performs_near_the_hybrid() {
        // Footnote 1's claim, within a generous band.
        let cfg = ReproConfig::default();
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        let eo = solve_batch(&cfg.launcher, GpuAlgorithm::CrEvenOdd, &batch).unwrap();
        let hy = solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m: 256 }, &batch).unwrap();
        let cr = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &batch).unwrap();
        assert!(eo.timing.kernel_ms < cr.timing.kernel_ms, "even/odd must beat plain CR");
        let ratio = eo.timing.kernel_ms / hy.timing.kernel_ms;
        assert!((0.6..1.6).contains(&ratio), "even/odd vs hybrid ratio {ratio}");
    }

    #[test]
    fn global_only_is_a_few_times_slower() {
        let cfg = ReproConfig::default();
        let b = dominant_batch::<f32>(cfg.seed, 512, 512);
        let shared = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &b).unwrap();
        let global = solve_batch(&cfg.launcher, GpuAlgorithm::CrGlobalOnly, &b).unwrap();
        let slowdown = global.timing.kernel_ms / shared.timing.kernel_ms;
        assert!((1.5..6.0).contains(&slowdown), "slowdown {slowdown}");
    }

    #[test]
    fn rescaling_costs_time_but_prevents_overflow() {
        let cfg = ReproConfig::default();
        let b = dominant_batch::<f32>(cfg.seed, 512, 64);
        let plain = solve_batch(&cfg.launcher, GpuAlgorithm::Rd(RdMode::Plain), &b).unwrap();
        let rescaled = solve_batch(&cfg.launcher, GpuAlgorithm::Rd(RdMode::Rescaled), &b).unwrap();
        assert!(rescaled.timing.kernel_ms > plain.timing.kernel_ms);
        assert!(rescaled.stats.total_ops() > plain.stats.total_ops());
        assert!(plain.solutions.first_non_finite().is_some());
        assert_eq!(rescaled.solutions.first_non_finite(), None);
    }

    #[test]
    fn hybrid_still_wins_on_fermi_class_device() {
        // The paper's portability claim, checked mechanically.
        let cfg = ReproConfig::default();
        let batch = dominant_batch::<f32>(cfg.seed, 512, 512);
        let fermi = gpu_sim::Launcher {
            device: gpu_sim::DeviceConfig::fermi_like(),
            cost: cfg.launcher.cost.clone(),
            sanitize: gpu_sim::SanitizeOptions::default(),
            fault: None,
        };
        let hybrid =
            solve_batch(&fermi, GpuAlgorithm::CrPcr { m: 256 }, &batch).unwrap().timing.kernel_ms;
        let pcr = solve_batch(&fermi, GpuAlgorithm::Pcr, &batch).unwrap().timing.kernel_ms;
        let cr = solve_batch(&fermi, GpuAlgorithm::Cr, &batch).unwrap().timing.kernel_ms;
        assert!(hybrid < pcr, "hybrid {hybrid} vs pcr {pcr}");
        assert!(hybrid < cr, "hybrid {hybrid} vs cr {cr}");
        // Fermi's 48 KB admits n = 1024 where GT200 cannot.
        let big = dominant_batch::<f32>(cfg.seed, 1024, 64);
        assert!(solve_batch(&fermi, GpuAlgorithm::Pcr, &big).is_ok());
        assert!(solve_batch(&cfg.launcher, GpuAlgorithm::Pcr, &big).is_err());
    }

    #[test]
    fn crossover_between_fine_and_coarse_exists() {
        let cfg = ReproConfig::default();
        // Paper regime: fine-grained wins.
        let b = dominant_batch::<f32>(cfg.seed, 512, 512);
        let fine = solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m: 256 }, &b)
            .unwrap()
            .timing
            .kernel_ms;
        let coarse =
            solve_batch(&cfg.launcher, GpuAlgorithm::ThomasPerThread, &b).unwrap().timing.kernel_ms;
        assert!(fine < coarse);
        // Huge batch of small systems: coarse-grained wins.
        let b = dominant_batch::<f32>(cfg.seed, 64, 16384);
        let fine =
            solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m: 32 }, &b).unwrap().timing.kernel_ms;
        let coarse =
            solve_batch(&cfg.launcher, GpuAlgorithm::ThomasPerThread, &b).unwrap().timing.kernel_ms;
        assert!(coarse < fine);
    }

    #[test]
    fn per_unknown_improvement_decelerates_at_512() {
        // Paper §5.2: runtime grows far less than 4x per size step, but the
        // improvement shrinks at 512x512 where residency drops to 1 block.
        let cfg = ReproConfig::default();
        let mut per_unknown = Vec::new();
        let mut residency = Vec::new();
        for (nn, cc) in cfg.problem_sizes() {
            let b = dominant_batch::<f32>(cfg.seed, nn, cc);
            let r = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &b).unwrap();
            per_unknown.push(r.timing.kernel_ms * 1e6 / (nn * cc) as f64);
            residency.push(r.timing.occupancy.blocks_per_sm);
        }
        // Residency drops to one block at 512.
        assert_eq!(*residency.last().unwrap(), 1);
        assert!(residency[2] > 1);
        // Per-unknown cost improves monotonically...
        for w in per_unknown.windows(2) {
            assert!(w[1] < w[0], "{per_unknown:?}");
        }
        // ...but the 256->512 improvement is smaller than 128->256.
        let imp_mid = per_unknown[1] / per_unknown[2];
        let imp_last = per_unknown[2] / per_unknown[3];
        assert!(imp_last < imp_mid, "improvements {imp_mid:.2} then {imp_last:.2}");
    }
}
