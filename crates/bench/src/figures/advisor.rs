//! The automatic performance advisor (the paper's §6 future work #3)
//! applied to each of the five solvers at 512x512 — machine-generated
//! versions of the paper's §5.3 analyses.

use crate::report::Table;
use crate::ReproConfig;
use gpu_sim::{analyze, Advice};
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::dominant_batch;

/// Runs the advisor on one solver.
pub fn advise(cfg: &ReproConfig, alg: GpuAlgorithm) -> Advice {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let r = solve_batch(&cfg.launcher, alg, &batch).expect("solve");
    analyze(&cfg.launcher.device, &cfg.launcher.cost, &r.stats, &r.timing).expect("analyze")
}

/// Regenerates the advisor report for the five solvers.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::CrPcr { m: 256 },
        GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain },
    ] {
        let advice = advise(cfg, alg);
        let mut t = Table::new(
            format!(
                "Advisor: {} at 512x512 ({:.3} ms kernel) — prioritized optimizations",
                alg.name(),
                advice.kernel_ms
            ),
            &["rank", "factor", "est. saving (ms)", "share", "suggestion"],
        );
        for (i, f) in advice.findings.iter().enumerate() {
            t.row(vec![
                (i + 1).to_string(),
                f.category.label().to_string(),
                format!("{:.3}", f.estimated_saving_ms),
                format!("{:.0}%", 100.0 * f.saving_fraction),
                f.suggestion.chars().take(60).collect::<String>() + "...",
            ]);
        }
        if advice.findings.is_empty() {
            t.note("no significant single factor — the kernel is balanced");
        }
        tables.push(t);
    }
    tables[0].notes.push(
        "this tool is the paper's future-work item: counterfactual re-pricing of each \
         mechanism yields the 'prioritized tasks for optimizations' of §5.3.6"
            .into(),
    );
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Category;

    #[test]
    fn cr_top_finding_is_bank_conflicts() {
        // The advisor must rediscover §5.3.1's conclusion automatically.
        let cfg = ReproConfig::default();
        let advice = advise(&cfg, GpuAlgorithm::Cr);
        assert_eq!(advice.top().expect("findings").category, Category::BankConflicts);
        // And the estimated saving must be substantial (the paper's
        // conflict-free comparison saves ~45% of the kernel).
        assert!(advice.top().unwrap().saving_fraction > 0.25);
    }

    #[test]
    fn pcr_is_not_conflict_bound() {
        let cfg = ReproConfig::default();
        let advice = advise(&cfg, GpuAlgorithm::Pcr);
        assert!(advice.finding(Category::BankConflicts).is_none());
        // PCR's costs are work and divisions, plus per-step overhead.
        assert!(
            advice.finding(Category::StepOverhead).is_some()
                || advice.finding(Category::DivisionHeavy).is_some()
        );
    }

    #[test]
    fn cr_flags_warp_underutilization_but_hybrid_does_not() {
        let cfg = ReproConfig::default();
        let cr = advise(&cfg, GpuAlgorithm::Cr);
        assert!(cr.finding(Category::WarpUnderutilization).is_some());
        let hybrid = advise(&cfg, GpuAlgorithm::CrPcr { m: 256 });
        assert!(hybrid.finding(Category::WarpUnderutilization).is_none());
    }

    #[test]
    fn every_solver_gets_some_advice() {
        let cfg = ReproConfig::default();
        for alg in [GpuAlgorithm::Cr, GpuAlgorithm::Pcr, GpuAlgorithm::Rd(RdMode::Plain)] {
            let advice = advise(&cfg, alg);
            assert!(!advice.findings.is_empty(), "{}", alg.name());
        }
    }
}
