//! Figures 11 and 12: PCR time breakdown at 512x512 — per phase and per
//! resource.

use crate::figures::{phase_breakdown_table, resource_breakdown_table};
use crate::report::Table;
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use tridiag_core::dominant_batch;

/// Regenerates Figures 11 and 12.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let r = solve_batch(&cfg.launcher, GpuAlgorithm::Pcr, &batch).expect("solve");

    let mut fig11 = phase_breakdown_table(
        &format!("Figure 11: time breakdown of PCR, {n}x{count} (ms)"),
        &r.timing,
    );
    fig11.note("paper: global 0.106 (20%), fwd 8 steps 0.409 (76%, avg 0.051), solve-all-2-unknown 0.019 (4%), total 0.534");

    let mut fig12 = resource_breakdown_table(
        &format!("Figure 12: PCR resource breakdown, {n}x{count}"),
        &r.timing,
    );
    fig12.note("paper: global 0.106/20% @47.2 GB/s, shared 0.163/30% @883 GB/s, compute 0.265/50% @101.9 GFLOPS");
    fig12.note("the ~26x shared-bandwidth gap to CR combines the bank-conflict penalty and CR's sub-half-warp load/store utilization");

    vec![fig11, fig12]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(cfg: &ReproConfig, alg: GpuAlgorithm) -> gpu_sim::TimingReport {
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        solve_batch(&cfg.launcher, alg, &batch).unwrap().timing
    }

    #[test]
    fn pcr_takes_about_half_of_cr() {
        let cfg = ReproConfig::default();
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        let cr = timing(&cfg, GpuAlgorithm::Cr);
        let ratio = cr.kernel_ms / pcr.kernel_ms;
        assert!((1.5..2.5).contains(&ratio), "CR/PCR {ratio}");
    }

    #[test]
    fn pcr_shared_bandwidth_an_order_of_magnitude_above_cr() {
        // Paper: 883 GB/s vs 33 GB/s, "26 times the bandwidth achieved in
        // the CR case".
        let cfg = ReproConfig::default();
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        let cr = timing(&cfg, GpuAlgorithm::Cr);
        let factor = pcr.achieved_shared_gbps / cr.achieved_shared_gbps;
        assert!(factor > 10.0, "bandwidth factor {factor}");
        assert!((500.0..1200.0).contains(&pcr.achieved_shared_gbps));
    }

    #[test]
    fn pcr_compute_rate_far_above_cr() {
        // Paper: 101.9 vs 15.5 GFLOPS, thanks to full vector utilization.
        let cfg = ReproConfig::default();
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        let cr = timing(&cfg, GpuAlgorithm::Cr);
        assert!(pcr.gflops > 3.0 * cr.gflops, "{} vs {}", pcr.gflops, cr.gflops);
    }

    #[test]
    fn shared_fraction_is_small_for_pcr() {
        // Paper: only 30% of PCR's time is shared access (vs CR's 64%).
        let cfg = ReproConfig::default();
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        let frac = pcr.shared_ms / pcr.kernel_ms;
        assert!((0.15..0.45).contains(&frac), "shared fraction {frac}");
    }

    #[test]
    fn average_pcr_step_cheaper_than_average_cr_forward_step() {
        // Paper: "although PCR does more work during each forward reduction
        // step than CR, the average step time is less than that of CR ...
        // because PCR is free of bank conflicts".
        let cfg = ReproConfig::default();
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        let cr = timing(&cfg, GpuAlgorithm::Cr);
        let pcr_avg =
            pcr.steps_in_phase(gpu_sim::Phase::PcrReduction).map(|s| s.ms).sum::<f64>() / 8.0;
        let cr_avg =
            cr.steps_in_phase(gpu_sim::Phase::ForwardReduction).map(|s| s.ms).sum::<f64>() / 8.0;
        assert!(pcr_avg < cr_avg, "pcr {pcr_avg} vs cr {cr_avg}");
    }
}
