//! Figures 13 and 14: RD time breakdown at 512x512 — per phase and per
//! resource.

use crate::figures::{phase_breakdown_table, resource_breakdown_table};
use crate::report::Table;
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::dominant_batch;

/// Regenerates Figures 13 and 14.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let r = solve_batch(&cfg.launcher, GpuAlgorithm::Rd(RdMode::Plain), &batch).expect("solve");

    let mut fig13 = phase_breakdown_table(
        &format!("Figure 13: time breakdown of RD, {n}x{count} (ms)"),
        &r.timing,
    );
    fig13.note("paper: global+matrix setup 0.109 (18%), scan 9 steps 0.484 (79%, avg 0.054), solution evaluation 0.019 (3%), total 0.612");
    fig13.note("the solution on the dominant workload overflows in f32 (Figure 18) — timing is unaffected, the instruction stream is identical");

    let mut fig14 = resource_breakdown_table(
        &format!("Figure 14: RD resource breakdown, {n}x{count}"),
        &r.timing,
    );
    fig14.note("paper: global 0.109/18% @45.9 GB/s, shared 0.262/43% @1095 GB/s, compute 0.241/39% @186.7 GFLOPS");
    fig14.note("our scan issues 18 shared accesses per element-step vs the paper's 32nlog2n accounting, so the shared share is lower");

    vec![fig13, fig14]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(cfg: &ReproConfig, alg: GpuAlgorithm) -> gpu_sim::TimingReport {
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        solve_batch(&cfg.launcher, alg, &batch).unwrap().timing
    }

    #[test]
    fn rd_slightly_slower_than_pcr() {
        // Paper: "RD takes slightly more time than PCR ... RD has two more
        // steps than PCR".
        let cfg = ReproConfig::default();
        let rd = timing(&cfg, GpuAlgorithm::Rd(RdMode::Plain));
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        assert!(rd.kernel_ms > pcr.kernel_ms);
        assert!(rd.kernel_ms < 1.3 * pcr.kernel_ms, "{} vs {}", rd.kernel_ms, pcr.kernel_ms);
    }

    #[test]
    fn rd_compute_rate_highest_of_all() {
        // Paper: 186.7 GFLOPS — almost twice PCR's rate, because the scan
        // has no divisions.
        let cfg = ReproConfig::default();
        let rd = timing(&cfg, GpuAlgorithm::Rd(RdMode::Plain));
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        assert!(rd.gflops > pcr.gflops, "{} vs {}", rd.gflops, pcr.gflops);
    }

    #[test]
    fn rd_shared_time_exceeds_pcr() {
        // Paper: "The shared memory access time of RD is 1.6 times that of
        // PCR" (ours is milder because of the access-count difference).
        let cfg = ReproConfig::default();
        let rd = timing(&cfg, GpuAlgorithm::Rd(RdMode::Plain));
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        assert!(rd.shared_ms > pcr.shared_ms);
    }

    #[test]
    fn scan_dominates_rd_time() {
        // Paper: the 9 scan steps take 79% of the total.
        let cfg = ReproConfig::default();
        let rd = timing(&cfg, GpuAlgorithm::Rd(RdMode::Plain));
        let scan_ms = rd.phase_ms(gpu_sim::Phase::Scan);
        assert!(scan_ms / rd.kernel_ms > 0.5, "scan share {}", scan_ms / rd.kernel_ms);
    }
}
