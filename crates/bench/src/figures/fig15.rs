//! Figure 15: time breakdown of hybrid CR+PCR (m = 256) at 512x512.

use crate::figures::phase_breakdown_table;
use crate::report::Table;
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use tridiag_core::dominant_batch;

/// Regenerates Figure 15.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let r = solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m: 256 }, &batch).expect("solve");

    let mut t = phase_breakdown_table(
        &format!("Figure 15: time breakdown of CR+PCR (m=256), {n}x{count} (ms)"),
        &r.timing,
    );
    t.note("paper: global 0.104 (25%), CR fwd 0.060 (14%), copy 0.009 (2%), PCR fwd 7 steps 0.200 (47%, avg 0.029), PCR solve 0.023 (6%), CR bwd 0.026 (6%), total 0.422");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Phase;

    fn timing(cfg: &ReproConfig, alg: GpuAlgorithm) -> gpu_sim::TimingReport {
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        solve_batch(&cfg.launcher, alg, &batch).unwrap().timing
    }

    #[test]
    fn hybrid_beats_both_parents() {
        // The headline claim: CR+PCR outperforms CR (61% in the paper) and
        // PCR (21%).
        let cfg = ReproConfig::default();
        let hybrid = timing(&cfg, GpuAlgorithm::CrPcr { m: 256 });
        let cr = timing(&cfg, GpuAlgorithm::Cr);
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        assert!(hybrid.kernel_ms < pcr.kernel_ms);
        assert!(hybrid.kernel_ms < cr.kernel_ms * 0.6);
    }

    #[test]
    fn inner_pcr_steps_cost_about_half_of_full_pcr_steps() {
        // Paper: "the size of the remaining (intermediate) system is reduced
        // by half, and therefore takes almost half of the time per step".
        let cfg = ReproConfig::default();
        let hybrid = timing(&cfg, GpuAlgorithm::CrPcr { m: 256 });
        let pcr = timing(&cfg, GpuAlgorithm::Pcr);
        let inner_avg = hybrid.steps_in_phase(Phase::PcrReduction).map(|s| s.ms).sum::<f64>()
            / hybrid.steps_in_phase(Phase::PcrReduction).count() as f64;
        let full_avg = pcr.steps_in_phase(Phase::PcrReduction).map(|s| s.ms).sum::<f64>()
            / pcr.steps_in_phase(Phase::PcrReduction).count() as f64;
        let ratio = inner_avg / full_avg;
        assert!((0.4..0.85).contains(&ratio), "inner/full step ratio {ratio}");
    }

    #[test]
    fn copy_takes_little_time() {
        // Paper: "The copy takes little time".
        let cfg = ReproConfig::default();
        let hybrid = timing(&cfg, GpuAlgorithm::CrPcr { m: 256 });
        let copy = hybrid.phase_ms(Phase::CopyIntermediate);
        assert!(copy / hybrid.kernel_ms < 0.1, "copy share {}", copy / hybrid.kernel_ms);
    }

    #[test]
    fn only_mild_conflicts_remain() {
        let cfg = ReproConfig::default();
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        let r = solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m: 256 }, &batch).unwrap();
        assert!(r.stats.max_conflict_degree() <= 2);
    }
}
