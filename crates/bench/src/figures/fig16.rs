//! Figure 16: time breakdown of hybrid CR+RD (m = 128) at 512x512.

use crate::figures::phase_breakdown_table;
use crate::report::Table;
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::dominant_batch;

/// Regenerates Figure 16.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let r = solve_batch(&cfg.launcher, GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain }, &batch)
        .expect("solve");

    let mut t = phase_breakdown_table(
        &format!("Figure 16: time breakdown of CR+RD (m=128), {n}x{count} (ms)"),
        &r.timing,
    );
    t.note("paper: global 0.104 (21%), CR fwd 0.039 (8%), copy+setup 0.069 (14%), scan 7 steps 0.179 (37%, avg 0.026), eval 0.018 (4%), CR bwd 0.024+0.032 (12%), total 0.488");
    t.note("deviation: the paper prices its two CR forward steps at 0.039 ms total while its Figure 15 prices one identical step at 0.060 ms; our model prices them consistently (~0.12 ms), so our CR+RD lands nearer RD than 20% below it");
    t.note("the intermediate size is 128, not 256, 'due to the limit of shared memory size' — reproduced by the occupancy checker");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Phase;

    fn timing(cfg: &ReproConfig, alg: GpuAlgorithm) -> gpu_sim::TimingReport {
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        solve_batch(&cfg.launcher, alg, &batch).unwrap().timing
    }

    #[test]
    fn cr_rd_beats_rd_and_cr() {
        let cfg = ReproConfig::default();
        let hybrid = timing(&cfg, GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain });
        let rd = timing(&cfg, GpuAlgorithm::Rd(RdMode::Plain));
        let cr = timing(&cfg, GpuAlgorithm::Cr);
        assert!(hybrid.kernel_ms < rd.kernel_ms);
        assert!(hybrid.kernel_ms < cr.kernel_ms);
    }

    #[test]
    fn cr_rd_slightly_slower_than_cr_pcr() {
        // Paper: "The CR+RD solver is slightly slower than the CR+PCR
        // solver."
        let cfg = ReproConfig::default();
        let crrd = timing(&cfg, GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain });
        let crpcr = timing(&cfg, GpuAlgorithm::CrPcr { m: 256 });
        assert!(crrd.kernel_ms > crpcr.kernel_ms);
        assert!(crrd.kernel_ms < 1.5 * crpcr.kernel_ms);
    }

    #[test]
    fn inner_scan_steps_cheaper_than_full_rd_steps() {
        // Paper: "Since the intermediate system is smaller, the average time
        // per step is even more reduced."
        let cfg = ReproConfig::default();
        let hybrid = timing(&cfg, GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain });
        let rd = timing(&cfg, GpuAlgorithm::Rd(RdMode::Plain));
        let inner = hybrid.steps_in_phase(Phase::Scan).map(|s| s.ms).sum::<f64>()
            / hybrid.steps_in_phase(Phase::Scan).count() as f64;
        let full = rd.steps_in_phase(Phase::Scan).map(|s| s.ms).sum::<f64>()
            / rd.steps_in_phase(Phase::Scan).count() as f64;
        assert!(inner < full, "inner {inner} vs full {full}");
    }

    #[test]
    fn table_mentions_m128() {
        let cfg = ReproConfig::default();
        let t = run(&cfg);
        assert!(t[0].title.contains("m=128"));
    }
}
