//! Figure 17: hybrid solver timings as a function of the intermediate
//! (switch-point) system size, 512x512. Endpoints are the non-hybrid
//! solvers: m = 2 behaves like pure CR, m = 512 is pure PCR/RD.

use crate::report::{ms, Table};
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::{dominant_batch, TridiagError};

/// Sweep result: `(m, CR+PCR ms, CR+RD ms or None when it exceeds shared
/// memory)`.
pub fn measure(cfg: &ReproConfig) -> Vec<(usize, f64, Option<f64>)> {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let mut out = Vec::new();
    let mut m = 2usize;
    while m <= n {
        let crpcr = solve_batch(&cfg.launcher, GpuAlgorithm::CrPcr { m }, &batch)
            .expect("CR+PCR fits at all m")
            .timing
            .kernel_ms;
        let crrd =
            match solve_batch(&cfg.launcher, GpuAlgorithm::CrRd { m, mode: RdMode::Plain }, &batch)
            {
                Ok(r) => Some(r.timing.kernel_ms),
                Err(TridiagError::SharedMemExceeded { .. }) => None,
                Err(e) => panic!("unexpected error at m={m}: {e}"),
            };
        out.push((m, crpcr, crrd));
        m *= 2;
    }
    out
}

/// Regenerates Figure 17.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 17: hybrid timings vs intermediate system size, 512x512 (ms)",
        &["intermediate size m", "CR+PCR", "CR+RD"],
    );
    for (m, crpcr, crrd) in measure(cfg) {
        t.row(vec![
            m.to_string(),
            ms(crpcr),
            crrd.map(ms).unwrap_or_else(|| "exceeds shared memory".into()),
        ]);
    }
    t.note("paper: CR+PCR falls from ~1.07 ms (m=2, pure-CR behaviour) to 0.422 ms at m=256, rising to 0.534 at m=512 (pure PCR)");
    t.note("the best switch point (256) is far larger than the warp size (32): switching early also avoids bank conflicts and step overhead, not just idle lanes");
    t.note("CR+RD's copy+scan arrays exceed shared memory at m=256 (its best feasible switch point is 128, as in the paper); m=512 is pure RD, no copy");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_powers_of_two() {
        let cfg = ReproConfig::default();
        let sweep = measure(&cfg);
        let ms: Vec<usize> = sweep.iter().map(|(m, _, _)| *m).collect();
        assert_eq!(ms, vec![2, 4, 8, 16, 32, 64, 128, 256, 512]);
    }

    #[test]
    fn cr_pcr_minimum_is_at_256() {
        // Paper: "for size-512 systems, the hybrid solver performs best with
        // size-256 intermediate systems".
        let cfg = ReproConfig::default();
        let sweep = measure(&cfg);
        let (best_m, _, _) = sweep
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .copied()
            .map(|(m, v, _)| (m, v, 0))
            .unwrap();
        assert_eq!(best_m, 256);
    }

    #[test]
    fn curve_is_monotone_down_to_the_minimum_then_up() {
        let cfg = ReproConfig::default();
        let sweep = measure(&cfg);
        let times: Vec<f64> = sweep.iter().map(|(_, v, _)| *v).collect();
        for i in 0..times.len() - 2 {
            assert!(times[i + 1] < times[i], "CR+PCR must fall until m=256 (i={i})");
        }
        // Endpoint m=512 (pure PCR) is worse than m=256.
        assert!(times[times.len() - 1] > times[times.len() - 2]);
    }

    #[test]
    fn cr_rd_is_infeasible_only_at_m256() {
        let cfg = ReproConfig::default();
        let sweep = measure(&cfg);
        for (m, _, crrd) in &sweep {
            if *m == 256 {
                assert!(crrd.is_none(), "m=256 must exceed shared memory");
            } else {
                assert!(crrd.is_some(), "m={m} must fit");
            }
        }
    }

    #[test]
    fn cr_rd_best_feasible_is_128() {
        let cfg = ReproConfig::default();
        let sweep = measure(&cfg);
        let (best_m, _) = sweep
            .iter()
            .filter_map(|(m, _, v)| v.map(|v| (*m, v)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best_m, 128);
    }
}
