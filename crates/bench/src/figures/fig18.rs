//! Figure 18: accuracy comparison of all solvers on the two matrix families
//! of §5.4 — diagonally dominant (fluid-simulation-like) and random rows
//! with close values. Residual = ||Ax - d||; "overflow" marks solvers whose
//! solutions contain non-finite values.

use crate::report::{residual, Table};
use crate::ReproConfig;
use cpu_solvers::{solve_batch_seq, Gep, Thomas};
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::residual::{batch_residual, BatchResidual};
use tridiag_core::{Generator, Real, SystemBatch, Workload};

/// One accuracy measurement.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Solver name.
    pub solver: String,
    /// Residual summary on the diagonally dominant family.
    pub dominant: BatchResidual,
    /// Residual summary on the close-values family.
    pub close: BatchResidual,
}

fn gpu_row<T: Real>(
    cfg: &ReproConfig,
    alg: GpuAlgorithm,
    dominant: &SystemBatch<T>,
    close: &SystemBatch<T>,
) -> AccuracyRow {
    let rd = solve_batch(&cfg.launcher, alg, dominant).expect("solve dominant");
    let rc = solve_batch(&cfg.launcher, alg, close).expect("solve close");
    AccuracyRow {
        solver: alg.name().to_string(),
        dominant: batch_residual(dominant, &rd.solutions).expect("residual"),
        close: batch_residual(close, &rc.solutions).expect("residual"),
    }
}

/// Measures every solver of Figure 18 (plus our extension variants) in the
/// given precision.
pub fn measure<T: Real>(cfg: &ReproConfig, n: usize, count: usize) -> Vec<AccuracyRow> {
    let dominant: SystemBatch<T> =
        Generator::new(cfg.seed).batch(Workload::DiagonallyDominant, n, count).expect("gen");
    let close: SystemBatch<T> =
        Generator::new(cfg.seed + 1).batch(Workload::CloseValues, n, count).expect("gen");

    let mut rows = Vec::new();
    // CPU solvers.
    for (name, solver) in [("GEP", true), ("GE", false)] {
        let (sd, sc) = if solver {
            (solve_batch_seq(&Gep, &dominant), solve_batch_seq(&Gep, &close))
        } else {
            (solve_batch_seq(&Thomas, &dominant), solve_batch_seq(&Thomas, &close))
        };
        let (sd, sc) = (sd.expect("cpu solve"), sc.expect("cpu solve"));
        rows.push(AccuracyRow {
            solver: name.to_string(),
            dominant: batch_residual(&dominant, &sd).expect("residual"),
            close: batch_residual(&close, &sc).expect("residual"),
        });
    }
    // GPU solvers, the paper's order: CR, PCR, CR+PCR, RD, CR+RD.
    for alg in [
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::CrPcr { m: (n / 2).max(2) },
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::CrRd { m: (n / 4).max(2), mode: RdMode::Plain },
        // Extension: the paper's suggested overflow remedy.
        GpuAlgorithm::Rd(RdMode::Rescaled),
    ] {
        rows.push(gpu_row(cfg, alg, &dominant, &close));
    }
    rows
}

/// Regenerates Figure 18 (f32, as in the paper) plus an f64 extension table.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (n, count) = cfg.headline();

    let mut f32_table = Table::new(
        format!("Figure 18: accuracy (mean L2 residual), {n}x{count}, f32"),
        &["solver", "diagonally dominant", "close values in a row"],
    );
    for row in measure::<f32>(cfg, n, count) {
        f32_table.row(vec![
            row.solver,
            residual(row.dominant.mean_l2, row.dominant.has_overflow()),
            residual(row.close.mean_l2, row.close.has_overflow()),
        ]);
    }
    f32_table.note("paper: dominant — GEP best (~1e-9..1e-8), GE/CR/PCR/CR+PCR good (~1e-7), RD and CR+RD overflow; close values — every solver degrades to ~1e-2..1, RD family survives without overflow");
    f32_table.note("'RD (rescaled)' is the paper's suggested overflow remedy (§5.4): finite everywhere, accuracy unchanged where the plain scan already worked");

    // f64 doubles the shared footprint; n = 512 would not fit in the GT200's
    // 16 KB (a real constraint the simulator enforces), so the f64 extension
    // runs at n = 256.
    let (n64, count64) = (n / 2, count);
    let mut f64_table = Table::new(
        format!("Extension: same experiment in f64, {n64}x{count64}"),
        &["solver", "diagonally dominant", "close values in a row"],
    );
    for row in measure::<f64>(cfg, n64, count64) {
        f64_table.row(vec![
            row.solver,
            residual(row.dominant.mean_l2, row.dominant.has_overflow()),
            residual(row.close.mean_l2, row.close.has_overflow()),
        ]);
    }
    f64_table.note("double precision rescues RD on moderately sized chains but its dominant-family instability is structural (prefix products grow geometrically), not a precision artifact");

    vec![f32_table, f64_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(cfg: &ReproConfig) -> Vec<AccuracyRow> {
        measure::<f32>(cfg, 512, 32)
    }

    fn find<'a>(rows: &'a [AccuracyRow], name: &str) -> &'a AccuracyRow {
        rows.iter().find(|r| r.solver == name).unwrap_or_else(|| panic!("{name} missing"))
    }

    #[test]
    fn dominant_family_results_match_paper() {
        let cfg = ReproConfig::default();
        let rows = rows(&cfg);
        // GEP, GE, CR, PCR, CR+PCR all good.
        for name in ["GEP", "GE", "CR", "PCR", "CR+PCR"] {
            let r = find(&rows, name);
            assert!(!r.dominant.has_overflow(), "{name} overflowed");
            assert!(r.dominant.mean_l2 < 1e-3, "{name}: {}", r.dominant.mean_l2);
        }
        // RD and CR+RD overflow (paper's result).
        for name in ["RD", "CR+RD"] {
            let r = find(&rows, name);
            assert!(r.dominant.has_overflow(), "{name} should overflow");
        }
        // The rescaled remedy survives.
        let r = find(&rows, "RD (rescaled)");
        assert!(!r.dominant.has_overflow());
    }

    #[test]
    fn close_values_family_degrades_everyone_but_no_overflow() {
        let cfg = ReproConfig::default();
        let rows = rows(&cfg);
        for r in &rows {
            assert!(!r.close.has_overflow(), "{} overflowed on close values", r.solver);
        }
        // GEP stays best (pivoting).
        let gep = find(&rows, "GEP").close.mean_l2;
        for name in ["CR", "PCR", "RD"] {
            let other = find(&rows, name).close.mean_l2;
            assert!(gep <= other * 10.0, "GEP {gep} vs {name} {other}");
        }
        // Residuals are orders of magnitude worse than the dominant case
        // (paper: "the CR, PCR and CR+PCR solvers all achieve worse
        // accuracy").
        let cr = find(&rows, "CR");
        assert!(cr.close.mean_l2 > 10.0 * cr.dominant.mean_l2);
    }

    #[test]
    fn f64_extension_fixes_nothing_structural() {
        let cfg = ReproConfig::default();
        // n = 256: the largest f64 system whose five arrays fit in shared
        // memory on the simulated GT200.
        let rows = measure::<f64>(&cfg, 256, 8);
        // GE/GEP/CR/PCR become essentially exact in f64.
        for name in ["GEP", "GE", "CR", "PCR"] {
            let r = find(&rows, name);
            assert!(r.dominant.mean_l2 < 1e-10, "{name}: {}", r.dominant.mean_l2);
        }
        // RD still overflows even in f64 at n=256 on dominant systems
        // (growth ~ratio^n overwhelms the f64 exponent too).
        let rd = find(&rows, "RD");
        assert!(
            rd.dominant.has_overflow() || rd.dominant.mean_l2 > 1e-6,
            "RD dominant should stay bad: {:?}",
            rd.dominant
        );
    }
}
