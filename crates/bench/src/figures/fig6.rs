//! Figure 6: performance comparison of the five GPU solvers, without (left)
//! and with (right) the CPU-GPU data transfer time.

use crate::report::{ms, Table};
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use tridiag_core::dominant_batch;

/// The five solvers at a given system size, using the paper's best switch
/// points scaled with n.
pub fn paper_solvers(n: usize) -> [GpuAlgorithm; 5] {
    GpuAlgorithm::paper_five(n)
}

/// Regenerates both panels of Figure 6.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let mut left = Table::new(
        "Figure 6 (left): five GPU solvers, simulated kernel time (ms), no transfer",
        &["problem", "CR+PCR", "CR+RD", "PCR", "RD", "CR"],
    );
    let mut right = Table::new(
        "Figure 6 (right): five GPU solvers, with CPU-GPU data transfer (ms)",
        &["problem", "transfer", "CR+PCR", "CR+RD", "PCR", "RD", "CR"],
    );
    for (n, count) in cfg.problem_sizes() {
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        let mut kernel_ms = Vec::new();
        let mut total_ms = Vec::new();
        let mut transfer = 0.0;
        for alg in paper_solvers(n) {
            let r = solve_batch(&cfg.launcher, alg, &batch).expect("solve");
            kernel_ms.push(ms(r.timing.kernel_ms));
            total_ms.push(ms(r.timing.total_ms()));
            transfer = r.timing.transfer_ms;
        }
        let label = format!("{n}x{count}");
        let mut lrow = vec![label.clone()];
        lrow.extend(kernel_ms);
        left.row(lrow);
        let mut rrow = vec![label, ms(transfer)];
        rrow.extend(total_ms);
        right.row(rrow);
    }
    left.note("paper (512x512): CR+PCR 0.422, CR+RD 0.488, PCR 0.534, RD 0.612, CR 1.066 ms");
    left.note(
        "hybrid switch points scale with n: CR+PCR m=n/2, CR+RD m=n/4 (paper's 256/128 at n=512)",
    );
    right.note("paper: transfer dominates total time by 90-95%, equalizing all solvers");
    vec![left, right]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(t: &Table, row: usize, col: usize) -> f64 {
        t.rows[row][col].parse().unwrap()
    }

    #[test]
    fn orderings_match_paper_at_512() {
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        let left = &tables[0];
        // Row 3 = 512x512; columns: 1 CR+PCR, 2 CR+RD, 3 PCR, 4 RD, 5 CR.
        let crpcr = value(left, 3, 1);
        let crrd = value(left, 3, 2);
        let pcr = value(left, 3, 3);
        let rd = value(left, 3, 4);
        let cr = value(left, 3, 5);
        assert!(crpcr < crrd, "CR+PCR fastest");
        assert!(crrd < pcr, "CR+RD beats PCR");
        assert!(pcr < rd, "PCR beats RD");
        assert!(rd < cr, "CR slowest");
        // Headline ratios: CR ~2x PCR; hybrid improves CR by ~60%.
        assert!((1.5..2.5).contains(&(cr / pcr)), "CR/PCR {}", cr / pcr);
        assert!(crpcr / cr < 0.6, "hybrid improvement {}", crpcr / cr);
    }

    #[test]
    fn hybrids_lose_at_small_sizes() {
        // Paper: hybrids "perform worse than RD and PCR for the 64x64 and
        // 128x128 cases".
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        let left = &tables[0];
        for row in 0..2 {
            let crpcr = value(left, row, 1);
            let pcr = value(left, row, 3);
            assert!(crpcr > pcr, "row {row}: hybrid should lose at small sizes");
        }
    }

    #[test]
    fn transfer_dominates_right_panel() {
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        let right = &tables[1];
        for row in 0..right.rows.len() {
            let transfer = value(right, row, 1);
            let slowest_total = value(right, row, 6);
            // The 90-95% claim is for the larger sizes; the smallest size
            // has proportionally more launch/overhead time.
            let floor = if row == 0 { 0.6 } else { 0.72 };
            assert!(
                transfer / slowest_total > floor,
                "row {row}: transfer {} of {}",
                transfer,
                slowest_total
            );
        }
    }

    #[test]
    fn runtime_grows_sublinearly_with_problem_size() {
        // Paper: "when the problem size increases by 4 times ... the runtime
        // favorably increases far less than 4 times" (for the smaller sizes).
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        let left = &tables[0];
        let t64 = value(left, 0, 3);
        let t128 = value(left, 1, 3);
        assert!(t128 / t64 < 4.0);
    }
}
