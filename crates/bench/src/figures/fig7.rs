//! Figure 7: best GPU solver versus the CPU solvers (MT, GE, GEP), without
//! (left) and with (right) the CPU-GPU data transfer.
//!
//! Substitution note: the GPU times are *simulated* GTX 280 times; the CPU
//! times are *real wall-clock* on the host this harness runs on, so the
//! absolute speedups depend on the host. The paper's shape — the GPU wins
//! by an order of magnitude without transfer at large sizes, and the
//! PCI-Express bus erases the win — is what the experiment checks.

use crate::report::{ms, speedup, Table};
use crate::timing::time_min_ms;
use crate::ReproConfig;
use cpu_solvers::{solve_batch_seq, Gep, MtSolver, Thomas};
use gpu_solvers::solve_batch;
use tridiag_core::dominant_batch;

/// Measured times for one problem size.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Best simulated GPU kernel time (no transfer).
    pub gpu_ms: f64,
    /// Best simulated GPU total (with transfer).
    pub gpu_total_ms: f64,
    /// Multi-threaded CPU solver (wall clock).
    pub mt_ms: f64,
    /// Sequential Thomas ("GE", wall clock).
    pub ge_ms: f64,
    /// Pivoting solver ("GEP", wall clock).
    pub gep_ms: f64,
}

/// Measures one problem size.
pub fn measure(cfg: &ReproConfig, n: usize, count: usize) -> Fig7Row {
    let batch = dominant_batch::<f32>(cfg.seed, n, count);

    let mut gpu_ms = f64::INFINITY;
    let mut gpu_total_ms = f64::INFINITY;
    for alg in super::fig6::paper_solvers(n) {
        let r = solve_batch(&cfg.launcher, alg, &batch).expect("solve");
        if r.timing.kernel_ms < gpu_ms {
            gpu_ms = r.timing.kernel_ms;
            gpu_total_ms = r.timing.total_ms();
        }
    }

    let mt = MtSolver::new(4);
    let mt_ms = time_min_ms(cfg.cpu_reps, || mt.solve_batch(&Thomas, &batch).expect("mt"));
    let ge_ms = time_min_ms(cfg.cpu_reps, || solve_batch_seq(&Thomas, &batch).expect("ge"));
    let gep_ms = time_min_ms(cfg.cpu_reps, || solve_batch_seq(&Gep, &batch).expect("gep"));

    Fig7Row { gpu_ms, gpu_total_ms, mt_ms, ge_ms, gep_ms }
}

/// Regenerates both panels of Figure 7.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let mut left = Table::new(
        "Figure 7 (left): best GPU vs CPU solvers, no transfer (ms; GPU simulated, CPU wall-clock)",
        &["problem", "Best GPU", "MT CPU", "GE CPU", "GEP CPU", "speedup vs best CPU"],
    );
    let mut right = Table::new(
        "Figure 7 (right): best GPU vs CPU solvers, with transfer (ms)",
        &["problem", "Best GPU", "MT CPU", "GE CPU", "GEP CPU", "speedup vs best CPU"],
    );
    for (n, count) in cfg.problem_sizes() {
        let r = measure(cfg, n, count);
        let best_cpu = r.mt_ms.min(r.ge_ms).min(r.gep_ms);
        let label = format!("{n}x{count}");
        left.row(vec![
            label.clone(),
            ms(r.gpu_ms),
            ms(r.mt_ms),
            ms(r.ge_ms),
            ms(r.gep_ms),
            speedup(best_cpu / r.gpu_ms),
        ]);
        right.row(vec![
            label,
            ms(r.gpu_total_ms),
            ms(r.mt_ms),
            ms(r.ge_ms),
            ms(r.gep_ms),
            speedup(best_cpu / r.gpu_total_ms),
        ]);
    }
    left.note(
        "paper speedups (vs best CPU, their 2.5 GHz Core 2 Q9300): 2.7x / 5.7x / 17.2x / 12.5x",
    );
    left.note("CPU times here are real wall-clock on this host; absolute speedups shift with host speed, the shape (GPU wins growing with size, dip at 512 from occupancy) is the reproduction target");
    right.note("paper: 0.1x / 0.3x / 1.5x / 1.2x — the PCI-Express transfer erases the GPU win");
    vec![left, right]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_wins_without_transfer_at_large_sizes() {
        let cfg = ReproConfig { cpu_reps: 2, ..Default::default() };
        let r = measure(&cfg, 512, 512);
        let best_cpu = r.mt_ms.min(r.ge_ms).min(r.gep_ms);
        assert!(
            r.gpu_ms < best_cpu,
            "GPU (sim {:.3} ms) should beat CPU ({best_cpu:.3} ms) at 512x512",
            r.gpu_ms
        );
    }

    #[test]
    fn transfer_erases_most_of_the_win() {
        let cfg = ReproConfig { cpu_reps: 2, ..Default::default() };
        let r = measure(&cfg, 256, 256);
        // With transfer the GPU total is within an order of magnitude of
        // the CPU, typically losing or near-par (paper: 0.1x-1.5x).
        let best_cpu = r.mt_ms.min(r.ge_ms).min(r.gep_ms);
        let with = best_cpu / r.gpu_total_ms;
        let without = best_cpu / r.gpu_ms;
        assert!(with < without / 3.0, "transfer should cost a large factor");
    }

    #[test]
    fn gep_is_slower_than_ge() {
        // Pivoting costs extra; the paper's LAPACK GEP is its slowest CPU
        // baseline at every size.
        let cfg = ReproConfig { cpu_reps: 3, ..Default::default() };
        let r = measure(&cfg, 256, 128);
        assert!(r.gep_ms > r.ge_ms * 0.8, "gep {} ge {}", r.gep_ms, r.ge_ms);
    }
}
