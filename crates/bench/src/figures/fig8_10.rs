//! Figures 8 and 10: cyclic reduction time breakdown at 512x512 —
//! per algorithmic phase (Fig 8) and per resource with achieved rates
//! (Fig 10).

use crate::figures::{phase_breakdown_table, resource_breakdown_table};
use crate::report::{ms, Table};
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm};
use tridiag_core::dominant_batch;

/// Regenerates Figures 8 and 10.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let r = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &batch).expect("solve");

    let mut fig8 = phase_breakdown_table(
        &format!("Figure 8: time breakdown of CR, {n}x{count} (ms)"),
        &r.timing,
    );
    let fwd: f64 = r.timing.steps_in_phase(gpu_sim::Phase::ForwardReduction).map(|s| s.ms).sum();
    let bwd: f64 =
        r.timing.steps_in_phase(gpu_sim::Phase::BackwardSubstitution).map(|s| s.ms).sum();
    fig8.note(format!(
        "forward reduction avg step {} ms, backward substitution avg step {} ms",
        ms(fwd / 8.0),
        ms(bwd / 8.0)
    ));
    fig8.note("paper: global 0.103 (10%), fwd 0.624 (59%, avg 0.078), 2-unknown 0.033 (3%), bwd 0.306 (29%, avg 0.038), total 1.066");

    let mut fig10 = resource_breakdown_table(
        &format!("Figure 10: CR resource breakdown, {n}x{count}"),
        &r.timing,
    );
    fig10.note("paper: global 0.103/10% @48.5 GB/s, shared 0.689/64% @33 GB/s, compute 0.274/26% @15.5 GFLOPS");

    vec![fig8, fig10]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_costs_about_twice_backward() {
        // Paper: "Forward reduction takes about twice as much time as
        // backward substitution".
        let cfg = ReproConfig::default();
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        let r = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &batch).unwrap();
        let fwd: f64 =
            r.timing.steps_in_phase(gpu_sim::Phase::ForwardReduction).map(|s| s.ms).sum();
        let bwd: f64 =
            r.timing.steps_in_phase(gpu_sim::Phase::BackwardSubstitution).map(|s| s.ms).sum();
        let ratio = fwd / bwd;
        assert!((1.5..3.0).contains(&ratio), "fwd/bwd {ratio}");
    }

    #[test]
    fn shared_memory_dominates_cr() {
        // Paper: "Shared memory accesses dominate the total execution time
        // due to bank conflicts" (64%).
        let cfg = ReproConfig::default();
        let (n, count) = cfg.headline();
        let batch = dominant_batch::<f32>(cfg.seed, n, count);
        let r = solve_batch(&cfg.launcher, GpuAlgorithm::Cr, &batch).unwrap();
        let frac = r.timing.shared_ms / r.timing.kernel_ms;
        assert!((0.5..0.75).contains(&frac), "shared fraction {frac}");
        // Achieved shared bandwidth collapses to tens of GB/s (paper: 33).
        assert!(r.timing.achieved_shared_gbps < 100.0);
        // Global stays near the coalesced rate (paper: 48.5).
        assert!((30.0..60.0).contains(&r.timing.achieved_global_gbps));
    }

    #[test]
    fn tables_render() {
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].to_string().contains("CR: forward reduction"));
        assert!(tables[1].to_string().contains("GFLOPS"));
    }
}
