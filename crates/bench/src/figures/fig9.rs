//! Figure 9: bank conflicts' impact on CR's forward reduction, per step —
//! the regular kernel against the stride-one (conflict-free, incorrect,
//! timing-only) variant.

use crate::report::{ms, Table};
use crate::ReproConfig;
use gpu_sim::{GlobalMem, Launcher, Phase, StepTime};
use gpu_solvers::{CrKernel, CrStrideOneKernel, SystemHandles};
use tridiag_core::dominant_batch;

/// Per-step measurement of both variants.
pub fn measure(cfg: &ReproConfig) -> (Vec<StepTime>, Vec<StepTime>) {
    let (n, count) = cfg.headline();
    let batch = dominant_batch::<f32>(cfg.seed, n, count);
    let launcher: &Launcher = &cfg.launcher;

    let with = {
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let report = launcher.launch(&CrKernel { n, gm }, count, &mut gmem).expect("launch");
        report.timing.steps_in_phase(Phase::ForwardReduction).copied().collect::<Vec<_>>()
    };
    let without = {
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let report =
            launcher.launch(&CrStrideOneKernel { n, gm }, count, &mut gmem).expect("launch");
        report.timing.steps_in_phase(Phase::ForwardReduction).copied().collect::<Vec<_>>()
    };
    (with, without)
}

/// Regenerates Figure 9.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let (with, without) = measure(cfg);
    let mut t = Table::new(
        "Figure 9: bank conflicts' impact per forward-reduction step, 512x512 (ms)",
        &["(threads, warps, n-way)", "no conflicts", "with conflicts", "penalty"],
    );
    for (w, f) in with.iter().zip(&without) {
        t.row(vec![
            format!("({}, {}, {})", w.active_threads, w.warps, w.max_conflict_degree),
            ms(f.ms),
            ms(w.ms),
            format!("{:.1}x", w.ms / f.ms),
        ]);
    }
    t.note("paper penalties: 1.7x 3.1x 3.3x 4.8x 4.8x 3.0x 2.3x 2.3x");
    t.note("the conflict-free variant forces stride-one addressing — numerically wrong, timing only (paper's own methodology)");
    t.note("conflict-free per-step time flattens once <= 32 threads remain: a warp is the smallest unit of work and sync/control overhead dominates");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_degrees_match_paper_annotations() {
        let cfg = ReproConfig::default();
        let (with, _) = measure(&cfg);
        let degrees: Vec<u32> = with.iter().map(|s| s.max_conflict_degree).collect();
        assert_eq!(degrees, vec![2, 4, 8, 16, 16, 8, 4, 2]);
        let threads: Vec<usize> = with.iter().map(|s| s.active_threads).collect();
        assert_eq!(threads, vec![256, 128, 64, 32, 16, 8, 4, 2]);
    }

    #[test]
    fn conflicted_step_times_rise_then_fall() {
        // Paper: "the measured step time does not decrease but rather
        // increases" through the first four steps, then decreases once
        // fewer threads than a half-warp access shared memory.
        let cfg = ReproConfig::default();
        let (with, _) = measure(&cfg);
        for i in 0..3 {
            assert!(with[i + 1].ms > with[i].ms, "step {i} -> {}", i + 1);
        }
        for i in 4..7 {
            assert!(with[i + 1].ms < with[i].ms, "step {i} -> {}", i + 1);
        }
    }

    #[test]
    fn conflict_free_flattens_at_warp_granularity() {
        // Once <= 32 threads remain, conflict-free step times are nearly
        // constant (warp granularity + overhead).
        let cfg = ReproConfig::default();
        let (_, without) = measure(&cfg);
        let tail: Vec<f64> = without[3..].iter().map(|s| s.ms).collect();
        let max = tail.iter().cloned().fold(0.0f64, f64::max);
        let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.6, "tail spread {max}/{min}");
    }

    #[test]
    fn penalties_in_paper_band() {
        let cfg = ReproConfig::default();
        let (with, without) = measure(&cfg);
        let penalties: Vec<f64> = with.iter().zip(&without).map(|(w, f)| w.ms / f.ms).collect();
        // Worst penalty occurs at the 16-way steps and is severe (paper 4.8x).
        let worst = penalties.iter().cloned().fold(0.0f64, f64::max);
        assert!((3.0..8.0).contains(&worst), "worst {worst}");
        // First step (2-way, 8 warps) has a mild penalty (paper 1.7x).
        assert!((1.2..2.5).contains(&penalties[0]), "first {}", penalties[0]);
        let idx_worst = penalties.iter().position(|&p| p == worst).unwrap();
        assert!((3..=4).contains(&idx_worst), "worst at step {idx_worst}");
    }
}
