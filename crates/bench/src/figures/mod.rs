//! One module per table/figure of the paper's evaluation section, plus the
//! ablations DESIGN.md calls out.

pub mod ablations;
pub mod advisor;
pub mod fig11_12;
pub mod fig13_14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig6;
pub mod fig7;
pub mod fig8_10;
pub mod fig9;
pub mod service;
pub mod table1;

use crate::{ReproConfig, Table};

/// An experiment entry: CLI name plus the function regenerating its tables.
pub type Experiment = (&'static str, fn(&ReproConfig) -> Vec<Table>);

/// Every experiment the harness can regenerate, with its CLI name.
pub fn all() -> Vec<Experiment> {
    vec![
        ("table1", table1::run as fn(&ReproConfig) -> Vec<Table>),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8_10::run),
        ("fig9", fig9::run),
        ("fig11", fig11_12::run),
        ("fig13", fig13_14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("fig18", fig18::run),
        ("ablations", ablations::run),
        ("advisor", advisor::run),
        ("service", service::run),
    ]
}

/// Helper shared by the per-phase breakdown figures: turns a timing report
/// into the paper's pie-chart rows.
pub(crate) fn phase_breakdown_table(title: &str, timing: &gpu_sim::TimingReport) -> Table {
    let mut t = Table::new(title, &["phase", "steps", "ms", "% of total"]);
    let total: f64 = timing.kernel_ms;
    for p in &timing.per_phase {
        t.row(vec![
            p.phase.label().to_string(),
            p.steps.to_string(),
            crate::report::ms(p.ms),
            format!("{:.0}%", 100.0 * p.ms / total),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        timing.per_step.len().to_string(),
        crate::report::ms(total),
        "100%".to_string(),
    ]);
    t
}

/// Helper for the Figure 10/12/14-style resource breakdowns.
pub(crate) fn resource_breakdown_table(title: &str, timing: &gpu_sim::TimingReport) -> Table {
    let total = timing.kernel_ms;
    let mut t = Table::new(title, &["component", "ms", "% of total", "achieved rate"]);
    t.row(vec![
        "global memory access".into(),
        crate::report::ms(timing.global_ms),
        format!("{:.0}%", 100.0 * timing.global_ms / total),
        format!("{:.1} GB/s", timing.achieved_global_gbps),
    ]);
    t.row(vec![
        "shared memory access".into(),
        crate::report::ms(timing.shared_ms),
        format!("{:.0}%", 100.0 * timing.shared_ms / total),
        format!("{:.1} GB/s", timing.achieved_shared_gbps),
    ]);
    t.row(vec![
        "computation (incl. sync/control)".into(),
        crate::report::ms(timing.compute_ms),
        format!("{:.0}%", 100.0 * timing.compute_ms / total),
        format!("{:.1} GFLOPS", timing.gflops),
    ]);
    t.row(vec!["total".into(), crate::report::ms(total), "100%".into(), String::new()]);
    t
}
