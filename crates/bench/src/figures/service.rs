//! Serving-layer throughput: dynamic batching vs. batch-size-1 dispatch.
//!
//! Not a paper figure — the paper benchmarks pre-assembled batches — but
//! the natural production question its results raise: when requests arrive
//! *one at a time*, how much of the batched-kernel throughput can a
//! serving layer recover? This experiment drives an open-loop stream of
//! mixed-size requests through [`SolverService`] twice:
//!
//! * **batched** — target batch 64, 2 ms linger: requests coalesce into
//!   near-full kernel launches;
//! * **unbatched** — target batch 1: every request flushes alone,
//!   paying a full launch (and per-launch instrumentation) by itself.
//!
//! Reported: wall-clock systems/s for the whole stream, the occupancy the
//! batcher achieved, the plan-cache hit rate, and p50/p99 latency. The
//! batched row's throughput win *is* the serving-layer argument for the
//! paper's batched kernel design.

use crate::{ReproConfig, Table};
use gpu_solvers::GpuAlgorithm;
use solver_service::{Engine, ServiceConfig, ServiceError, SolverService, Ticket};
use std::time::{Duration, Instant};
use tridiag_core::{Generator, Workload};

/// Sizes the stream mixes (the paper's range of interest).
const SIZES: [usize; 3] = [64, 128, 256];

/// Runs the experiment at the configured scale.
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let total = ((600.0 * cfg.scale) as usize).max(120);

    // The GPU pin fixes the engine for both modes so the comparison
    // isolates *batching*: same kernel, full batches vs. singleton
    // launches. m = 32 is valid for every size in the mix.
    let pin = Some(Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 }));
    let base = |target_batch: usize, pin_engine| ServiceConfig {
        target_batch,
        min_gpu_batch: 1,
        max_linger: Duration::from_millis(2),
        launcher: cfg.launcher.clone(),
        pin_engine,
        ..ServiceConfig::default()
    };

    let mut table = Table::new(
        format!(
            "Serving layer: {total} mixed-size requests (n ∈ {SIZES:?}), open loop, device = {}",
            cfg.launcher.device.name
        ),
        &[
            "mode",
            "systems/s (wall)",
            "device µs/system",
            "mean occupancy",
            "plan hits/tunes",
            "p50 µs",
            "p99 µs",
            "repairs",
        ],
    );

    let modes = [
        ("batched, autotuned plan (target 64)", base(64, None)),
        ("unbatched, autotuned plan (target 1)", base(1, None)),
        ("batched, pinned cr+pcr@32 (target 64)", base(64, pin)),
        ("unbatched, pinned cr+pcr@32 (target 1)", base(1, pin)),
    ];
    for (label, config) in modes {
        let outcome = drive(cfg.seed, config, total);
        table.row(vec![
            label.to_string(),
            format!("{:.0}", outcome.systems_per_sec),
            format!("{:.2}", outcome.device_us_per_system),
            format!("{:.1}", outcome.mean_occupancy),
            format!("{}/{}", outcome.plan_hits, outcome.plan_tunes),
            outcome.p50_us.to_string(),
            outcome.p99_us.to_string(),
            outcome.repairs.to_string(),
        ]);
    }
    table.note("every response is residual-verified; repairs count GEP re-solves");
    table.note("occupancy = completed systems / flushed batches (batching win when ≫ 1)");
    table.note(
        "device µs/system = engine time / completed: simulated GPU ms for GPU engines, \
         wall-clock for CPU — the pinned pair shows the per-launch cost batching amortizes",
    );
    vec![table]
}

struct Outcome {
    systems_per_sec: f64,
    device_us_per_system: f64,
    mean_occupancy: f64,
    plan_hits: u64,
    plan_tunes: u64,
    p50_us: u64,
    p99_us: u64,
    repairs: u64,
}

/// Pushes `total` requests open-loop (retrying on backpressure), waits for
/// every response, and distils the metrics snapshot.
fn drive(seed: u64, config: ServiceConfig, total: usize) -> Outcome {
    let service: SolverService<f32> = SolverService::start(config);
    let mut generator = Generator::new(seed);
    let start = Instant::now();
    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(total);
    for i in 0..total {
        let n = SIZES[i % SIZES.len()];
        let system = generator.system(Workload::DiagonallyDominant, n);
        loop {
            match service.submit(system.clone()) {
                Ok(ticket) => {
                    tickets.push(ticket);
                    break;
                }
                Err(ServiceError::QueueFull { retry_after, .. }) => {
                    // Open-loop backoff: honor the service's drain-rate
                    // hint when it has one, else just yield and retry.
                    match retry_after {
                        Some(hint) => std::thread::sleep(hint),
                        None => std::thread::yield_now(),
                    }
                }
                Err(e) => panic!("service refused a valid request: {e}"),
            }
        }
    }
    for ticket in tickets {
        let response = ticket.wait();
        assert!(response.residual.is_finite(), "unverified response escaped the service");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let snapshot = service.shutdown();
    let flushes = snapshot.flushes_total().max(1);
    let engine_ms_total: f64 = snapshot.engine_ms.values().sum();
    Outcome {
        systems_per_sec: snapshot.completed as f64 / elapsed.max(1e-9),
        device_us_per_system: engine_ms_total * 1e3 / (snapshot.completed.max(1) as f64),
        mean_occupancy: snapshot.completed as f64 / flushes as f64,
        plan_hits: snapshot.plan_hits,
        plan_tunes: snapshot.plan_tunes,
        p50_us: snapshot.latency_p50_us,
        p99_us: snapshot.latency_p99_us,
        repairs: snapshot.repaired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_experiment_produces_four_rows() {
        let cfg = ReproConfig { scale: 0.25, ..Default::default() };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 4);
        // Throughput cells parse as positive numbers.
        for row in &tables[0].rows {
            let rate: f64 = row[1].parse().unwrap();
            assert!(rate > 0.0, "{row:?}");
        }
    }
}
