//! Table 1: complexity comparison of the five algorithms — the paper's
//! analytic per-system counts next to the simulator's *measured* counters.

use crate::report::Table;
use crate::ReproConfig;
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use tridiag_core::{dominant_batch, table1, Algorithm};

/// Regenerates Table 1 for n = 512 (analytic) and validates it against the
/// instrumented kernels (measured per-system counts).
pub fn run(cfg: &ReproConfig) -> Vec<Table> {
    let n = 512usize;

    let mut analytic = Table::new(
        "Table 1: complexity comparison (analytic, n = 512, m as in the paper)",
        &[
            "algorithm",
            "shared accesses",
            "arithmetic ops",
            "divisions",
            "steps",
            "global accesses",
        ],
    );
    let entries = [
        (Algorithm::Cr, "CR"),
        (Algorithm::Pcr, "PCR"),
        (Algorithm::Rd, "RD"),
        (Algorithm::CrPcr { m: 256 }, "CR+PCR (m=256)"),
        (Algorithm::CrRd { m: 128 }, "CR+RD (m=128)"),
    ];
    for (alg, name) in entries {
        let row = table1(alg, n).expect("valid sizes");
        analytic.row(vec![
            name.to_string(),
            row.shared_accesses.to_string(),
            row.arithmetic_ops.to_string(),
            row.divisions.to_string(),
            row.steps.to_string(),
            row.global_accesses.to_string(),
        ]);
    }
    analytic.note("formulas from the paper: CR 23n/17n(3n div)/2log2n-1/5n; PCR 16nlog2n/12nlog2n(2nlog2n div)/log2n/5n; RD 32nlog2n/20nlog2n(no scan div)/log2n+2/5n");

    let mut measured = Table::new(
        "Table 1 (measured): instrumented kernel counters, per system, n = 512",
        &[
            "algorithm",
            "shared accesses",
            "arithmetic ops",
            "divisions",
            "algorithmic steps",
            "global accesses",
        ],
    );
    let batch = dominant_batch::<f32>(cfg.seed, n, 1);
    let kernels = [
        (GpuAlgorithm::Cr, "CR"),
        (GpuAlgorithm::Pcr, "PCR"),
        (GpuAlgorithm::Rd(RdMode::Plain), "RD"),
        (GpuAlgorithm::CrPcr { m: 256 }, "CR+PCR (m=256)"),
        (GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain }, "CR+RD (m=128)"),
    ];
    for (alg, name) in kernels {
        let r = solve_batch(&cfg.launcher, alg, &batch).expect("solve");
        let algo_steps = r.stats.steps.iter().filter(|s| !s.phase.is_straight_line()).count();
        measured.row(vec![
            name.to_string(),
            r.stats.total_shared_accesses().to_string(),
            r.stats.total_ops().to_string(),
            r.stats.total_divs().to_string(),
            algo_steps.to_string(),
            r.stats.global_accesses.to_string(),
        ]);
    }
    measured.note("measured counts include the load/store copies' shared traffic; step counts exclude straight-line load/store/copy steps (the paper's convention)");
    measured.note("RD access counts are lower than the paper's 32nlog2n: our scan combine re-reads 12 and writes 6 values per element, i.e. 18nlog2n");

    vec![analytic, measured]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerates_both_tables() {
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 5);
        assert_eq!(tables[1].rows.len(), 5);
        // Analytic CR row: 23n, 17n, 3n, 17, 5n at n=512.
        assert_eq!(tables[0].rows[0][1], (23 * 512).to_string());
        assert_eq!(tables[0].rows[0][4], "17");
    }

    #[test]
    fn measured_steps_match_analytic_steps() {
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        // Steps column (index 4) must agree exactly between the two tables
        // for CR, PCR and RD (the hybrids differ by the paper's own +-1
        // step-count bookkeeping).
        for i in [0usize, 1, 2] {
            assert_eq!(tables[0].rows[i][4], tables[1].rows[i][4], "row {i}");
        }
    }

    #[test]
    fn measured_work_within_band_of_analytic() {
        let cfg = ReproConfig::default();
        let tables = run(&cfg);
        for i in 0..5 {
            let analytic: f64 = tables[0].rows[i][2].parse().unwrap();
            let measured: f64 = tables[1].rows[i][2].parse().unwrap();
            let ratio = measured / analytic;
            assert!((0.6..1.6).contains(&ratio), "ops ratio out of band for row {i}: {ratio}");
        }
    }
}
