//! # bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation (§5), each regenerating the same rows/series the paper
//! reports — simulated GPU timings from [`gpu_sim`]'s calibrated cost model,
//! real wall-clock timings for the CPU baselines.
//!
//! Run everything with `cargo run --release -p bench --bin repro`, or a
//! single experiment with e.g. `... --bin repro fig9`.

#![warn(missing_docs)]

pub mod certify;
pub mod chaos;
pub mod cli;
pub mod cluster;
pub mod factor;
pub mod figures;
pub mod loadlab;
pub mod pool;
pub mod prove;
pub mod replay;
pub mod report;
pub mod sanitize;
pub mod timing;

pub use report::Table;

use gpu_sim::Launcher;

/// Shared configuration for all experiments.
#[derive(Debug, Clone)]
pub struct ReproConfig {
    /// Seed for workload generation (fixed for reproducibility).
    pub seed: u64,
    /// Simulated device + cost model.
    pub launcher: Launcher,
    /// Wall-clock measurement repetitions for CPU solvers.
    pub cpu_reps: usize,
    /// Scale factor on batch counts (1.0 = the paper's sizes). Benches use
    /// smaller scales to keep criterion iterations fast.
    pub scale: f64,
}

impl Default for ReproConfig {
    fn default() -> Self {
        Self { seed: 20100109, launcher: Launcher::gtx280(), cpu_reps: 5, scale: 1.0 }
    }
}

impl ReproConfig {
    /// The paper's problem sizes: "64 64-unknown systems to 512 512-unknown
    /// systems", scaled by `self.scale` on the system count.
    pub fn problem_sizes(&self) -> Vec<(usize, usize)> {
        [(64usize, 64usize), (128, 128), (256, 256), (512, 512)]
            .into_iter()
            .map(|(n, count)| (n, ((count as f64 * self.scale) as usize).max(1)))
            .collect()
    }

    /// The paper's headline 512x512 problem, scaled.
    pub fn headline(&self) -> (usize, usize) {
        (512, ((512.0 * self.scale) as usize).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_match_paper() {
        let cfg = ReproConfig::default();
        assert_eq!(cfg.problem_sizes(), vec![(64, 64), (128, 128), (256, 256), (512, 512)]);
        assert_eq!(cfg.headline(), (512, 512));
    }

    #[test]
    fn scaling_shrinks_counts_not_sizes() {
        let cfg = ReproConfig { scale: 0.25, ..Default::default() };
        assert_eq!(cfg.problem_sizes()[3], (512, 128));
        assert_eq!(cfg.problem_sizes()[0], (64, 16));
    }
}
