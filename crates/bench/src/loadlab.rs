//! The `loadlab` subcommand: the replay-driven load lab and its SLO gate.
//!
//! ```text
//! cargo run --release -p bench -- loadlab            # full matrix (2000 req/cell)
//! cargo run --release -p bench -- loadlab --quick    # CI-sized (400 req/cell)
//! ```
//!
//! Runs every cell of [`trace_lab::loadlab::standard_cells`] under the
//! deterministic harness, prints the matrix, writes the canonical
//! `target/repro/BENCH_loadlab.json`, and gates twice:
//!
//! 1. **SLO** — each cell must clear its own availability/p99/correctness
//!    objective.
//! 2. **Baseline** — in `--quick` mode (the CI shape), each cell is also
//!    compared against the checked-in `baselines/loadlab.json`:
//!    availability may not drop more than 0.5 % below the recorded value
//!    and p99 may not exceed 1.5x the recorded value. The lab is
//!    deterministic, so a baseline miss is a real behaviour change, not
//!    noise.

use crate::cli::{self, EXIT_GATE_FAIL, EXIT_PASS};
use crate::report::Table;
use trace_lab::loadlab::{run_cell, standard_cells};
use trace_lab::LabOutcome;

/// Availability may drop at most this far below the baseline (ppm).
const AVAILABILITY_SLACK_PPM: u64 = 5_000;

/// p99 may grow to at most baseline x 3/2.
const P99_GROWTH_NUM: u64 = 3;
/// Denominator of the p99 growth bound.
const P99_GROWTH_DEN: u64 = 2;

fn json_row(out: &LabOutcome) -> String {
    format!(
        concat!(
            "{{\"name\":\"{}\",\"offered\":{},\"served\":{},\"rejected\":{},",
            "\"availability_ppm\":{},\"p50_ns\":{},\"p99_ns\":{},",
            "\"throughput_rps\":{},\"repairs\":{},\"wrong\":{},",
            "\"makespan_ns\":{},\"pass\":{}}}"
        ),
        out.name,
        out.offered,
        out.served,
        out.rejected,
        out.availability_ppm,
        out.p50_ns,
        out.p99_ns,
        out.throughput_rps,
        out.repairs,
        out.wrong,
        out.makespan_ns,
        out.pass(),
    )
}

/// Compares one cell against its baseline row; returns failure clauses.
fn baseline_failures(out: &LabOutcome, baselines: &str) -> Vec<String> {
    let Some(row) = cli::json_object_with(baselines, "name", &out.name) else {
        return vec![format!("{}: no baseline row", out.name)];
    };
    let mut failures = Vec::new();
    match cli::json_u64(row, "availability_ppm") {
        Some(base) => {
            let floor = base.saturating_sub(AVAILABILITY_SLACK_PPM);
            if out.availability_ppm < floor {
                failures.push(format!(
                    "{}: availability {} ppm < baseline floor {} ppm (recorded {})",
                    out.name, out.availability_ppm, floor, base
                ));
            }
        }
        None => failures.push(format!("{}: baseline row lacks availability_ppm", out.name)),
    }
    match cli::json_u64(row, "p99_ns") {
        Some(base) => {
            let ceiling = base.saturating_mul(P99_GROWTH_NUM) / P99_GROWTH_DEN;
            if out.p99_ns > ceiling {
                failures.push(format!(
                    "{}: p99 {} ns > baseline ceiling {} ns (recorded {})",
                    out.name, out.p99_ns, ceiling, base
                ));
            }
        }
        None => failures.push(format!("{}: baseline row lacks p99_ns", out.name)),
    }
    failures
}

/// Runs the load lab; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match cli::parse("loadlab", args, &[], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let cells = standard_cells(parsed.quick);
    let requests = cells[0].scenario.requests;

    let mut table = Table::new(
        format!(
            "Load lab: {requests} open-loop requests/cell on the deterministic \
             virtual-clock harness (latencies are simulated ns)"
        ),
        &[
            "cell", "offered", "served", "shed", "avail %", "p50 µs", "p99 µs", "req/s", "repairs",
            "wrong", "gate",
        ],
    );
    let mut json = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut outcomes = Vec::new();
    for cell in &cells {
        eprintln!("[loadlab] {} ...", cell.scenario.name);
        let out = run_cell(cell);
        failures.extend(out.failures.iter().map(|f| format!("{}: {f}", out.name)));
        table.row(vec![
            out.name.clone(),
            out.offered.to_string(),
            out.served.to_string(),
            out.rejected.to_string(),
            format!("{:.2}", out.availability_ppm as f64 / 1e4),
            format!("{:.1}", out.p50_ns as f64 / 1e3),
            format!("{:.1}", out.p99_ns as f64 / 1e3),
            out.throughput_rps.to_string(),
            out.repairs.to_string(),
            out.wrong.to_string(),
            if out.pass() { "pass".into() } else { "FAIL".into() },
        ]);
        json.push(json_row(&out));
        outcomes.push(out);
    }
    table.note("gate: per-cell SLO (availability floor, p99 ceiling, zero wrong answers)");
    table.note("adversarial-small-n is expected to shed: its SLO asserts graceful rejection");
    println!("{table}");
    if parsed.json {
        for line in &json {
            println!("{line}");
        }
    }

    let bench = format!(
        "{{\"bench\":\"loadlab\",\"quick\":{},\"rows\":[{}]}}\n",
        parsed.quick,
        json.join(",")
    );
    match cli::write_bench("BENCH_loadlab.json", &bench) {
        Ok(path) => eprintln!("[loadlab] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[loadlab] FAIL: writing BENCH_loadlab.json: {e}");
            return EXIT_GATE_FAIL;
        }
    }

    // Baseline regression gate — the baseline records the --quick shape CI
    // runs; full-size runs are gated by SLO only.
    if parsed.quick {
        match cli::baseline_path("loadlab.json").map(std::fs::read_to_string) {
            Some(Ok(baselines)) => {
                for out in &outcomes {
                    failures.extend(baseline_failures(out, &baselines));
                }
            }
            Some(Err(e)) => failures.push(format!("baselines/loadlab.json unreadable: {e}")),
            None => failures.push("baselines/loadlab.json missing".to_string()),
        }
    } else {
        eprintln!("[loadlab] baseline compare skipped (baselines record the --quick shape)");
    }

    if failures.is_empty() {
        println!("[loadlab] PASS: {} cell(s) cleared SLO and baseline", outcomes.len());
        EXIT_PASS
    } else {
        for f in &failures {
            eprintln!("[loadlab] FAIL: {f}");
        }
        EXIT_GATE_FAIL
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_lab::loadlab::standard_cells;

    #[test]
    fn quick_lab_passes_slo_and_baseline() {
        assert_eq!(run(&["--quick".to_string()]), EXIT_PASS);
    }

    #[test]
    fn baseline_comparison_flags_regressions() {
        let out = run_cell(&standard_cells(true)[0]);
        let baselines = format!(
            "{{\"rows\":[{{\"name\":\"steady\",\"availability_ppm\":1000000,\"p99_ns\":{}}}]}}",
            out.p99_ns / 10
        );
        let failures = baseline_failures(&out, &baselines);
        assert!(
            failures.iter().any(|f| f.contains("p99")),
            "a 10x p99 regression went unflagged: {failures:?}"
        );
    }

    #[test]
    fn missing_baseline_row_is_a_failure() {
        let out = run_cell(&standard_cells(true)[0]);
        assert!(!baseline_failures(&out, "{\"rows\":[]}").is_empty());
    }

    #[test]
    fn unknown_flags_are_usage_errors() {
        assert_eq!(run(&["--cells=9".to_string()]), cli::EXIT_USAGE);
    }
}
