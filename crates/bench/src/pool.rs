//! The `pool` subcommand: multi-device scaling, failover, and large-n
//! partitioned-solve verification on the simulated device pool.
//!
//! ```text
//! cargo run --release -p bench -- pool            # full sweep (1→8 devices)
//! cargo run --release -p bench -- pool --quick    # CI gate subset
//! ```
//!
//! Three experiments, three gates (exit 1 iff any fails):
//!
//! 1. **Scaling** — a pinned-engine batched stream through
//!    [`SolverService`] over pools of 1→8 devices. Aggregate throughput is
//!    `completed / makespan`, where the makespan is the *max* per-device
//!    simulated busy time (the critical path of a parallel node). Gate:
//!    4 devices deliver ≥ 3× the 1-device throughput.
//! 2. **Failover** — a 4-device pool where one device dies sticky
//!    (`DeviceLost`) a few launches in. Gate: zero wrong answers,
//!    availability ≥ 99%, and only the dead device's breaker opens.
//! 3. **Partitioned large-n** — `solve_partitioned` at n = 2^16 (and
//!    2^20 in the full sweep) on every pool size, verified against the
//!    CPU GEP reference. Gate: every row verifies.

use crate::cli::{self, EXIT_GATE_FAIL, EXIT_PASS};
use crate::report::Table;
use device_pool::{solve_partitioned, PoolConfig};
use gpu_sim::FaultConfig;
use gpu_solvers::GpuAlgorithm;
use solver_service::{Engine, ServiceConfig, ServiceError, SolverService, Ticket};
use std::time::Duration;
use tridiag_core::residual::l2_residual;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

/// System size for the scaling stream (m = 32 divides it).
const SCALING_N: usize = 256;

/// Residual bound a response must beat to count as correct (f32 traffic).
const RESIDUAL_BOUND: f64 = 1e-2;

/// Submit attempts per request before declaring it shed.
const MAX_SUBMIT_ATTEMPTS: usize = 200;

/// The 4-device scaling point the gate reads.
const GATE_DEVICES: usize = 4;

/// Minimum 4-device speedup over 1 device the gate accepts.
const GATE_SPEEDUP: f64 = 3.0;

fn pin_engine() -> Engine {
    Engine::Gpu(GpuAlgorithm::CrPcr { m: 32 })
}

/// Outcome of one scaling cell.
struct ScalingCell {
    devices: usize,
    completed: u64,
    wrong: u64,
    /// Max per-device simulated busy time — the parallel makespan.
    makespan_ms: f64,
    /// Sum of per-device simulated busy time — the serial work.
    work_ms: f64,
    steals: u64,
    /// completed / makespan (requests per simulated ms).
    throughput: f64,
}

/// Streams `total` pinned-engine requests through a `devices`-wide pool
/// and distills the per-device books into a scaling cell.
fn drive_scaling(seed: u64, devices: usize, total: usize) -> ScalingCell {
    let config = ServiceConfig {
        target_batch: 8,
        min_gpu_batch: 1,
        max_linger: Duration::from_millis(1),
        pin_engine: Some(pin_engine()),
        sanitize_first_flush: false,
        pool: Some(PoolConfig::new(devices)),
        ..ServiceConfig::default()
    };
    let service: SolverService<f32> = SolverService::start(config);
    let mut generator = Generator::new(seed);
    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(total);
    for _ in 0..total {
        let system = generator.system(Workload::DiagonallyDominant, SCALING_N);
        submit_retrying(&service, system, &mut tickets);
    }
    let mut wrong = 0u64;
    for ticket in tickets {
        let response = ticket.wait();
        if !response.residual.is_finite() || response.residual >= RESIDUAL_BOUND {
            wrong += 1;
        }
    }
    let snapshot = service.shutdown();
    let makespan_ms =
        snapshot.devices.iter().map(|d| d.device_ms).fold(0.0f64, f64::max).max(1e-12);
    let work_ms: f64 = snapshot.devices.iter().map(|d| d.device_ms).sum();
    let steals: u64 = snapshot.devices.iter().map(|d| d.steals).sum();
    ScalingCell {
        devices,
        completed: snapshot.completed,
        wrong,
        makespan_ms,
        work_ms,
        steals,
        throughput: snapshot.completed as f64 / makespan_ms,
    }
}

/// Open-loop submit with bounded backpressure retries.
fn submit_retrying(
    service: &SolverService<f32>,
    system: TridiagonalSystem<f32>,
    tickets: &mut Vec<Ticket<f32>>,
) {
    let mut attempts = 0usize;
    loop {
        match service.submit(system.clone()) {
            Ok(ticket) => {
                tickets.push(ticket);
                return;
            }
            Err(ServiceError::QueueFull { retry_after, .. }) if attempts < MAX_SUBMIT_ATTEMPTS => {
                attempts += 1;
                match retry_after {
                    Some(hint) => std::thread::sleep(hint),
                    None => std::thread::yield_now(),
                }
            }
            Err(ServiceError::QueueFull { .. }) => return, // shed
            Err(e) => panic!("service refused a valid request: {e}"),
        }
    }
}

/// Outcome of the failover cell.
struct FailoverOutcome {
    total: usize,
    completed: u64,
    wrong: u64,
    availability: f64,
    dead_lost: bool,
    dead_breaker_open: bool,
    survivors_quiet: bool,
    survivor_dispatched: u64,
}

impl FailoverOutcome {
    fn passes(&self) -> bool {
        self.wrong == 0
            && self.availability >= 0.99
            && self.dead_lost
            && self.dead_breaker_open
            && self.survivors_quiet
            && self.survivor_dispatched > 0
    }
}

/// The failover cell: device `dead` of a 4-device pool is lost for good on
/// its 4th launch, mid-stream.
fn drive_failover(seed: u64, total: usize) -> FailoverOutcome {
    const DEAD: usize = 2;
    let mut pool_cfg = PoolConfig::new(4);
    pool_cfg.fault_overrides =
        vec![(DEAD, FaultConfig { device_lost_after: Some(3), ..FaultConfig::quiet(0) })];
    let config = ServiceConfig {
        target_batch: 8,
        min_gpu_batch: 1,
        max_linger: Duration::from_millis(1),
        pin_engine: Some(pin_engine()),
        sanitize_first_flush: false,
        pool: Some(pool_cfg),
        ..ServiceConfig::default()
    };
    let service: SolverService<f32> = SolverService::start(config);
    let mut generator = Generator::new(seed);
    let mut tickets: Vec<Ticket<f32>> = Vec::with_capacity(total);
    // Feed the stream in small waves until the doomed device has actually
    // tripped its fault, then pour in the remainder. Without this pacing an
    // oversubscribed host can let the survivors steal every flush routed to
    // the doomed device before its worker ever launches a kernel, and the
    // cell would end with all four devices healthy.
    let mut submitted = 0usize;
    while submitted < total {
        let wave = 8.min(total - submitted);
        for _ in 0..wave {
            let system = generator.system(Workload::DiagonallyDominant, SCALING_N);
            submit_retrying(&service, system, &mut tickets);
            submitted += 1;
        }
        let dead_down = service.metrics().devices.iter().any(|d| d.id == DEAD && d.lost);
        if dead_down {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for _ in submitted..total {
        let system = generator.system(Workload::DiagonallyDominant, SCALING_N);
        submit_retrying(&service, system, &mut tickets);
    }
    let mut wrong = 0u64;
    for ticket in tickets {
        let response = ticket.wait();
        if !response.residual.is_finite() || response.residual >= RESIDUAL_BOUND {
            wrong += 1;
        }
    }
    let snapshot = service.shutdown();
    let dead = snapshot.devices.iter().find(|d| d.id == DEAD).expect("dead device gauge");
    let survivors: Vec<_> = snapshot.devices.iter().filter(|d| d.id != DEAD).collect();
    FailoverOutcome {
        total,
        completed: snapshot.completed,
        wrong,
        availability: snapshot.completed as f64 / total.max(1) as f64,
        dead_lost: dead.lost,
        dead_breaker_open: dead.breaker == "open",
        survivors_quiet: survivors.iter().all(|d| !d.lost && d.breaker == "closed"),
        survivor_dispatched: survivors.iter().map(|d| d.dispatched).sum(),
    }
}

/// Outcome of one partitioned large-n verification row.
struct PartitionedCell {
    devices: usize,
    n: usize,
    verified: bool,
    max_rel_err: f64,
    residual: f64,
    chunks: usize,
    interface_rows: usize,
    local_ms: f64,
    interface_ms: f64,
    backsubst_ms: f64,
}

/// Solves an n-row system across `devices` and verifies it: element-wise
/// against GEP when `x_ref` is given, residual-only otherwise.
fn drive_partitioned(
    seed: u64,
    devices: usize,
    n: usize,
    x_ref: Option<&[f64]>,
    sys: &TridiagonalSystem<f64>,
) -> PartitionedCell {
    let _ = seed;
    let pool = PoolConfig::new(devices).build();
    let report = solve_partitioned(&pool, sys, 16).expect("partitioned solve");
    let residual = l2_residual(sys, &report.x).expect("finite solution");
    let (max_rel_err, elementwise_ok) = match x_ref {
        Some(x_ref) => {
            let scale = x_ref.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            let max_rel = report
                .x
                .iter()
                .zip(x_ref)
                .map(|(x, r)| (x - r).abs() / scale)
                .fold(0.0f64, f64::max);
            (max_rel, max_rel < 1e-9)
        }
        None => (f64::NAN, true),
    };
    PartitionedCell {
        devices,
        n,
        verified: elementwise_ok && residual < 1e-6,
        max_rel_err,
        residual,
        chunks: report.chunks_total,
        interface_rows: report.interface_rows,
        local_ms: report.timing.local_ms,
        interface_ms: report.timing.interface_ms,
        backsubst_ms: report.timing.backsubst_ms,
    }
}

fn json_scaling(cell: &ScalingCell, speedup: f64) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"pool-scaling\",\"devices\":{},\"completed\":{},",
            "\"wrong\":{},\"makespan_ms\":{:.3},\"work_ms\":{:.3},\"steals\":{},",
            "\"throughput_per_ms\":{:.3},\"speedup\":{:.2}}}"
        ),
        cell.devices,
        cell.completed,
        cell.wrong,
        cell.makespan_ms,
        cell.work_ms,
        cell.steals,
        cell.throughput,
        speedup,
    )
}

fn json_failover(out: &FailoverOutcome) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"pool-failover\",\"requests\":{},\"completed\":{},",
            "\"wrong\":{},\"availability\":{:.4},\"dead_lost\":{},",
            "\"dead_breaker_open\":{},\"survivors_quiet\":{},\"survivor_dispatched\":{}}}"
        ),
        out.total,
        out.completed,
        out.wrong,
        out.availability,
        out.dead_lost,
        out.dead_breaker_open,
        out.survivors_quiet,
        out.survivor_dispatched,
    )
}

fn json_partitioned(cell: &PartitionedCell) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"pool-partitioned\",\"devices\":{},\"n\":{},",
            "\"verified\":{},\"residual\":{:.3e},\"chunks\":{},\"interface_rows\":{},",
            "\"local_ms\":{:.4},\"interface_ms\":{:.4},\"backsubst_ms\":{:.4}}}"
        ),
        cell.devices,
        cell.n,
        cell.verified,
        cell.residual,
        cell.chunks,
        cell.interface_rows,
        cell.local_ms,
        cell.interface_ms,
        cell.backsubst_ms,
    )
}

/// Checks the measured scaling/failover numbers against the checked-in
/// `baselines/pool.json` thresholds; returns failure clauses.
fn baseline_failures(
    gate_speedup: Option<f64>,
    gate_throughput: Option<f64>,
    availability: f64,
) -> Vec<String> {
    let baselines = match cli::baseline_path("pool.json").map(std::fs::read_to_string) {
        Some(Ok(text)) => text,
        Some(Err(e)) => return vec![format!("baselines/pool.json unreadable: {e}")],
        None => return vec!["baselines/pool.json missing".to_string()],
    };
    let mut failures = Vec::new();
    match cli::json_object_with(&baselines, "name", "scaling-4dev") {
        Some(row) => {
            if let (Some(min), Some(got)) = (cli::json_f64(row, "min_speedup"), gate_speedup) {
                if got < min {
                    failures.push(format!("scaling: 4-device speedup {got:.2} < baseline {min}"));
                }
            }
            if let (Some(min), Some(got)) =
                (cli::json_f64(row, "min_throughput_per_ms"), gate_throughput)
            {
                if got < min {
                    failures.push(format!(
                        "scaling: 4-device throughput {got:.2}/ms < baseline {min}/ms"
                    ));
                }
            }
        }
        None => failures.push("baselines/pool.json lacks a scaling-4dev row".to_string()),
    }
    match cli::json_object_with(&baselines, "name", "failover") {
        Some(row) => {
            if let Some(min) = cli::json_f64(row, "min_availability") {
                if availability < min {
                    failures
                        .push(format!("failover: availability {availability:.4} < baseline {min}"));
                }
            }
        }
        None => failures.push("baselines/pool.json lacks a failover row".to_string()),
    }
    failures
}

/// Runs the pool sweep; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match cli::parse("pool", args, &[], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let quick = parsed.quick;
    let seed = 20100109;
    let total = if quick { 192 } else { 512 };
    let device_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut failures = 0usize;
    let mut json = Vec::new();

    // 1. Scaling.
    let mut scaling = Table::new(
        format!(
            "Pool scaling: {total} pinned cr+pcr@32 requests (n = {SCALING_N}), \
             round-robin sharding, throughput = completed / max per-device busy ms"
        ),
        &["devices", "completed", "wrong", "makespan ms", "work ms", "steals", "req/ms", "speedup"],
    );
    let mut baseline: Option<f64> = None;
    let mut gate_speedup: Option<f64> = None;
    let mut gate_throughput: Option<f64> = None;
    for &devices in device_counts {
        eprintln!("[pool] scaling @ {devices} device(s) ...");
        let cell = drive_scaling(seed, devices, total);
        let speedup = match baseline {
            None => {
                baseline = Some(cell.throughput);
                1.0
            }
            Some(base) => cell.throughput / base,
        };
        if devices == GATE_DEVICES {
            gate_speedup = Some(speedup);
            gate_throughput = Some(cell.throughput);
        }
        if cell.wrong > 0 {
            failures += 1;
        }
        scaling.row(vec![
            devices.to_string(),
            cell.completed.to_string(),
            cell.wrong.to_string(),
            format!("{:.3}", cell.makespan_ms),
            format!("{:.3}", cell.work_ms),
            cell.steals.to_string(),
            format!("{:.2}", cell.throughput),
            format!("{speedup:.2}x"),
        ]);
        json.push(json_scaling(&cell, speedup));
    }
    let speedup_ok = gate_speedup.is_some_and(|s| s >= GATE_SPEEDUP);
    if !speedup_ok {
        failures += 1;
    }
    scaling.note(format!(
        "gate: {GATE_DEVICES}-device speedup >= {GATE_SPEEDUP:.0}x over 1 device — measured {}",
        gate_speedup.map_or("n/a".to_string(), |s| format!("{s:.2}x")),
    ));
    scaling.note("makespan = max per-device simulated busy ms (parallel critical path)");
    println!("{scaling}");

    // 2. Failover.
    eprintln!("[pool] failover (device 2 lost mid-stream) ...");
    let failover = drive_failover(seed ^ 0xF01, total);
    let failover_ok = failover.passes();
    failures += usize::from(!failover_ok);
    let mut ftable = Table::new(
        "Pool failover: 4 devices, device 2 lost for good on its 4th launch",
        &["requests", "completed", "wrong", "avail %", "dead lost", "breakers", "gate"],
    );
    ftable.row(vec![
        failover.total.to_string(),
        failover.completed.to_string(),
        failover.wrong.to_string(),
        format!("{:.1}", failover.availability * 100.0),
        failover.dead_lost.to_string(),
        format!(
            "dev2 {}, survivors {}",
            if failover.dead_breaker_open { "open" } else { "NOT open" },
            if failover.survivors_quiet { "closed" } else { "NOT closed" }
        ),
        if failover_ok { "pass".into() } else { "FAIL".into() },
    ]);
    ftable.note("gate: wrong = 0, availability >= 99%, only the dead device's breaker opens");
    println!("{ftable}");
    json.push(json_failover(&failover));

    // 3. Partitioned large-n verification.
    let mut sizes: Vec<(usize, bool)> = vec![(1 << 16, true)];
    if !quick {
        // 2^20 rides residual-only: a GEP reference at that size is fine,
        // but element-wise comparison adds nothing the residual misses.
        sizes.push((1 << 20, false));
    }
    let mut ptable = Table::new(
        "Partitioned large-n solves across the pool (modified Thomas -> PCR interface -> \
         back-substitution), verified against CPU GEP",
        &[
            "devices",
            "n",
            "chunks",
            "iface rows",
            "local ms",
            "iface ms",
            "backsubst ms",
            "max rel err",
            "residual",
            "gate",
        ],
    );
    for &(n, elementwise) in &sizes {
        let sys: TridiagonalSystem<f64> =
            Generator::new(seed ^ n as u64).system(Workload::DiagonallyDominant, n);
        let x_ref = if elementwise {
            Some(cpu_solvers::gep::solve(&sys).expect("GEP reference"))
        } else {
            None
        };
        for &devices in device_counts {
            eprintln!("[pool] partitioned n=2^{} @ {devices} device(s) ...", n.trailing_zeros());
            let cell = drive_partitioned(seed, devices, n, x_ref.as_deref(), &sys);
            failures += usize::from(!cell.verified);
            ptable.row(vec![
                devices.to_string(),
                format!("2^{}", n.trailing_zeros()),
                cell.chunks.to_string(),
                cell.interface_rows.to_string(),
                format!("{:.4}", cell.local_ms),
                format!("{:.4}", cell.interface_ms),
                format!("{:.4}", cell.backsubst_ms),
                if cell.max_rel_err.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.2e}", cell.max_rel_err)
                },
                format!("{:.2e}", cell.residual),
                if cell.verified { "pass".into() } else { "FAIL".into() },
            ]);
            json.push(json_partitioned(&cell));
        }
    }
    ptable.note("gate: element-wise rel err < 1e-9 vs GEP (2^16) and l2 residual < 1e-6");
    println!("{ptable}");

    if parsed.json {
        for line in &json {
            println!("{line}");
        }
    }

    let bench = format!("{{\"bench\":\"pool\",\"quick\":{quick},\"rows\":[{}]}}\n", json.join(","));
    match cli::write_bench("BENCH_pool.json", &bench) {
        Ok(path) => eprintln!("[pool] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[pool] FAIL: writing BENCH_pool.json: {e}");
            failures += 1;
        }
    }

    for clause in baseline_failures(gate_speedup, gate_throughput, failover.availability) {
        eprintln!("[pool] FAIL: {clause}");
        failures += 1;
    }

    if failures > 0 {
        eprintln!("[pool] FAIL: {failures} gate(s) broke");
        EXIT_GATE_FAIL
    } else {
        println!(
            "[pool] PASS: scaling >= {GATE_SPEEDUP:.0}x at {GATE_DEVICES} devices, \
             failover lossless, all partitioned solves verified, baselines held"
        );
        EXIT_PASS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_four_devices_beats_three_x() {
        // The makespan is simulated device time, but *which* device a flush
        // lands on depends on wall-clock worker scheduling: when the test
        // harness oversubscribes the host, a starved worker's backlog gets
        // stolen and the spread (and so the speedup) degrades. A long
        // stream amortises transient starvation, and best-of-three rides
        // out a pathological run; `repro pool` remains the standalone gate.
        const TOTAL: usize = 768;
        let mut best = 0.0f64;
        for attempt in 0u64..3 {
            let one = drive_scaling(3 + attempt, 1, TOTAL);
            let four = drive_scaling(3 + attempt, GATE_DEVICES, TOTAL);
            assert_eq!(one.wrong + four.wrong, 0);
            assert_eq!(one.completed, TOTAL as u64);
            assert_eq!(four.completed, TOTAL as u64);
            best = best.max(four.throughput / one.throughput);
            if best >= GATE_SPEEDUP {
                break;
            }
        }
        assert!(best >= GATE_SPEEDUP, "4-device speedup {best:.2} < {GATE_SPEEDUP} (best of 3)");
    }

    #[test]
    fn failover_cell_passes_its_gate() {
        let out = drive_failover(5, 120);
        assert!(
            out.passes(),
            "wrong={} avail={:.3} dead_lost={} open={} quiet={}",
            out.wrong,
            out.availability,
            out.dead_lost,
            out.dead_breaker_open,
            out.survivors_quiet
        );
    }

    #[test]
    fn partitioned_cell_verifies_at_2_16() {
        let n = 1 << 16;
        let sys: TridiagonalSystem<f64> = Generator::new(9).system(Workload::DiagonallyDominant, n);
        let x_ref = cpu_solvers::gep::solve(&sys).unwrap();
        let cell = drive_partitioned(9, 4, n, Some(&x_ref), &sys);
        assert!(cell.verified, "rel err {:.3e} residual {:.3e}", cell.max_rel_err, cell.residual);
        assert_eq!(cell.interface_rows, 2 * cell.chunks);
    }

    #[test]
    fn json_rows_are_balanced() {
        let cell = drive_scaling(1, 2, 24);
        let line = json_scaling(&cell, 1.5);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(run(&["--bogus".to_string()]), 2);
    }
}
