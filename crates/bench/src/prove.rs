//! The `prove` subcommand: the static kernel-verification gate.
//!
//! ```text
//! cargo run --release -p bench -- prove            # full family sweep
//! cargo run --release -p bench -- prove --quick    # CI gate subset
//! cargo run --release -p bench -- prove --overhead # proved-vs-sanitized admission timing
//! ```
//!
//! Where the `sanitize` gate *runs* every solver under the dynamic
//! sanitizer on one batch, this gate *proves* them: every registered
//! production solver is verified symbolically over its declared size
//! family ([`verify_family`]), and the gate demands each member be
//! `Proven` — or `Unproven` only where the soundness boundary is
//! documented (the per-thread Thomas kernel's count-dependent access
//! skeleton). The deliberately-buggy fixture kernels must all come back
//! `Violated`: a verifier that cannot catch a planted race would be
//! worthless as a sanitize replacement. Results land in
//! `target/repro/BENCH_prove.json` and are gated against the floors in
//! `baselines/prove.json`.

use crate::report::Table;
use gpu_sim::DeviceConfig;
use gpu_solvers::{verify_family, GpuAlgorithm, RdMode, FIXTURE_NAMES};
use kernel_verify::{verify_block_cr, verify_fixture, verify_solver, ProofStatus, VerifyOptions};
use std::time::Instant;
use tridiag_core::Real;

/// Every production solver the proof gate covers, hybrids at the m = 32
/// switch point (their families extend over all admissible n ≥ m).
fn registered() -> Vec<GpuAlgorithm> {
    vec![
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::Rd(RdMode::Rescaled),
        GpuAlgorithm::CrPcr { m: 32 },
        GpuAlgorithm::CrRd { m: 32, mode: RdMode::Plain },
        GpuAlgorithm::CrRd { m: 32, mode: RdMode::Rescaled },
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrGlobalOnly,
        GpuAlgorithm::ThomasPerThread,
    ]
}

/// `true` for the solvers whose `Unproven` verdict is the *documented*
/// soundness boundary rather than a regression: the per-thread Thomas
/// kernel's interleaved index `i*count + s` is bilinear in (thread,
/// count), so no affine family proof exists for it by design.
fn documented_unproven(alg: GpuAlgorithm) -> bool {
    matches!(alg, GpuAlgorithm::ThomasPerThread)
}

/// Tally of one element type's family sweep.
#[derive(Debug, Default, Clone, Copy)]
struct SweepTotals {
    proven: usize,
    documented_unproven: usize,
    violated: usize,
    unexpected_unproven: usize,
}

/// Sweeps every registered solver's declared family (members ≤ `cap`) at
/// width `T`, appending one table row and one JSON row per solver.
fn sweep_type<T: Real>(
    ty: &str,
    cap: usize,
    table: &mut Table,
    json_rows: &mut Vec<String>,
) -> SweepTotals {
    let device = DeviceConfig::gtx280();
    let opts = VerifyOptions::default();
    let mut totals = SweepTotals::default();
    for alg in registered() {
        let family: Vec<usize> =
            verify_family(alg, T::BYTES, &device).into_iter().filter(|&n| n <= cap).collect();
        let started = Instant::now();
        let mut proven = 0usize;
        let mut unproven = 0usize;
        let mut violated = 0usize;
        let mut worst = String::from("-");
        for &n in &family {
            let v = verify_solver::<T>(alg, n, &opts);
            match v.status {
                ProofStatus::Proven => proven += 1,
                ProofStatus::Unproven => {
                    unproven += 1;
                    if worst == "-" {
                        worst =
                            format!("n={n}: {}", v.unproven.first().cloned().unwrap_or_default());
                    }
                }
                ProofStatus::Violated => {
                    violated += 1;
                    worst = format!(
                        "n={n}: {}",
                        v.findings.first().map(|f| f.site()).unwrap_or_default()
                    );
                }
            }
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let status = if violated > 0 {
            "VIOLATED"
        } else if unproven > 0 && documented_unproven(alg) && proven == 0 {
            "unproven (documented)"
        } else if unproven > 0 {
            "UNPROVEN (unexpected)"
        } else {
            "all proven"
        };
        totals.proven += proven;
        totals.violated += violated;
        if documented_unproven(alg) {
            totals.documented_unproven += unproven;
        } else {
            totals.unexpected_unproven += unproven;
        }
        table.row(vec![
            alg.name().to_string(),
            ty.to_string(),
            family.len().to_string(),
            proven.to_string(),
            unproven.to_string(),
            violated.to_string(),
            status.to_string(),
            format!("{wall_ms:.0}"),
            worst,
        ]);
        json_rows.push(format!(
            "{{\"name\":\"{alg}/{ty}\",\"members\":{},\"proven\":{proven},\
             \"unproven\":{unproven},\"violated\":{violated},\"verify_ms\":{wall_ms:.1}}}",
            family.len(),
        ));
    }
    totals
}

/// Verifies the block-tridiagonal CR kernel over `sizes`; returns the
/// number proven (the gate demands all of them).
fn sweep_block_cr(sizes_f32: &[usize], f64_n: Option<usize>, table: &mut Table) -> (usize, usize) {
    let opts = VerifyOptions::default();
    let mut proven = 0usize;
    let mut total = 0usize;
    let mut check = |v: kernel_verify::SizeVerdict, ty: &str, n: usize| {
        total += 1;
        let ok = v.status == ProofStatus::Proven;
        if ok {
            proven += 1;
        }
        table.row(vec![
            "block-cr".to_string(),
            ty.to_string(),
            "1".to_string(),
            if ok { "1" } else { "0" }.to_string(),
            if v.status == ProofStatus::Unproven { "1" } else { "0" }.to_string(),
            if v.status == ProofStatus::Violated { "1" } else { "0" }.to_string(),
            if ok { "all proven".to_string() } else { v.status.name().to_string() },
            format!("{:.0}", v.wall_ms),
            format!("n={n}"),
        ]);
    };
    for &n in sizes_f32 {
        check(verify_block_cr::<f32>(n, &opts), "f32", n);
    }
    if let Some(n) = f64_n {
        check(verify_block_cr::<f64>(n, &opts), "f64", n);
    }
    (proven, total)
}

/// Runs every buggy fixture through the verifier; returns (caught,
/// expected). A fixture is *caught* when the verdict is `Violated` at
/// every probed size.
fn sweep_fixtures(sizes: &[usize], table: &mut Table) -> (usize, usize) {
    let opts = VerifyOptions::default();
    let mut caught = 0usize;
    for name in FIXTURE_NAMES {
        let mut all_violated = true;
        let mut worst = String::from("-");
        let started = Instant::now();
        for &n in sizes {
            let v = verify_fixture::<f32>(name, n, &opts);
            if v.status != ProofStatus::Violated {
                all_violated = false;
            } else if let Some(f) = v.findings.first() {
                worst = format!("{} at {}", f.kind.name(), f.site());
            }
        }
        if all_violated {
            caught += 1;
        }
        table.row(vec![
            name.to_string(),
            "f32".to_string(),
            sizes.len().to_string(),
            "0".to_string(),
            "0".to_string(),
            if all_violated { sizes.len().to_string() } else { "MISSED".to_string() },
            if all_violated { "violated (caught)" } else { "NOT CAUGHT" }.to_string(),
            format!("{:.0}", started.elapsed().as_secs_f64() * 1e3),
            worst,
        ]);
    }
    (caught, FIXTURE_NAMES.len())
}

/// Runs the proof gate; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match crate::cli::parse("prove", args, &["overhead"], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let quick = parsed.quick;
    if parsed.has("overhead") {
        println!("{}", overhead_table());
        if !quick {
            return crate::cli::EXIT_PASS;
        }
    }

    let cap = if quick { 256 } else { 4096 };
    let mut table = Table::new(
        if quick { "Symbolic proof sweep (--quick)" } else { "Symbolic proof sweep" },
        &["solver", "type", "members", "proven", "unproven", "violated", "status", "ms", "detail"],
    );
    let mut json_rows: Vec<String> = Vec::new();
    let f32_totals = sweep_type::<f32>("f32", cap, &mut table, &mut json_rows);
    let f64_totals = if quick {
        SweepTotals::default()
    } else {
        sweep_type::<f64>("f64", cap, &mut table, &mut json_rows)
    };
    let (block_proven, block_total) = if quick {
        sweep_block_cr(&[16, 64], None, &mut table)
    } else {
        sweep_block_cr(&[4, 16, 64, 128], Some(32), &mut table)
    };
    let fixture_sizes: &[usize] = if quick { &[16] } else { &[16, 64] };
    let (caught, expected) = sweep_fixtures(fixture_sizes, &mut table);
    table.note(format!(
        "families from verify_family, members capped at n <= {cap}; \
         the per-thread Thomas kernel is the documented Unproven boundary"
    ));
    table.note("fixtures are the deliberately-buggy kernels: all must come back VIOLATED");
    println!("{table}");

    // Gate clauses, hard ones first.
    let mut failures: Vec<String> = Vec::new();
    let violated = f32_totals.violated + f64_totals.violated;
    if violated > 0 {
        failures.push(format!("{violated} production family member(s) VIOLATED"));
    }
    let unexpected = f32_totals.unexpected_unproven + f64_totals.unexpected_unproven;
    if unexpected > 0 {
        failures.push(format!("{unexpected} undocumented Unproven member(s)"));
    }
    if block_proven != block_total {
        failures.push(format!("block-cr: {block_proven}/{block_total} proven"));
    }
    if caught != expected {
        failures.push(format!("fixtures: only {caught}/{expected} caught"));
    }

    // Baseline floors (guard against the family silently shrinking).
    match crate::cli::baseline_path("prove.json") {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_default();
            let floor_key = if quick { "min_proven_quick" } else { "min_proven_full" };
            if let Some(row) = crate::cli::json_object_with(&text, "name", "solvers") {
                if let Some(floor) = crate::cli::json_u64(row, floor_key) {
                    let proven = (f32_totals.proven + f64_totals.proven) as u64;
                    if proven < floor {
                        failures.push(format!("proven members {proven} < baseline floor {floor}"));
                    }
                }
            }
            if let Some(row) = crate::cli::json_object_with(&text, "name", "fixtures") {
                if let Some(floor) = crate::cli::json_u64(row, "min_caught") {
                    if (caught as u64) < floor {
                        failures.push(format!("fixtures caught {caught} < floor {floor}"));
                    }
                }
            }
        }
        None => println!("[prove] note: baselines/prove.json not found; floors skipped"),
    }

    let pass = failures.is_empty();
    json_rows.insert(
        0,
        format!(
            "{{\"name\":\"solvers\",\"proven\":{},\"documented_unproven\":{},\
             \"violated\":{violated},\"unexpected_unproven\":{unexpected}}}",
            f32_totals.proven + f64_totals.proven,
            f32_totals.documented_unproven + f64_totals.documented_unproven,
        ),
    );
    json_rows.push(format!(
        "{{\"name\":\"block-cr\",\"proven\":{block_proven},\"total\":{block_total}}}"
    ));
    json_rows
        .push(format!("{{\"name\":\"fixtures\",\"caught\":{caught},\"expected\":{expected}}}"));
    let json = format!(
        "{{\"bench\":\"prove\",\"quick\":{quick},\"rows\":[{}],\"pass\":{pass}}}",
        json_rows.join(",")
    );
    match crate::cli::write_bench("BENCH_prove.json", &json) {
        Ok(path) => println!("[prove] wrote {}", path.display()),
        Err(e) => eprintln!("[prove] could not write BENCH_prove.json: {e}"),
    }
    if parsed.json {
        println!("{json}");
    }

    if pass {
        println!("[prove] PASS: every family member proven (or documented unproven)");
        crate::cli::EXIT_PASS
    } else {
        for f in &failures {
            eprintln!("[prove] FAIL: {f}");
        }
        crate::cli::EXIT_GATE_FAIL
    }
}

/// Times the first GPU flush of a fresh size class three ways — dynamic
/// sanitize, static-proof skip, and sanitizing disabled — on the paper's
/// headline n = 512 class. The proof is constructed once up front (its
/// one-time cost is reported separately); what the table shows is the
/// *recurring* admission overhead a served size class pays.
fn overhead_table() -> Table {
    use solver_service::{
        make_request, serve_flush, CircuitBreakers, DeviceCtx, DispatchConfig, Engine, FlushReason,
        FlushedBatch, PlanCache, ServiceMetrics,
    };
    use std::sync::Arc;
    use tridiag_core::{Generator, Workload};

    let n = 512usize;
    let count = 64usize;
    let alg = GpuAlgorithm::CrPcr { m: 256 }; // the paper's winner at 512
    let launcher = gpu_sim::Launcher::gtx280();
    let catalog = Arc::new(kernel_verify::VerifiedCatalog::new());
    let proof_start = Instant::now();
    let proven = catalog.is_proven::<f32>(&launcher.device, alg, n);
    let proof_once_ms = proof_start.elapsed().as_secs_f64() * 1e3;

    let time_first_flush =
        |sanitize: bool, verified: Option<Arc<kernel_verify::VerifiedCatalog>>| {
            let cfg = DispatchConfig {
                pin_engine: Some(Engine::Gpu(alg)),
                sanitize_first_flush: sanitize,
                verified,
                ..DispatchConfig::default()
            };
            let reps = 5;
            let mut samples = Vec::with_capacity(reps);
            for rep in 0..reps {
                // A fresh PlanCache per rep: every rep is a *first* flush.
                let plans = PlanCache::new();
                let metrics = ServiceMetrics::new();
                let mut generator = Generator::new(0xBEEF ^ rep as u64);
                let requests = (0..count)
                    .map(|i| {
                        make_request(
                            i as u64,
                            generator.system::<f32>(Workload::DiagonallyDominant, n),
                        )
                        .0
                    })
                    .collect();
                let flush = FlushedBatch { n, requests, reason: FlushReason::Full };
                let start = Instant::now();
                serve_flush(
                    DeviceCtx::solo(&launcher),
                    &plans,
                    &CircuitBreakers::default(),
                    &metrics,
                    &cfg,
                    flush,
                );
                samples.push(start.elapsed().as_secs_f64() * 1e3);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            samples[reps / 2]
        };

    let t_sanitized = time_first_flush(true, None);
    let t_proved = time_first_flush(true, Some(Arc::clone(&catalog)));
    let t_off = time_first_flush(false, None);

    let mut table = Table::new(
        "First-flush admission overhead: dynamic sanitize vs static proof (512-unknown class, \
         64-system flush, f32, cr+pcr@256)",
        &["admission", "first-flush ms", "overhead vs off"],
    );
    for (name, ms) in [
        ("sanitize off (unchecked)", t_off),
        ("dynamic sanitize", t_sanitized),
        ("static proof (skip)", t_proved),
    ] {
        table.row(vec![name.to_string(), format!("{ms:.1}"), format!("{:.2}x", ms / t_off)]);
    }
    table.note(format!(
        "one-time proof construction: {proof_once_ms:.0} ms (memoized in the catalog; proven = \
         {proven}); recurring cost after the first flush is identical for all three"
    ));
    table.note(
        "host wall-clock of serve_flush (plan pinned, fresh size class each rep, median of 5)",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_gates_green() {
        // The full quick gate must pass from a clean tree — this is the CI
        // contract, asserted here so `cargo test` catches a broken gate
        // before the shell pipeline does.
        assert_eq!(run(&["--quick".to_string()]), crate::cli::EXIT_PASS);
    }

    #[test]
    fn fixtures_are_all_caught() {
        let mut table = Table::new("t", &["s", "t", "m", "p", "u", "v", "st", "ms", "d"]);
        let (caught, expected) = sweep_fixtures(&[16], &mut table);
        assert_eq!(caught, expected);
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(run(&["--bogus".to_string()]), crate::cli::EXIT_USAGE);
    }
}
