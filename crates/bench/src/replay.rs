//! The `replay` subcommand: the bit-identical determinism gate.
//!
//! ```text
//! cargo run --release -p bench -- replay            # capture + replay, 1000-request chaos cell
//! cargo run --release -p bench -- replay --quick    # CI-sized (300 requests)
//! cargo run --release -p bench -- replay t.trace    # verify an existing trace file
//! ```
//!
//! Without an operand the gate runs the acceptance loop: capture the
//! 5%-fault chaos scenario **twice**, demand the two serialized traces be
//! byte-identical, round-trip one through `target/repro/chaos.trace`, and
//! replay-verify the loaded copy event-by-event. With a trace operand it
//! re-runs that file's embedded scenario and verifies against the recorded
//! stream — exit 1 on the first divergence.

use crate::cli::{self, EXIT_GATE_FAIL, EXIT_PASS};
use crate::report::Table;
use trace_lab::{replay, RunStats, Scenario, TraceFile};

fn json_row(trace: &TraceFile, stats: &RunStats, identical: bool) -> String {
    format!(
        concat!(
            "{{\"experiment\":\"replay\",\"scenario\":\"{}\",\"seed\":{},",
            "\"config_hash\":\"{:#018x}\",\"requests\":{},\"events\":{},",
            "\"served\":{},\"rejected\":{},\"repairs\":{},\"wrong\":{},",
            "\"makespan_ns\":{},\"identical\":{}}}"
        ),
        trace.scenario.name,
        trace.seed,
        trace.config_hash,
        trace.scenario.requests,
        trace.events.len(),
        stats.served,
        stats.rejected,
        stats.repairs,
        stats.wrong,
        stats.final_tick,
        identical,
    )
}

fn summary_table(trace: &TraceFile, stats: &RunStats, verdict: &str) -> Table {
    let mut table = Table::new(
        format!(
            "Replay gate: scenario '{}' (seed {:#x}, config hash {:#018x}, captured @ {})",
            trace.scenario.name, trace.seed, trace.config_hash, trace.git_rev
        ),
        &["requests", "events", "served", "rejected", "repairs", "wrong", "makespan ms", "verdict"],
    );
    table.row(vec![
        trace.scenario.requests.to_string(),
        trace.events.len().to_string(),
        stats.served.to_string(),
        stats.rejected.to_string(),
        stats.repairs.to_string(),
        stats.wrong.to_string(),
        format!("{:.3}", stats.final_tick as f64 / 1e6),
        verdict.to_string(),
    ]);
    table.note("verdict 'bit-identical' = every event, timestamps included, matched the trace");
    table
}

/// The no-operand acceptance loop. Returns the exit code.
fn self_gate(quick: bool, json: bool) -> i32 {
    let requests = if quick { 300 } else { 1000 };
    let scenario = Scenario::chaos(requests);
    eprintln!("[replay] capturing '{}' x2 ({requests} requests) ...", scenario.name);
    let (trace_a, stats_a) = replay::capture(&scenario);
    let (trace_b, _) = replay::capture(&scenario);

    let bytes_a = trace_a.to_bytes();
    if bytes_a != trace_b.to_bytes() {
        eprintln!("[replay] FAIL: two captures of the same scenario serialized differently");
        return EXIT_GATE_FAIL;
    }

    let path = cli::repro_dir().join("chaos.trace");
    if let Err(e) = trace_a.write(&path) {
        eprintln!("[replay] FAIL: writing {}: {e}", path.display());
        return EXIT_GATE_FAIL;
    }
    let loaded = match TraceFile::read(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[replay] FAIL: reading back {}: {e}", path.display());
            return EXIT_GATE_FAIL;
        }
    };

    eprintln!("[replay] verifying the round-tripped trace ...");
    match replay::verify(&loaded) {
        Ok(replay_stats) if replay_stats == stats_a => {
            println!("{}", summary_table(&loaded, &stats_a, "bit-identical"));
            if json {
                println!("{}", json_row(&loaded, &stats_a, true));
            }
            println!(
                "[replay] PASS: {} events bit-identical across two runs (trace: {})",
                loaded.events.len(),
                path.display()
            );
            EXIT_PASS
        }
        Ok(_) => {
            eprintln!("[replay] FAIL: events matched but run stats diverged");
            EXIT_GATE_FAIL
        }
        Err(divergence) => {
            eprintln!("[replay] FAIL: {divergence}");
            EXIT_GATE_FAIL
        }
    }
}

/// Verifies an existing trace file. Returns the exit code.
fn verify_file(path: &str, json: bool) -> i32 {
    let trace = match TraceFile::read(std::path::Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[replay] FAIL: {path}: {e}");
            return EXIT_GATE_FAIL;
        }
    };
    eprintln!(
        "[replay] replaying '{}' ({} events, captured @ {}) ...",
        trace.scenario.name,
        trace.events.len(),
        trace.git_rev
    );
    match replay::verify(&trace) {
        Ok(stats) => {
            println!("{}", summary_table(&trace, &stats, "bit-identical"));
            if json {
                println!("{}", json_row(&trace, &stats, true));
            }
            println!("[replay] PASS: replay matched {} recorded events", trace.events.len());
            EXIT_PASS
        }
        Err(divergence) => {
            eprintln!("[replay] FAIL: {divergence}");
            EXIT_GATE_FAIL
        }
    }
}

/// Runs the replay gate; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match cli::parse("replay", args, &[], 1) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    match parsed.operands.first() {
        Some(path) => verify_file(path, parsed.json),
        None => self_gate(parsed.quick, parsed.json),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_quick_self_gate_passes() {
        assert_eq!(run(&["--quick".to_string()]), EXIT_PASS);
    }

    #[test]
    fn a_missing_trace_operand_fails_the_gate_not_usage() {
        assert_eq!(run(&["/nonexistent/x.trace".to_string()]), EXIT_GATE_FAIL);
    }

    #[test]
    fn unknown_flags_are_usage_errors() {
        assert_eq!(run(&["--frobnicate".to_string()]), cli::EXIT_USAGE);
    }
}
