//! Plain-text tables for the reproduction reports.

use core::fmt;
use serde::Serialize;

/// A titled table with aligned columns and optional footnotes — the output
/// unit of every figure module.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table {
    /// Title, e.g. "Figure 6 (left): five GPU solvers, kernel time".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Footnotes (paper references, substitution notes).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(cells);
        self
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Column widths for aligned printing.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (i, cell) in cells.iter().enumerate() {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{:>width$}", cell, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  * {note}")?;
        }
        Ok(())
    }
}

/// Formats milliseconds with three decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a residual in scientific notation, or "overflow".
pub fn residual(v: f64, overflowed: bool) -> String {
    if overflowed {
        "overflow".to_string()
    } else {
        format!("{v:.2e}")
    }
}

/// Formats a speedup factor like the paper's "12.5x" labels.
pub fn speedup(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "ms"]);
        t.row(vec!["CR".into(), "1.066".into()]);
        t.row(vec!["CR+PCR".into(), "0.422".into()]);
        t.note("paper values");
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("CR+PCR"));
        assert!(s.contains("* paper values"));
        // Right-aligned columns: header 'name' padded to 'CR+PCR' width.
        assert!(s.lines().nth(1).unwrap().starts_with("  name"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(1.0664), "1.066");
        assert_eq!(residual(1.5e-6, false), "1.50e-6");
        assert_eq!(residual(0.0, true), "overflow");
        assert_eq!(speedup(12.49), "12.5x");
    }
}
