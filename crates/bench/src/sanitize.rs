//! The `sanitize` subcommand: sweeps every registered production solver
//! under the kernel sanitizer and reports a pass/fail table.
//!
//! ```text
//! cargo run --release -p bench -- sanitize            # full sweep
//! cargo run --release -p bench -- sanitize --quick    # CI gate subset
//! cargo run --release -p bench -- sanitize --overhead # record-vs-off timing
//! ```
//!
//! Every cell solves a batch in [`SanitizeMode::Record`] and counts the
//! diagnostics by severity. The command exits non-zero iff any
//! **Error**-severity diagnostic (race, hazard, OOB, uninitialized read)
//! is found — warnings (bank conflicts, RD's non-finite overflow) are
//! expected for some algorithms and are reported but do not fail the gate.

use crate::report::Table;
use gpu_sim::{Diagnostic, Launcher, SanitizeOptions};
use gpu_solvers::{solve_batch, GpuAlgorithm, RdMode};
use std::time::Instant;
use tridiag_core::{Generator, Real, SystemBatch, TridiagError, Workload};

/// Every solver registered in [`GpuAlgorithm`], with the hybrids at the
/// paper's §5.3 switch points for size `n`.
fn registered(n: usize) -> Vec<GpuAlgorithm> {
    let m2 = (n / 2).max(2);
    let m4 = (n / 4).max(2);
    vec![
        GpuAlgorithm::Cr,
        GpuAlgorithm::Pcr,
        GpuAlgorithm::Rd(RdMode::Plain),
        GpuAlgorithm::Rd(RdMode::Rescaled),
        GpuAlgorithm::CrPcr { m: m2 },
        GpuAlgorithm::CrRd { m: m4, mode: RdMode::Plain },
        GpuAlgorithm::CrRd { m: m4, mode: RdMode::Rescaled },
        GpuAlgorithm::CrEvenOdd,
        GpuAlgorithm::CrGlobalOnly,
        GpuAlgorithm::ThomasPerThread,
    ]
}

/// One-line summary of the worst diagnostic (highest severity, then most
/// occurrences), or `-` when clean.
fn worst(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .max_by_key(|d| (d.severity, d.occurrences))
        .map(|d| {
            let deg = d.degree.map(|g| format!(" deg {g}")).unwrap_or_default();
            format!("{} x{}{}", d.kind.name(), d.occurrences, deg)
        })
        .unwrap_or_else(|| "-".to_string())
}

/// Sweeps one element type over all sizes/workloads; appends rows to the
/// table and returns the number of Error-severity findings.
fn sweep_type<T: Real>(
    ty: &str,
    sizes: &[usize],
    workloads: &[Workload],
    count: usize,
    seed: u64,
    table: &mut Table,
) -> usize {
    let launcher = Launcher::gtx280().with_sanitize(SanitizeOptions::record());
    let mut errors = 0usize;
    for &n in sizes {
        for &w in workloads {
            let batch: SystemBatch<T> =
                Generator::new(seed ^ n as u64).batch(w, n, count).expect("workload generation");
            for alg in registered(n) {
                let row = match solve_batch(&launcher, alg, &batch) {
                    Ok(report) => {
                        let e = report.sanitizer_error_count();
                        let wn = report.sanitizer_warning_count();
                        errors += e;
                        vec![
                            alg.name().to_string(),
                            n.to_string(),
                            ty.to_string(),
                            w.name().to_string(),
                            if e == 0 { "clean".into() } else { "FAIL".into() },
                            e.to_string(),
                            wn.to_string(),
                            worst(&report.diagnostics),
                        ]
                    }
                    // Configurations the device cannot launch at all —
                    // shared arrays over the GTX 280's 16 KB, or one-thread-
                    // per-unknown kernels needing more than 512 threads —
                    // are skipped, not failed: the launcher rejects them
                    // before any kernel runs, so there is nothing to check.
                    Err(
                        e @ (TridiagError::SharedMemExceeded { .. }
                        | TridiagError::InvalidConfig { .. }),
                    ) => {
                        let why = match e {
                            TridiagError::SharedMemExceeded { .. } => "exceeds shared memory",
                            _ => "exceeds block-dimension limit",
                        };
                        vec![
                            alg.name().to_string(),
                            n.to_string(),
                            ty.to_string(),
                            w.name().to_string(),
                            "skip".into(),
                            "-".into(),
                            "-".into(),
                            why.into(),
                        ]
                    }
                    Err(e) => {
                        errors += 1;
                        vec![
                            alg.name().to_string(),
                            n.to_string(),
                            ty.to_string(),
                            w.name().to_string(),
                            "FAIL".into(),
                            "1".into(),
                            "0".into(),
                            format!("{e:?}"),
                        ]
                    }
                };
                table.row(row);
            }
        }
    }
    errors
}

/// Runs the sanitizer sweep; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let parsed = match crate::cli::parse("sanitize", args, &["overhead"], 0) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let quick = parsed.quick;
    if parsed.has("overhead") {
        println!("{}", overhead_table());
        if quick {
            // fall through to the sweep too
        } else {
            return crate::cli::EXIT_PASS;
        }
    }

    // The sweep: n in 64..=1024 (powers of two), f32 + f64, an in-range
    // workload and a stress workload that provokes RD's overflow.
    let (sizes, count): (&[usize], usize) =
        if quick { (&[64, 256], 2) } else { (&[64, 128, 256, 512, 1024], 4) };
    let workloads: &[Workload] = if quick {
        &[Workload::DiagonallyDominant]
    } else {
        &[Workload::DiagonallyDominant, Workload::RandomGeneral]
    };

    let mut table = Table::new(
        if quick { "Sanitizer sweep (--quick)" } else { "Sanitizer sweep" },
        &["solver", "n", "type", "workload", "status", "errors", "warnings", "worst diagnostic"],
    );
    let mut errors = sweep_type::<f32>("f32", sizes, workloads, count, 0xC0FFEE, &mut table);
    if !quick {
        errors += sweep_type::<f64>("f64", sizes, workloads, count, 0xC0FFEE, &mut table);
    }
    table.note("mode: record (all blocks); errors = races/hazards/OOB/uninitialized reads");
    table.note(
        "warnings (bank conflicts, non-finite origins) are expected for some \
         algorithms and do not fail the gate",
    );
    println!("{table}");

    if parsed.json {
        println!(
            "{{\"experiment\":\"sanitize\",\"quick\":{quick},\"errors\":{errors},\
             \"pass\":{}}}",
            errors == 0
        );
    }

    if errors > 0 {
        eprintln!("[sanitize] FAIL: {errors} error-severity diagnostic(s)");
        crate::cli::EXIT_GATE_FAIL
    } else {
        println!("[sanitize] PASS: no error-severity diagnostics");
        crate::cli::EXIT_PASS
    }
}

/// Times the paper's five solvers on the headline 512x512 batch with the
/// sanitizer off vs recording — the overhead table for EXPERIMENTS.md.
fn overhead_table() -> Table {
    let batch = tridiag_core::dominant_batch::<f32>(20100109, 512, 512);
    let off = Launcher::gtx280();
    let rec = Launcher::gtx280().with_sanitize(SanitizeOptions::record());
    let mut table = Table::new(
        "Sanitizer overhead: wall-clock of solve_batch, off vs record (512x512 f32)",
        &["solver", "off ms", "record ms", "overhead"],
    );
    for alg in GpuAlgorithm::paper_five(512) {
        let time = |launcher: &Launcher| {
            let reps = 3;
            let start = Instant::now();
            for _ in 0..reps {
                solve_batch(launcher, alg, &batch).expect("solve");
            }
            start.elapsed().as_secs_f64() * 1e3 / reps as f64
        };
        let t_off = time(&off);
        let t_rec = time(&rec);
        table.row(vec![
            alg.name().to_string(),
            format!("{t_off:.1}"),
            format!("{t_rec:.1}"),
            format!("{:.2}x", t_rec / t_off),
        ]);
    }
    table.note("host wall-clock of the whole simulated solve, not simulated kernel time");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean() {
        let mut table = Table::new("t", &["s", "n", "t", "w", "st", "e", "w2", "d"]);
        let errors =
            sweep_type::<f32>("f32", &[64], &[Workload::DiagonallyDominant], 2, 7, &mut table);
        assert_eq!(errors, 0, "{table}");
        // Every registered solver produced a row.
        assert_eq!(table.rows.len(), registered(64).len());
    }

    #[test]
    fn worst_picks_highest_severity_then_occurrences() {
        assert_eq!(worst(&[]), "-");
    }

    #[test]
    fn rejects_unknown_flags() {
        assert_eq!(run(&["--bogus".to_string()]), 2);
    }
}
