//! Wall-clock measurement for the CPU baselines.
//!
//! The GPU solvers report *simulated* time from the cost model; the CPU
//! solvers are real code on the host, measured here with a
//! minimum-of-N-repetitions protocol (the usual noise-robust choice for
//! short kernels).

use std::time::Instant;

/// Runs `f` `reps + 1` times (first run warms caches, untimed) and returns
/// the minimum wall-clock milliseconds of the timed runs.
pub fn time_min_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(reps >= 1);
    let _warmup = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let r = f();
        let dt = start.elapsed().as_secs_f64() * 1e3;
        core::hint::black_box(r);
        best = best.min(dt);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let t = time_min_ms(3, || {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(t > 0.0);
        assert!(t < 1000.0);
    }

    #[test]
    fn min_is_at_most_any_single_run() {
        // With identical work the min of 5 runs is no larger than a fresh
        // single run most of the time; just sanity-check ordering holds
        // against an intentionally slower variant.
        // black_box the bounds so release builds can't const-fold the sums.
        let fast = time_min_ms(3, || (0..core::hint::black_box(10_000u64)).sum::<u64>());
        let slow = time_min_ms(3, || {
            (0..core::hint::black_box(20_000_000u64)).map(core::hint::black_box).sum::<u64>()
        });
        assert!(fast < slow);
    }
}
