//! The cluster: N [`ClusterNode`]s, the faulty [`Network`] between them,
//! the gossip protocol, the consistent-hash ring, and the RPC layer.
//!
//! The RPC layer is where the clock *does* advance: [`Cluster::rpc`]
//! prices each leg through the network and waits out `min(latency,
//! deadline)` per leg on the virtual clock, retrying with exponential
//! backoff plus deterministic jitter. A dropped response re-executes the
//! work on retry — the callee is a pure solve, so at-least-once execution
//! is safe and the bookkeeping stays honest (the caller only counts a
//! result it actually received).

use crate::gossip::{node_key, Gossip, GossipConfig, PeerState};
use crate::net::Network;
use crate::node::ClusterNode;
use crate::ring::HashRing;
use crate::{LinkModel, NetFaultConfig};
use device_pool::{PoolConfig, RoutingPolicy};
use gpu_sim::{derive_node_seed, Clock, FaultConfig, Launcher};
use solver_service::{BreakerConfig, BreakerState, TraceEvent, TraceHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// RPC timing knobs. The deadline is **per leg** and payload-aware: a
/// leg's budget is `deadline + link.duration(bytes)` — fixed slack on
/// top of the ideal transfer time — so one knob governs both 64-byte
/// pings and multi-megabyte coefficient spans. A leg pricing above its
/// budget counts as a timeout even though the message would eventually
/// arrive (tail latency indistinguishable from loss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcConfig {
    /// Per-leg slack beyond the link's ideal transfer time; a leg
    /// pricing above `deadline + ideal` is a timeout.
    pub deadline: Duration,
    /// Attempts against one callee before giving up on it.
    pub max_attempts: u32,
    /// Failed attempts against a candidate before hedging to the next
    /// node in the ring preference order.
    pub hedge_after: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for RpcConfig {
    fn default() -> Self {
        Self {
            deadline: Duration::from_millis(1),
            max_attempts: 3,
            hedge_after: 2,
            backoff_base: Duration::from_micros(50),
            backoff_max: Duration::from_millis(2),
        }
    }
}

/// Why an RPC ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcTimeout {
    /// Attempts consumed before giving up.
    pub attempts: u32,
}

/// Blueprint for a cluster. [`ClusterConfig::new`] gives a quiet cluster
/// of GTX 280 pools; override fields before [`build`](Self::build).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (must be >= 1).
    pub nodes: usize,
    /// Devices per node's pool.
    pub devices_per_node: usize,
    /// The cluster seed. Node `i`'s pool seed is
    /// [`derive_node_seed`]`(seed, i)`, so every device plan in the
    /// cluster replays from this one number.
    pub seed: u64,
    /// Inter-node link cost model.
    pub link: LinkModel,
    /// Network adversity plan.
    pub net_fault: NetFaultConfig,
    /// Device fault template applied on every node (re-seeded per node
    /// and device).
    pub fault: Option<FaultConfig>,
    /// Per-device overrides `(node, device, template)`.
    pub device_fault_overrides: Vec<(usize, usize, FaultConfig)>,
    /// RPC timing.
    pub rpc: RpcConfig,
    /// Gossip thresholds and payload size.
    pub gossip: GossipConfig,
    /// Ticks between gossip protocol rounds.
    pub gossip_period: Duration,
    /// Breaker parameters for both peer and engine breakers.
    pub breaker: BreakerConfig,
    /// Launcher template cloned per device.
    pub base: Launcher,
    /// Intra-node device routing policy.
    pub routing: RoutingPolicy,
    /// Virtual points per node on the hash ring.
    pub vnodes: usize,
    /// The cluster clock; use [`Clock::sim`] for deterministic scenarios.
    pub clock: Clock,
    /// Trace sink for cluster events.
    pub trace: TraceHandle,
}

impl ClusterConfig {
    /// A quiet `nodes × devices_per_node` cluster on a fresh sim clock.
    pub fn new(nodes: usize, devices_per_node: usize) -> Self {
        Self {
            nodes,
            devices_per_node,
            seed: 0x5EED_C1A5_7E12_0001,
            link: LinkModel::ten_gbe(),
            net_fault: NetFaultConfig::default(),
            fault: None,
            device_fault_overrides: Vec::new(),
            rpc: RpcConfig::default(),
            gossip: GossipConfig::default(),
            gossip_period: Duration::from_micros(500),
            breaker: BreakerConfig::default(),
            base: Launcher::gtx280(),
            routing: RoutingPolicy::LeastLoaded,
            vnodes: 64,
            clock: Clock::sim(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Builds the cluster.
    ///
    /// # Panics
    /// If `nodes` or `devices_per_node` is zero.
    pub fn build(self) -> Cluster {
        Cluster::new(self)
    }
}

/// The assembled cluster.
pub struct Cluster {
    nodes: Vec<ClusterNode>,
    net: Network,
    gossip: Gossip,
    ring: HashRing,
    rpc_cfg: RpcConfig,
    gossip_period: Duration,
    clock: Clock,
    trace: TraceHandle,
    /// `prev_down[i]`: was node `i` inside a crash window at the last
    /// gossip tick? Lets the driver detect the down→up edge and reboot.
    prev_down: Vec<bool>,
    rpc_timeouts: AtomicU64,
    rpc_retries: AtomicU64,
}

impl Cluster {
    /// Builds a cluster from its blueprint.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes >= 1, "a cluster needs at least one node");
        assert!(cfg.devices_per_node >= 1, "nodes need at least one device");
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let mut pool_cfg = PoolConfig::new(cfg.devices_per_node);
                pool_cfg.seed = derive_node_seed(cfg.seed, i as u64);
                pool_cfg.fault = cfg.fault;
                pool_cfg.fault_overrides = cfg
                    .device_fault_overrides
                    .iter()
                    .filter(|(node, _, _)| *node == i)
                    .map(|(_, dev, tpl)| (*dev, *tpl))
                    .collect();
                pool_cfg.base = cfg.base.clone();
                pool_cfg.routing = cfg.routing;
                ClusterNode::new(i, pool_cfg, cfg.breaker, cfg.clock.clone())
            })
            .collect();
        let net = Network::new(cfg.nodes, cfg.link, cfg.net_fault, cfg.clock.clone());
        Self {
            nodes,
            net,
            gossip: Gossip::new(cfg.nodes, cfg.gossip),
            ring: HashRing::new(cfg.nodes, cfg.vnodes),
            rpc_cfg: cfg.rpc,
            gossip_period: cfg.gossip_period,
            clock: cfg.clock,
            trace: cfg.trace,
            prev_down: vec![false; cfg.nodes],
            rpc_timeouts: AtomicU64::new(0),
            rpc_retries: AtomicU64::new(0),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for the degenerate empty cluster (never constructible via
    /// [`ClusterConfig::build`], kept for the `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node `i`.
    pub fn node(&self, i: usize) -> &ClusterNode {
        &self.nodes[i]
    }

    /// Node `i`, mutably.
    pub fn node_mut(&mut self, i: usize) -> &mut ClusterNode {
        &mut self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// The inter-node network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The gossip views.
    pub fn gossip(&self) -> &Gossip {
        &self.gossip
    }

    /// The hash ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// RPC configuration.
    pub fn rpc_config(&self) -> &RpcConfig {
        &self.rpc_cfg
    }

    /// Ticks between gossip rounds.
    pub fn gossip_period(&self) -> Duration {
        self.gossip_period
    }

    /// The cluster clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The trace sink.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Total RPC attempts that timed out.
    pub fn rpc_timeouts(&self) -> u64 {
        self.rpc_timeouts.load(Ordering::Relaxed)
    }

    /// Total RPC retries (attempts beyond the first, per call).
    pub fn rpc_retries(&self) -> u64 {
        self.rpc_retries.load(Ordering::Relaxed)
    }

    /// Is `dst` eligible to receive work routed by `observer`? True when
    /// the observer's gossip view says `Alive` *and* its peer breaker for
    /// `dst` is not open. An observer is always eligible for itself —
    /// local dispatch needs no network.
    pub fn eligible_from(&self, observer: usize, dst: usize) -> bool {
        if observer == dst {
            return true;
        }
        self.gossip.view(observer, dst) == PeerState::Alive
            && self.nodes[observer].peer_breakers.state(&node_key(dst)) != BreakerState::Open
    }

    /// One gossip protocol round **plus** crash-edge handling: any node
    /// whose crash window just ended is rebooted via
    /// [`ClusterNode::restart`]. Call every [`Self::gossip_period`] from
    /// the driver loop.
    pub fn gossip_tick(&mut self) {
        let now = self.clock.now();
        for i in 0..self.nodes.len() {
            let down = self.net.node_down(i, now);
            if self.prev_down[i] && !down {
                self.nodes[i].restart();
            }
            self.prev_down[i] = down;
        }
        let breakers: Vec<&_> = self.nodes.iter().map(|n| &n.peer_breakers).collect();
        self.gossip.tick(&self.net, &breakers, &self.clock, &self.trace);
    }

    /// Deterministic retry backoff: `base · 2^(attempt-1)` capped at
    /// `backoff_max`, plus a sub-quarter-base jitter keyed by the attempt
    /// number (no RNG — replayable).
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.rpc_cfg.backoff_base;
        let shifted = base.saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16));
        let capped = shifted.min(self.rpc_cfg.backoff_max);
        let jitter_us = (attempt as u64 * 7919) % (base.as_micros() as u64 / 4 + 1);
        capped + Duration::from_micros(jitter_us)
    }

    /// One deadline-guarded RPC `src → dst` carrying `req_bytes` out and
    /// `resp_bytes` back, retried up to `attempts` times with backoff.
    /// `work` runs on the callee between the delivered legs and is
    /// re-executed on retry (at-least-once; callees are pure solves).
    /// Each leg waits out `min(priced latency, deadline)` on the clock.
    pub fn rpc<T>(
        &self,
        src: usize,
        dst: usize,
        req_bytes: usize,
        resp_bytes: usize,
        attempts: u32,
        mut work: impl FnMut() -> T,
    ) -> Result<T, RpcTimeout> {
        let attempts = attempts.max(1);
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.clock.advance(self.backoff(attempt - 1));
                self.rpc_retries.fetch_add(1, Ordering::Relaxed);
                self.trace.emit(|| TraceEvent::RpcRetry {
                    at: self.clock.now(),
                    src: src as u64,
                    dst: dst as u64,
                    attempt: attempt as u64,
                });
            }
            self.trace.emit(|| TraceEvent::RpcSend {
                at: self.clock.now(),
                src: src as u64,
                dst: dst as u64,
                bytes: req_bytes as u64,
            });
            if let Some(result) = self.try_once(src, dst, req_bytes, resp_bytes, &mut work) {
                return Ok(result);
            }
            self.rpc_timeouts.fetch_add(1, Ordering::Relaxed);
            self.trace.emit(|| TraceEvent::RpcTimeout {
                at: self.clock.now(),
                src: src as u64,
                dst: dst as u64,
            });
        }
        Err(RpcTimeout { attempts })
    }

    /// One leg's timeout budget: fixed slack plus the ideal transfer
    /// time of the payload on a quiet link.
    fn leg_deadline(&self, bytes: usize) -> Duration {
        self.rpc_cfg.deadline + self.net.link().duration(bytes)
    }

    /// One attempt: request leg, work, response leg. `None` = timeout
    /// (the sender has waited out the leg's full budget).
    fn try_once<T>(
        &self,
        src: usize,
        dst: usize,
        req_bytes: usize,
        resp_bytes: usize,
        work: &mut impl FnMut() -> T,
    ) -> Option<T> {
        let req_deadline = self.leg_deadline(req_bytes);
        match self.net.send(src, dst, req_bytes).latency() {
            Some(lat) if lat <= req_deadline => self.clock.advance(lat),
            _ => {
                self.clock.advance(req_deadline);
                return None;
            }
        }
        let result = work();
        let resp_deadline = self.leg_deadline(resp_bytes);
        match self.net.send(dst, src, resp_bytes).latency() {
            Some(lat) if lat <= resp_deadline => {
                self.clock.advance(lat);
                Some(result)
            }
            _ => {
                self.clock.advance(resp_deadline);
                None
            }
        }
    }
}
