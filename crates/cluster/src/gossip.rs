//! SWIM-style health gossip: each node pings its peers every protocol
//! period and keeps a **per-observer** view of every peer —
//! `Alive → Suspect → Dead` on consecutive missed round trips, back to
//! `Alive` the moment a ping round-trips again.
//!
//! The views drive the per-node circuit breakers (key `node{j}`), reusing
//! the engine-breaker machinery: a peer confirmed `Dead` trips the
//! observer's breaker for that peer immediately (no point counting up to
//! the failure threshold against a partitioned node), and a recovered
//! peer closes it through the breaker's own half-open probe path — so a
//! heal restores capacity only after the breaker's cooldown, exactly like
//! a recovered engine.
//!
//! Views are per-observer on purpose: under an **asymmetric** partition
//! (A cannot reach B, everyone else can) only A's view declares B dead —
//! A re-routes its own traffic while the rest of the cluster keeps using
//! B. There is no global membership oracle to disagree with.
//!
//! Pings ride the same faulty network as data RPCs but are priced, not
//! waited on: heartbeats overlap data traffic in a real cluster, so the
//! protocol tick reads the clock without advancing it. Determinism comes
//! from the network's per-link message schedule and the fixed
//! observer-major, subject-minor ping order.

use crate::net::Network;
use gpu_sim::Clock;
use solver_service::{Admission, CircuitBreakers, TraceEvent, TraceHandle};

/// One observer's opinion of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Heartbeats are round-tripping.
    Alive,
    /// Missed pings past the suspect threshold; still routable by others.
    Suspect,
    /// Missed pings past the dead threshold; the observer's breaker for
    /// this peer is tripped.
    Dead,
}

impl PeerState {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PeerState::Alive => "alive",
            PeerState::Suspect => "suspect",
            PeerState::Dead => "dead",
        }
    }
}

/// Gossip protocol knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Consecutive missed round trips that move `Alive → Suspect`.
    pub suspect_missed: u32,
    /// Consecutive missed round trips that move `Suspect → Dead`.
    pub dead_missed: u32,
    /// Heartbeat payload bytes (each leg).
    pub ping_bytes: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self { suspect_missed: 2, dead_missed: 4, ping_bytes: 64 }
    }
}

/// The breaker key an observer files peer `j` under.
pub fn node_key(j: usize) -> String {
    format!("node{j}")
}

/// Per-observer membership views for one cluster.
#[derive(Debug)]
pub struct Gossip {
    cfg: GossipConfig,
    /// `views[observer][subject]`; the diagonal is always `Alive`.
    views: Vec<Vec<PeerState>>,
    /// Consecutive missed round trips, same indexing.
    missed: Vec<Vec<u32>>,
}

impl Gossip {
    /// A gossip state over `nodes` nodes, everyone initially `Alive`.
    pub fn new(nodes: usize, cfg: GossipConfig) -> Self {
        Self {
            cfg,
            views: vec![vec![PeerState::Alive; nodes]; nodes],
            missed: vec![vec![0; nodes]; nodes],
        }
    }

    /// The protocol configuration.
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// `observer`'s current opinion of `subject`.
    pub fn view(&self, observer: usize, subject: usize) -> PeerState {
        self.views[observer][subject]
    }

    /// One protocol round: every up node pings every peer; views and the
    /// observers' per-peer breakers update from the outcomes. Call once
    /// per gossip period from the cluster driver.
    ///
    /// `breakers[i]` is node `i`'s breaker set (peer keys via
    /// [`node_key`]). Crashed observers skip their round — and on restart
    /// resume with the views they crashed with, re-learning liveness
    /// through the same transitions as everyone else.
    pub fn tick(
        &mut self,
        net: &Network,
        breakers: &[&CircuitBreakers],
        clock: &Clock,
        trace: &TraceHandle,
    ) {
        let nodes = self.views.len();
        let now = clock.now();
        for observer in 0..nodes {
            if net.node_down(observer, now) {
                continue;
            }
            for subject in 0..nodes {
                if subject == observer {
                    continue;
                }
                let delivered = net
                    .round_trip(observer, subject, self.cfg.ping_bytes, self.cfg.ping_bytes)
                    .is_some();
                if delivered {
                    self.missed[observer][subject] = 0;
                    self.views[observer][subject] = PeerState::Alive;
                    // Close the breaker through its own probe path: Deny
                    // while the cooldown runs, Probe + success once it
                    // elapses, plain success (count reset) when closed.
                    let key = node_key(subject);
                    match breakers[observer].admit(&key) {
                        Admission::Allow | Admission::Probe => breakers[observer].on_success(&key),
                        Admission::Deny => {}
                    }
                } else {
                    let miss = self.missed[observer][subject].saturating_add(1);
                    self.missed[observer][subject] = miss;
                    let state = self.views[observer][subject];
                    if state == PeerState::Alive && miss >= self.cfg.suspect_missed {
                        self.views[observer][subject] = PeerState::Suspect;
                        trace.emit(|| TraceEvent::GossipSuspect {
                            at: now,
                            observer: observer as u64,
                            subject: subject as u64,
                        });
                    }
                    if self.views[observer][subject] != PeerState::Dead
                        && miss >= self.cfg.dead_missed
                    {
                        self.views[observer][subject] = PeerState::Dead;
                        trace.emit(|| TraceEvent::GossipDead {
                            at: now,
                            observer: observer as u64,
                            subject: subject as u64,
                        });
                        breakers[observer].trip(&node_key(subject));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{CrashWindow, LinkModel, NetFaultConfig};
    use solver_service::{BreakerConfig, BreakerState};
    use std::time::Duration;

    fn refs(breakers: &[CircuitBreakers]) -> Vec<&CircuitBreakers> {
        breakers.iter().collect()
    }

    fn setup(fault: NetFaultConfig) -> (Gossip, Network, Vec<CircuitBreakers>, Clock) {
        let clock = Clock::sim();
        let net = Network::new(3, LinkModel::ten_gbe(), fault, clock.clone());
        let breakers = (0..3)
            .map(|_| {
                CircuitBreakers::with_clock(
                    BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(1) },
                    clock.clone(),
                )
            })
            .collect();
        (Gossip::new(3, GossipConfig::default()), net, breakers, clock)
    }

    #[test]
    fn quiet_network_stays_all_alive() {
        let (mut gossip, net, breakers, clock) = setup(NetFaultConfig::quiet(0));
        for _ in 0..8 {
            gossip.tick(&net, &refs(&breakers), &clock, &TraceHandle::disabled());
        }
        for o in 0..3 {
            for s in 0..3 {
                assert_eq!(gossip.view(o, s), PeerState::Alive);
            }
            assert_eq!(breakers[o].opened_total(), 0);
        }
    }

    #[test]
    fn crashed_node_walks_alive_suspect_dead_and_trips_breakers() {
        let fault = NetFaultConfig {
            crashes: vec![CrashWindow { node: 2, down_from: 0, up_at: None }],
            ..NetFaultConfig::quiet(0)
        };
        let (mut gossip, net, breakers, clock) = setup(fault);
        let trace = TraceHandle::disabled();
        gossip.tick(&net, &refs(&breakers), &clock, &trace);
        assert_eq!(gossip.view(0, 2), PeerState::Alive, "one miss is not suspicion");
        gossip.tick(&net, &refs(&breakers), &clock, &trace);
        assert_eq!(gossip.view(0, 2), PeerState::Suspect);
        gossip.tick(&net, &refs(&breakers), &clock, &trace);
        gossip.tick(&net, &refs(&breakers), &clock, &trace);
        assert_eq!(gossip.view(0, 2), PeerState::Dead);
        assert_eq!(breakers[0].state(&node_key(2)), BreakerState::Open);
        assert_eq!(breakers[1].state(&node_key(2)), BreakerState::Open);
        // The healthy pair still trusts each other.
        assert_eq!(gossip.view(0, 1), PeerState::Alive);
        assert_eq!(breakers[0].state(&node_key(1)), BreakerState::Closed);
    }

    #[test]
    fn asymmetric_partition_is_dead_only_in_the_blinded_view() {
        use crate::net::BlockedWindow;
        let fault = NetFaultConfig {
            blocked: vec![BlockedWindow { src: 0, dst: 2, from: 0, until: None }],
            ..NetFaultConfig::quiet(0)
        };
        let (mut gossip, net, breakers, clock) = setup(fault);
        let trace = TraceHandle::disabled();
        for _ in 0..4 {
            gossip.tick(&net, &refs(&breakers), &clock, &trace);
        }
        assert_eq!(gossip.view(0, 2), PeerState::Dead, "0 cannot reach 2");
        assert_eq!(gossip.view(1, 2), PeerState::Alive, "1 still reaches 2");
        // Round-trip detection blinds *both* endpoints of the broken
        // direction (2's pings to 0 deliver but the 0→2 ack leg cannot),
        // while every third-party view keeps both nodes alive.
        assert_eq!(gossip.view(2, 0), PeerState::Dead, "2 loses its acks from 0");
        assert_eq!(gossip.view(1, 0), PeerState::Alive);
        assert_eq!(gossip.view(2, 1), PeerState::Alive);
        assert_eq!(breakers[0].state(&node_key(2)), BreakerState::Open);
        assert_eq!(breakers[1].state(&node_key(2)), BreakerState::Closed);
    }

    #[test]
    fn heal_revives_the_peer_and_closes_the_breaker_after_cooldown() {
        let fault = NetFaultConfig {
            crashes: vec![CrashWindow { node: 1, down_from: 0, up_at: Some(10_000_000) }],
            ..NetFaultConfig::quiet(0)
        };
        let (mut gossip, net, breakers, clock) = setup(fault);
        let trace = TraceHandle::disabled();
        for _ in 0..4 {
            gossip.tick(&net, &refs(&breakers), &clock, &trace);
        }
        assert_eq!(gossip.view(0, 1), PeerState::Dead);
        // Heal: advance past the crash window *and* the breaker cooldown.
        clock.advance(Duration::from_millis(11));
        gossip.tick(&net, &refs(&breakers), &clock, &trace);
        assert_eq!(gossip.view(0, 1), PeerState::Alive, "round trip revives instantly");
        assert_eq!(
            breakers[0].state(&node_key(1)),
            BreakerState::Closed,
            "probe path must close the breaker once the cooldown has elapsed"
        );
        assert_eq!(breakers[0].closed_total(), 1);
    }

    #[test]
    fn asymmetric_partition_of_the_reverse_leg_also_blinds_the_observer() {
        // Blocking 2→0 kills 0's *round trips* to 2 (the ack leg), so 0
        // still declares 2 dead even though its own sends deliver.
        use crate::net::BlockedWindow;
        let fault = NetFaultConfig {
            blocked: vec![BlockedWindow { src: 2, dst: 0, from: 0, until: None }],
            ..NetFaultConfig::quiet(0)
        };
        let (mut gossip, net, breakers, clock) = setup(fault);
        for _ in 0..4 {
            gossip.tick(&net, &refs(&breakers), &clock, &TraceHandle::disabled());
        }
        assert_eq!(gossip.view(0, 2), PeerState::Dead);
        assert_eq!(gossip.view(1, 2), PeerState::Alive);
    }
}
