//! # cluster — multi-node distributed solve on a faulty network
//!
//! The distributed tier of the suite: N simulated nodes, each carrying a
//! [`device_pool::DevicePool`] of M simulated GPUs, joined by a
//! deterministic faulty network. Everything above the kernels that the
//! single-node stack already proved — batching, autotuned plans, verify
//! and repair, circuit breakers — is reused; this crate adds what only
//! exists between nodes:
//!
//! - **[`net`]** — the network model: per-link latency + bandwidth pricing
//!   (the PCIe cost-model shape, one level up) and a seed-replayable
//!   adversity plan: message drops, latency spikes, sticky link loss,
//!   asymmetric partitions, node crash/restart windows.
//! - **[`gossip`]** — SWIM-style health protocol: per-observer
//!   `Alive → Suspect → Dead` views from consecutive missed heartbeats,
//!   driving per-node circuit breakers.
//! - **[`ring`]** — consistent hashing of plan-cache keys: each size
//!   class has a sticky home node (autotune once, cluster-wide) and a
//!   deterministic failover order in which only a dead node's keys move.
//! - **[`solve`]** — the two-level partitioned solve: node-local
//!   modified-Thomas reduction on each pool, one small interface system
//!   on the coordinator, fan-out back-substitution — the substructuring
//!   algebra of the single pool, one level up, opening `n` far beyond
//!   one node.
//! - **[`service`]** — cluster dispatch: batches route on the ring, ride
//!   deadline-guarded hedged RPCs, and fail over ring → retry → local
//!   degrade so a dead or partitioned node's backlog drains to survivors
//!   with zero wrong answers and zero losses.
//!
//! Every stochastic decision is a pure function of the cluster seed (per
//! link, per message) and every structural fault is a tick window on the
//! shared [`gpu_sim::Clock`], so whole cluster chaos scenarios replay
//! bit-identically from one seed.

#![warn(missing_docs)]

pub mod cluster;
pub mod gossip;
pub mod net;
pub mod node;
pub mod ring;
pub mod service;
pub mod solve;

pub use cluster::{Cluster, ClusterConfig, RpcConfig, RpcTimeout};
pub use gossip::{node_key, Gossip, GossipConfig, PeerState};
pub use net::{BlockedWindow, CrashWindow, Delivery, LinkModel, NetFaultConfig, Network};
pub use node::ClusterNode;
pub use ring::HashRing;
pub use service::{run_cluster_service, ClusterRunStats, ClusterServiceConfig, ClusterWorkload};
pub use solve::{solve_partitioned_cluster, ClusterSolveReport, ClusterTiming};
