//! The simulated inter-node network: a per-link cost model shaped like
//! the PCIe model in [`gpu_sim::CostModel`] (fixed latency + payload over
//! bandwidth), plus a seed-replayable [`NetFaultPlan`]-style adversity
//! layer — message drops, latency spikes, sticky link loss, asymmetric
//! partitions, and node crash/restart windows.
//!
//! Determinism mirrors the device fault layer exactly: every stochastic
//! decision (drop, spike) is a **pure function** of `(seed, src, dst,
//! per-link message index)` — not of a shared sequential RNG — so the
//! schedule is independent of call interleaving; only the assignment of
//! message indices (one atomic counter per directed link) is
//! order-dependent, and the single-threaded cluster driver assigns them
//! in a fixed order. Structural adversities (partitions, link loss,
//! crashes) are tick windows on the virtual clock, so a chaos scenario is
//! replayable from one seed plus its window list.
//!
//! [`Network::send`] never advances the clock — it *prices* a message.
//! The RPC layer decides how much of that price (capped by its deadline)
//! the sender actually waits.

use gpu_sim::{Clock, Tick};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cost model for one directed link: fixed latency plus payload over
/// bandwidth — the same shape as `CostModel::pcie_seconds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way fixed latency, microseconds.
    pub latency_us: f64,
    /// Link bandwidth, gigabytes per second.
    pub bandwidth_gbps: f64,
}

impl LinkModel {
    /// A datacenter 10 GbE-class link: 50 µs one-way, 1.25 GB/s.
    pub fn ten_gbe() -> Self {
        Self { latency_us: 50.0, bandwidth_gbps: 1.25 }
    }

    /// Seconds to move `bytes` one way over this link.
    pub fn seconds(&self, bytes: usize) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gbps * 1e9)
    }

    /// [`LinkModel::seconds`] as a [`Duration`].
    pub fn duration(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(self.seconds(bytes))
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::ten_gbe()
    }
}

/// A directed link outage window: messages `src → dst` are blocked for
/// `[from, until)` ticks. One window models sticky link loss (`until:
/// None` — never heals); a *pair* of windows over disjoint direction sets
/// models an asymmetric partition (A can't reach B while B still reaches
/// A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedWindow {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// First tick the outage is active.
    pub from: Tick,
    /// First tick after the outage heals; `None` = permanent.
    pub until: Option<Tick>,
}

impl BlockedWindow {
    /// `true` when the outage covers `now`.
    pub fn active(&self, now: Tick) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

/// A node outage window: the node neither sends nor receives during
/// `[down_from, up_at)`. `up_at: Some` models a crash/restart cycle (the
/// cluster rebuilds the node's pool from its derived seed at `up_at`);
/// `None` is a sticky node kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The node that goes down.
    pub node: usize,
    /// First tick the node is down.
    pub down_from: Tick,
    /// First tick the node is back up; `None` = never restarts.
    pub up_at: Option<Tick>,
}

impl CrashWindow {
    /// `true` when the node is down at `now`.
    pub fn active(&self, now: Tick) -> bool {
        now >= self.down_from && self.up_at.is_none_or(|u| now < u)
    }
}

/// The network's adversity plan: stochastic per-message faults keyed by
/// one seed, plus structural tick windows. All rates default to zero and
/// the window lists to empty — a default plan is a perfect network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaultConfig {
    /// Seed keying the drop/spike schedule of every link.
    pub seed: u64,
    /// Per-message probability a message silently vanishes.
    pub drop_rate: f64,
    /// Per-message probability the latency is multiplied by
    /// [`NetFaultConfig::spike_multiplier`].
    pub spike_rate: f64,
    /// Latency inflation for spiked messages (> 1).
    pub spike_multiplier: f64,
    /// Directed link outages: sticky link loss and asymmetric partitions.
    pub blocked: Vec<BlockedWindow>,
    /// Node crash/restart windows.
    pub crashes: Vec<CrashWindow>,
}

impl NetFaultConfig {
    /// A plan that injects nothing (the counter-neutral baseline).
    pub fn quiet(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The chaos shorthand: drops at `drop_rate`, 10× latency spikes at
    /// `spike_rate`, no structural outages.
    pub fn chaos(seed: u64, drop_rate: f64, spike_rate: f64) -> Self {
        Self { seed, drop_rate, spike_rate, spike_multiplier: 10.0, ..Self::default() }
    }
}

/// What happened to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered after this one-way latency.
    Delivered(Duration),
    /// Silently dropped mid-flight (sender learns via timeout only).
    Dropped,
    /// Structurally unreachable: link blocked or an endpoint down. The
    /// sender cannot distinguish this from a drop — it also times out.
    Blocked,
}

impl Delivery {
    /// The latency if delivered.
    pub fn latency(&self) -> Option<Duration> {
        match self {
            Delivery::Delivered(d) => Some(*d),
            Delivery::Dropped | Delivery::Blocked => None,
        }
    }
}

/// SplitMix64 finalizer (same mixer as `gpu_sim::fault`; reimplemented so
/// the stream constants stay local to the network layer).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` draw keyed by (seed, link, message index, stream).
#[inline]
fn unit(seed: u64, link: u64, msg: u64, stream: u64) -> f64 {
    let k = splitmix64(link.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ stream);
    let bits = splitmix64(seed ^ k ^ splitmix64(msg.wrapping_mul(0x517C_C1B7_2722_0A95)));
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const STREAM_DROP: u64 = 0x11;
const STREAM_SPIKE: u64 = 0x22;

/// The simulated network: every inter-node message goes through
/// [`Network::send`], which adjudicates structural outages, the drop/spike
/// schedule, and the link cost model.
#[derive(Debug)]
pub struct Network {
    nodes: usize,
    link: LinkModel,
    fault: NetFaultConfig,
    /// Per-directed-link message counters (`src * nodes + dst`), assigning
    /// each message its schedule index.
    counters: Vec<AtomicU64>,
    clock: Clock,
}

impl Network {
    /// A network over `nodes` nodes pricing with `link` and injecting
    /// `fault`, reading time from `clock`.
    pub fn new(nodes: usize, link: LinkModel, fault: NetFaultConfig, clock: Clock) -> Self {
        let counters = (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect();
        Self { nodes, link, fault, counters, clock }
    }

    /// Number of nodes the network connects.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The link cost model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// The adversity plan.
    pub fn fault(&self) -> &NetFaultConfig {
        &self.fault
    }

    /// `true` while `node` is inside a crash window at `now`.
    pub fn node_down(&self, node: usize, now: Tick) -> bool {
        self.fault.crashes.iter().any(|c| c.node == node && c.active(now))
    }

    /// `true` while a blocked window covers `src → dst` at `now`.
    pub fn link_blocked(&self, src: usize, dst: usize, now: Tick) -> bool {
        self.fault.blocked.iter().any(|b| b.src == src && b.dst == dst && b.active(now))
    }

    /// Adjudicates one `src → dst` message of `bytes` at the current tick.
    /// Pure pricing — the clock is read, never advanced.
    pub fn send(&self, src: usize, dst: usize, bytes: usize) -> Delivery {
        let now = self.clock.now();
        if self.node_down(src, now) || self.node_down(dst, now) {
            return Delivery::Blocked;
        }
        if self.link_blocked(src, dst, now) {
            return Delivery::Blocked;
        }
        let link = (src * self.nodes + dst) as u64;
        let msg = self.counters[src * self.nodes + dst].fetch_add(1, Ordering::Relaxed);
        if unit(self.fault.seed, link, msg, STREAM_DROP) < self.fault.drop_rate {
            return Delivery::Dropped;
        }
        let mut secs = self.link.seconds(bytes);
        if unit(self.fault.seed, link, msg, STREAM_SPIKE) < self.fault.spike_rate {
            secs *= self.fault.spike_multiplier.max(1.0);
        }
        Delivery::Delivered(Duration::from_secs_f64(secs))
    }

    /// Prices a request/response round trip; `Some(total latency)` only
    /// when both legs deliver.
    pub fn round_trip(
        &self,
        src: usize,
        dst: usize,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> Option<Duration> {
        let out = self.send(src, dst, req_bytes).latency()?;
        let back = self.send(dst, src, resp_bytes).latency()?;
        Some(out + back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_net(fault: NetFaultConfig) -> (Network, Clock) {
        let clock = Clock::sim();
        (Network::new(4, LinkModel::ten_gbe(), fault, clock.clone()), clock)
    }

    #[test]
    fn link_cost_mirrors_the_pcie_shape() {
        let link = LinkModel { latency_us: 50.0, bandwidth_gbps: 1.25 };
        // Latency floor dominates tiny messages...
        assert!((link.seconds(0) - 50e-6).abs() < 1e-12);
        // ...bandwidth dominates bulk: 1.25 GB over a 1.25 GB/s link ≈ 1 s.
        assert!((link.seconds(1_250_000_000) - 1.000_05).abs() < 1e-6);
    }

    #[test]
    fn quiet_network_delivers_everything_at_the_model_price() {
        let (net, _clock) = sim_net(NetFaultConfig::quiet(1));
        for _ in 0..256 {
            match net.send(0, 1, 4096) {
                Delivery::Delivered(d) => assert_eq!(d, net.link().duration(4096)),
                other => panic!("quiet network must deliver: {other:?}"),
            }
        }
    }

    #[test]
    fn drop_schedule_is_a_pure_function_of_seed_and_message_index() {
        let schedule = |seed| {
            let (net, _clock) = sim_net(NetFaultConfig::chaos(seed, 0.2, 0.1));
            (0..512).map(|_| net.send(0, 1, 64).latency().is_some()).collect::<Vec<_>>()
        };
        assert_eq!(schedule(7), schedule(7), "same seed must replay");
        assert_ne!(schedule(7), schedule(8), "different seeds must diverge");
        let drops = schedule(7).iter().filter(|d| !**d).count();
        let rate = drops as f64 / 512.0;
        assert!((0.1..0.35).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn distinct_links_draw_distinct_schedules() {
        let (net, _clock) = sim_net(NetFaultConfig::chaos(3, 0.3, 0.0));
        let a: Vec<bool> = (0..256).map(|_| net.send(0, 1, 64).latency().is_some()).collect();
        let b: Vec<bool> = (0..256).map(|_| net.send(1, 0, 64).latency().is_some()).collect();
        assert_ne!(a, b, "0→1 and 1→0 must not alias");
    }

    #[test]
    fn blocked_windows_open_and_heal_on_the_virtual_clock() {
        let fault = NetFaultConfig {
            blocked: vec![BlockedWindow { src: 0, dst: 2, from: 1_000, until: Some(2_000) }],
            ..NetFaultConfig::quiet(0)
        };
        let (net, clock) = sim_net(fault);
        assert!(net.send(0, 2, 8).latency().is_some(), "before the window");
        clock.advance(Duration::from_nanos(1_000));
        assert_eq!(net.send(0, 2, 8), Delivery::Blocked, "inside the window");
        assert!(net.send(2, 0, 8).latency().is_some(), "asymmetric: reverse flows");
        clock.advance(Duration::from_nanos(1_000));
        assert!(net.send(0, 2, 8).latency().is_some(), "healed");
    }

    #[test]
    fn crashed_nodes_neither_send_nor_receive() {
        let fault = NetFaultConfig {
            crashes: vec![CrashWindow { node: 1, down_from: 0, up_at: None }],
            ..NetFaultConfig::quiet(0)
        };
        let (net, _clock) = sim_net(fault);
        assert_eq!(net.send(0, 1, 8), Delivery::Blocked);
        assert_eq!(net.send(1, 0, 8), Delivery::Blocked);
        assert!(net.send(0, 2, 8).latency().is_some(), "other links unaffected");
        assert!(net.node_down(1, 0));
        assert!(!net.node_down(0, 0));
    }

    #[test]
    fn round_trip_needs_both_legs() {
        let fault = NetFaultConfig {
            blocked: vec![BlockedWindow { src: 2, dst: 0, from: 0, until: None }],
            ..NetFaultConfig::quiet(0)
        };
        let (net, _clock) = sim_net(fault);
        // Request 0→2 delivers, response 2→0 is blocked → no round trip.
        assert_eq!(net.round_trip(0, 2, 64, 64), None);
        assert!(net.round_trip(0, 1, 64, 64).is_some());
    }
}
