//! One cluster node: a device pool, its plan cache, and its two breaker
//! sets.
//!
//! A node owns **two** independent `CircuitBreakers`, both on the shared
//! virtual clock:
//!
//! - `peer_breakers` — keyed `node{j}`, driven by the gossip protocol;
//!   they gate *routing* decisions (never dispatch a batch to a peer this
//!   node believes is dead).
//! - `engine_breakers` — keyed `dev{id}:{engine}`, driven by
//!   `serve_flush`; they gate *engine* selection inside the node's own
//!   device pool, exactly as in single-node service.
//!
//! The split matters under partitions: an unreachable peer must not
//! poison the local engine health, and a flaky local engine must not make
//! the node look dead to itself.
//!
//! [`ClusterNode::restart`] models a node crash/reboot: the device pool is
//! rebuilt from the stored [`PoolConfig`] — the derived per-device fault
//! seeds are a pure function of `(cluster seed, node, device)`, so the
//! reborn pool replays the **same** fault plans — and the engine breakers
//! come back fresh (breaker state is in-memory). The plan cache survives:
//! autotuned plans are a persisted artifact of the node, not ephemeral
//! state, and re-tuning after every reboot would defeat the cluster-wide
//! tune-once routing goal.

use device_pool::{DevicePool, PoolConfig};
use gpu_sim::Clock;
use solver_service::{BreakerConfig, CircuitBreakers, PlanCache, ServiceMetrics};

/// One simulated node: device pool + plan cache + breakers + metrics.
pub struct ClusterNode {
    /// Node index within the cluster.
    pub id: usize,
    /// The node's device pool (devices, launcher fault plans, routing).
    pub pool: DevicePool,
    /// The pool recipe, kept so [`restart`](Self::restart) can rebuild an
    /// identical pool after a crash window.
    pool_cfg: PoolConfig,
    /// Autotuned plans for size classes homed on (or failed over to) this
    /// node. Survives restarts — modelled as a persisted plan store.
    pub plans: PlanCache,
    /// Peer-health breakers, keys `node{j}`, driven by gossip.
    pub peer_breakers: CircuitBreakers,
    /// Engine breakers for local dispatch, keys `dev{id}:{engine}`.
    pub engine_breakers: CircuitBreakers,
    /// Local serve metrics (batches, repairs, degradations).
    pub metrics: ServiceMetrics,
    breaker_cfg: BreakerConfig,
    clock: Clock,
    restarts: u64,
}

impl ClusterNode {
    /// Builds node `id` from its pool recipe. `breaker_cfg` parametrises
    /// both breaker sets; both run on `clock`.
    pub fn new(id: usize, pool_cfg: PoolConfig, breaker_cfg: BreakerConfig, clock: Clock) -> Self {
        let pool = pool_cfg.clone().build();
        Self {
            id,
            pool,
            pool_cfg,
            plans: PlanCache::new(),
            peer_breakers: CircuitBreakers::with_clock(breaker_cfg, clock.clone()),
            engine_breakers: CircuitBreakers::with_clock(breaker_cfg, clock.clone()),
            metrics: ServiceMetrics::new(),
            breaker_cfg,
            clock,
            restarts: 0,
        }
    }

    /// Reboots the node after a crash window: the device pool is rebuilt
    /// from the stored config (same derived fault seeds → same replayed
    /// fault plans), engine breakers reset to closed (in-memory state),
    /// while the plan cache, peer breakers, and metrics carry over.
    pub fn restart(&mut self) {
        self.pool = self.pool_cfg.clone().build();
        self.engine_breakers = CircuitBreakers::with_clock(self.breaker_cfg, self.clock.clone());
        self.restarts += 1;
    }

    /// How many times this node has rebooted.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// True when the pool still has at least one healthy device.
    pub fn has_healthy_device(&self) -> bool {
        !self.pool.healthy().is_empty()
    }
}
