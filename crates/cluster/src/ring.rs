//! Consistent-hash ring over plan-cache keys.
//!
//! The cluster routes each size class `(n, element width)` — exactly the
//! plan-cache key of the serving layer — to a *home node* on a hash ring
//! with virtual nodes. Stickiness is the point: every flush of a size
//! class lands on the same node, so that node autotunes the class **once**
//! and every later flush hits its warm plan cache — autotunes are never
//! repeated cluster-wide. When the home node is dead (per gossip or an
//! open breaker), routing walks the ring clockwise to the next eligible
//! node, and only the keys homed on the dead node move — the classic
//! consistent-hashing property that keeps the rest of the cache placement
//! intact across failures and heals.

/// SplitMix64 finalizer, the workspace's standard avalanche.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring: `vnodes` points per node, sorted by hash.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node)` sorted ascending by point.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Builds a ring for `nodes` nodes with `vnodes` virtual points each.
    /// More virtual points smooth the key distribution; 64–128 is plenty
    /// for single-digit node counts.
    ///
    /// # Panics
    /// If `nodes` or `vnodes` is zero.
    pub fn new(nodes: usize, vnodes: usize) -> Self {
        assert!(nodes >= 1, "a ring needs at least one node");
        assert!(vnodes >= 1, "a ring needs at least one point per node");
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                let point = splitmix64(
                    (node as u64) ^ splitmix64((v as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
                );
                points.push((point, node));
            }
        }
        points.sort_unstable();
        Self { points, nodes }
    }

    /// Number of nodes on the ring.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The plan-cache routing key for a size class: system size `n` and
    /// element width in bytes (f32 and f64 classes tune — and route —
    /// independently).
    pub fn key(n: usize, width_bytes: usize) -> u64 {
        splitmix64((n as u64) << 8 | width_bytes as u64)
    }

    /// The distinct nodes in clockwise ring order starting at `key`'s
    /// successor point — element 0 is the home node, the rest are the
    /// failover preference order.
    pub fn preference(&self, key: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut order = Vec::with_capacity(self.nodes);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !order.contains(&node) {
                order.push(node);
                if order.len() == self.nodes {
                    break;
                }
            }
        }
        order
    }

    /// `key`'s home node.
    pub fn home(&self, key: u64) -> usize {
        self.preference(key)[0]
    }

    /// The first node in `key`'s preference order accepted by `eligible`,
    /// or `None` when every node is rejected.
    pub fn route(&self, key: u64, mut eligible: impl FnMut(usize) -> bool) -> Option<usize> {
        self.preference(key).into_iter().find(|&n| eligible(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_lists_every_node_exactly_once() {
        let ring = HashRing::new(4, 64);
        for n in [32usize, 64, 100, 256, 1000, 4096] {
            let pref = ring.preference(HashRing::key(n, 4));
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "n={n}: {pref:?}");
        }
    }

    #[test]
    fn routing_is_sticky_per_key() {
        let ring = HashRing::new(4, 64);
        let key = HashRing::key(128, 4);
        let home = ring.home(key);
        for _ in 0..8 {
            assert_eq!(ring.route(key, |_| true), Some(home));
        }
        // f32 and f64 classes of the same n route independently.
        assert_ne!(HashRing::key(128, 4), HashRing::key(128, 8));
    }

    #[test]
    fn keys_spread_across_nodes() {
        let ring = HashRing::new(4, 64);
        let mut per_node = [0usize; 4];
        for i in 0..64 {
            per_node[ring.home(HashRing::key(16 + 16 * i, 4))] += 1;
        }
        assert!(per_node.iter().all(|&c| c > 0), "some node owns nothing: {per_node:?}");
    }

    #[test]
    fn failover_moves_only_keys_homed_on_the_dead_node() {
        let ring = HashRing::new(4, 64);
        let dead = 2usize;
        for i in 0..64 {
            let key = HashRing::key(16 + 16 * i, 4);
            let before = ring.home(key);
            let after = ring.route(key, |n| n != dead).unwrap();
            if before != dead {
                assert_eq!(after, before, "key {i} moved although its home is alive");
            } else {
                assert_ne!(after, dead);
            }
        }
    }

    #[test]
    fn route_returns_none_when_nothing_is_eligible() {
        let ring = HashRing::new(3, 16);
        assert_eq!(ring.route(HashRing::key(64, 4), |_| false), None);
    }
}
