//! Cluster dispatch: the single-threaded, sim-clock serving loop one
//! level above `solver_service` — batches form on the coordinator,
//! route to their size class's home node on the hash ring, and ride
//! deadline-guarded RPCs to be served by that node's device pool.
//!
//! Failover is layered, worst case last:
//! 1. the ring's preference order — a batch whose home node is dead (per
//!    the coordinator's gossip view or an open peer breaker) routes to
//!    the next node on the ring, so a dead node's backlog drains to
//!    survivors automatically, and only its keys move;
//! 2. hedged retries — a candidate that times out `hedge_after` RPC
//!    attempts in a row is abandoned for the next candidate;
//! 3. local degrade — when every remote candidate is exhausted the
//!    coordinator serves the batch on its own pool (and `serve_flush`
//!    itself degrades to the CPU GEP engine if that pool is dead), so a
//!    batch is *never* dropped: zero wrong answers, zero losses, at
//!    worst higher latency.
//!
//! The loop follows the trace-lab harness tie-break rules (due flushes
//! before arrivals, arrivals in index order, full-bucket flushes served
//! inline, shutdown drain ascending) plus one more: the gossip protocol
//! ticks fire at their period *before* any work due at the same tick —
//! health decisions at tick `t` see every heartbeat outcome of `t`.

use crate::cluster::Cluster;
use crate::ring::HashRing;
use gpu_sim::Tick;
use solver_service::{
    make_request_at, serve_flush, BucketTable, DeviceCtx, DispatchConfig, Engine, FlushReason,
    FlushedBatch, SolveRequest, SolveResponse, TraceEvent,
};
use std::time::Duration;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

/// Serving-loop knobs for one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterServiceConfig {
    /// Bucket flush threshold.
    pub target_batch: usize,
    /// Bucket linger bound.
    pub max_linger: Duration,
    /// Smallest batch worth a GPU engine (below: CPU Thomas).
    pub min_gpu_batch: usize,
    /// Pin every batch to one engine (None = autotune per size class).
    pub pin_engine: Option<Engine>,
    /// The node requests arrive at and batches route from.
    pub coordinator: usize,
    /// Residual a served f32 answer must beat to count as correct.
    pub residual_bound: f64,
}

impl Default for ClusterServiceConfig {
    fn default() -> Self {
        Self {
            target_batch: 8,
            max_linger: Duration::from_micros(200),
            min_gpu_batch: 4,
            pin_engine: None,
            coordinator: 0,
            residual_bound: 1e-2,
        }
    }
}

/// The offered load: `requests` arrivals at a fixed inter-arrival gap,
/// sizes drawn round-robin from `sizes`, systems generated from `seed`.
#[derive(Debug, Clone)]
pub struct ClusterWorkload {
    /// Generator seed (systems are a pure function of it).
    pub seed: u64,
    /// Number of requests.
    pub requests: usize,
    /// Size classes, cycled in arrival order.
    pub sizes: Vec<usize>,
    /// Gap between consecutive arrivals.
    pub interarrival: Duration,
}

impl ClusterWorkload {
    /// Arrival tick of request `i`.
    pub fn arrival_tick(&self, i: usize) -> Tick {
        (i as u128 * self.interarrival.as_nanos()).min(u64::MAX as u128) as Tick
    }
}

/// What one cluster serving run did.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRunStats {
    /// Requests offered by the workload.
    pub offered: u64,
    /// Responses collected (must equal `offered` — nothing is dropped).
    pub completed: u64,
    /// Responses whose residual escaped the bound (must stay 0).
    pub wrong: u64,
    /// Responses the verify step repaired with GEP.
    pub repaired: u64,
    /// Batches served by a different node than first routed to.
    pub rerouted: u64,
    /// Batches that fell all the way back to the coordinator after every
    /// remote candidate was exhausted.
    pub degraded_local: u64,
    /// Total RPC attempt timeouts across the run.
    pub rpc_timeouts: u64,
    /// Total RPC retries across the run.
    pub rpc_retries: u64,
    /// Per-request virtual latency (submit → response), ns, completion
    /// order.
    pub latencies_ns: Vec<u64>,
    /// Batches served per node.
    pub served_by_node: Vec<u64>,
    /// `(node, tick, requests)` per served batch, in serve order — the
    /// capacity timeline partition/heal assertions read.
    pub batch_log: Vec<(usize, Tick, usize)>,
    /// The virtual tick the run finished at.
    pub final_tick: Tick,
}

impl ClusterRunStats {
    /// Aggregate throughput proxy: completed requests per simulated
    /// second of the busiest device (the cluster makespan is bounded by
    /// its most loaded device).
    pub fn throughput_per_busiest_ms(&self, max_busy_ms: f64) -> f64 {
        if max_busy_ms <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / max_busy_ms
    }
}

/// A flushed batch with its requests decomposed for (re-)dispatch: the
/// original request objects are consumed, and every dispatch attempt
/// builds fresh request/ticket pairs carrying the original submit ticks
/// so latency accounting survives retries and failover.
struct Pending {
    n: usize,
    ids: Vec<u64>,
    submitted: Vec<Tick>,
    systems: Vec<TridiagonalSystem<f32>>,
    reason: FlushReason,
}

impl Pending {
    fn from_flush(flush: FlushedBatch<f32>) -> Self {
        let FlushedBatch { n, requests, reason } = flush;
        let mut ids = Vec::with_capacity(requests.len());
        let mut submitted = Vec::with_capacity(requests.len());
        let mut systems = Vec::with_capacity(requests.len());
        for req in requests {
            let SolveRequest { id, system, submitted_at, .. } = req;
            ids.push(id);
            submitted.push(submitted_at);
            systems.push(system);
        }
        Self { n, ids, submitted, systems, reason }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Serves `pending` on `node`'s pool and folds the responses into the
/// stats. Infallible by design: `serve_flush` always fulfils every
/// ticket (degrading through engines down to CPU GEP).
fn serve_on_node(
    cluster: &Cluster,
    node_idx: usize,
    pending: &Pending,
    cfg: &ClusterServiceConfig,
    stats: &mut ClusterRunStats,
) {
    let node = cluster.node(node_idx);
    let device = node.pool.route(pending.n).unwrap_or(0);
    let dispatch = DispatchConfig {
        min_gpu_batch: cfg.min_gpu_batch,
        pin_engine: cfg.pin_engine,
        sanitize_first_flush: false,
        clock: cluster.clock().clone(),
        trace: cluster.trace().clone(),
        ..DispatchConfig::default()
    };
    let mut requests = Vec::with_capacity(pending.len());
    let mut tickets = Vec::with_capacity(pending.len());
    for i in 0..pending.len() {
        let (req, ticket) =
            make_request_at(pending.ids[i], pending.systems[i].clone(), pending.submitted[i], None);
        requests.push(req);
        tickets.push(ticket);
    }
    let flush = FlushedBatch { n: pending.n, requests, reason: pending.reason };
    serve_flush(
        DeviceCtx {
            launcher: &node.pool.device(device).launcher,
            device_id: device,
            pool: Some(&node.pool),
        },
        &node.plans,
        &node.engine_breakers,
        &node.metrics,
        &dispatch,
        flush,
    );
    for ticket in tickets {
        let response: SolveResponse<f32> =
            ticket.try_take().expect("synchronous serve fulfils every ticket");
        stats.completed += 1;
        stats.latencies_ns.push(response.latency.as_nanos().min(u64::MAX as u128) as u64);
        if !response.residual.is_finite() || response.residual >= cfg.residual_bound {
            stats.wrong += 1;
        }
        stats.repaired += u64::from(response.repaired);
    }
    stats.served_by_node[node_idx] += 1;
    stats.batch_log.push((node_idx, cluster.clock().now(), pending.len()));
}

/// Routes one flushed batch: ring preference → hedged RPCs → local
/// degrade. Never drops the batch.
fn dispatch_flush(
    cluster: &Cluster,
    flush: FlushedBatch<f32>,
    cfg: &ClusterServiceConfig,
    stats: &mut ClusterRunStats,
) {
    let pending = Pending::from_flush(flush);
    let key = HashRing::key(pending.n, 4);
    let coordinator = cfg.coordinator;
    let candidates: Vec<usize> = cluster
        .ring()
        .preference(key)
        .into_iter()
        .filter(|&node| cluster.eligible_from(coordinator, node))
        .collect();
    let routed = candidates.first().copied().unwrap_or(coordinator);
    cluster.trace().emit(|| TraceEvent::RouteNode {
        at: cluster.clock().now(),
        n: pending.n as u64,
        node: routed as u64,
    });
    let occupancy = pending.len();
    let req_bytes = occupancy * 4 * pending.n * 4;
    let resp_bytes = occupancy * pending.n * 4;
    let hedge_after = cluster.rpc_config().hedge_after.max(1);
    for &candidate in &candidates {
        if candidate == coordinator {
            serve_on_node(cluster, candidate, &pending, cfg, stats);
            if candidate != routed {
                stats.rerouted += 1;
            }
            return;
        }
        let outcome =
            cluster.rpc(coordinator, candidate, req_bytes, resp_bytes, hedge_after, || {
                // The callee's serve runs between the delivered legs; stats
                // mutate only on a *received* response, so a dropped response
                // re-serves on retry without double counting.
                let mut local = stats_shell(cluster.len());
                serve_on_node(cluster, candidate, &pending, cfg, &mut local);
                local
            });
        if let Ok(local) = outcome {
            merge_stats(stats, local);
            if candidate != routed {
                stats.rerouted += 1;
            }
            return;
        }
    }
    // Every candidate exhausted: serve at home, whatever it costs.
    serve_on_node(cluster, coordinator, &pending, cfg, stats);
    stats.degraded_local += 1;
    if coordinator != routed {
        stats.rerouted += 1;
    }
}

/// Runs every gossip round due at or before the current tick. Dispatches
/// advance the clock (RPC legs, backoff, solve time), so this must run
/// after each dispatch as well as at the top of the driver loop —
/// otherwise one long stall can carry the run to completion with the
/// protocol blind to a node that died mid-stall.
fn pump_gossip(cluster: &mut Cluster, next_gossip: &mut Tick, period: Duration) {
    while cluster.clock().now() >= *next_gossip {
        cluster.gossip_tick();
        *next_gossip = next_gossip.saturating_add(period.as_nanos() as Tick);
    }
}

fn stats_shell(nodes: usize) -> ClusterRunStats {
    ClusterRunStats {
        offered: 0,
        completed: 0,
        wrong: 0,
        repaired: 0,
        rerouted: 0,
        degraded_local: 0,
        rpc_timeouts: 0,
        rpc_retries: 0,
        latencies_ns: Vec::new(),
        served_by_node: vec![0; nodes],
        batch_log: Vec::new(),
        final_tick: 0,
    }
}

fn merge_stats(into: &mut ClusterRunStats, from: ClusterRunStats) {
    into.completed += from.completed;
    into.wrong += from.wrong;
    into.repaired += from.repaired;
    into.latencies_ns.extend(from.latencies_ns);
    for (a, b) in into.served_by_node.iter_mut().zip(from.served_by_node) {
        *a += b;
    }
    into.batch_log.extend(from.batch_log);
}

/// Runs `workload` through the cluster serving loop to completion.
/// Deterministic: two calls on identically-configured clusters return
/// identical stats, tick for tick.
pub fn run_cluster_service(
    cluster: &mut Cluster,
    cfg: &ClusterServiceConfig,
    workload: &ClusterWorkload,
) -> ClusterRunStats {
    let clock = cluster.clock().clone();
    let gossip_period = cluster.gossip_period();
    let mut next_gossip: Tick = gossip_period.as_nanos().min(u64::MAX as u128) as Tick;
    let mut table: BucketTable<f32> = BucketTable::new(cfg.target_batch.max(1), cfg.max_linger);
    let mut generator = Generator::new(workload.seed);
    let mut stats = stats_shell(cluster.len());
    stats.offered = workload.requests as u64;

    let arrivals: Vec<Tick> = (0..workload.requests).map(|i| workload.arrival_tick(i)).collect();
    let mut i = 0usize;
    let mut next_id = 0u64;

    while i < arrivals.len() || table.pending() > 0 {
        let mut next = match (arrivals.get(i).copied(), table.next_deadline()) {
            (Some(a), Some(d)) => a.min(d),
            (Some(a), None) => a,
            (None, Some(d)) => d,
            (None, None) => break,
        };
        // Gossip fires on its period grid even when no work is due.
        next = next.max(clock.now()).min(next_gossip.max(clock.now()));
        clock.advance_to(next);

        // Gossip rounds due at or before this tick run first, so routing
        // below sees every heartbeat outcome of the tick.
        pump_gossip(cluster, &mut next_gossip, gossip_period);

        // Rule 1: due linger flushes before arrivals.
        for flush in table.flush_expired(clock.now()) {
            dispatch_flush(cluster, flush, cfg, &mut stats);
            pump_gossip(cluster, &mut next_gossip, gossip_period);
        }

        // Rules 2–3: admit arrivals in order, serving full-bucket flushes
        // inline.
        while i < arrivals.len() && arrivals[i] <= clock.now() {
            let n = workload.sizes[i % workload.sizes.len()].max(2);
            let system: TridiagonalSystem<f32> = generator.system(Workload::DiagonallyDominant, n);
            let at = clock.now();
            let id = next_id;
            next_id += 1;
            cluster.trace().emit(|| TraceEvent::Admit { at, id, n: n as u64 });
            // The dispatch path rebuilds request/ticket pairs per attempt;
            // the admission ticket is bookkeeping only.
            let (request, _ticket) = make_request_at(id, system, at, None);
            if let Some(flush) = table.insert(request, at) {
                dispatch_flush(cluster, flush, cfg, &mut stats);
                pump_gossip(cluster, &mut next_gossip, gossip_period);
            }
            i += 1;
        }
    }

    // Rule 4: shutdown drain, ascending size order.
    for flush in table.flush_all() {
        dispatch_flush(cluster, flush, cfg, &mut stats);
        pump_gossip(cluster, &mut next_gossip, gossip_period);
    }

    stats.rpc_timeouts = cluster.rpc_timeouts();
    stats.rpc_retries = cluster.rpc_retries();
    stats.final_tick = clock.now();
    stats
}
