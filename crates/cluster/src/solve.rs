//! The two-level cluster partitioned solve.
//!
//! Level one is the node cut: the system is sliced into contiguous node
//! spans, shipped over the (faulty, priced) network, and each node runs
//! the device-pool substructuring over its own span — modified-Thomas
//! local reduction per chunk across its healthy devices. Level two is the
//! cluster interface: every chunk contributes its two reduced boundary
//! rows, the coordinator gathers them into one small tridiagonal
//! interface system, solves it with PCR on a local device, and fans the
//! interface solution back out for parallel back-substitution.
//!
//! This is the same substructuring algebra as
//! [`device_pool::solve_partitioned`] — the reduction is associative, so
//! cutting by node first and device second yields the *same* interface
//! system as a flat cut over all devices; only the transport between the
//! cuts differs. That is what opens `n` far beyond a single pool: the
//! interface stays `2 × total chunks` rows no matter how many nodes feed
//! it.
//!
//! Adversity at every layer funnels into one replan loop: an RPC that
//! exhausts its retries excludes that **node** for this solve (the
//! coordinator cannot tell a dead node from a dead link — and does not
//! need to); a `DeviceLost` inside a node marks that **device** lost in
//! the node's pool and replans over the survivors. Exactly like the
//! single-pool solve, just one level up.

use crate::cluster::Cluster;
use gpu_solvers::partitioned::{
    back_substitute, even_offsets, local_reduce, solve_interface, InterfaceSystem, LocalPhase,
    MIN_CHUNK,
};
use solver_service::TraceEvent;
use tridiag_core::{Real, Result, TridiagError, TridiagonalSystem};

/// Phase timings for a cluster solve, milliseconds. Parallel phases
/// (local, back-substitution, per-node network legs) cost the max across
/// nodes; the interface solve is serial on the coordinator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClusterTiming {
    /// Local-reduction kernels (max across nodes).
    pub local_ms: f64,
    /// Interface PCR solve on the coordinator.
    pub interface_ms: f64,
    /// Back-substitution kernels (max across nodes).
    pub backsubst_ms: f64,
    /// Host↔device transfers inside the nodes (max across nodes).
    pub transfer_ms: f64,
    /// Inter-node network time (max across remote nodes per direction,
    /// summed over the four transport phases).
    pub net_ms: f64,
}

impl ClusterTiming {
    /// Sum of all phases.
    pub fn total_ms(&self) -> f64 {
        self.local_ms + self.interface_ms + self.backsubst_ms + self.transfer_ms + self.net_ms
    }
}

/// Outcome of a cluster-wide partitioned solve.
#[derive(Debug, Clone)]
pub struct ClusterSolveReport<T> {
    /// Solution vector, natural order.
    pub x: Vec<T>,
    /// Nodes that executed spans, in span order.
    pub nodes_used: Vec<usize>,
    /// `[start, end)` of each node's span, same order.
    pub node_spans: Vec<(usize, usize)>,
    /// Total chunks across the whole cluster.
    pub chunks_total: usize,
    /// Meaningful interface rows (`2 × chunks_total`).
    pub interface_rows: usize,
    /// Padded interface size PCR solved.
    pub interface_padded: usize,
    /// Phase timings.
    pub timing: ClusterTiming,
}

/// One device's share within one node's span.
#[derive(Debug, Clone)]
struct DevicePlan {
    device: usize,
    /// Global row range.
    start: usize,
    end: usize,
    /// Chunk boundaries relative to the device span.
    offsets: Vec<usize>,
}

/// One node's share of the plan.
#[derive(Debug, Clone)]
struct NodePlan {
    node: usize,
    start: usize,
    end: usize,
    devices: Vec<DevicePlan>,
}

/// Cuts `n` rows node-first, device-second. `participants` lists each
/// node with its healthy devices. The global chunk budget is `cap / 2`
/// (padded interface must fit one PCR block), split evenly over all
/// participating devices.
fn plan_cluster(
    n: usize,
    participants: &[(usize, Vec<usize>)],
    chunks_per_device: usize,
    cap: usize,
) -> Result<Vec<NodePlan>> {
    if chunks_per_device == 0 {
        return Err(TridiagError::InvalidConfig { what: "chunks_per_device must be >= 1" });
    }
    if n < MIN_CHUNK {
        return Err(TridiagError::SizeTooSmall { n, min: MIN_CHUNK });
    }
    if cap < 2 {
        return Err(TridiagError::InvalidConfig { what: "interface cap below one chunk" });
    }
    // Nodes that can hold at least one chunk each.
    let used = participants.len().min(n / MIN_CHUNK).max(1);
    let max_total_chunks = cap / 2;
    // Cap devices per node so even one-chunk-per-device fits the budget.
    let max_devs_per_node = (max_total_chunks / used).max(1);
    let total_devices: usize =
        participants.iter().take(used).map(|(_, h)| h.len().min(max_devs_per_node)).sum();
    let cpd = chunks_per_device.min((max_total_chunks / total_devices).max(1)).max(1);
    let (base, rem) = (n / used, n % used);
    let mut plans = Vec::with_capacity(used);
    let mut start = 0;
    for (slot, (node, healthy)) in participants.iter().take(used).enumerate() {
        let len = base + usize::from(slot < rem);
        let devs = healthy.len().min(max_devs_per_node);
        // Devices within the node that can hold at least one chunk each.
        let dev_used = devs.min(len / MIN_CHUNK).max(1);
        let (dbase, drem) = (len / dev_used, len % dev_used);
        let mut devices = Vec::with_capacity(dev_used);
        let mut dstart = start;
        for (dslot, &device) in healthy.iter().take(dev_used).enumerate() {
            let dlen = dbase + usize::from(dslot < drem);
            let chunks = cpd.min(dlen / MIN_CHUNK).max(1);
            let offsets = even_offsets(dlen, chunks)?;
            devices.push(DevicePlan { device, start: dstart, end: dstart + dlen, offsets });
            dstart += dlen;
        }
        debug_assert_eq!(dstart, start + len);
        plans.push(NodePlan { node: *node, start, end: start + len, devices });
        start += len;
    }
    debug_assert_eq!(start, n);
    Ok(plans)
}

/// Why one attempt failed (funnelled into the replan loop).
enum Fail {
    /// RPC to this node exhausted its retries — exclude the node.
    Node(usize),
    /// A device died mid-phase — mark it lost and replan.
    Device { node: usize, device: usize },
    /// Not recoverable by replanning.
    Fatal(TridiagError),
}

/// Solves `system` across the cluster, coordinated by node
/// `coordinator`: node-local reductions → one interface solve on the
/// coordinator → fan-out back-substitution. Re-plans around nodes whose
/// RPCs exhaust retries and devices that die mid-phase; falls back to a
/// coordinator-only (then CPU-assisted) solve only when no peer is
/// reachable — returning [`TridiagError::DeviceLost`] only when *nothing*
/// in the cluster can run a kernel.
pub fn solve_partitioned_cluster<T: Real>(
    cluster: &Cluster,
    coordinator: usize,
    system: &TridiagonalSystem<T>,
    chunks_per_device: usize,
) -> Result<ClusterSolveReport<T>> {
    let mut excluded = vec![false; cluster.len()];
    // Each replan loses at most one node or device; a few extra attempts
    // absorb transient drops on top.
    let mut attempts = cluster.len() + cluster.node(coordinator).pool.len() + 3;
    let mut last_err = TridiagError::DeviceLost;
    loop {
        let now = cluster.clock().now();
        let participants: Vec<(usize, Vec<usize>)> = (0..cluster.len())
            .filter(|&i| {
                !excluded[i] && cluster.eligible_from(coordinator, i) && {
                    // The coordinator never routes to a node it can see is
                    // inside a crash window (its own view suffices).
                    i == coordinator || !cluster.net().node_down(i, now)
                }
            })
            .map(|i| (i, cluster.node(i).pool.healthy()))
            .filter(|(_, h)| !h.is_empty())
            .collect();
        if participants.is_empty() {
            return Err(last_err);
        }
        match try_solve(cluster, coordinator, &participants, system, chunks_per_device) {
            Ok(report) => return Ok(report),
            Err(Fail::Node(node)) => {
                excluded[node] = true;
                last_err = TridiagError::DeviceLost;
            }
            Err(Fail::Device { node, device }) => {
                cluster.node(node).pool.mark_lost(device);
                last_err = TridiagError::DeviceLost;
            }
            Err(Fail::Fatal(err)) => return Err(err),
        }
        attempts -= 1;
        if attempts == 0 {
            return Err(last_err);
        }
    }
}

fn try_solve<T: Real>(
    cluster: &Cluster,
    coordinator: usize,
    participants: &[(usize, Vec<usize>)],
    system: &TridiagonalSystem<T>,
    chunks_per_device: usize,
) -> core::result::Result<ClusterSolveReport<T>, Fail> {
    // The interface solves on the coordinator when it participates, else
    // on the first participant (the coordinator's own pool may be dead).
    let iface_node =
        participants.iter().find(|(i, _)| *i == coordinator).map_or(participants[0].0, |(i, _)| *i);
    let iface_dev = cluster.node(iface_node).pool.healthy()[0];
    let iface_launcher = &cluster.node(iface_node).pool.device(iface_dev).launcher;
    let cap = InterfaceSystem::<T>::max_padded_rows(T::BYTES, &iface_launcher.device);
    let plans =
        plan_cluster(system.n(), participants, chunks_per_device, cap).map_err(Fail::Fatal)?;
    let rpc_attempts = cluster.rpc_config().max_attempts;
    let link = *cluster.net().link();

    // Local reduction, node by node. Remote spans ride an RPC carrying
    // the four coefficient arrays out and the reduced boundary rows back;
    // phases are parallel across nodes, so kernel and network costs take
    // the max.
    let mut node_phases: Vec<Vec<LocalPhase<T>>> = Vec::with_capacity(plans.len());
    let (mut local_ms, mut transfer_ms, mut net_ms) = (0.0f64, 0.0f64, 0.0f64);
    for plan in &plans {
        let node = cluster.node(plan.node);
        let mut reduce = || -> core::result::Result<Vec<LocalPhase<T>>, Fail> {
            let mut phases = Vec::with_capacity(plan.devices.len());
            for dp in &plan.devices {
                let dev = node.pool.device(dp.device);
                let (s, e) = (dp.start, dp.end);
                let phase = local_reduce(
                    &dev.launcher,
                    &system.a[s..e],
                    &system.b[s..e],
                    &system.c[s..e],
                    &system.d[s..e],
                    &dp.offsets,
                )
                .map_err(|err| match err {
                    TridiagError::DeviceLost => Fail::Device { node: plan.node, device: dp.device },
                    other => Fail::Fatal(other),
                })?;
                dev.note_dispatched(phase.local_ms);
                local_ms = local_ms.max(phase.local_ms);
                transfer_ms = transfer_ms.max(phase.upload_ms);
                phases.push(phase);
            }
            Ok(phases)
        };
        let phases = if plan.node == coordinator {
            reduce()?
        } else {
            let span_len = plan.end - plan.start;
            let chunks: usize = plan.devices.iter().map(|d| d.offsets.len() - 1).sum();
            let up_bytes = 4 * span_len * T::BYTES;
            let down_bytes = 4 * 2 * chunks * T::BYTES;
            net_ms = net_ms.max(link.seconds(up_bytes) * 1e3 + link.seconds(down_bytes) * 1e3);
            cluster
                .rpc(coordinator, plan.node, up_bytes, down_bytes, rpc_attempts, reduce)
                .map_err(|_| Fail::Node(plan.node))??
        };
        node_phases.push(phases);
    }

    // Gather the reduced rows (node-span order, device order within —
    // exactly the global chunk order).
    let total_chunks: usize = node_phases.iter().flatten().map(|p| p.reduced.0.len() / 2).sum();
    let mut ra = Vec::with_capacity(2 * total_chunks);
    let mut rb = Vec::with_capacity(2 * total_chunks);
    let mut rc = Vec::with_capacity(2 * total_chunks);
    let mut rd = Vec::with_capacity(2 * total_chunks);
    for p in node_phases.iter().flatten() {
        ra.extend_from_slice(&p.reduced.0);
        rb.extend_from_slice(&p.reduced.1);
        rc.extend_from_slice(&p.reduced.2);
        rd.extend_from_slice(&p.reduced.3);
    }
    let interface = InterfaceSystem::assemble(&ra, &rb, &rc, &rd);
    let (xi, interface_ms) =
        solve_interface(iface_launcher, &interface).map_err(|err| match err {
            TridiagError::DeviceLost => Fail::Device { node: iface_node, device: iface_dev },
            other => Fail::Fatal(other),
        })?;
    cluster.node(iface_node).pool.device(iface_dev).note_dispatched(interface_ms);
    cluster.trace().emit(|| TraceEvent::InterfaceSolve {
        at: cluster.clock().now(),
        n: system.n() as u64,
        rows: interface.rows as u64,
        node: iface_node as u64,
    });

    // Fan out: each node back-substitutes its span against its slice of
    // the interface solution.
    let mut x = vec![T::ZERO; system.n()];
    let mut backsubst_ms = 0.0f64;
    let mut scatter_net = 0.0f64;
    let mut row = 0usize;
    for (plan, phases) in plans.iter().zip(node_phases.iter_mut()) {
        let node = cluster.node(plan.node);
        let node_rows: usize = phases.iter().map(|p| p.reduced.0.len()).sum();
        let xi_slice = &xi[row..row + node_rows];
        let out = &mut x[plan.start..plan.end];
        let mut backsub = || -> core::result::Result<(), Fail> {
            let mut r = 0usize;
            let mut cursor = 0usize;
            for (dp, phase) in plan.devices.iter().zip(phases.iter_mut()) {
                let dev = node.pool.device(dp.device);
                let rows = phase.reduced.0.len();
                let (span_x, kernel_ms, dl_ms) = back_substitute(
                    &dev.launcher,
                    phase,
                    &xi_slice[r..r + rows],
                )
                .map_err(|err| match err {
                    TridiagError::DeviceLost => Fail::Device { node: plan.node, device: dp.device },
                    other => Fail::Fatal(other),
                })?;
                dev.note_dispatched(kernel_ms);
                backsubst_ms = backsubst_ms.max(kernel_ms);
                transfer_ms = transfer_ms.max(dl_ms);
                out[cursor..cursor + span_x.len()].copy_from_slice(&span_x);
                cursor += span_x.len();
                r += rows;
            }
            debug_assert_eq!(cursor, plan.end - plan.start);
            Ok(())
        };
        if plan.node == coordinator {
            backsub()?;
        } else {
            let up_bytes = node_rows * T::BYTES;
            let down_bytes = (plan.end - plan.start) * T::BYTES;
            scatter_net =
                scatter_net.max(link.seconds(up_bytes) * 1e3 + link.seconds(down_bytes) * 1e3);
            cluster
                .rpc(coordinator, plan.node, up_bytes, down_bytes, rpc_attempts, backsub)
                .map_err(|_| Fail::Node(plan.node))??;
        }
        row += node_rows;
    }
    debug_assert_eq!(row, interface.rows);

    Ok(ClusterSolveReport {
        x,
        nodes_used: plans.iter().map(|p| p.node).collect(),
        node_spans: plans.iter().map(|p| (p.start, p.end)).collect(),
        chunks_total: total_chunks,
        interface_rows: interface.rows,
        interface_padded: interface.padded,
        timing: ClusterTiming {
            local_ms,
            interface_ms,
            backsubst_ms,
            transfer_ms,
            net_ms: net_ms + scatter_net,
        },
    })
}
