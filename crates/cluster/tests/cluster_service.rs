//! Integration tests for cluster dispatch: sticky node kill mid-stream,
//! asymmetric partition with heal, ring stickiness, and bit-identical
//! determinism — all on the virtual clock.

use cluster::{
    node_key, run_cluster_service, BlockedWindow, ClusterConfig, ClusterServiceConfig,
    ClusterWorkload, CrashWindow, HashRing, NetFaultConfig, PeerState,
};
use solver_service::BreakerState;
use std::time::Duration;

fn workload() -> ClusterWorkload {
    ClusterWorkload {
        seed: 2010,
        requests: 240,
        sizes: vec![64, 128, 256, 512, 96, 192],
        interarrival: Duration::from_micros(50),
    }
}

#[test]
fn quiet_cluster_serves_everything_with_sticky_routing() {
    let mut cluster = ClusterConfig::new(3, 2).build();
    let cfg = ClusterServiceConfig::default();
    let stats = run_cluster_service(&mut cluster, &cfg, &workload());
    assert_eq!(stats.completed, stats.offered, "quiet cluster must lose nothing");
    assert_eq!(stats.wrong, 0);
    assert_eq!(stats.rerouted, 0, "no failover on a quiet network");
    assert_eq!(stats.degraded_local, 0);
    // Stickiness: every batch of one size class lands on that class's
    // home node.
    let ring = cluster.ring();
    for &n in &workload().sizes {
        let home = ring.home(HashRing::key(n, 4));
        assert!(stats.served_by_node[home] > 0, "home node {home} of n={n} served nothing");
    }
    // Tune-once: each node autotuned at most its own resident classes.
    let tunes: u64 = (0..cluster.len()).map(|i| cluster.node(i).plans.tunes()).sum();
    assert!(tunes <= workload().sizes.len() as u64, "{tunes} tunes for 6 size classes");
}

#[test]
fn sticky_node_kill_mid_stream_loses_nothing_and_drains_to_survivors() {
    let mut cfg = ClusterConfig::new(3, 2);
    // Node 1 dies at 4 ms into the run and never returns.
    cfg.net_fault = NetFaultConfig {
        crashes: vec![CrashWindow { node: 1, down_from: 4_000_000, up_at: None }],
        ..NetFaultConfig::quiet(0)
    };
    let mut cluster = cfg.build();
    let svc = ClusterServiceConfig::default();
    let stats = run_cluster_service(&mut cluster, &svc, &workload());
    assert_eq!(stats.completed, stats.offered, "node kill must lose zero requests");
    assert_eq!(stats.wrong, 0, "node kill must produce zero wrong answers");
    assert!(stats.rerouted > 0, "classes homed on node 1 must fail over");
    assert!(stats.rpc_timeouts > 0, "the kill must cost visible timeouts");
    // The dead node serves nothing after its crash tick.
    assert!(
        stats.batch_log.iter().all(|&(node, at, _)| node != 1 || at < 4_000_000),
        "a batch was served by the dead node after its crash"
    );
    // Failure isolation: only node 1's peer breaker is open on the
    // coordinator; the healthy peer stays closed.
    assert_eq!(cluster.node(0).peer_breakers.state(&node_key(1)), BreakerState::Open);
    assert_eq!(cluster.node(0).peer_breakers.state(&node_key(2)), BreakerState::Closed);
    assert_eq!(cluster.gossip().view(0, 1), PeerState::Dead);
    assert_eq!(cluster.gossip().view(0, 2), PeerState::Alive);
}

#[test]
fn asymmetric_partition_reroutes_and_heals_back() {
    let mut cfg = ClusterConfig::new(3, 2);
    // The coordinator loses its path to node 2 between 3 ms and 9 ms;
    // node 2 is never actually down.
    cfg.net_fault = NetFaultConfig {
        blocked: vec![BlockedWindow { src: 0, dst: 2, from: 3_000_000, until: Some(9_000_000) }],
        ..NetFaultConfig::quiet(0)
    };
    let mut cluster = cfg.build();
    let svc = ClusterServiceConfig::default();
    // Longer stream so the run outlives the heal plus breaker cooldown.
    let load = ClusterWorkload { requests: 600, ..workload() };
    let stats = run_cluster_service(&mut cluster, &svc, &load);
    assert_eq!(stats.completed, stats.offered, "partition must lose zero requests");
    assert_eq!(stats.wrong, 0);
    assert!(stats.rerouted > 0, "blocked classes must fail over during the window");
    // Node 2 serves before the partition and again after the heal.
    assert!(
        stats.batch_log.iter().any(|&(node, at, _)| node == 2 && at < 3_000_000),
        "node 2 must serve before the partition"
    );
    assert!(
        stats.batch_log.iter().any(|&(node, at, _)| node == 2 && at > 9_000_000),
        "healing must restore traffic to node 2"
    );
    // Post-heal the coordinator's view of node 2 converges back to alive.
    assert_eq!(cluster.gossip().view(0, 2), PeerState::Alive);
    assert_eq!(cluster.node(0).peer_breakers.state(&node_key(2)), BreakerState::Closed);
}

#[test]
fn coordinator_serves_alone_when_every_peer_is_dead() {
    let mut cfg = ClusterConfig::new(3, 2);
    cfg.net_fault = NetFaultConfig {
        crashes: vec![
            CrashWindow { node: 1, down_from: 0, up_at: None },
            CrashWindow { node: 2, down_from: 0, up_at: None },
        ],
        ..NetFaultConfig::quiet(0)
    };
    let mut cluster = cfg.build();
    let svc = ClusterServiceConfig::default();
    let load = ClusterWorkload { requests: 120, ..workload() };
    let stats = run_cluster_service(&mut cluster, &svc, &load);
    assert_eq!(stats.completed, stats.offered, "single-node degrade must lose nothing");
    assert_eq!(stats.wrong, 0);
    assert_eq!(
        stats.served_by_node[1] + stats.served_by_node[2],
        0,
        "dead peers must serve nothing"
    );
    assert_eq!(stats.served_by_node[0], stats.batch_log.len() as u64);
}

#[test]
fn chaos_service_run_is_bit_identical() {
    let run = || {
        let mut cfg = ClusterConfig::new(3, 2);
        cfg.seed = 0xDEAD_BEEF;
        cfg.net_fault = NetFaultConfig {
            blocked: vec![BlockedWindow {
                src: 0,
                dst: 1,
                from: 2_000_000,
                until: Some(6_000_000),
            }],
            ..NetFaultConfig::chaos(0xDEAD_BEEF, 0.02, 0.02)
        };
        let mut cluster = cfg.build();
        let svc = ClusterServiceConfig::default();
        run_cluster_service(&mut cluster, &svc, &workload())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identically-seeded cluster runs diverged");
    assert_eq!(a.completed, a.offered);
    assert_eq!(a.wrong, 0);
}
