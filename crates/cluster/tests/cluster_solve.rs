//! Integration tests for the two-level cluster partitioned solve:
//! correctness against the CPU GEP oracle, failover around dead nodes and
//! devices, and bit-identical determinism under network chaos.

use cluster::{
    solve_partitioned_cluster, BlockedWindow, ClusterConfig, CrashWindow, NetFaultConfig,
};
use gpu_sim::FaultConfig;
use tridiag_core::residual::l2_residual;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

#[test]
fn four_node_solve_matches_gep() {
    let n = 1 << 14;
    let sys: TridiagonalSystem<f64> = Generator::new(41).system(Workload::DiagonallyDominant, n);
    let cluster = ClusterConfig::new(4, 4).build();
    let report = solve_partitioned_cluster(&cluster, 0, &sys, 4).unwrap();
    let x_ref = cpu_solvers::gep::solve(&sys).unwrap();
    for i in 0..n {
        assert!((report.x[i] - x_ref[i]).abs() < 1e-9, "i={i}");
    }
    assert_eq!(report.nodes_used, vec![0, 1, 2, 3]);
    assert_eq!(report.node_spans.last().unwrap().1, n);
    // Every node's devices did local + back-substitution work.
    for node in cluster.nodes() {
        for d in node.pool.devices() {
            assert!(d.dispatched() >= 2, "node {} device {} idle", node.id, d.id);
        }
    }
    assert!(report.timing.net_ms > 0.0, "remote spans must be priced");
}

#[test]
fn cluster_solve_agrees_with_single_node_interface_algebra() {
    // The node-first/device-second cut must produce the same answer as a
    // flat device cut: both reduce to the same interface algebra.
    let n = 4096;
    let sys: TridiagonalSystem<f64> = Generator::new(7).system(Workload::DiagonallyDominant, n);
    let cluster = ClusterConfig::new(2, 2).build();
    let report = solve_partitioned_cluster(&cluster, 0, &sys, 4).unwrap();
    let pool = device_pool::PoolConfig::new(4).build();
    let flat = device_pool::solve_partitioned(&pool, &sys, 4).unwrap();
    let r_cluster = l2_residual(&sys, &report.x).unwrap();
    let r_flat = l2_residual(&sys, &flat.x).unwrap();
    assert!(r_cluster < 1e-8, "cluster residual {r_cluster}");
    assert!(r_flat < 1e-8, "flat residual {r_flat}");
    assert_eq!(report.interface_rows, 2 * report.chunks_total);
}

#[test]
fn dead_node_is_excluded_and_survivors_solve() {
    let n = 8192;
    let sys: TridiagonalSystem<f64> = Generator::new(3).system(Workload::DiagonallyDominant, n);
    let mut cfg = ClusterConfig::new(3, 2);
    // Node 1 is down from the start and never comes back.
    cfg.net_fault = NetFaultConfig {
        crashes: vec![CrashWindow { node: 1, down_from: 0, up_at: None }],
        ..NetFaultConfig::quiet(0)
    };
    let cluster = cfg.build();
    let report = solve_partitioned_cluster(&cluster, 0, &sys, 4).unwrap();
    assert!(!report.nodes_used.contains(&1), "dead node must not appear: {:?}", report.nodes_used);
    let r = l2_residual(&sys, &report.x).unwrap();
    assert!(r < 1e-8, "residual {r}");
}

#[test]
fn asymmetrically_partitioned_node_is_routed_around() {
    let n = 8192;
    let sys: TridiagonalSystem<f64> = Generator::new(9).system(Workload::DiagonallyDominant, n);
    let mut cfg = ClusterConfig::new(3, 2);
    // Coordinator 0 cannot reach node 2 (one direction only) — RPCs to 2
    // lose their request leg and exhaust retries.
    cfg.net_fault = NetFaultConfig {
        blocked: vec![BlockedWindow { src: 0, dst: 2, from: 0, until: None }],
        ..NetFaultConfig::quiet(0)
    };
    let cluster = cfg.build();
    let report = solve_partitioned_cluster(&cluster, 0, &sys, 4).unwrap();
    assert!(!report.nodes_used.contains(&2), "partitioned node used: {:?}", report.nodes_used);
    let r = l2_residual(&sys, &report.x).unwrap();
    assert!(r < 1e-8, "residual {r}");
    assert!(cluster.rpc_timeouts() > 0, "the partition must actually cost timeouts");
}

#[test]
fn device_death_inside_a_node_replans_without_excluding_the_node() {
    let n = 8192;
    let sys: TridiagonalSystem<f64> = Generator::new(5).system(Workload::DiagonallyDominant, n);
    let mut cfg = ClusterConfig::new(2, 3);
    // Node 1, device 1 dies on its first launch; the node's other devices
    // keep the span.
    cfg.device_fault_overrides =
        vec![(1, 1, FaultConfig { device_lost_after: Some(0), ..FaultConfig::quiet(0) })];
    let cluster = cfg.build();
    let report = solve_partitioned_cluster(&cluster, 0, &sys, 4).unwrap();
    assert!(cluster.node(1).pool.is_lost(1), "the dead device must be marked lost");
    assert!(
        report.nodes_used.contains(&1),
        "node 1 must stay in the plan: {:?}",
        report.nodes_used
    );
    let r = l2_residual(&sys, &report.x).unwrap();
    assert!(r < 1e-8, "residual {r}");
}

#[test]
fn all_nodes_dead_surfaces_device_lost() {
    let sys: TridiagonalSystem<f64> = Generator::new(1).system(Workload::DiagonallyDominant, 256);
    let cluster = ClusterConfig::new(2, 2).build();
    for node in cluster.nodes() {
        for d in 0..node.pool.len() {
            node.pool.mark_lost(d);
        }
    }
    assert!(solve_partitioned_cluster(&cluster, 0, &sys, 4).is_err());
}

#[test]
fn chaos_solve_is_bit_identical_across_runs() {
    let n = 8192;
    let run = || {
        let sys: TridiagonalSystem<f64> =
            Generator::new(13).system(Workload::DiagonallyDominant, n);
        let mut cfg = ClusterConfig::new(3, 2);
        cfg.seed = 0xC1A5_0001;
        cfg.net_fault = NetFaultConfig::chaos(0xC1A5_0001, 0.05, 0.05);
        let cluster = cfg.build();
        let report = solve_partitioned_cluster(&cluster, 0, &sys, 4).unwrap();
        (
            report.x,
            report.nodes_used,
            report.node_spans,
            report.chunks_total,
            cluster.rpc_timeouts(),
            cluster.rpc_retries(),
            cluster.clock().now(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.1, b.1, "node sets diverged");
    assert_eq!(a.2, b.2, "spans diverged");
    assert_eq!(a.4, b.4, "timeout counts diverged");
    assert_eq!(a.5, b.5, "retry counts diverged");
    assert_eq!(a.6, b.6, "final ticks diverged");
    assert!(a.0.iter().zip(&b.0).all(|(x, y)| x.to_bits() == y.to_bits()), "solutions diverged");
}
