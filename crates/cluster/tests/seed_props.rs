//! Property tests for the cluster seed-derivation layering (satellite of
//! the cluster tier): `derive_device_seed(derive_node_seed(cluster, node),
//! device)` must be pairwise distinct across a 4×8 cluster, replay-stable,
//! and reproduced exactly by a node restart.
//!
//! Following the workspace idiom, these are exhaustive/seed-swept plain
//! tests rather than shrinking property tests: the domains are small
//! enough to enumerate.

use cluster::{ClusterConfig, CrashWindow, NetFaultConfig};
use gpu_sim::{derive_device_seed, derive_node_seed, FaultConfig, FaultPlan};
use std::collections::HashSet;
use std::time::Duration;

fn xorshift64(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Every (node, device) cell of a 4×8 cluster draws a distinct seed, for
/// many cluster seeds — and node seeds never collide with device seeds
/// of node 0 (the two derivations use distinct mixing constants).
#[test]
fn derived_seeds_are_pairwise_distinct_across_a_4x8_cluster() {
    let mut rng = 0x5EED_CAFE_u64;
    for _ in 0..64 {
        let cluster_seed = xorshift64(&mut rng);
        let mut seen = HashSet::new();
        for node in 0..4u64 {
            let node_seed = derive_node_seed(cluster_seed, node);
            assert!(seen.insert(node_seed), "node seed collision at node {node}");
            for device in 0..8u64 {
                let dev_seed = derive_device_seed(node_seed, device);
                assert!(
                    seen.insert(dev_seed),
                    "seed collision at node {node} device {device} (cluster {cluster_seed:#x})"
                );
            }
        }
        assert_eq!(seen.len(), 4 + 4 * 8);
    }
}

/// The derivation is a pure function: recomputing any cell reproduces the
/// same seed, and the full 4×8 fault schedule replays decision for
/// decision.
#[test]
fn derived_fault_plans_replay_bit_identically() {
    let mut rng = 0xFEED_F00D_u64;
    for _ in 0..16 {
        let cluster_seed = xorshift64(&mut rng);
        for node in 0..4u64 {
            for device in 0..8u64 {
                let seed = derive_device_seed(derive_node_seed(cluster_seed, node), device);
                assert_eq!(
                    seed,
                    derive_device_seed(derive_node_seed(cluster_seed, node), device),
                    "derivation must be pure"
                );
                let cfg = FaultConfig { seed, ..FaultConfig::chaos(0, 0.05, 0.01) };
                assert_eq!(
                    FaultPlan::schedule(&cfg, 64),
                    FaultPlan::schedule(&cfg, 64),
                    "schedule must replay (node {node}, device {device})"
                );
            }
        }
    }
}

/// Two identically-seeded 4×8 clusters assign every device the same fault
/// schedule, and schedules differ across devices of one cluster.
#[test]
fn identically_seeded_clusters_agree_and_devices_differ() {
    let template = FaultConfig::chaos(0, 0.1, 0.02);
    let schedule_grid = |cluster_seed: u64| {
        (0..4u64)
            .flat_map(|node| {
                let node_seed = derive_node_seed(cluster_seed, node);
                (0..8u64)
                    .map(move |dev| FaultPlan::schedule(&template.for_device(node_seed, dev), 256))
            })
            .collect::<Vec<_>>()
    };
    let a = schedule_grid(0xA11CE);
    let b = schedule_grid(0xA11CE);
    assert_eq!(a, b, "same cluster seed must replay the whole grid");
    // Distinct cells disagree somewhere (decision streams are keyed by
    // distinct seeds; at these rates 256 launches are plenty to diverge).
    let mut distinct = 0;
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            if a[i] != a[j] {
                distinct += 1;
            }
        }
    }
    let pairs = a.len() * (a.len() - 1) / 2;
    assert_eq!(distinct, pairs, "some device pairs share a fault schedule");
}

/// A node that crashes and restarts rebuilds its pool with the *same*
/// derived device seeds — the reborn devices replay the exact fault plans
/// the originals had.
#[test]
fn node_restart_reproduces_the_same_fault_plans() {
    let mut cfg = ClusterConfig::new(2, 4);
    cfg.seed = 0xB007_5EED;
    cfg.fault = Some(FaultConfig::chaos(0, 0.05, 0.01));
    // Node 1 crashes at 1 ms and reboots at 2 ms.
    cfg.net_fault = NetFaultConfig {
        crashes: vec![CrashWindow { node: 1, down_from: 1_000_000, up_at: Some(2_000_000) }],
        ..NetFaultConfig::quiet(0)
    };
    let clock = cfg.clock.clone();
    let mut cluster = cfg.build();

    // The fault configs the fresh pool carries, per device.
    let before: Vec<FaultConfig> = (0..4)
        .map(|d| {
            *cluster
                .node(1)
                .pool
                .device(d)
                .launcher
                .fault
                .as_ref()
                .expect("fault template installed")
                .config()
        })
        .collect();

    // Walk the clock through the crash window; gossip ticks detect the
    // down→up edge and restart the node.
    clock.advance(Duration::from_micros(1500));
    cluster.gossip_tick();
    clock.advance(Duration::from_millis(1));
    cluster.gossip_tick();
    assert_eq!(cluster.node(1).restarts(), 1, "the crash window exit must reboot node 1");

    let after: Vec<FaultConfig> = (0..4)
        .map(|d| {
            *cluster
                .node(1)
                .pool
                .device(d)
                .launcher
                .fault
                .as_ref()
                .expect("fault template installed")
                .config()
        })
        .collect();
    assert_eq!(before, after, "restart must re-derive identical device fault configs");
    for d in 0..4 {
        assert_eq!(
            FaultPlan::schedule(&before[d], 128),
            FaultPlan::schedule(&after[d], 128),
            "device {d} schedule must replay across the restart"
        );
    }
    // And the derivation matches the documented layering.
    for d in 0..4u64 {
        assert_eq!(
            after[d as usize].seed,
            derive_device_seed(derive_node_seed(0xB007_5EED, 1), d),
            "device {d} seed must follow derive_device_seed ∘ derive_node_seed"
        );
    }
}
