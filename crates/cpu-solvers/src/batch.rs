//! Batch drivers: apply a per-system solver across a [`SystemBatch`].

use tridiag_core::{Real, Result, SolutionBatch, SystemBatch};

/// A sequential solver for one tridiagonal system, usable from many threads.
pub trait SystemSolver<T: Real>: Sync {
    /// Name used in reports ("GE", "GEP", ...).
    fn name(&self) -> &'static str;
    /// Solves `A x = d` into `x`.
    fn solve_into(&self, a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()>;
}

/// The Thomas algorithm (Gaussian elimination, no pivoting) — "GE".
#[derive(Debug, Clone, Copy, Default)]
pub struct Thomas;

impl<T: Real> SystemSolver<T> for Thomas {
    fn name(&self) -> &'static str {
        "GE"
    }
    fn solve_into(&self, a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()> {
        crate::thomas::solve_into(a, b, c, d, x)
    }
}

/// Gaussian elimination with partial pivoting — "GEP" (LAPACK `sgtsv`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gep;

impl<T: Real> SystemSolver<T> for Gep {
    fn name(&self) -> &'static str {
        "GEP"
    }
    fn solve_into(&self, a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()> {
        crate::gep::solve_into(a, b, c, d, x)
    }
}

/// Solves every system of `batch` sequentially on the calling thread.
pub fn solve_batch_seq<T: Real>(
    solver: &impl SystemSolver<T>,
    batch: &SystemBatch<T>,
) -> Result<SolutionBatch<T>> {
    let mut out = SolutionBatch::zeros_like(batch);
    for i in 0..batch.count() {
        let (a, b, c, d) = batch.system_slices(i);
        solver.solve_into(a, b, c, d, out.system_mut(i))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, Workload};

    #[test]
    fn sequential_batch_solves_every_system() {
        let batch: SystemBatch<f64> =
            Generator::new(3).batch(Workload::DiagonallyDominant, 32, 8).unwrap();
        for solver in [&Thomas as &dyn SystemSolver<f64>, &Gep] {
            let mut out = SolutionBatch::zeros_like(&batch);
            for i in 0..batch.count() {
                let (a, b, c, d) = batch.system_slices(i);
                solver.solve_into(a, b, c, d, out.system_mut(i)).unwrap();
            }
            let r = batch_residual(&batch, &out).unwrap();
            assert!(r.max_l2 < 1e-10, "{}: {}", solver.name(), r.max_l2);
        }
    }

    #[test]
    fn helper_matches_manual_loop() {
        let batch: SystemBatch<f32> = Generator::new(9).batch(Workload::Poisson, 16, 4).unwrap();
        let out = solve_batch_seq(&Thomas, &batch).unwrap();
        let r = batch_residual(&batch, &out).unwrap();
        assert!(r.max_l2 < 1e-4);
        assert!(!r.has_overflow());
    }

    #[test]
    fn names() {
        assert_eq!(SystemSolver::<f32>::name(&Thomas), "GE");
        assert_eq!(SystemSolver::<f32>::name(&Gep), "GEP");
    }
}
