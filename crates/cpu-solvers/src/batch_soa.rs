//! Structure-of-arrays batched Thomas: solve `W` systems in lockstep over
//! a transposed (interleaved) layout so the inner loop vectorizes across
//! systems — the modern-CPU counterpart of the GPU's coarse-grained
//! thread-per-system kernel, and what batched CPU libraries (e.g. MKL's
//! `?dtsvb` family) do underneath.
//!
//! The arithmetic per system is *identical* to [`crate::thomas`] (same
//! operations in the same order), so results match the scalar solver
//! bit-for-bit; only the iteration order across systems changes.

use tridiag_core::{Real, Result, SolutionBatch, SystemBatch, TridiagError};

/// Number of systems processed per lockstep lane group. 8 f32 lanes = one
/// AVX2 register; the compiler auto-vectorizes the inner loops.
pub const LANES: usize = 8;

/// Solves every system of `batch` with lane-interleaved sweeps.
///
/// # Errors
/// [`TridiagError::ZeroPivot`] if any system hits an exactly-zero pivot
/// (reported with the row index; the batch is not partially returned).
pub fn solve_batch_soa<T: Real>(batch: &SystemBatch<T>) -> Result<SolutionBatch<T>> {
    let n = batch.n();
    let count = batch.count();
    let mut out = SolutionBatch::zeros_like(batch);

    let mut s0 = 0;
    while s0 < count {
        let width = LANES.min(count - s0);
        // Interleaved scratch: cp/dp[i * width + lane].
        let mut cp = vec![T::ZERO; n * width];
        let mut dp = vec![T::ZERO; n * width];

        // Row 0.
        for lane in 0..width {
            let (a, b, c, d) = batch.system_slices(s0 + lane);
            let _ = a;
            if b[0] == T::ZERO {
                return Err(TridiagError::ZeroPivot { row: 0 });
            }
            cp[lane] = c[0] / b[0];
            dp[lane] = d[0] / b[0];
        }
        // Forward sweep: the lane loop is the vectorizable inner loop.
        for i in 1..n {
            for lane in 0..width {
                let (a, b, c, d) = batch.system_slices(s0 + lane);
                let denom = b[i] - cp[(i - 1) * width + lane] * a[i];
                if denom == T::ZERO {
                    return Err(TridiagError::ZeroPivot { row: i });
                }
                cp[i * width + lane] = c[i] / denom;
                dp[i * width + lane] = (d[i] - dp[(i - 1) * width + lane] * a[i]) / denom;
            }
        }
        // Backward sweep.
        for lane in 0..width {
            out.system_mut(s0 + lane)[n - 1] = dp[(n - 1) * width + lane];
        }
        for i in (0..n - 1).rev() {
            for lane in 0..width {
                let next = out.system(s0 + lane)[i + 1];
                out.system_mut(s0 + lane)[i] = dp[i * width + lane] - cp[i * width + lane] * next;
            }
        }
        s0 += width;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_batch_seq, Thomas};
    use tridiag_core::{Generator, Workload};

    #[test]
    fn matches_scalar_thomas_bitwise() {
        for count in [1usize, 7, 8, 9, 20] {
            let batch: SystemBatch<f32> =
                Generator::new(5).batch(Workload::DiagonallyDominant, 64, count).unwrap();
            let scalar = solve_batch_seq(&Thomas, &batch).unwrap();
            let soa = solve_batch_soa(&batch).unwrap();
            assert_eq!(scalar.x, soa.x, "count={count}");
        }
    }

    #[test]
    fn f64_and_odd_sizes() {
        let batch: SystemBatch<f64> = Generator::new(9).batch(Workload::Poisson, 100, 13).unwrap();
        let scalar = solve_batch_seq(&Thomas, &batch).unwrap();
        let soa = solve_batch_soa(&batch).unwrap();
        assert_eq!(scalar.x, soa.x);
    }

    #[test]
    fn zero_pivot_reported() {
        let mut systems: Vec<tridiag_core::TridiagonalSystem<f32>> = (0..3)
            .map(|_| tridiag_core::TridiagonalSystem::toeplitz(8, -1.0, 4.0, -1.0, 1.0).unwrap())
            .collect();
        systems[1].b[0] = 0.0;
        systems[1].c[0] = 0.0;
        let batch = SystemBatch::from_systems(&systems).unwrap();
        assert!(matches!(solve_batch_soa(&batch), Err(TridiagError::ZeroPivot { row: 0 })));
    }
}
