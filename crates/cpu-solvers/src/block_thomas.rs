//! Block Thomas algorithm: sequential block-LU elimination for
//! block-tridiagonal systems with 2x2 blocks — the CPU reference for the
//! block-CR GPU kernel (paper future-work #1).

use tridiag_core::block::{inv, mul, mulvec, sub, subvec, BlockTridiagonalSystem, Vec2};
use tridiag_core::{Real, Result, TridiagError};

/// Solves one block-tridiagonal system, returning per-row sub-vectors.
///
/// # Errors
/// [`TridiagError::ZeroPivot`] when a pivot block is singular (no block
/// pivoting is performed; block-dominant systems are safe).
pub fn solve<T: Real>(sys: &BlockTridiagonalSystem<T>) -> Result<Vec<Vec2<T>>> {
    let n = sys.n();
    // Forward elimination: C'_i = P_i^{-1} C_i, D'_i = P_i^{-1}(d_i - A_i D'_{i-1}),
    // with pivot P_i = B_i - A_i C'_{i-1}.
    let mut cp = vec![tridiag_core::block::zero::<T>(); n];
    let mut dp = vec![[T::ZERO; 2]; n];

    let p0 = inv(&sys.b[0]).ok_or(TridiagError::ZeroPivot { row: 0 })?;
    cp[0] = mul(&p0, &sys.c[0]);
    dp[0] = mulvec(&p0, &sys.d[0]);
    for i in 1..n {
        let pivot = sub(&sys.b[i], &mul(&sys.a[i], &cp[i - 1]));
        let pinv = inv(&pivot).ok_or(TridiagError::ZeroPivot { row: i })?;
        cp[i] = mul(&pinv, &sys.c[i]);
        let rhs = subvec(&sys.d[i], &mulvec(&sys.a[i], &dp[i - 1]));
        dp[i] = mulvec(&pinv, &rhs);
    }

    // Backward substitution.
    let mut x = vec![[T::ZERO; 2]; n];
    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        let corr = mulvec(&cp[i], &x[i + 1]);
        x[i] = subvec(&dp[i], &corr);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::TridiagonalSystem;

    #[test]
    fn solves_random_dominant_systems() {
        for seed in 0..8 {
            let sys = BlockTridiagonalSystem::<f64>::random_dominant(seed, 64);
            let x = solve(&sys).unwrap();
            let r = sys.l2_residual(&x).unwrap();
            assert!(r < 1e-11, "seed {seed}: residual {r}");
        }
    }

    #[test]
    fn decoupled_blocks_match_scalar_thomas() {
        let s0 = TridiagonalSystem::<f64>::toeplitz(16, -1.0, 4.0, -1.0, 1.0).unwrap();
        let mut s1 = TridiagonalSystem::<f64>::toeplitz(16, -0.5, 3.0, -2.0, 2.0).unwrap();
        s1.d[7] = -5.0;
        let blk = BlockTridiagonalSystem::from_decoupled(&s0, &s1).unwrap();
        let xb = solve(&blk).unwrap();
        let x0 = crate::thomas::solve(&s0).unwrap();
        let x1 = crate::thomas::solve(&s1).unwrap();
        for i in 0..16 {
            assert!((xb[i][0] - x0[i]).abs() < 1e-12, "i={i}.0");
            assert!((xb[i][1] - x1[i]).abs() < 1e-12, "i={i}.1");
        }
    }

    #[test]
    fn coupled_blocks_differ_from_decoupled() {
        // Introduce genuine cross-component coupling and make sure it
        // actually changes the answer.
        let mut sys = BlockTridiagonalSystem::<f64>::random_dominant(3, 8);
        let x_coupled = solve(&sys).unwrap();
        for b in &mut sys.b {
            b[0][1] = 0.0;
            b[1][0] = 0.0;
        }
        for a in &mut sys.a {
            a[0][1] = 0.0;
            a[1][0] = 0.0;
        }
        for c in &mut sys.c {
            c[0][1] = 0.0;
            c[1][0] = 0.0;
        }
        let x_decoupled = solve(&sys).unwrap();
        let diff: f64 = x_coupled
            .iter()
            .zip(&x_decoupled)
            .map(|(p, q)| (p[0] - q[0]).abs() + (p[1] - q[1]).abs())
            .sum();
        assert!(diff > 1e-6, "coupling must matter: {diff}");
    }

    #[test]
    fn singular_pivot_rejected() {
        let z = tridiag_core::block::zero::<f64>();
        let sys = BlockTridiagonalSystem::new(
            vec![z, tridiag_core::block::identity()],
            vec![z, tridiag_core::block::identity()],
            vec![tridiag_core::block::identity(), z],
            vec![[1.0, 1.0]; 2],
        )
        .unwrap();
        assert!(matches!(solve(&sys), Err(TridiagError::ZeroPivot { row: 0 })));
    }

    #[test]
    fn single_block_row() {
        let z = tridiag_core::block::zero::<f64>();
        let sys = BlockTridiagonalSystem::new(
            vec![z],
            vec![[[2.0, 1.0], [0.0, 4.0]]],
            vec![z],
            vec![[4.0, 8.0]],
        )
        .unwrap();
        let x = solve(&sys).unwrap();
        // [2 1; 0 4] x = [4, 8] -> x = [1, 2].
        assert!((x[0][0] - 1.0).abs() < 1e-12);
        assert!((x[0][1] - 2.0).abs() < 1e-12);
    }
}
