//! Condition-number estimation for tridiagonal matrices — Hager's 1-norm
//! estimator (the algorithm behind LAPACK's `xLACON`), using the pivoted
//! tridiagonal solver for the `A^{-1}` and `A^{-T}` applications. O(n) per
//! iteration, at most a handful of iterations.
//!
//! A cheap condition estimate tells a user *why* a pivoting-free GPU solve
//! went bad (paper §5.4's accuracy discussion) and lets the robust wrapper
//! scale its acceptance thresholds.

use tridiag_core::{Real, Result, TridiagonalSystem};

/// Exact 1-norm of `A` (max absolute column sum).
pub fn norm1<T: Real>(sys: &TridiagonalSystem<T>) -> f64 {
    let n = sys.n();
    (0..n)
        .map(|j| {
            let mut s = sys.b[j].abs().to_f64();
            if j > 0 {
                s += sys.c[j - 1].abs().to_f64(); // row j-1, column j
            }
            if j + 1 < n {
                s += sys.a[j + 1].abs().to_f64(); // row j+1, column j
            }
            s
        })
        .fold(0.0, f64::max)
}

/// The transpose system (tridiagonal again, with `a`/`c` exchanged and
/// shifted; the right-hand side is the caller's).
fn transpose<T: Real>(sys: &TridiagonalSystem<T>, d: Vec<T>) -> TridiagonalSystem<T> {
    let n = sys.n();
    let mut a_t = vec![T::ZERO; n];
    let mut c_t = vec![T::ZERO; n];
    a_t[1..n].copy_from_slice(&sys.c[..n - 1]);
    c_t[..n - 1].copy_from_slice(&sys.a[1..n]);
    TridiagonalSystem { a: a_t, b: sys.b.clone(), c: c_t, d }
}

/// Estimates `||A^{-1}||_1` with Hager's power iteration (<= 5 solves).
pub fn inverse_norm1_estimate<T: Real>(sys: &TridiagonalSystem<T>) -> Result<f64> {
    let n = sys.n();
    let inv_n = T::from_f64(1.0 / n as f64);
    let mut x = vec![inv_n; n];
    let mut est = 0.0f64;
    for _iter in 0..5 {
        // y = A^{-1} x
        let mut probe = sys.clone();
        probe.d = x.clone();
        let y = crate::gep::solve(&probe)?;
        let new_est: f64 = y.iter().map(|v| v.abs().to_f64()).sum();
        // xi = sign(y); z = A^{-T} xi
        let xi: Vec<T> = y.iter().map(|&v| if v < T::ZERO { -T::ONE } else { T::ONE }).collect();
        let t = transpose(sys, xi);
        let z = crate::gep::solve(&t)?;
        let (j, z_inf) = z
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.abs().to_f64()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty");
        let ztx: f64 = z.iter().zip(&x).map(|(&p, &q)| p.to_f64() * q.to_f64()).sum();
        if new_est <= est || z_inf <= ztx.abs() {
            est = est.max(new_est);
            break;
        }
        est = new_est;
        x = vec![T::ZERO; n];
        x[j] = T::ONE;
    }
    Ok(est)
}

/// Estimated 1-norm condition number `kappa_1(A) ~= ||A||_1 ||A^{-1}||_1`.
pub fn condition_estimate<T: Real>(sys: &TridiagonalSystem<T>) -> Result<f64> {
    Ok(norm1(sys) * inverse_norm1_estimate(sys)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::{Generator, Workload};

    /// Dense reference: exact ||A^{-1}||_1 by solving for every column of
    /// the identity (small n only).
    fn exact_inverse_norm1(sys: &TridiagonalSystem<f64>) -> f64 {
        let n = sys.n();
        let mut best = 0.0f64;
        for j in 0..n {
            let mut probe = sys.clone();
            probe.d = vec![0.0; n];
            probe.d[j] = 1.0;
            let col = crate::gep::solve(&probe).unwrap();
            best = best.max(col.iter().map(|v| v.abs()).sum());
        }
        best
    }

    #[test]
    fn norm1_matches_dense_definition() {
        let sys = TridiagonalSystem::<f64>::new(
            vec![0.0, -2.0, 3.0],
            vec![5.0, -1.0, 4.0],
            vec![1.5, -0.5, 0.0],
            vec![0.0; 3],
        )
        .unwrap();
        // Column sums: |5|+|−2| = 7; |1.5|+|−1|+|3| = 5.5; |−0.5|+|4| = 4.5.
        assert!((norm1(&sys) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_is_a_lower_bound_and_usually_tight() {
        let mut g = Generator::new(31);
        let mut tight = 0usize;
        const TRIALS: usize = 20;
        for _ in 0..TRIALS {
            let sys: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 24);
            let est = inverse_norm1_estimate(&sys).unwrap();
            let exact = exact_inverse_norm1(&sys);
            assert!(est <= exact * (1.0 + 1e-10), "estimator must not exceed the norm");
            assert!(est >= exact / 10.0, "estimator too loose: {est} vs {exact}");
            if est >= exact * 0.999 {
                tight += 1;
            }
        }
        // Hager's estimator is exact for most well-behaved matrices.
        assert!(tight >= TRIALS / 2, "only {tight}/{TRIALS} tight");
    }

    #[test]
    fn well_conditioned_vs_nearly_singular() {
        // Identity-like: kappa ~ 1.
        let nice = TridiagonalSystem::<f64>::toeplitz(64, 0.0, 1.0, 0.0, 1.0).unwrap();
        let k_nice = condition_estimate(&nice).unwrap();
        assert!(k_nice < 2.0, "{k_nice}");
        // Nearly singular: shrink the dominance margin to epsilon.
        let eps = 1e-8;
        let bad = TridiagonalSystem::<f64>::toeplitz(64, -1.0, 2.0 + eps, -1.0, 1.0).unwrap();
        let k_bad = condition_estimate(&bad).unwrap();
        assert!(k_bad > 1e2, "{k_bad}");
        assert!(k_bad > 100.0 * k_nice);
    }

    #[test]
    fn poisson_condition_grows_quadratically() {
        // kappa([-1,2,-1]_n) ~ (2(n+1)/pi)^2.
        for n in [16usize, 32, 64] {
            let sys = tridiag_core::workload::poisson_system::<f64>(n);
            let k = condition_estimate(&sys).unwrap();
            let theory = (2.0 * (n as f64 + 1.0) / std::f64::consts::PI).powi(2);
            let ratio = k / theory;
            assert!((0.5..2.0).contains(&ratio), "n={n}: {k} vs theory {theory}");
        }
    }
}
