//! Periodic (cyclic) tridiagonal solver on the CPU: Sherman–Morrison
//! reduction to two ordinary Thomas solves (the classic approach, cf. the
//! paper's reference to Sun & Zhang's Sherman–Morrison-based two-level
//! hybrid).

use tridiag_core::{PeriodicTridiagonalSystem, Real, Result, TridiagError};

/// Solves one cyclic system into `x` with two Thomas solves.
///
/// # Errors
/// Propagates [`TridiagError::ZeroPivot`] from the inner solves; also fails
/// when `b[0] == 0` (the Sherman–Morrison pivot; reorder the equations in
/// that case).
pub fn solve_into<T: Real>(sys: &PeriodicTridiagonalSystem<T>, x: &mut [T]) -> Result<()> {
    let n = sys.n();
    debug_assert_eq!(x.len(), n);
    if sys.b[0] == T::ZERO {
        return Err(TridiagError::ZeroPivot { row: 0 });
    }
    let (modified, _gamma, _alpha, _beta) = sys.sherman_morrison_parts();
    let u = sys.sherman_morrison_u();

    let mut y = vec![T::ZERO; n];
    let mut z = vec![T::ZERO; n];
    crate::thomas::solve_into(&modified.a, &modified.b, &modified.c, &modified.d, &mut y)?;
    crate::thomas::solve_into(&modified.a, &modified.b, &modified.c, &u, &mut z)?;
    sys.sherman_morrison_combine(&y, &z, x);
    Ok(())
}

/// Convenience wrapper returning a fresh solution vector.
pub fn solve<T: Real>(sys: &PeriodicTridiagonalSystem<T>) -> Result<Vec<T>> {
    let mut x = vec![T::ZERO; sys.n()];
    solve_into(sys, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_dominant(seed: u64, n: usize) -> PeriodicTridiagonalSystem<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> =
            (0..n).map(|i| a[i].abs() + c[i].abs() + rng.gen_range(0.5..1.5)).collect();
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        PeriodicTridiagonalSystem::new(a, b, c, d).unwrap()
    }

    #[test]
    fn residual_is_tiny_on_random_dominant() {
        for seed in 0..10 {
            let sys = random_dominant(seed, 64);
            let x = solve(&sys).unwrap();
            let r = sys.l2_residual(&x).unwrap();
            assert!(r < 1e-11, "seed {seed}: residual {r}");
        }
    }

    #[test]
    fn circulant_constant_solution() {
        // Row sum 1.5, constant rhs 3 -> x = 2 everywhere.
        let sys = PeriodicTridiagonalSystem::circulant(16, -0.5f64, 2.5, -0.5, 3.0).unwrap();
        let x = solve(&sys).unwrap();
        for &v in &x {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn periodic_differs_from_open_chain() {
        // Same coefficients, with vs without wrap-around, must give
        // different solutions when the corners are nonzero.
        let sys = random_dominant(3, 16);
        let x_cyclic = solve(&sys).unwrap();
        let mut a = sys.a.clone();
        let mut c = sys.c.clone();
        a[0] = 0.0;
        c[15] = 0.0;
        let open = tridiag_core::TridiagonalSystem { a, b: sys.b.clone(), c, d: sys.d.clone() };
        let x_open = crate::thomas::solve(&open).unwrap();
        let diff = tridiag_core::residual::max_abs_diff(&x_cyclic, &x_open);
        assert!(diff > 1e-6, "wrap-around must matter: diff {diff}");
    }

    #[test]
    fn zero_first_pivot_rejected() {
        let mut sys = random_dominant(4, 8);
        sys.b[0] = 0.0;
        assert!(matches!(solve(&sys), Err(TridiagError::ZeroPivot { row: 0 })));
    }

    #[test]
    fn eigenmode_of_circulant_poisson() {
        // For the regularized periodic Poisson matrix [-1, 2+eps, -1], the
        // mode cos(2 pi k j / n) is an eigenvector with eigenvalue
        // eps + 4 sin^2(pi k / n).
        let n = 32usize;
        let eps = 0.3f64;
        let k = 3usize;
        let pi = std::f64::consts::PI;
        let mode: Vec<f64> =
            (0..n).map(|j| (2.0 * pi * k as f64 * j as f64 / n as f64).cos()).collect();
        let lambda = eps + 4.0 * (pi * k as f64 / n as f64).sin().powi(2);
        let d: Vec<f64> = mode.iter().map(|&m| lambda * m).collect();
        let sys =
            PeriodicTridiagonalSystem::new(vec![-1.0; n], vec![2.0 + eps; n], vec![-1.0; n], d)
                .unwrap();
        let x = solve(&sys).unwrap();
        for j in 0..n {
            assert!((x[j] - mode[j]).abs() < 1e-11, "j={j}");
        }
    }
}
