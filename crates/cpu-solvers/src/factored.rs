//! Precomputed Thomas factorization: elimination once, back-substitution
//! per right-hand side.
//!
//! The forward elimination of the Thomas algorithm only touches `(a, b, c)`
//! — the swept super-diagonal `c'` and the pivots are independent of `d`.
//! For traffic that re-solves the *same* matrix with fresh right-hand
//! sides (ADI sweeps, spectral Poisson, splines), the elimination can be
//! done once and reused: per solve that leaves a forward `d'` sweep and
//! the backward substitution, cutting the paper's `8n` flops to `5n` and
//! dropping both divisions from the hot loop.
//!
//! Mirroring the classic `wk1`/`wk2` formulation:
//! ```text
//! wk1_1 = 1 / b_1          wk1_i = 1 / (b_i - a_i wk2_{i-1})
//! wk2_i = c_i * wk1_i
//! solve:  d'_1 = d_1 wk1_1        d'_i = (d_i - a_i d'_{i-1}) wk1_i
//!         x_n  = d'_n             x_i  = d'_i - wk2_i x_{i+1}
//! ```
//!
//! The warm solve multiplies by reciprocal pivots where the fresh solve
//! divides, so results agree to rounding (residual tolerance), not bit
//! for bit.

use tridiag_core::{Real, Result, TridiagError};

/// A reusable Thomas factorization of one tridiagonal matrix.
///
/// Holds the reciprocal pivots (`wk1`), the swept super-diagonal (`wk2`)
/// and a copy of the sub-diagonal, which together are everything the
/// per-RHS sweep needs — `3n` elements, the same footprint as the matrix
/// itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ThomasFactors<T: Real> {
    /// Reciprocal pivots `1 / (b_i - a_i wk2_{i-1})`.
    pub wk1: Vec<T>,
    /// Swept super-diagonal `c_i * wk1_i` (the back-substitution weights).
    pub wk2: Vec<T>,
    /// The sub-diagonal `a` (needed by the forward `d'` sweep).
    pub sub: Vec<T>,
}

impl<T: Real> ThomasFactors<T> {
    /// Runs the elimination once over `(a, b, c)`.
    ///
    /// # Errors
    /// [`TridiagError::ZeroPivot`] exactly when the fresh
    /// [`crate::thomas::solve_into`] would hit one, and
    /// [`TridiagError::SizeTooSmall`] for empty systems.
    pub fn factor(a: &[T], b: &[T], c: &[T]) -> Result<Self> {
        let n = b.len();
        debug_assert!(a.len() == n && c.len() == n);
        if n == 0 {
            return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
        }
        let mut wk1 = vec![T::ZERO; n];
        let mut wk2 = vec![T::ZERO; n];
        if b[0] == T::ZERO {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }
        wk1[0] = T::ONE / b[0];
        wk2[0] = c[0] * wk1[0];
        for i in 1..n {
            let denom = b[i] - a[i] * wk2[i - 1];
            if denom == T::ZERO {
                return Err(TridiagError::ZeroPivot { row: i });
            }
            wk1[i] = T::ONE / denom;
            wk2[i] = c[i] * wk1[i];
        }
        Ok(ThomasFactors { wk1, wk2, sub: a.to_vec() })
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.wk1.len()
    }

    /// Heap bytes this factorization occupies (cache accounting).
    pub fn bytes(&self) -> usize {
        3 * self.n() * T::BYTES
    }

    /// Solves `A x = d` using the precomputed factors: one forward `d'`
    /// sweep into `x`, then backward substitution in place — `5n` flops,
    /// no divisions, no scratch allocation.
    pub fn solve_into(&self, d: &[T], x: &mut [T]) {
        let n = self.n();
        debug_assert!(d.len() == n && x.len() == n);
        x[0] = d[0] * self.wk1[0];
        for i in 1..n {
            x[i] = (d[i] - self.sub[i] * x[i - 1]) * self.wk1[i];
        }
        for i in (0..n - 1).rev() {
            x[i] -= self.wk2[i] * x[i + 1];
        }
    }

    /// Convenience wrapper returning a fresh solution vector.
    pub fn solve(&self, d: &[T]) -> Vec<T> {
        let mut x = vec![T::ZERO; self.n()];
        self.solve_into(d, &mut x);
        x
    }

    /// `true` when every stored coefficient is finite — a cheap admission
    /// check before caching a factorization.
    pub fn is_finite(&self) -> bool {
        self.wk1.iter().chain(&self.wk2).chain(&self.sub).all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::residual::l2_residual;
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    #[test]
    fn warm_matches_fresh_to_residual_tolerance() {
        let mut g = Generator::new(7);
        for n in [1usize, 2, 8, 129, 512] {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, n);
            let f = ThomasFactors::factor(&s.a, &s.b, &s.c).unwrap();
            let warm = f.solve(&s.d);
            assert!(l2_residual(&s, &warm).unwrap() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn factors_are_reusable_across_rhs() {
        let mut g = Generator::new(9);
        let s: TridiagonalSystem<f32> = g.system(Workload::Poisson, 64);
        let f = ThomasFactors::factor(&s.a, &s.b, &s.c).unwrap();
        for k in 0..8 {
            let d: Vec<f32> = (0..64).map(|i| ((i * 13 + k * 7) % 17) as f32 - 8.0).collect();
            let x = f.solve(&d);
            let probe = TridiagonalSystem::new(s.a.clone(), s.b.clone(), s.c.clone(), d).unwrap();
            assert!(l2_residual(&probe, &x).unwrap() < 1e-3, "rhs {k}");
        }
    }

    #[test]
    fn zero_pivot_matches_fresh_solver() {
        let s = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(
            ThomasFactors::<f64>::factor(&s.a, &s.b, &s.c),
            Err(TridiagError::ZeroPivot { row: 0 })
        ));
    }

    #[test]
    fn accounting_and_finiteness() {
        let mut g = Generator::new(3);
        let s: TridiagonalSystem<f32> = g.system(Workload::DiagonallyDominant, 32);
        let f = ThomasFactors::factor(&s.a, &s.b, &s.c).unwrap();
        assert_eq!(f.n(), 32);
        assert_eq!(f.bytes(), 3 * 32 * 4);
        assert!(f.is_finite());
    }
}
