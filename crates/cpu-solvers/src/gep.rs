//! Gaussian elimination with partial pivoting on the tridiagonal band —
//! the algorithm behind LAPACK's `sgtsv`, i.e. the paper's "GEP" baseline
//! ("The GEP solver is from LAPACK"). Row interchanges introduce fill-in on
//! a second super-diagonal, which is carried explicitly.

use tridiag_core::{Real, Result, TridiagError};

/// Solves one system with partial pivoting, writing the solution to `x`.
///
/// Inputs follow the [`tridiag_core::TridiagonalSystem`] convention
/// (`a[0] == 0`, `c[n-1] == 0`).
///
/// # Errors
/// [`TridiagError::ZeroPivot`] only when the matrix is exactly singular
/// (both candidate pivots zero).
pub fn solve_into<T: Real>(a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()> {
    solve_into_counting(a, b, c, d, x).map(|_| ())
}

/// [`solve_into`] that additionally reports how many row interchanges
/// partial pivoting performed.
///
/// A return of `Ok(0)` means the elimination was pivot-free — exactly the
/// ground truth the `numeric-verify` certificates claim, which is why the
/// adversarial certification proptest keys off this count.
///
/// # Errors
/// Same as [`solve_into`].
pub fn solve_into_counting<T: Real>(
    a: &[T],
    b: &[T],
    c: &[T],
    d: &[T],
    x: &mut [T],
) -> Result<usize> {
    let n = b.len();
    debug_assert!(a.len() == n && c.len() == n && d.len() == n && x.len() == n);
    if n == 0 {
        return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
    }

    // Working copies (LAPACK overwrites its inputs; we keep the caller's).
    // dl[i] = sub-diagonal entry of row i+1, i in 0..n-1.
    let mut dl: Vec<T> = a[1..].to_vec();
    let mut dg: Vec<T> = b.to_vec();
    let mut du: Vec<T> = c[..n.saturating_sub(1)].to_vec();
    let mut du2: Vec<T> = vec![T::ZERO; n.saturating_sub(2)];
    x.copy_from_slice(d);

    let mut interchanges = 0usize;
    for i in 0..n.saturating_sub(1) {
        if dg[i].abs() >= dl[i].abs() {
            // No interchange.
            if dg[i] == T::ZERO {
                return Err(TridiagError::ZeroPivot { row: i });
            }
            let fact = dl[i] / dg[i];
            dg[i + 1] -= fact * du[i];
            x[i + 1] -= fact * x[i];
            dl[i] = T::ZERO; // eliminated
            if i + 2 < n {
                du2[i] = T::ZERO;
            }
        } else {
            // Interchange rows i and i+1. dl[i] != 0 here.
            interchanges += 1;
            let fact = dg[i] / dl[i];
            dg[i] = dl[i];
            let temp = dg[i + 1];
            dg[i + 1] = du[i] - fact * temp;
            du[i] = temp;
            if i + 2 < n {
                du2[i] = du[i + 1];
                du[i + 1] = -fact * du2[i];
            }
            let temp = x[i];
            x[i] = x[i + 1];
            x[i + 1] = temp - fact * x[i + 1];
            dl[i] = T::ZERO;
        }
    }

    if dg[n - 1] == T::ZERO {
        return Err(TridiagError::ZeroPivot { row: n - 1 });
    }

    // Back substitution against the U factor (diag + du + du2).
    x[n - 1] /= dg[n - 1];
    if n > 1 {
        x[n - 2] = (x[n - 2] - du[n - 2] * x[n - 1]) / dg[n - 2];
    }
    for i in (0..n.saturating_sub(2)).rev() {
        x[i] = (x[i] - du[i] * x[i + 1] - du2[i] * x[i + 2]) / dg[i];
    }
    Ok(interchanges)
}

/// Convenience wrapper returning a fresh solution vector.
pub fn solve<T: Real>(system: &tridiag_core::TridiagonalSystem<T>) -> Result<Vec<T>> {
    let mut x = vec![T::ZERO; system.n()];
    solve_into(&system.a, &system.b, &system.c, &system.d, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas;
    use tridiag_core::residual::l2_residual;
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    #[test]
    fn matches_thomas_on_dominant_systems() {
        let mut g = Generator::new(21);
        for _ in 0..20 {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 64);
            let x_gep = solve(&s).unwrap();
            let x_th = thomas::solve(&s).unwrap();
            for i in 0..64 {
                assert!((x_gep[i] - x_th[i]).abs() < 1e-9, "i={i}");
            }
        }
    }

    #[test]
    fn survives_zero_diagonal_needing_pivot() {
        // b[0] = 0 kills Thomas; pivoting handles it.
        let s = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 3.0],
        )
        .unwrap();
        assert!(thomas::solve(&s).is_err());
        let x = solve(&s).unwrap();
        // System: x2 = 2; x1 + x2 = 3 -> x = (1, 2).
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn handles_interior_zero_pivot() {
        // Elimination creates a zero pivot mid-way for this matrix without
        // pivoting: rows chosen so b[1] - c'[0]*a[1] == 0.
        let s = TridiagonalSystem::new(
            vec![0.0f64, 2.0, 1.0],
            vec![1.0, 2.0, 3.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        assert!(thomas::solve(&s).is_err());
        let x = solve(&s).unwrap();
        assert!(l2_residual(&s, &x).unwrap() < 1e-12);
    }

    #[test]
    fn rejects_singular_matrix() {
        let s = TridiagonalSystem::new(
            vec![0.0f64, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(solve(&s), Err(TridiagError::ZeroPivot { .. })));
    }

    #[test]
    fn accuracy_better_or_equal_on_close_values_f32() {
        // The family where pivoting matters (paper: "GEP always has the
        // best accuracy because it has pivoting").
        let mut g = Generator::new(33);
        let mut worse = 0usize;
        const TRIALS: usize = 20;
        for _ in 0..TRIALS {
            let s: TridiagonalSystem<f32> = g.system(Workload::CloseValues, 128);
            let gep = solve(&s).unwrap();
            let r_gep = l2_residual(&s, &gep).unwrap();
            if let Ok(th) = thomas::solve(&s) {
                let r_th = l2_residual(&s, &th).unwrap();
                if r_gep > r_th * 4.0 {
                    worse += 1;
                }
            }
        }
        // GEP should essentially never be much worse than plain GE.
        assert!(worse <= TRIALS / 10, "GEP clearly worse in {worse}/{TRIALS} trials");
    }

    #[test]
    fn interchange_count_separates_dominant_from_pivoting_inputs() {
        let mut g = Generator::new(77);
        let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 64);
        let mut x = vec![0.0; 64];
        let swaps = solve_into_counting(&s.a, &s.b, &s.c, &s.d, &mut x).unwrap();
        assert_eq!(swaps, 0, "dominant matrix must be pivot-free");

        // b[0] = 0 forces an interchange at the very first step.
        let s = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 3.0],
        )
        .unwrap();
        let mut x = vec![0.0; 2];
        let swaps = solve_into_counting(&s.a, &s.b, &s.c, &s.d, &mut x).unwrap();
        assert!(swaps > 0, "degenerate diagonal must pivot");
    }

    #[test]
    fn small_sizes() {
        let s1 = TridiagonalSystem::new(vec![0.0f64], vec![5.0], vec![0.0], vec![10.0]).unwrap();
        assert_eq!(solve(&s1).unwrap(), vec![2.0]);
        let s2 = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![2.0, 2.0],
            vec![1.0, 0.0],
            vec![3.0, 3.0],
        )
        .unwrap();
        let x = solve(&s2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }
}
