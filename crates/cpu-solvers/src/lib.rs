//! # cpu-solvers
//!
//! CPU baselines of the paper's evaluation plus sequential reference
//! implementations of the parallel algorithms:
//!
//! * [`thomas`] — the Thomas algorithm (the "GE" baseline);
//! * [`gep`] — Gaussian elimination with partial pivoting (LAPACK `sgtsv`
//!   equivalent, the "GEP" baseline);
//! * [`mt`] — the multi-threaded batch solver (the "MT" baseline, OpenMP in
//!   the paper);
//! * [`mod@reference`] — plain sequential CR / PCR / RD used to validate the
//!   GPU kernels' algebra independently of the simulator.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod batch_soa;
pub mod block_thomas;
pub mod condest;
pub mod cyclic;
pub mod factored;
pub mod gep;
pub mod mt;
pub mod partition;
pub mod pivot_bounds;
pub mod reference;
pub mod thomas;

pub use batch::{solve_batch_seq, Gep, SystemSolver, Thomas};
pub use batch_soa::solve_batch_soa;
pub use condest::{condition_estimate, inverse_norm1_estimate, norm1};
pub use factored::ThomasFactors;
pub use mt::{MtSolver, Schedule};
pub use pivot_bounds::{positive_pivot_floor, thomas_pivot_floor};
pub use reference::rd::RdVariant;
