//! The multi-threaded CPU baseline ("MT").
//!
//! The paper's MT solver is "an OpenMP implementation developed by us with
//! multiple threads solving multiple systems simultaneously ... four threads
//! with each thread running on one CPU core". Systems are independent, so
//! the parallelization is embarrassingly simple; we provide OpenMP-style
//! *static* scheduling (contiguous chunks, the default `schedule(static)`)
//! and *dynamic* scheduling (a shared work queue, `schedule(dynamic)`).

use crate::batch::SystemSolver;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use tridiag_core::{Real, Result, SolutionBatch, SystemBatch, TridiagError};

/// Work distribution strategy across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous chunk per thread (OpenMP `schedule(static)`).
    Static,
    /// Threads pull one system at a time from a shared counter
    /// (OpenMP `schedule(dynamic,1)`).
    Dynamic,
}

/// Multi-threaded batch solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct MtSolver {
    /// Worker thread count (the paper uses 4, one per core).
    pub threads: usize,
    /// Scheduling policy.
    pub schedule: Schedule,
}

impl Default for MtSolver {
    fn default() -> Self {
        Self { threads: 4, schedule: Schedule::Static }
    }
}

impl MtSolver {
    /// Solver with `threads` workers and static scheduling.
    pub fn new(threads: usize) -> Self {
        Self { threads, schedule: Schedule::Static }
    }

    /// Solves every system of `batch` using `solver` across the workers.
    pub fn solve_batch<T: Real>(
        &self,
        solver: &impl SystemSolver<T>,
        batch: &SystemBatch<T>,
    ) -> Result<SolutionBatch<T>> {
        if self.threads == 0 {
            return Err(TridiagError::InvalidConfig { what: "thread count must be >= 1" });
        }
        let count = batch.count();
        let n = batch.n();
        let mut out = SolutionBatch::zeros_like(batch);
        // Hand each worker a disjoint &mut window of the solution buffer.
        let first_error: Mutex<Option<TridiagError>> = Mutex::new(None);

        {
            let x = &mut out.x[..];
            match self.schedule {
                Schedule::Static => {
                    let chunk_systems = count.div_ceil(self.threads);
                    std::thread::scope(|scope| {
                        for (worker, slice) in x.chunks_mut(chunk_systems * n).enumerate() {
                            let first_error = &first_error;
                            scope.spawn(move || {
                                let base = worker * chunk_systems;
                                for (k, xs) in slice.chunks_mut(n).enumerate() {
                                    let (a, b, c, d) = batch.system_slices(base + k);
                                    if let Err(e) = solver.solve_into(a, b, c, d, xs) {
                                        let mut slot = first_error.lock();
                                        if slot.is_none() {
                                            *slot = Some(e);
                                        }
                                        return;
                                    }
                                }
                            });
                        }
                    });
                }
                Schedule::Dynamic => {
                    let next = AtomicUsize::new(0);
                    // Dynamic scheduling writes to arbitrary systems, so use
                    // raw-pointer windows guarded by the disjointness of
                    // system indices handed out by the atomic counter.
                    let x_ptr = SendPtr(x.as_mut_ptr());
                    std::thread::scope(|scope| {
                        for _ in 0..self.threads {
                            let next = &next;
                            let first_error = &first_error;
                            let x_ptr = &x_ptr;
                            scope.spawn(move || loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= count {
                                    return;
                                }
                                let (a, b, c, d) = batch.system_slices(i);
                                // SAFETY: each system index is claimed by
                                // exactly one worker, so the windows are
                                // disjoint, and `out` outlives the scope.
                                let xs = unsafe {
                                    std::slice::from_raw_parts_mut(x_ptr.0.add(i * n), n)
                                };
                                if let Err(e) = solver.solve_into(a, b, c, d, xs) {
                                    let mut slot = first_error.lock();
                                    if slot.is_none() {
                                        *slot = Some(e);
                                    }
                                    return;
                                }
                            });
                        }
                    });
                }
            }
        }

        match first_error.into_inner() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// Raw pointer wrapper that is `Sync` for the scoped, disjoint-window use
/// above.
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{solve_batch_seq, Thomas};
    use tridiag_core::residual::{batch_residual, max_abs_diff};
    use tridiag_core::{Generator, Workload};

    fn batch(count: usize) -> SystemBatch<f64> {
        Generator::new(17).batch(Workload::DiagonallyDominant, 64, count).unwrap()
    }

    #[test]
    fn static_matches_sequential() {
        let b = batch(37); // deliberately not divisible by thread count
        let seq = solve_batch_seq(&Thomas, &b).unwrap();
        let mt = MtSolver::new(4).solve_batch(&Thomas, &b).unwrap();
        assert_eq!(max_abs_diff(&seq.x, &mt.x), 0.0);
    }

    #[test]
    fn dynamic_matches_sequential() {
        let b = batch(37);
        let seq = solve_batch_seq(&Thomas, &b).unwrap();
        let mt = MtSolver { threads: 4, schedule: Schedule::Dynamic };
        let got = mt.solve_batch(&Thomas, &b).unwrap();
        assert_eq!(max_abs_diff(&seq.x, &got.x), 0.0);
    }

    #[test]
    fn single_thread_works() {
        let b = batch(5);
        let got = MtSolver::new(1).solve_batch(&Thomas, &b).unwrap();
        let r = batch_residual(&b, &got).unwrap();
        assert!(r.max_l2 < 1e-10);
    }

    #[test]
    fn more_threads_than_systems() {
        let b = batch(3);
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let mt = MtSolver { threads: 8, schedule };
            let got = mt.solve_batch(&Thomas, &b).unwrap();
            let r = batch_residual(&b, &got).unwrap();
            assert!(r.max_l2 < 1e-10);
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let b = batch(2);
        assert!(MtSolver::new(0).solve_batch(&Thomas, &b).is_err());
    }

    #[test]
    fn errors_propagate() {
        // A batch whose third system has a hard zero pivot.
        let mut systems: Vec<tridiag_core::TridiagonalSystem<f64>> = (0..4)
            .map(|_| tridiag_core::TridiagonalSystem::toeplitz(8, -1.0, 4.0, -1.0, 1.0).unwrap())
            .collect();
        systems[2].b[0] = 0.0;
        systems[2].c[0] = 0.0;
        let b = SystemBatch::from_systems(&systems).unwrap();
        for schedule in [Schedule::Static, Schedule::Dynamic] {
            let mt = MtSolver { threads: 2, schedule };
            assert!(mt.solve_batch(&Thomas, &b).is_err(), "{schedule:?}");
        }
    }
}
