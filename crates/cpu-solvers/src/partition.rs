//! Wang's partition method — the coarse-grained parallel algorithm the
//! paper cites (reference 32, H. H. Wang, "A parallel method for tridiagonal
//! equations") as better suited to multi-core CPUs than to GPUs.
//!
//! Unlike the MT baseline (which parallelizes across *systems*), the
//! partition method parallelizes a **single large system** across cores:
//!
//! 1. split the rows into `p` chunks; in each chunk solve three local
//!    tridiagonal systems (SPIKE-style): the chunk's particular solution
//!    `y` and the responses `v`, `w` to its left/right coupling
//!    coefficients — embarrassingly parallel;
//! 2. stitch the chunks with a small *reduced system* in the `2(p-1)`
//!    interface unknowns (banded, solved densely with partial pivoting —
//!    it has at most a few dozen rows);
//! 3. recover all interior unknowns in parallel:
//!    `x = y - x_left * v - x_right * w`.
//!
//! The classic tradeoff applies: stage 1 performs ~3x the arithmetic of a
//! single Thomas sweep, so the method only beats the serial solver once
//! `p > 3` *and* the system is large enough to amortize thread spawn —
//! exactly why the paper calls such coarse-grained methods a multi-core
//! play rather than a GPU one. The criterion bench
//! (`extensions/partition_65536_*`) records this crossover honestly.

use tridiag_core::{Real, Result, TridiagError, TridiagonalSystem};

/// Solves `sys` using `p` partitions (threads). `p = 1` degenerates to a
/// single Thomas solve. `p` is clamped so every chunk has at least two
/// rows.
pub fn solve<T: Real>(sys: &TridiagonalSystem<T>, p: usize) -> Result<Vec<T>> {
    let n = sys.n();
    if p == 0 {
        return Err(TridiagError::InvalidConfig { what: "partition count must be >= 1" });
    }
    let p = p.min(n / 2).max(1);
    if p == 1 {
        return crate::thomas::solve(sys);
    }

    // Chunk boundaries: chunk j covers [starts[j], starts[j+1]).
    let starts: Vec<usize> = (0..=p).map(|j| j * n / p).collect();

    // Stage 1: local solves, one thread per chunk.
    struct ChunkSolution<T> {
        y: Vec<T>,
        v: Vec<T>,
        w: Vec<T>,
    }
    let mut chunks: Vec<Option<ChunkSolution<T>>> = (0..p).map(|_| None).collect();
    let mut first_error: Option<TridiagError> = None;
    {
        let results: Vec<std::result::Result<ChunkSolution<T>, TridiagError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..p)
                    .map(|j| {
                        let (lo, hi) = (starts[j], starts[j + 1]);
                        scope.spawn(move || {
                            let m = hi - lo;
                            // Local chunk coefficients with detached ends.
                            let mut a = sys.a[lo..hi].to_vec();
                            let mut c = sys.c[lo..hi].to_vec();
                            a[0] = T::ZERO;
                            c[m - 1] = T::ZERO;
                            let b = &sys.b[lo..hi];

                            let mut y = vec![T::ZERO; m];
                            crate::thomas::solve_into(&a, b, &c, &sys.d[lo..hi], &mut y)?;
                            // Response to the left coupling a[lo] (absent
                            // for chunk 0).
                            let mut v = vec![T::ZERO; m];
                            if lo > 0 {
                                let mut rhs = vec![T::ZERO; m];
                                rhs[0] = sys.a[lo];
                                crate::thomas::solve_into(&a, b, &c, &rhs, &mut v)?;
                            }
                            // Response to the right coupling c[hi-1]
                            // (absent for the last chunk).
                            let mut w = vec![T::ZERO; m];
                            if hi < n {
                                let mut rhs = vec![T::ZERO; m];
                                rhs[m - 1] = sys.c[hi - 1];
                                crate::thomas::solve_into(&a, b, &c, &rhs, &mut w)?;
                            }
                            Ok(ChunkSolution { y, v, w })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
        for (j, r) in results.into_iter().enumerate() {
            match r {
                Ok(cs) => chunks[j] = Some(cs),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let chunks: Vec<ChunkSolution<T>> = chunks.into_iter().map(Option::unwrap).collect();

    // Stage 2: reduced system in the interface unknowns
    // z = [last_0, first_1, last_1, first_2, ..., last_{p-2}, first_{p-1}]
    // with relations  last_j + v_j[m-1] last_{j-1} + w_j[m-1] first_{j+1} = y_j[m-1]
    //                 first_j + v_j[0] last_{j-1} + w_j[0] first_{j+1} = y_j[0].
    let r = 2 * (p - 1);
    let mut mat = vec![vec![T::ZERO; r]; r];
    let mut rhs = vec![T::ZERO; r];
    let pos_last = |j: usize| 2 * j; // j in 0..p-1
    let pos_first = |j: usize| 2 * j - 1; // j in 1..p
    for j in 0..p {
        let m = starts[j + 1] - starts[j];
        let ch = &chunks[j];
        // Equation for last_j (only interface rows j < p-1).
        if j < p - 1 {
            let row = pos_last(j);
            mat[row][pos_last(j)] = T::ONE;
            if j > 0 {
                mat[row][pos_last(j - 1)] = ch.v[m - 1];
            }
            mat[row][pos_first(j + 1)] = ch.w[m - 1];
            rhs[row] = ch.y[m - 1];
        }
        // Equation for first_j (only j > 0).
        if j > 0 {
            let row = pos_first(j);
            mat[row][pos_first(j)] = T::ONE;
            mat[row][pos_last(j - 1)] = ch.v[0];
            if j < p - 1 {
                mat[row][pos_first(j + 1)] = ch.w[0];
            }
            rhs[row] = ch.y[0];
        }
    }
    let z = dense_gepp(&mut mat, &mut rhs)?;

    // Stage 3: recover interiors in parallel.
    let mut x = vec![T::ZERO; n];
    {
        let x_chunks: Vec<&mut [T]> = {
            let mut rest: &mut [T] = &mut x;
            let mut out = Vec::with_capacity(p);
            for j in 0..p {
                let (head, tail) = rest.split_at_mut(starts[j + 1] - starts[j]);
                out.push(head);
                rest = tail;
            }
            out
        };
        std::thread::scope(|scope| {
            for (j, xj) in x_chunks.into_iter().enumerate() {
                let ch = &chunks[j];
                let left = if j > 0 { z[pos_last(j - 1)] } else { T::ZERO };
                let right = if j < p - 1 { z[pos_first(j + 1)] } else { T::ZERO };
                scope.spawn(move || {
                    for (i, xv) in xj.iter_mut().enumerate() {
                        *xv = ch.y[i] - left * ch.v[i] - right * ch.w[i];
                    }
                });
            }
        });
    }
    Ok(x)
}

/// Tiny dense Gaussian elimination with partial pivoting for the reduced
/// system (at most a few dozen unknowns).
fn dense_gepp<T: Real>(mat: &mut [Vec<T>], rhs: &mut [T]) -> Result<Vec<T>> {
    let r = rhs.len();
    for col in 0..r {
        let piv = (col..r)
            .max_by(|&i, &j| {
                mat[i][col].abs().partial_cmp(&mat[j][col].abs()).expect("finite pivots")
            })
            .expect("nonempty");
        mat.swap(col, piv);
        rhs.swap(col, piv);
        if mat[col][col] == T::ZERO {
            return Err(TridiagError::ZeroPivot { row: col });
        }
        for row in col + 1..r {
            let f = mat[row][col] / mat[col][col];
            if f != T::ZERO {
                let (pivot_rows, elim_rows) = mat.split_at_mut(row);
                for (rk, pk) in elim_rows[0][col..r].iter_mut().zip(&pivot_rows[col][col..r]) {
                    *rk -= f * *pk;
                }
                let sub = f * rhs[col];
                rhs[row] -= sub;
            }
        }
    }
    let mut z = vec![T::ZERO; r];
    for row in (0..r).rev() {
        let mut v = rhs[row];
        for (mk, zk) in mat[row][row + 1..r].iter().zip(&z[row + 1..r]) {
            v -= *mk * *zk;
        }
        z[row] = v / mat[row][row];
    }
    Ok(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::residual::max_abs_diff;
    use tridiag_core::{Generator, Workload};

    fn dominant(n: usize, seed: u64) -> TridiagonalSystem<f64> {
        Generator::new(seed).system(Workload::DiagonallyDominant, n)
    }

    #[test]
    fn matches_thomas_for_various_partition_counts() {
        let sys = dominant(1000, 1);
        let reference = crate::thomas::solve(&sys).unwrap();
        for p in [1usize, 2, 3, 4, 7, 8, 16] {
            let x = solve(&sys, p).unwrap();
            let diff = max_abs_diff(&x, &reference);
            assert!(diff < 1e-10, "p={p}: diff {diff}");
        }
    }

    #[test]
    fn handles_sizes_not_divisible_by_p() {
        for n in [97usize, 101, 1023] {
            let sys = dominant(n, 2);
            let reference = crate::thomas::solve(&sys).unwrap();
            let x = solve(&sys, 4).unwrap();
            assert!(max_abs_diff(&x, &reference) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn clamps_excessive_partition_counts() {
        let sys = dominant(8, 3);
        let reference = crate::thomas::solve(&sys).unwrap();
        // p = 100 would make empty chunks; must clamp and still solve.
        let x = solve(&sys, 100).unwrap();
        assert!(max_abs_diff(&x, &reference) < 1e-12);
    }

    #[test]
    fn rejects_zero_partitions() {
        let sys = dominant(8, 4);
        assert!(solve(&sys, 0).is_err());
    }

    #[test]
    fn poisson_system_solves_exactly() {
        let sys = tridiag_core::workload::poisson_system::<f64>(256);
        let reference = crate::thomas::solve(&sys).unwrap();
        let x = solve(&sys, 4).unwrap();
        assert!(max_abs_diff(&x, &reference) < 1e-9);
    }

    #[test]
    fn works_in_f32() {
        let sys: TridiagonalSystem<f32> =
            Generator::new(5).system(Workload::DiagonallyDominant, 512);
        let reference = crate::thomas::solve(&sys).unwrap();
        let x = solve(&sys, 4).unwrap();
        assert!(max_abs_diff(&x, &reference) < 1e-4);
    }
}
