//! Pivot lower-bound lemmas for pivot-free elimination.
//!
//! The `numeric-verify` analyzer does not trust the analytic dominance
//! lemma alone: it *machine-checks* it by running the relevant pivot
//! recurrence in `f64` and confirming every pivot clears a derived lower
//! bound. These helpers are that check, shared between the analyzer, its
//! adversarial property tests, and the robust wrapper's documentation.
//!
//! **Lemma (strict dominance ⇒ pivot floor).** If `|b_i| > |a_i| + |c_i|`
//! for every row with worst-row gap `m = min_i (|b_i| − |a_i| − |c_i|)`,
//! then the Thomas pivots `p_1 = b_1`, `p_i = b_i − a_i c_{i−1} / p_{i−1}`
//! satisfy `|p_i| ≥ |b_i| − |a_i| ≥ |c_i| + m` by induction: assuming
//! `|p_{i−1}| ≥ |c_{i−1}|`, the correction term is bounded by `|a_i|`, so
//! `|p_i| ≥ |b_i| − |a_i|`. Every pivot stays at least `m` away from
//! zero and every elimination multiplier `|c_i / p_i| ≤ 1` — elimination
//! cannot blow up, so pivoting is never *necessary*. (Partial pivoting
//! may still *choose* to interchange on a row-dominant matrix when a
//! large sub-diagonal sits under a modest updated diagonal — that is a
//! magnitude heuristic, not a stability need; the no-interchange theorem
//! belongs to *column* dominance.)

use tridiag_core::Real;

/// Runs the Thomas pivot recurrence in `f64` and returns the smallest
/// pivot magnitude, or `None` if any pivot is non-finite or exactly zero.
///
/// This is the machine check behind the dominance lemma: for a strictly
/// dominant matrix the returned floor must be at least the dominance
/// margin (asserted by the analyzer, property-tested adversarially).
pub fn thomas_pivot_floor<T: Real>(a: &[T], b: &[T], c: &[T]) -> Option<f64> {
    let n = b.len();
    if n == 0 {
        return None;
    }
    let mut floor = f64::INFINITY;
    let mut prev = b[0].to_f64();
    for i in 0..n {
        if i > 0 {
            prev = b[i].to_f64() - a[i].to_f64() * c[i - 1].to_f64() / prev;
        }
        if !prev.is_finite() || prev == 0.0 {
            return None;
        }
        floor = floor.min(prev.abs());
    }
    Some(floor)
}

/// Like [`thomas_pivot_floor`], but requires every pivot to be strictly
/// *positive* (the M-matrix / LDLᵀ flavor of the lemma). Returns the
/// smallest pivot, or `None` if any pivot is non-finite or `≤ floor_min`.
pub fn positive_pivot_floor<T: Real>(a: &[T], b: &[T], c: &[T], floor_min: f64) -> Option<f64> {
    let n = b.len();
    if n == 0 {
        return None;
    }
    let mut floor = f64::INFINITY;
    let mut prev = b[0].to_f64();
    for i in 0..n {
        if i > 0 {
            prev = b[i].to_f64() - a[i].to_f64() * c[i - 1].to_f64() / prev;
        }
        if !prev.is_finite() || prev <= floor_min {
            return None;
        }
        floor = floor.min(prev);
    }
    Some(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    #[test]
    fn dominant_pivots_clear_the_margin() {
        let mut g = Generator::new(11);
        for n in [2usize, 8, 65, 256] {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, n);
            let margin = (0..n)
                .map(|i| s.b[i].abs() - s.a[i].abs() - s.c[i].abs())
                .fold(f64::INFINITY, f64::min);
            assert!(margin > 0.0, "generator must emit strictly dominant rows");
            let floor = thomas_pivot_floor(&s.a, &s.b, &s.c).unwrap();
            // The lemma promises |p_i| >= |b_i| - |a_i| >= |c_i| + margin,
            // so in particular the floor clears the margin itself.
            assert!(floor >= margin * (1.0 - 1e-12), "n={n}: floor {floor} < margin {margin}");
        }
    }

    #[test]
    fn zero_pivot_inputs_return_none() {
        // b[0] = 0: the recurrence dies immediately.
        assert_eq!(thomas_pivot_floor(&[0.0f64, 1.0], &[0.0, 1.0], &[1.0, 0.0]), None);
        // Interior breakdown: b[1] - a[1] c[0] / b[0] == 0.
        assert_eq!(
            thomas_pivot_floor(&[0.0f64, 2.0, 1.0], &[1.0, 2.0, 3.0], &[1.0, 1.0, 0.0]),
            None
        );
    }

    #[test]
    fn positive_floor_rejects_negative_pivots() {
        // Strictly dominant but with a negative diagonal row: the plain
        // floor accepts it, the positive (M-matrix) floor must not.
        let a = [0.0f64, 1.0, 1.0];
        let b = [4.0, -4.0, 4.0];
        let c = [1.0, 1.0, 0.0];
        assert!(thomas_pivot_floor(&a, &b, &c).is_some());
        assert_eq!(positive_pivot_floor(&a, &b, &c, 0.0), None);
    }
}
