//! Sequential cyclic reduction (Hockney) — the reference for the CR kernel.
//!
//! Forward reduction eliminates odd-position equations level by level until
//! two unknowns remain; backward substitution recovers the rest. The
//! per-level updates read the *previous* level's values (double-buffered
//! here; the GPU kernel gets the same semantics from buffered stores).

use tridiag_core::{require_pow2, Real, Result};

/// State of a system during reduction; exposed so the hybrid solvers and
/// tests can stop at an intermediate level.
#[derive(Debug, Clone)]
pub struct CrState<T: Real> {
    /// Current (partially reduced) coefficients, full length `n`.
    pub a: Vec<T>,
    /// Main diagonal.
    pub b: Vec<T>,
    /// Super-diagonal coupling.
    pub c: Vec<T>,
    /// Right-hand side.
    pub d: Vec<T>,
    /// Completed forward-reduction levels.
    pub level: u32,
}

impl<T: Real> CrState<T> {
    /// Captures a system as level-0 state.
    pub fn new(a: &[T], b: &[T], c: &[T], d: &[T]) -> Self {
        Self { a: a.to_vec(), b: b.to_vec(), c: c.to_vec(), d: d.to_vec(), level: 0 }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.b.len()
    }

    /// Stride between equations still active at the current level.
    pub fn stride(&self) -> usize {
        1 << (self.level + 1)
    }

    /// Indices of the equations forming the current reduced system.
    pub fn active_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let s = 1usize << self.level;
        (0..self.n() / s).map(move |k| s - 1 + k * s)
    }

    /// One forward-reduction level: updates equations at positions
    /// `stride-1, 2*stride-1, ...` from their `±stride/2` neighbours.
    pub fn forward_level(&mut self) {
        let n = self.n();
        let stride = self.stride();
        let half = stride / 2;
        let old = self.clone();
        let mut i = stride - 1;
        while i < n {
            let il = i - half;
            let k1 = old.a[i] / old.b[il];
            self.a[i] = -old.a[il] * k1;
            let ir = i + half;
            if ir < n {
                let k2 = old.c[i] / old.b[ir];
                self.b[i] = old.b[i] - old.c[il] * k1 - old.a[ir] * k2;
                self.d[i] = old.d[i] - old.d[il] * k1 - old.d[ir] * k2;
                self.c[i] = -old.c[ir] * k2;
            } else {
                self.b[i] = old.b[i] - old.c[il] * k1;
                self.d[i] = old.d[i] - old.d[il] * k1;
                self.c[i] = T::ZERO;
            }
            i += stride;
        }
        self.level += 1;
    }
}

/// Solves one system by full cyclic reduction. `n` must be a power of two.
pub fn solve_into<T: Real>(a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()> {
    let n = b.len();
    require_pow2(n, 2)?;
    let mut st = CrState::new(a, b, c, d);
    let levels = n.trailing_zeros() - 1;
    for _ in 0..levels {
        st.forward_level();
    }

    // Two unknowns remain at n/2-1 and n-1 (a[n/2-1] and c[n-1] are zero by
    // the boundary invariant).
    let i1 = n / 2 - 1;
    let i2 = n - 1;
    let det = st.b[i1] * st.b[i2] - st.c[i1] * st.a[i2];
    x[i1] = (st.d[i1] * st.b[i2] - st.c[i1] * st.d[i2]) / det;
    x[i2] = (st.b[i1] * st.d[i2] - st.d[i1] * st.a[i2]) / det;

    // Backward substitution, mirroring the forward levels in reverse.
    for level in (0..levels).rev() {
        backward_level(&st, level, x);
    }
    Ok(())
}

/// One backward-substitution level at `level`, filling the unknowns solved
/// nowhere deeper. Shared with the hybrid reference solvers.
pub fn backward_level<T: Real>(st: &CrState<T>, level: u32, x: &mut [T]) {
    let n = st.n();
    let stride = 1usize << (level + 1);
    let half = stride / 2;
    let mut i = half - 1;
    while i < n {
        // x[i] was not yet solved at this level; neighbours i±half were.
        let right = x[i + half];
        let v = if i >= half {
            (st.d[i] - st.a[i] * x[i - half] - st.c[i] * right) / st.b[i]
        } else {
            (st.d[i] - st.c[i] * right) / st.b[i]
        };
        x[i] = v;
        i += stride;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas;
    use tridiag_core::residual::{l2_residual, max_abs_diff};
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    fn solve_vec(s: &TridiagonalSystem<f64>) -> Vec<f64> {
        let mut x = vec![0.0; s.n()];
        solve_into(&s.a, &s.b, &s.c, &s.d, &mut x).unwrap();
        x
    }

    #[test]
    fn two_unknowns() {
        let s = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![2.0, 3.0],
            vec![1.0, 0.0],
            vec![3.0, 4.0],
        )
        .unwrap();
        let x = solve_vec(&s);
        assert!(l2_residual(&s, &x).unwrap() < 1e-12);
    }

    #[test]
    fn matches_thomas_across_sizes() {
        let mut g = Generator::new(71);
        for n in [2usize, 4, 8, 16, 32, 64, 128, 256, 512] {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, n);
            let x_cr = solve_vec(&s);
            let x_th = thomas::solve(&s).unwrap();
            assert!(max_abs_diff(&x_cr, &x_th) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn rejects_non_pow2() {
        let s = TridiagonalSystem::<f64>::toeplitz(6, -1.0, 4.0, -1.0, 1.0).unwrap();
        let mut x = vec![0.0; 6];
        assert!(solve_into(&s.a, &s.b, &s.c, &s.d, &mut x).is_err());
    }

    #[test]
    fn forward_level_preserves_reduced_solution() {
        // After one forward level, the active equations must be satisfied
        // by the true solution restricted to those indices.
        let mut g = Generator::new(99);
        let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 16);
        let x = thomas::solve(&s).unwrap();
        let mut st = CrState::new(&s.a, &s.b, &s.c, &s.d);
        st.forward_level();
        let stride = 2usize;
        let mut i = stride - 1;
        while i < 16 {
            let mut lhs = st.b[i] * x[i];
            if i >= stride {
                lhs += st.a[i] * x[i - stride];
            }
            if i + stride < 16 {
                lhs += st.c[i] * x[i + stride];
            }
            assert!((lhs - st.d[i]).abs() < 1e-9, "eq {i}");
            i += stride;
        }
    }

    #[test]
    fn boundary_invariant_holds() {
        // The first active equation keeps a == 0 and the last keeps c == 0
        // through every level.
        let mut g = Generator::new(5);
        let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 64);
        let mut st = CrState::new(&s.a, &s.b, &s.c, &s.d);
        for _ in 0..5 {
            st.forward_level();
            let stride = 1usize << st.level;
            assert_eq!(st.a[stride - 1], 0.0);
            assert_eq!(st.c[63], 0.0);
        }
    }
}
