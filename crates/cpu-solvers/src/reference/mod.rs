//! Sequential reference implementations of the three parallel algorithms.
//!
//! These execute the *same arithmetic* as the GPU kernels (CR, PCR, RD) but
//! as plain loops on the host, with explicit double buffering where the
//! kernels rely on barrier semantics. They exist to validate the kernels'
//! algebra independently of the simulator, and they double as CPU solvers
//! in the accuracy study.

pub mod cr;
pub mod pcr;
pub mod rd;
