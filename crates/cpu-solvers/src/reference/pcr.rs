//! Sequential parallel cyclic reduction (Hockney & Jesshope) — the
//! reference for the PCR kernel.
//!
//! Every level reduces *each* equation against its `±delta` neighbours,
//! splitting each system into two half-size systems, until `n/2` independent
//! 2-unknown systems remain (`log2 n` steps total).

use tridiag_core::{require_pow2, Real, Result};

/// One PCR reduction level with neighbour distance `delta`, reading `old`
/// and writing into `(a, b, c, d)`. Exposed for the hybrid reference.
pub fn reduce_level<T: Real>(
    old: (&[T], &[T], &[T], &[T]),
    new: (&mut [T], &mut [T], &mut [T], &mut [T]),
    delta: usize,
) {
    let (oa, ob, oc, od) = old;
    let (na, nb, nc, nd) = new;
    let n = ob.len();
    for i in 0..n {
        let mut aa = T::ZERO;
        let mut bb = ob[i];
        let mut cc = T::ZERO;
        let mut dd = od[i];
        if i >= delta {
            let il = i - delta;
            let k1 = oa[i] / ob[il];
            bb -= oc[il] * k1;
            dd -= od[il] * k1;
            aa = -oa[il] * k1;
        }
        if i + delta < n {
            let ir = i + delta;
            let k2 = oc[i] / ob[ir];
            bb -= oa[ir] * k2;
            dd -= od[ir] * k2;
            cc = -oc[ir] * k2;
        }
        na[i] = aa;
        nb[i] = bb;
        nc[i] = cc;
        nd[i] = dd;
    }
}

/// Solves the `n/2` 2-unknown systems `{i, i + n/2}` left after full
/// reduction. Exposed for the hybrid reference.
pub fn solve_pairs<T: Real>(a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) {
    let n = b.len();
    let half = n / 2;
    for i in 0..half {
        let j = i + half;
        let det = b[i] * b[j] - c[i] * a[j];
        x[i] = (d[i] * b[j] - c[i] * d[j]) / det;
        x[j] = (b[i] * d[j] - a[j] * d[i]) / det;
    }
}

/// Solves one system by full PCR. `n` must be a power of two.
pub fn solve_into<T: Real>(a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()> {
    let n = b.len();
    require_pow2(n, 2)?;
    let mut cur = (a.to_vec(), b.to_vec(), c.to_vec(), d.to_vec());
    let mut nxt = cur.clone();
    let levels = n.trailing_zeros() - 1;
    let mut delta = 1usize;
    for _ in 0..levels {
        reduce_level(
            (&cur.0, &cur.1, &cur.2, &cur.3),
            (&mut nxt.0, &mut nxt.1, &mut nxt.2, &mut nxt.3),
            delta,
        );
        core::mem::swap(&mut cur, &mut nxt);
        delta *= 2;
    }
    debug_assert_eq!(delta, n / 2);
    solve_pairs(&cur.0, &cur.1, &cur.2, &cur.3, x);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas;
    use tridiag_core::residual::max_abs_diff;
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    fn solve_vec(s: &TridiagonalSystem<f64>) -> Vec<f64> {
        let mut x = vec![0.0; s.n()];
        solve_into(&s.a, &s.b, &s.c, &s.d, &mut x).unwrap();
        x
    }

    #[test]
    fn matches_thomas_across_sizes() {
        let mut g = Generator::new(72);
        for n in [2usize, 4, 8, 16, 64, 256, 512] {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, n);
            let x_pcr = solve_vec(&s);
            let x_th = thomas::solve(&s).unwrap();
            assert!(max_abs_diff(&x_pcr, &x_th) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn n2_is_a_single_pair_solve() {
        let s = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![4.0, 5.0],
            vec![2.0, 0.0],
            vec![6.0, 7.0],
        )
        .unwrap();
        let x = solve_vec(&s);
        let x_th = thomas::solve(&s).unwrap();
        assert!(max_abs_diff(&x, &x_th) < 1e-12);
    }

    #[test]
    fn one_level_splits_even_odd() {
        // After the delta=1 level, equation i only couples to i±2.
        let mut g = Generator::new(4);
        let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 8);
        let x = thomas::solve(&s).unwrap();
        let mut out = (vec![0.0; 8], vec![0.0; 8], vec![0.0; 8], vec![0.0; 8]);
        reduce_level((&s.a, &s.b, &s.c, &s.d), (&mut out.0, &mut out.1, &mut out.2, &mut out.3), 1);
        for i in 0..8 {
            let mut lhs = out.1[i] * x[i];
            if i >= 2 {
                lhs += out.0[i] * x[i - 2];
            }
            if i + 2 < 8 {
                lhs += out.2[i] * x[i + 2];
            }
            assert!((lhs - out.3[i]).abs() < 1e-9, "eq {i}");
        }
    }

    #[test]
    fn rejects_non_pow2() {
        let s = TridiagonalSystem::<f64>::toeplitz(10, -1.0, 4.0, -1.0, 1.0).unwrap();
        let mut x = vec![0.0; 10];
        assert!(solve_into(&s.a, &s.b, &s.c, &s.d, &mut x).is_err());
    }
}
