//! Sequential recursive doubling (Stone, in the scan form of Eğecioğlu,
//! Koç & Laub) — the reference for the RD kernel.
//!
//! Equation `i` (0-based) is rewritten as `X_{i+1} = B_i X_i` with
//! `X_i = [x_i, x_{i-1}, 1]^T` and
//!
//! ```text
//!        | -b_i/c_i  -a_i/c_i  d_i/c_i |
//! B_i  = |    1         0         0    |
//!        |    0         0         1    |
//! ```
//!
//! A prefix product (scan) `S_i = B_i ... B_0` then yields every unknown
//! from `x_0`, which follows from enforcing the fictitious `x_n = 0`
//! (the last equation's `c` is replaced by 1). Only the first two rows of
//! the matrices are stored — the third stays `[0 0 1]` under multiplication
//! (the paper's "special matrices" optimization).
//!
//! The optional **rescaled** variant normalizes each partial product by its
//! largest magnitude, carrying the scale in the homogeneous coordinate —
//! the overflow remedy the paper sketches in §5.4.

use tridiag_core::{require_pow2, Real, Result};

/// First two rows of a scan matrix (third row is `[0, 0, s]` with `s = 1`
/// unless rescaling is enabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanMat<T> {
    /// Row 1.
    pub r1: [T; 3],
    /// Row 2.
    pub r2: [T; 3],
    /// Homogeneous scale (row 3 = `[0, 0, s]`).
    pub s: T,
}

impl<T: Real> ScanMat<T> {
    /// Builds `B_i` from the equation's coefficients. The caller passes
    /// `c = 1` for the last equation.
    pub fn from_equation(a: T, b: T, c: T, d: T) -> Self {
        let inv = T::ONE / c;
        Self { r1: [-b * inv, -a * inv, d * inv], r2: [T::ONE, T::ZERO, T::ZERO], s: T::ONE }
    }

    /// Matrix product `self * rhs` (both with implicit `[0, 0, s]` third
    /// rows). Named like the scalar operation on purpose; this is not an
    /// `std::ops::Mul` impl because it is only used internally.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Self) -> Self {
        let p = |r: [T; 3]| {
            [
                r[0] * rhs.r1[0] + r[1] * rhs.r2[0],
                r[0] * rhs.r1[1] + r[1] * rhs.r2[1],
                r[0] * rhs.r1[2] + r[1] * rhs.r2[2] + r[2] * rhs.s,
            ]
        };
        Self { r1: p(self.r1), r2: p(self.r2), s: self.s * rhs.s }
    }

    /// Divides all entries (and the scale) by the largest magnitude if it
    /// exceeds `threshold`, keeping the projective meaning intact.
    pub fn rescale(&mut self, threshold: T) {
        let mut m = self.s.abs();
        for v in self.r1.iter().chain(self.r2.iter()) {
            m = m.max(v.abs());
        }
        if m > threshold {
            let inv = T::ONE / m;
            for v in self.r1.iter_mut().chain(self.r2.iter_mut()) {
                *v *= inv;
            }
            self.s *= inv;
        }
    }
}

/// Recursive-doubling variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RdVariant {
    /// Plain scan — can overflow in `f32` for diagonally dominant systems
    /// of size > 64 (paper §5.4).
    #[default]
    Plain,
    /// Scan with per-element projective rescaling (the paper's suggested
    /// overflow remedy, at the cost of extra control overhead).
    Rescaled,
}

/// Solves one system by recursive doubling. `n` must be a power of two.
///
/// Overflow is *not* an error: like the GPU solver, non-finite values
/// propagate into `x` so accuracy harnesses can report them (Figure 18).
pub fn solve_into_variant<T: Real>(
    a: &[T],
    b: &[T],
    c: &[T],
    d: &[T],
    x: &mut [T],
    variant: RdVariant,
) -> Result<()> {
    let n = b.len();
    require_pow2(n, 1)?;
    let threshold = T::from_f64(1e18);

    // Matrix setup (the last equation's c is replaced by 1 so that the
    // fictitious x_n must come out 0).
    let mut mats: Vec<ScanMat<T>> = (0..n)
        .map(|i| {
            let ci = if i == n - 1 { T::ONE } else { c[i] };
            ScanMat::from_equation(a[i], b[i], ci, d[i])
        })
        .collect();

    // Hillis-Steele scan: S_i = B_i ... B_0 (later matrix on the left).
    let mut stride = 1usize;
    let mut scratch = mats.clone();
    while stride < n {
        for i in stride..n {
            scratch[i] = mats[i].mul(mats[i - stride]);
            if variant == RdVariant::Rescaled {
                scratch[i].rescale(threshold);
            }
        }
        mats[stride..n].copy_from_slice(&scratch[stride..n]);
        stride *= 2;
    }

    // Solution evaluation: x_0 from the full chain, the rest from prefixes.
    let last = &mats[n - 1];
    x[0] = -last.r1[2] / last.r1[0];
    for i in 0..n - 1 {
        let m = &mats[i];
        let v = (m.r1[0] * x[0] + m.r1[2]) / m.s;
        // Under rescaling, a scale that underflowed past the format's range
        // means the true chain product overflowed by more than rescaling
        // could absorb; saturate to zero instead of producing inf/NaN (the
        // value is garbage either way, but stays finite — which is all the
        // paper's remedy promises). The plain variant keeps the overflow
        // visible, as on the GPU.
        x[i + 1] = if variant == RdVariant::Rescaled && !v.is_finite() { T::ZERO } else { v };
    }
    Ok(())
}

/// Plain-variant convenience wrapper.
pub fn solve_into<T: Real>(a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()> {
    solve_into_variant(a, b, c, d, x, RdVariant::Plain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thomas;
    use tridiag_core::residual::{l2_residual, max_abs_diff};
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    fn solve_vec(s: &TridiagonalSystem<f64>, v: RdVariant) -> Vec<f64> {
        let mut x = vec![0.0; s.n()];
        solve_into_variant(&s.a, &s.b, &s.c, &s.d, &mut x, v).unwrap();
        x
    }

    #[test]
    fn matches_thomas_in_f64_small_dominant() {
        // RD's error grows with the prefix-product magnitude, which for
        // dominant rows grows geometrically in n (the very instability the
        // paper studies) — so exact agreement is only expected while the
        // chain stays small.
        let mut g = Generator::new(73);
        for n in [1usize, 2, 4, 8] {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, n);
            let x_rd = solve_vec(&s, RdVariant::Plain);
            let x_th = thomas::solve(&s).unwrap();
            assert!(max_abs_diff(&x_rd, &x_th) < 1e-7, "n={n}");
        }
    }

    #[test]
    fn matches_thomas_in_f64_close_values() {
        // Close-values rows keep the scan matrices' entries near 1, so the
        // chain does not grow and RD stays accurate at larger n.
        let mut g = Generator::new(77);
        for n in [32usize, 64, 128] {
            let s: TridiagonalSystem<f64> = g.system(Workload::CloseValues, n);
            let x_rd = solve_vec(&s, RdVariant::Plain);
            let x_th = thomas::solve(&s).unwrap();
            assert!(max_abs_diff(&x_rd, &x_th) < 1e-5, "n={n}");
        }
    }

    #[test]
    fn close_values_family_is_friendly() {
        // The paper: "RD favors matrices with close values in rows".
        let mut g = Generator::new(74);
        let s: TridiagonalSystem<f64> = g.system(Workload::CloseValues, 256);
        let x = solve_vec(&s, RdVariant::Plain);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(l2_residual(&s, &x).unwrap() < 1e-6);
    }

    #[test]
    fn f32_overflows_on_large_dominant_systems() {
        // Paper §5.4: "for the systems of size larger than 64, RD ...
        // might overflow" in single precision on diagonally dominant input.
        let mut g = Generator::new(75);
        let s: TridiagonalSystem<f32> = g.system(Workload::DiagonallyDominant, 512);
        let mut x = vec![0.0f32; 512];
        solve_into(&s.a, &s.b, &s.c, &s.d, &mut x).unwrap();
        assert!(x.iter().any(|v| !v.is_finite()), "expected overflow in f32 RD");
    }

    #[test]
    fn rescaling_prevents_overflow() {
        // The remedy the paper sketches only promises *finite* results — on
        // strongly dominant systems the cancellation error remains (which is
        // why the paper recommends CR/PCR there), so only finiteness is
        // asserted.
        let mut g = Generator::new(75);
        let s: TridiagonalSystem<f32> = g.system(Workload::DiagonallyDominant, 512);
        let mut x = vec![0.0f32; 512];
        solve_into_variant(&s.a, &s.b, &s.c, &s.d, &mut x, RdVariant::Rescaled).unwrap();
        assert!(x.iter().all(|v| v.is_finite()), "rescaled RD must not overflow");
    }

    #[test]
    fn rescaled_matches_plain_when_no_overflow() {
        let mut g = Generator::new(76);
        let s: TridiagonalSystem<f64> = g.system(Workload::CloseValues, 64);
        let plain = solve_vec(&s, RdVariant::Plain);
        let rescaled = solve_vec(&s, RdVariant::Rescaled);
        assert!(max_abs_diff(&plain, &rescaled) < 1e-9);
    }

    #[test]
    fn scan_matrix_product_matches_dense_3x3() {
        let a = ScanMat::<f64> { r1: [1.0, 2.0, 3.0], r2: [4.0, 5.0, 6.0], s: 1.0 };
        let b = ScanMat::<f64> { r1: [7.0, 8.0, 9.0], r2: [0.5, -1.0, 2.0], s: 1.0 };
        let p = a.mul(b);
        // Dense product rows.
        assert_eq!(p.r1, [1.0 * 7.0 + 2.0 * 0.5, 1.0 * 8.0 + -2.0, 1.0 * 9.0 + 2.0 * 2.0 + 3.0]);
        assert_eq!(p.r2, [4.0 * 7.0 + 5.0 * 0.5, 4.0 * 8.0 + -5.0, 4.0 * 9.0 + 5.0 * 2.0 + 6.0]);
        assert_eq!(p.s, 1.0);
    }

    #[test]
    fn single_equation() {
        let s = TridiagonalSystem::new(vec![0.0f64], vec![4.0], vec![0.0], vec![8.0]).unwrap();
        let x = solve_vec(&s, RdVariant::Plain);
        assert!((x[0] - 2.0).abs() < 1e-12);
    }
}
