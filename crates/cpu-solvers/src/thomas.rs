//! The Thomas algorithm — Gaussian elimination specialised to tridiagonal
//! systems, *without* pivoting. This is the paper's sequential "GE" CPU
//! baseline and the classic `2n`-step serial algorithm of §2.
//!
//! Forward elimination:
//! ```text
//! c'_1 = c_1 / b_1,    c'_i = c_i / (b_i - c'_{i-1} a_i)
//! d'_1 = d_1 / b_1,    d'_i = (d_i - d'_{i-1} a_i) / (b_i - c'_{i-1} a_i)
//! ```
//! Backward substitution: `x_n = d'_n`, `x_i = d'_i - c'_i x_{i+1}`.

use tridiag_core::{Real, Result, TridiagError};

/// Solves one tridiagonal system in place of `x` using scratch space.
///
/// `a`, `b`, `c`, `d` follow the storage convention of
/// [`tridiag_core::TridiagonalSystem`]. `x` receives the solution.
///
/// # Errors
/// [`TridiagError::ZeroPivot`] when elimination hits an exactly-zero pivot
/// (the algorithm has no pivoting; diagonally dominant inputs are safe).
pub fn solve_into<T: Real>(a: &[T], b: &[T], c: &[T], d: &[T], x: &mut [T]) -> Result<()> {
    let n = b.len();
    debug_assert!(a.len() == n && c.len() == n && d.len() == n && x.len() == n);
    if n == 0 {
        return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
    }
    // Scratch: c' and d' (kept separate from inputs so callers can reuse
    // their system arrays).
    let mut cp = vec![T::ZERO; n];
    let mut dp = vec![T::ZERO; n];

    if b[0] == T::ZERO {
        return Err(TridiagError::ZeroPivot { row: 0 });
    }
    cp[0] = c[0] / b[0];
    dp[0] = d[0] / b[0];
    for i in 1..n {
        let denom = b[i] - cp[i - 1] * a[i];
        if denom == T::ZERO {
            return Err(TridiagError::ZeroPivot { row: i });
        }
        cp[i] = c[i] / denom;
        dp[i] = (d[i] - dp[i - 1] * a[i]) / denom;
    }

    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = dp[i] - cp[i] * x[i + 1];
    }
    Ok(())
}

/// Convenience wrapper returning a fresh solution vector.
pub fn solve<T: Real>(system: &tridiag_core::TridiagonalSystem<T>) -> Result<Vec<T>> {
    let mut x = vec![T::ZERO; system.n()];
    solve_into(&system.a, &system.b, &system.c, &system.d, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::residual::l2_residual;
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    #[test]
    fn solves_identity() {
        let s = TridiagonalSystem::new(
            vec![0.0f64, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 0.0, 0.0],
            vec![3.0, -1.0, 2.5],
        )
        .unwrap();
        assert_eq!(solve(&s).unwrap(), vec![3.0, -1.0, 2.5]);
    }

    #[test]
    fn solves_poisson_exactly() {
        // [-1,2,-1] with d = 1 has the closed form x_i = i(n+1-i)/2 (1-based).
        let n = 16;
        let s = tridiag_core::workload::poisson_system::<f64>(n);
        let x = solve(&s).unwrap();
        for i in 0..n {
            let k = (i + 1) as f64;
            let expect = k * ((n as f64) + 1.0 - k) / 2.0;
            assert!((x[i] - expect).abs() < 1e-10, "i={i}: {} vs {expect}", x[i]);
        }
    }

    #[test]
    fn single_equation() {
        let s = TridiagonalSystem::new(vec![0.0f32], vec![4.0], vec![0.0], vec![8.0]).unwrap();
        assert_eq!(solve(&s).unwrap(), vec![2.0]);
    }

    #[test]
    fn residual_small_on_random_dominant() {
        let mut g = Generator::new(11);
        for _ in 0..20 {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 128);
            let x = solve(&s).unwrap();
            assert!(l2_residual(&s, &x).unwrap() < 1e-12);
        }
    }

    #[test]
    fn zero_pivot_is_reported() {
        let s = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        assert!(matches!(solve(&s), Err(TridiagError::ZeroPivot { row: 0 })));
    }

    #[test]
    fn recovers_manufactured_solution() {
        let mut g = Generator::new(5);
        let x_exact: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 64);
        let s = s.with_exact_solution(&x_exact).unwrap();
        let x = solve(&s).unwrap();
        for i in 0..64 {
            assert!((x[i] - x_exact[i]).abs() < 1e-10);
        }
    }
}
