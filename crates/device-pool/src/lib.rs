//! # device-pool
//!
//! A deterministic multi-GPU node on top of [`gpu_sim`]: N independent
//! simulated devices — each with its own launcher, launch counter, and a
//! fault plan seeded as a **pure function** of `(pool seed, device id)` —
//! behind a [`DevicePool`] scheduler. The pool offers:
//!
//! * pluggable [`RoutingPolicy`]s (round-robin, least-loaded,
//!   plan-affinity) over the healthy subset of devices;
//! * per-device work queues with blocking pop and work-stealing
//!   ([`StealQueues`]), including a no-steal drain mode for dead devices;
//! * a cross-device **partitioned solver**
//!   ([`solve_partitioned`]) for systems far beyond one block's shared
//!   memory (n up to 2^20): per-device modified-Thomas local reduction,
//!   a gathered PCR interface solve, and parallel back-substitution,
//!   with replanning around devices that die mid-solve.
//!
//! ```
//! use device_pool::{solve_partitioned, PoolConfig};
//! use tridiag_core::{residual::l2_residual, Generator, Workload};
//!
//! let sys = Generator::new(7).system::<f64>(Workload::DiagonallyDominant, 1 << 14);
//! let pool = PoolConfig::new(4).build();
//! let report = solve_partitioned(&pool, &sys, 8).unwrap();
//! assert!(l2_residual(&sys, &report.x).unwrap() < 1e-8);
//! assert_eq!(report.devices_used.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod partitioned;
pub mod pool;
pub mod queue;
pub mod routing;

pub use partitioned::{solve_partitioned, PoolPartitionedReport};
pub use pool::{DevicePool, DeviceStats, PoolConfig, SimDevice};
pub use queue::{Pop, StealQueues};
pub use routing::{ParseRoutingPolicyError, RoutingPolicy};
