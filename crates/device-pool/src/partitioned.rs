//! Cross-device partitioned solve for systems too large for one block.
//!
//! The pipeline follows the substructuring scheme of distributed-memory
//! tridiagonal solvers: the system is cut into contiguous **spans**, one
//! per healthy device; each device runs the modified-Thomas local
//! reduction over its span's chunks (in parallel, so the phase costs the
//! *max* across devices); the per-chunk reduced rows are gathered into
//! one small **interface system** solved with PCR on a single device; and
//! the interface solution fans back out for embarrassingly-parallel
//! back-substitution. A span is further cut into `chunks_per_device`
//! chunks so each device's local phase itself has thread parallelism.
//!
//! Device adversity is handled here, not above: a launch that dies with
//! `DeviceLost` marks the device lost in the pool and the whole solve is
//! replanned over the surviving devices; transient `DeviceFault`s retry.

use gpu_solvers::partitioned::{
    back_substitute, even_offsets, local_reduce, solve_interface, InterfaceSystem,
    PartitionedTiming, MIN_CHUNK,
};
use tridiag_core::{Real, Result, TridiagError, TridiagonalSystem};

use crate::pool::DevicePool;

/// Outcome of a pool-wide partitioned solve.
#[derive(Debug, Clone)]
pub struct PoolPartitionedReport<T> {
    /// Solution vector, natural order.
    pub x: Vec<T>,
    /// Devices that executed the local/back-substitution phases, in span
    /// order (devices lost during the solve do not appear).
    pub devices_used: Vec<usize>,
    /// `[start, end)` of each device's span, same order as
    /// [`devices_used`](Self::devices_used).
    pub spans: Vec<(usize, usize)>,
    /// Total chunks across all spans.
    pub chunks_total: usize,
    /// Meaningful interface rows (`2 × chunks_total`).
    pub interface_rows: usize,
    /// Padded interface size PCR solved.
    pub interface_padded: usize,
    /// Phase timings (max across devices for the parallel phases).
    pub timing: PartitionedTiming,
}

/// One device's share of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpanPlan {
    device: usize,
    start: usize,
    end: usize,
    /// Chunk boundaries *relative to the span*.
    offsets: Vec<usize>,
}

/// Cuts `n` rows into per-device spans and per-span chunk offsets such
/// that every chunk has at least [`MIN_CHUNK`] rows and the gathered
/// interface system fits one PCR block (`2 × chunks`, padded, `<= cap`).
/// Uses a prefix of `devices` when `n` is too small to feed them all.
fn plan_spans(
    n: usize,
    devices: &[usize],
    chunks_per_device: usize,
    cap: usize,
) -> Result<Vec<SpanPlan>> {
    if chunks_per_device == 0 {
        return Err(TridiagError::InvalidConfig { what: "chunks_per_device must be >= 1" });
    }
    if n < MIN_CHUNK {
        return Err(TridiagError::SizeTooSmall { n, min: MIN_CHUNK });
    }
    if cap < 2 {
        return Err(TridiagError::InvalidConfig { what: "interface cap below one chunk" });
    }
    // How many devices can hold at least one chunk each.
    let used = devices.len().min(n / MIN_CHUNK).max(1);
    // Interface budget: padded (2 * total chunks) <= cap.
    let max_total_chunks = cap / 2;
    let cpd = chunks_per_device.min(max_total_chunks / used).max(1);
    let (base, rem) = (n / used, n % used);
    let mut plans = Vec::with_capacity(used);
    let mut start = 0;
    for (slot, &device) in devices.iter().take(used).enumerate() {
        let len = base + usize::from(slot < rem);
        let chunks = cpd.min(len / MIN_CHUNK).max(1);
        let offsets = even_offsets(len, chunks)?;
        plans.push(SpanPlan { device, start, end: start + len, offsets });
        start += len;
    }
    debug_assert_eq!(start, n);
    Ok(plans)
}

/// Solves `system` across the pool's healthy devices, re-planning around
/// devices that die mid-solve. `chunks_per_device` is the target chunk
/// count per span (clamped so every chunk keeps [`MIN_CHUNK`] rows and
/// the interface system fits one PCR block).
pub fn solve_partitioned<T: Real>(
    pool: &DevicePool,
    system: &TridiagonalSystem<T>,
    chunks_per_device: usize,
) -> Result<PoolPartitionedReport<T>> {
    // Each replan can lose at most one device; a few extra attempts absorb
    // transient faults on top.
    let mut attempts = pool.len() + 3;
    loop {
        let healthy = pool.healthy();
        if healthy.is_empty() {
            return Err(TridiagError::DeviceLost);
        }
        match try_solve(pool, &healthy, system, chunks_per_device) {
            Ok(report) => return Ok(report),
            Err((culprit, err)) => {
                attempts -= 1;
                let lost = matches!(err, TridiagError::DeviceLost);
                if lost {
                    if let Some(dev) = culprit {
                        pool.mark_lost(dev);
                    }
                }
                if attempts == 0 || !(lost || err.is_device_fault()) {
                    return Err(err);
                }
            }
        }
    }
}

type PhaseError = (Option<usize>, TridiagError);

fn try_solve<T: Real>(
    pool: &DevicePool,
    healthy: &[usize],
    system: &TridiagonalSystem<T>,
    chunks_per_device: usize,
) -> core::result::Result<PoolPartitionedReport<T>, PhaseError> {
    let iface_device = &pool.device(healthy[0]).launcher.device;
    let cap = InterfaceSystem::<T>::max_padded_rows(T::BYTES, iface_device);
    let plans = plan_spans(system.n(), healthy, chunks_per_device, cap).map_err(|e| (None, e))?;

    // Local reduction: parallel across devices — phase cost is the max.
    let mut phases = Vec::with_capacity(plans.len());
    let (mut local_ms, mut upload_ms) = (0.0f64, 0.0f64);
    for plan in &plans {
        let dev = pool.device(plan.device);
        let (s, e) = (plan.start, plan.end);
        let phase = local_reduce(
            &dev.launcher,
            &system.a[s..e],
            &system.b[s..e],
            &system.c[s..e],
            &system.d[s..e],
            &plan.offsets,
        )
        .map_err(|err| (Some(plan.device), err))?;
        dev.note_dispatched(phase.local_ms);
        local_ms = local_ms.max(phase.local_ms);
        upload_ms = upload_ms.max(phase.upload_ms);
        phases.push(phase);
    }

    // Gather the reduced rows (span order == global chunk order).
    let total_chunks: usize = phases.iter().map(|p| p.reduced.0.len() / 2).sum();
    let mut ra = Vec::with_capacity(2 * total_chunks);
    let mut rb = Vec::with_capacity(2 * total_chunks);
    let mut rc = Vec::with_capacity(2 * total_chunks);
    let mut rd = Vec::with_capacity(2 * total_chunks);
    for p in &phases {
        ra.extend_from_slice(&p.reduced.0);
        rb.extend_from_slice(&p.reduced.1);
        rc.extend_from_slice(&p.reduced.2);
        rd.extend_from_slice(&p.reduced.3);
    }
    let interface = InterfaceSystem::assemble(&ra, &rb, &rc, &rd);
    let (xi, interface_ms) = solve_interface(&pool.device(healthy[0]).launcher, &interface)
        .map_err(|err| (Some(healthy[0]), err))?;
    pool.device(healthy[0]).note_dispatched(interface_ms);

    // Fan the interface solution back out; back-substitute in parallel.
    let mut x = Vec::with_capacity(system.n());
    let (mut backsubst_ms, mut download_ms) = (0.0f64, 0.0f64);
    let mut row = 0;
    for (plan, phase) in plans.iter().zip(phases.iter_mut()) {
        let dev = pool.device(plan.device);
        let rows = phase.reduced.0.len();
        let (span_x, kernel_ms, dl_ms) =
            back_substitute(&dev.launcher, phase, &xi[row..row + rows])
                .map_err(|err| (Some(plan.device), err))?;
        dev.note_dispatched(kernel_ms);
        backsubst_ms = backsubst_ms.max(kernel_ms);
        download_ms = download_ms.max(dl_ms);
        x.extend_from_slice(&span_x);
        row += rows;
    }
    debug_assert_eq!(row, interface.rows);

    Ok(PoolPartitionedReport {
        x,
        devices_used: plans.iter().map(|p| p.device).collect(),
        spans: plans.iter().map(|p| (p.start, p.end)).collect(),
        chunks_total: total_chunks,
        interface_rows: interface.rows,
        interface_padded: interface.padded,
        timing: PartitionedTiming {
            local_ms,
            interface_ms,
            backsubst_ms,
            transfer_ms: upload_ms + download_ms,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use gpu_sim::FaultConfig;
    use tridiag_core::residual::l2_residual;
    use tridiag_core::{Generator, Workload};

    #[test]
    fn plan_covers_n_with_min_chunks_and_cap() {
        let plans = plan_spans(1000, &[0, 1, 2, 3], 8, 512).unwrap();
        assert_eq!(plans.len(), 4);
        assert_eq!(plans[0].start, 0);
        assert_eq!(plans.last().unwrap().end, 1000);
        for w in plans.windows(2) {
            assert_eq!(w[0].end, w[1].start, "spans must tile");
        }
        let chunks: usize = plans.iter().map(|p| p.offsets.len() - 1).sum();
        assert!(2 * chunks <= 512);
        // Tiny system: falls back to fewer devices than offered.
        let plans = plan_spans(7, &[0, 1, 2, 3], 8, 512).unwrap();
        assert!(plans.len() <= 3, "7 rows cannot feed 4 chunks of >= 2: {plans:?}");
        assert_eq!(plans.last().unwrap().end, 7);
    }

    #[test]
    fn plan_respects_interface_cap() {
        // cap 16 → at most 8 chunks total across 4 devices → 2 per device.
        let plans = plan_spans(4096, &[0, 1, 2, 3], 64, 16).unwrap();
        let chunks: usize = plans.iter().map(|p| p.offsets.len() - 1).sum();
        assert!(chunks <= 8, "total chunks {chunks} must respect the cap");
    }

    #[test]
    fn four_device_solve_matches_gep() {
        let n = 4096;
        let sys: TridiagonalSystem<f64> =
            Generator::new(11).system(Workload::DiagonallyDominant, n);
        let pool = PoolConfig::new(4).build();
        let report = solve_partitioned(&pool, &sys, 8).unwrap();
        let x_ref = cpu_solvers::gep::solve(&sys).unwrap();
        for i in 0..n {
            assert!((report.x[i] - x_ref[i]).abs() < 1e-9, "i={i}");
        }
        assert_eq!(report.devices_used, vec![0, 1, 2, 3]);
        assert_eq!(report.spans.last().unwrap().1, n);
        // Every device did local + back-subst work.
        for d in pool.devices() {
            assert!(d.dispatched() >= 2, "device {} dispatched {}", d.id, d.dispatched());
        }
    }

    #[test]
    fn device_loss_mid_stream_replans_on_survivors() {
        let n = 2048;
        let sys: TridiagonalSystem<f64> = Generator::new(3).system(Workload::DiagonallyDominant, n);
        let mut cfg = PoolConfig::new(4);
        // Device 2 dies on its very first launch.
        cfg.fault_overrides =
            vec![(2, FaultConfig { device_lost_after: Some(0), ..FaultConfig::quiet(0) })];
        let pool = cfg.build();
        let report = solve_partitioned(&pool, &sys, 4).unwrap();
        assert!(pool.is_lost(2), "the dead device must be marked lost");
        assert!(!report.devices_used.contains(&2), "replan must avoid the dead device");
        let r = l2_residual(&sys, &report.x).unwrap();
        assert!(r < 1e-8, "residual {r}");
    }

    #[test]
    fn all_devices_lost_surfaces_device_lost() {
        let sys: TridiagonalSystem<f32> =
            Generator::new(1).system(Workload::DiagonallyDominant, 64);
        let pool = PoolConfig::new(2).build();
        pool.mark_lost(0);
        pool.mark_lost(1);
        assert_eq!(solve_partitioned(&pool, &sys, 2).unwrap_err(), TridiagError::DeviceLost);
    }
}
