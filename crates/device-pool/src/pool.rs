//! The device pool: N independent simulated GPUs behind one scheduler.
//!
//! Each [`SimDevice`] wraps its own [`Launcher`] — its own fault plan
//! (seeded as a pure function of the pool seed and the device index, see
//! [`gpu_sim::derive_device_seed`]), its own launch counter, and its own
//! accumulated simulated busy time. The [`DevicePool`] routes work across
//! the healthy subset according to a [`RoutingPolicy`] and keeps the
//! counters that the serving layer surfaces per device.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use gpu_sim::{FaultConfig, FaultPlan, FaultStats, Launcher};

use crate::routing::RoutingPolicy;

/// Blueprint for a pool: how many devices, how they are seeded, and how
/// work is routed between them.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of simulated devices (must be >= 1).
    pub devices: usize,
    /// Pool-level seed. Every device's fault plan is re-keyed from this
    /// via [`gpu_sim::derive_device_seed`], so a whole-pool chaos run is
    /// replayable from this one number.
    pub seed: u64,
    /// Fault-configuration *template* applied to every device (its `seed`
    /// field is ignored and replaced per device). `None` leaves devices
    /// fault-free.
    pub fault: Option<FaultConfig>,
    /// Per-device overrides `(device index, template)` taking precedence
    /// over `fault`; also re-seeded per device. Lets a scenario give one
    /// device a sticky `device_lost_after` while the rest stay quiet.
    pub fault_overrides: Vec<(usize, FaultConfig)>,
    /// The launcher cloned for every device (device model, cost model,
    /// sanitizer settings). Any fault plan installed on it is discarded in
    /// favour of the per-device plans above.
    pub base: Launcher,
    /// Routing policy for [`DevicePool::route`].
    pub routing: RoutingPolicy,
}

impl PoolConfig {
    /// A quiet pool of `devices` GTX 280s with round-robin routing.
    pub fn new(devices: usize) -> Self {
        Self {
            devices,
            seed: 0x9E37_79B9_7F4A_7C15,
            fault: None,
            fault_overrides: Vec::new(),
            base: Launcher::gtx280(),
            routing: RoutingPolicy::RoundRobin,
        }
    }

    /// Builds the pool.
    pub fn build(self) -> DevicePool {
        DevicePool::new(self)
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::new(1)
    }
}

/// One simulated GPU in the pool: an independent launcher plus the
/// counters the scheduler and metrics layer need.
#[derive(Debug)]
pub struct SimDevice {
    /// Position in the pool (0-based); also the fault-seed derivation key.
    pub id: usize,
    /// The device's launcher. Clones share the device's fault plan (and
    /// therefore its launch counter) via `Arc`.
    pub launcher: Launcher,
    lost: AtomicBool,
    dispatched: AtomicU64,
    pending: AtomicU64,
    steals: AtomicU64,
    /// Busy time accumulated by dispatch, nanoseconds (fixed-point so it
    /// fits an atomic).
    busy_ns: AtomicU64,
}

impl SimDevice {
    fn new(id: usize, launcher: Launcher) -> Self {
        Self {
            id,
            launcher,
            lost: AtomicBool::new(false),
            dispatched: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// `true` once the device has been marked lost (sticky).
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::Acquire)
    }

    /// Records one dispatched unit of work that kept the device busy for
    /// `ms` simulated milliseconds.
    pub fn note_dispatched(&self, ms: f64) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        self.busy_ns.fetch_add((ms.max(0.0) * 1e6) as u64, Ordering::Relaxed);
    }

    /// Records a job this device stole from another device's queue.
    pub fn note_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Units of work dispatched on this device so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Jobs stolen *by* this device so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Accumulated simulated busy milliseconds.
    pub fn busy_ms(&self) -> f64 {
        self.busy_ns.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Jobs currently routed to this device but not yet served.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Fault-injection counters of this device's plan, if it has one.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.launcher.fault.as_ref().map(|p| p.stats())
    }
}

/// Point-in-time counters for one device, as reported by
/// [`DevicePool::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStats {
    /// Device id.
    pub id: usize,
    /// Units of work dispatched.
    pub dispatched: u64,
    /// Simulated busy milliseconds.
    pub busy_ms: f64,
    /// Jobs stolen by this device.
    pub steals: u64,
    /// Jobs routed here but not yet served.
    pub pending: u64,
    /// Sticky lost flag.
    pub lost: bool,
}

/// A deterministic multi-GPU node: devices plus routing state.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<SimDevice>,
    routing: RoutingPolicy,
    seed: u64,
    rr: AtomicUsize,
}

impl DevicePool {
    /// Builds a pool from `cfg`. Each device gets a clone of `cfg.base`
    /// with a fault plan seeded by `derive_device_seed(cfg.seed, id)` —
    /// the pure derivation that makes whole-pool chaos runs replayable.
    ///
    /// # Panics
    /// If `cfg.devices` is 0 or an override names a device out of range.
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.devices >= 1, "a pool needs at least one device");
        for &(id, _) in &cfg.fault_overrides {
            assert!(id < cfg.devices, "fault override for device {id} out of range");
        }
        let devices = (0..cfg.devices)
            .map(|id| {
                let template = cfg
                    .fault_overrides
                    .iter()
                    .rev()
                    .find(|(d, _)| *d == id)
                    .map(|(_, t)| *t)
                    .or(cfg.fault);
                let mut launcher = cfg.base.clone();
                launcher.fault =
                    template.map(|t| Arc::new(FaultPlan::new(t.for_device(cfg.seed, id as u64))));
                SimDevice::new(id, launcher)
            })
            .collect();
        Self { devices, routing: cfg.routing, seed: cfg.seed, rr: AtomicUsize::new(0) }
    }

    /// Wraps one existing launcher — fault plan and all — as a 1-device
    /// pool. This is the backward-compatible path: a service configured
    /// without a pool behaves exactly as before.
    pub fn single(launcher: Launcher) -> Self {
        Self {
            devices: vec![SimDevice::new(0, launcher)],
            routing: RoutingPolicy::RoundRobin,
            seed: 0,
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of devices (healthy or not).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` iff the pool has no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The pool seed every device plan derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The routing policy in force.
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// The device with id `i`.
    pub fn device(&self, i: usize) -> &SimDevice {
        &self.devices[i]
    }

    /// All devices in id order.
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// Ids of devices not marked lost, ascending.
    pub fn healthy(&self) -> Vec<usize> {
        self.devices.iter().filter(|d| !d.is_lost()).map(|d| d.id).collect()
    }

    /// Marks device `i` lost (sticky). Routing skips it from now on.
    pub fn mark_lost(&self, i: usize) {
        self.devices[i].lost.store(true, Ordering::Release);
    }

    /// `true` once device `i` has been marked lost.
    pub fn is_lost(&self, i: usize) -> bool {
        self.devices[i].is_lost()
    }

    /// Picks a healthy device for work keyed by system size `n`, or
    /// `None` when every device is lost (callers fall back to the CPU
    /// safety net).
    pub fn route(&self, n: usize) -> Option<usize> {
        let healthy = self.healthy();
        if healthy.is_empty() {
            return None;
        }
        Some(match self.routing {
            RoutingPolicy::RoundRobin => {
                let tick = self.rr.fetch_add(1, Ordering::Relaxed);
                healthy[tick % healthy.len()]
            }
            RoutingPolicy::LeastLoaded => healthy
                .iter()
                .copied()
                .min_by_key(|&i| (self.devices[i].pending(), i))
                .expect("healthy is non-empty"),
            RoutingPolicy::PlanAffinity => {
                // splitmix-style avalanche of n so adjacent sizes spread.
                let mut h = (n as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                healthy[(h % healthy.len() as u64) as usize]
            }
        })
    }

    /// Notes a job routed to device `dev` (feeds least-loaded routing).
    pub fn note_enqueued(&self, dev: usize) {
        self.devices[dev].pending.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a routed job leaving device `dev`'s queue (served or
    /// re-routed).
    pub fn note_dequeued(&self, dev: usize) {
        let prev = self.devices[dev].pending.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "pending underflow on device {dev}");
    }

    /// Point-in-time counters for every device, id order.
    pub fn stats(&self) -> Vec<DeviceStats> {
        self.devices
            .iter()
            .map(|d| DeviceStats {
                id: d.id,
                dispatched: d.dispatched(),
                busy_ms: d.busy_ms(),
                steals: d.steals(),
                pending: d.pending(),
                lost: d.is_lost(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::derive_device_seed;

    fn chaos_cfg(devices: usize) -> PoolConfig {
        PoolConfig { fault: Some(FaultConfig::chaos(0, 0.05, 0.01)), ..PoolConfig::new(devices) }
    }

    #[test]
    fn devices_get_pure_derived_seeds() {
        let pool = chaos_cfg(8).build();
        for d in pool.devices() {
            let plan = d.launcher.fault.as_ref().expect("chaos template installs a plan");
            assert_eq!(
                plan.config().seed,
                derive_device_seed(pool.seed(), d.id as u64),
                "device {} seed must be the pure derivation",
                d.id
            );
        }
    }

    #[test]
    fn pool_rebuild_replays_identical_fault_schedules() {
        // Satellite: whole-pool chaos runs are replayable — building the
        // same config twice yields per-device plans with identical
        // decision schedules, and distinct devices get distinct schedules.
        let a = chaos_cfg(4).build();
        let b = chaos_cfg(4).build();
        let mut schedules = Vec::new();
        for id in 0..4 {
            let ca = *a.device(id).launcher.fault.as_ref().unwrap().config();
            let cb = *b.device(id).launcher.fault.as_ref().unwrap().config();
            let sa = FaultPlan::schedule(&ca, 256);
            assert_eq!(sa, FaultPlan::schedule(&cb, 256), "device {id} replay");
            schedules.push(sa);
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(schedules[i], schedules[j], "devices {i}/{j} must decorrelate");
            }
        }
        // A different pool seed re-keys every device.
        let c = PoolConfig { seed: 7, ..chaos_cfg(4) }.build();
        let c0 = *c.device(0).launcher.fault.as_ref().unwrap().config();
        let a0 = *a.device(0).launcher.fault.as_ref().unwrap().config();
        assert_ne!(FaultPlan::schedule(&c0, 256), FaultPlan::schedule(&a0, 256));
    }

    #[test]
    fn overrides_win_and_are_reseeded() {
        let mut cfg = chaos_cfg(3);
        cfg.fault_overrides =
            vec![(1, FaultConfig { device_lost_after: Some(2), ..FaultConfig::quiet(0) })];
        let pool = cfg.build();
        let plan1 = *pool.device(1).launcher.fault.as_ref().unwrap().config();
        assert_eq!(plan1.device_lost_after, Some(2));
        assert_eq!(plan1.seed, derive_device_seed(pool.seed(), 1));
        // Other devices keep the template.
        let plan0 = *pool.device(0).launcher.fault.as_ref().unwrap().config();
        assert!(plan0.launch_failure_rate > 0.0);
    }

    #[test]
    fn round_robin_cycles_and_skips_lost_devices() {
        let pool = PoolConfig::new(4).build();
        let first: Vec<_> = (0..8).map(|_| pool.route(64).unwrap()).collect();
        assert_eq!(first, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        pool.mark_lost(2);
        let after: Vec<_> = (0..6).map(|_| pool.route(64).unwrap()).collect();
        assert!(!after.contains(&2), "lost device must not be routed to: {after:?}");
        assert_eq!(pool.healthy(), vec![0, 1, 3]);
    }

    #[test]
    fn least_loaded_prefers_emptiest_queue() {
        let pool = PoolConfig { routing: RoutingPolicy::LeastLoaded, ..PoolConfig::new(3) }.build();
        pool.note_enqueued(0);
        pool.note_enqueued(0);
        pool.note_enqueued(1);
        assert_eq!(pool.route(64), Some(2));
        pool.note_enqueued(2);
        pool.note_enqueued(2);
        assert_eq!(pool.route(64), Some(1), "1 has fewer pending than 0 and 2");
        pool.note_dequeued(0);
        pool.note_dequeued(0);
        assert_eq!(pool.route(64), Some(0), "drained queue wins (tie broken by id)");
    }

    #[test]
    fn plan_affinity_is_sticky_per_size_and_survives_loss() {
        let pool =
            PoolConfig { routing: RoutingPolicy::PlanAffinity, ..PoolConfig::new(4) }.build();
        let d64 = pool.route(64).unwrap();
        for _ in 0..16 {
            assert_eq!(pool.route(64), Some(d64), "same n must stick to one device");
        }
        let hits: std::collections::BTreeSet<_> = [8usize, 16, 32, 64, 128, 256, 512, 1024]
            .iter()
            .map(|&n| pool.route(n).unwrap())
            .collect();
        assert!(hits.len() > 1, "different sizes should spread across devices: {hits:?}");
        pool.mark_lost(d64);
        let moved = pool.route(64).unwrap();
        assert_ne!(moved, d64, "affinity must remap away from a lost device");
        assert_eq!(pool.route(64), Some(moved), "...and stay sticky afterwards");
    }

    #[test]
    fn route_returns_none_when_every_device_is_lost() {
        let pool = PoolConfig::new(2).build();
        pool.mark_lost(0);
        pool.mark_lost(1);
        assert_eq!(pool.route(64), None);
        assert!(pool.healthy().is_empty());
    }

    #[test]
    fn single_preserves_the_installed_fault_plan() {
        let plan = Arc::new(FaultPlan::new(FaultConfig::chaos(3, 0.5, 0.0)));
        let pool = DevicePool::single(Launcher::gtx280().with_fault_plan(plan.clone()));
        assert_eq!(pool.len(), 1);
        let installed = pool.device(0).launcher.fault.as_ref().unwrap();
        assert!(Arc::ptr_eq(installed, &plan), "single() must not re-key the plan");
    }

    #[test]
    fn stats_track_dispatch_busy_time_and_steals() {
        let pool = PoolConfig::new(2).build();
        pool.device(0).note_dispatched(1.5);
        pool.device(0).note_dispatched(0.5);
        pool.device(1).note_steal();
        let stats = pool.stats();
        assert_eq!(stats[0].dispatched, 2);
        assert!((stats[0].busy_ms - 2.0).abs() < 1e-9);
        assert_eq!(stats[1].steals, 1);
        assert!(!stats[0].lost && !stats[1].lost);
    }
}
