//! Per-device work queues with stealing.
//!
//! Each device owns a FIFO of jobs routed to it. A worker normally pops
//! its own queue; when that is empty (and stealing is allowed) it takes
//! the *oldest* job from the longest other queue **with a backlog of at
//! least two** — a lone queued job is left for its owner, who is about to
//! serve it, so an idle thief never races the owner's wake-up for it.
//! With a [`backup age`](StealQueues::with_backup_age) configured, that
//! courtesy expires: a lone job whose owner has not served it within the
//! age budget (measured on the queues' [`Clock`], so it works under both
//! real and simulated time) is considered *backed up* and becomes fair
//! game for an idle thief. Thefts are counted per thief. A worker whose
//! device has died pops with stealing disabled so it only drains work
//! already routed to the dead device — healthy workers steal the rest of
//! any backlog.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use gpu_sim::{Clock, Tick};

/// Result of a blocking [`StealQueues::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<J> {
    /// A job, plus the id of the queue it came from (`from != dev` means
    /// it was stolen).
    Job {
        /// The job itself.
        job: J,
        /// Queue the job was taken from.
        from: usize,
    },
    /// The queues are closed and no job was available to this caller.
    Closed,
}

struct Inner<J> {
    queues: Vec<VecDeque<(Tick, J)>>,
    closed: bool,
}

/// A set of per-device FIFOs with blocking pop and work-stealing.
pub struct StealQueues<J> {
    inner: Mutex<Inner<J>>,
    cv: Condvar,
    steals: Vec<AtomicU64>,
    clock: Clock,
    /// Age (in clock nanoseconds) past which a lone queued job counts as
    /// backed up and may be stolen; `None` keeps lone jobs owner-only.
    backup_age: Option<u64>,
}

impl<J> StealQueues<J> {
    /// Creates `n` empty queues on a real clock with backup detection off.
    pub fn new(n: usize) -> Self {
        Self::with_clock(n, Clock::real())
    }

    /// Creates `n` empty queues whose job ages are measured on `clock`.
    /// Backup detection starts disabled; see
    /// [`with_backup_age`](Self::with_backup_age).
    pub fn with_clock(n: usize, clock: Clock) -> Self {
        assert!(n >= 1, "need at least one queue");
        Self {
            inner: Mutex::new(Inner {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                closed: false,
            }),
            cv: Condvar::new(),
            steals: (0..n).map(|_| AtomicU64::new(0)).collect(),
            clock,
            backup_age: None,
        }
    }

    /// Enables backup detection: a lone queued job older than `age` (on
    /// this queue set's clock) may be stolen even though queues holding a
    /// single fresh job are normally owner-only.
    #[must_use]
    pub fn with_backup_age(mut self, age: Duration) -> Self {
        self.backup_age = Some(age.as_nanos().min(u64::MAX as u128) as u64);
        self
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.steals.len()
    }

    /// `true` iff there are no queues (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.steals.is_empty()
    }

    /// Appends `job` to device `dev`'s queue, stamped with the current
    /// clock tick, and wakes a waiting worker. Jobs pushed after
    /// [`close`](Self::close) are still delivered (the queues drain fully
    /// before `Closed` is reported).
    pub fn push(&self, dev: usize, job: J) {
        let at = self.clock.now();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.queues[dev].push_back((at, job));
        drop(inner);
        self.cv.notify_all();
    }

    /// `true` iff a queue may be robbed by an idle thief: either it has a
    /// backlog of at least two, or backup detection is on and its lone
    /// head job has lingered past the configured age.
    fn stealable(&self, queue: &VecDeque<(Tick, J)>, now: Tick) -> bool {
        if queue.len() >= 2 {
            return true;
        }
        match (self.backup_age, queue.front()) {
            (Some(age), Some(&(at, _))) => now.saturating_sub(at) >= age,
            _ => false,
        }
    }

    /// Blocks until a job is available to this worker or the queues are
    /// closed *and* drained (from this worker's point of view).
    ///
    /// Own queue first; otherwise, when `allow_steal`, the oldest job of
    /// the longest other *stealable* queue is stolen (counted against
    /// `dev`). A queue holding a single job is normally never robbed: its
    /// owner is presumed about to serve it, and leaving it alone keeps
    /// lone jobs from ping-ponging to whichever idle worker wins the
    /// wake-up race — unless backup detection is on and the lone job has
    /// outstayed the configured age, in which case the owner is presumed
    /// stuck and the job is rescued. With `allow_steal == false` only
    /// `dev`'s own queue is served — the drain mode used by a dead
    /// device's worker.
    pub fn pop(&self, dev: usize, allow_steal: bool) -> Pop<J> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some((_, job)) = inner.queues[dev].pop_front() {
                return Pop::Job { job, from: dev };
            }
            if allow_steal {
                let now = self.clock.now();
                let victim = (0..inner.queues.len())
                    .filter(|&q| q != dev && self.stealable(&inner.queues[q], now))
                    .max_by_key(|&q| inner.queues[q].len());
                if let Some(victim) = victim {
                    let (_, job) = inner.queues[victim].pop_front().expect("victim is non-empty");
                    self.steals[dev].fetch_add(1, Ordering::Relaxed);
                    return Pop::Job { job, from: victim };
                }
            }
            if inner.closed {
                return Pop::Closed;
            }
            // With backup detection on, a lone job can become stealable by
            // the mere passage of time — no push will ring the condvar, so
            // wake periodically to re-check ages. Without it, state only
            // changes on push/close and a plain wait suffices.
            match self.backup_age {
                Some(age) if allow_steal => {
                    let nap = if self.clock.is_sim() {
                        // Real parking under a simulated clock: take short
                        // naps so steals react as soon as the (externally
                        // advanced) virtual time crosses the age threshold.
                        gpu_sim::clock::SIM_POLL_QUANTUM
                    } else {
                        Duration::from_nanos(age.max(1))
                    };
                    let (guard, _timeout) =
                        self.cv.wait_timeout(inner, nap).unwrap_or_else(|p| p.into_inner());
                    inner = guard;
                }
                _ => {
                    inner = self.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }

    /// Removes and returns every job currently queued on `dev` (used to
    /// re-route a dead device's backlog).
    pub fn drain(&self, dev: usize) -> Vec<J> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.queues[dev].drain(..).map(|(_, job)| job).collect()
    }

    /// Closes the queues: blocked workers wake, drain what remains, and
    /// then observe [`Pop::Closed`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.closed = true;
        drop(inner);
        self.cv.notify_all();
    }

    /// Jobs stolen *by* device `dev`'s worker so far.
    pub fn steal_count(&self, dev: usize) -> u64 {
        self.steals[dev].load(Ordering::Relaxed)
    }

    /// Current queue depths, id order.
    pub fn depths(&self) -> Vec<usize> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.queues.iter().map(VecDeque::len).collect()
    }
}

impl<J> core::fmt::Debug for StealQueues<J> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StealQueues")
            .field("depths", &self.depths())
            .field(
                "steals",
                &self.steals.iter().map(|s| s.load(Ordering::Relaxed)).collect::<Vec<_>>(),
            )
            .field("backup_age_ns", &self.backup_age)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn own_queue_is_fifo_and_preferred() {
        let q = StealQueues::new(2);
        q.push(0, 'a');
        q.push(0, 'b');
        q.push(1, 'z');
        assert_eq!(q.pop(0, true), Pop::Job { job: 'a', from: 0 });
        assert_eq!(q.pop(0, true), Pop::Job { job: 'b', from: 0 });
        assert_eq!(q.steal_count(0), 0, "own pops are not steals");
    }

    #[test]
    fn steals_oldest_job_of_longest_queue_and_counts_it() {
        let q = StealQueues::new(3);
        q.push(1, 10);
        q.push(2, 20);
        q.push(2, 21);
        assert_eq!(q.pop(0, true), Pop::Job { job: 20, from: 2 }, "longest queue loses its head");
        assert_eq!(q.steal_count(0), 1);
        assert_eq!(q.depths(), vec![0, 1, 1]);
    }

    #[test]
    fn no_steal_mode_only_drains_own_queue() {
        let q = StealQueues::new(2);
        q.push(1, 5);
        q.close();
        assert_eq!(q.pop(0, false), Pop::<i32>::Closed, "dev 0 must not touch dev 1's jobs");
        assert_eq!(q.pop(1, false), Pop::Job { job: 5, from: 1 });
        assert_eq!(q.pop(1, false), Pop::<i32>::Closed);
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let q = StealQueues::new(1);
        q.push(0, 1);
        q.push(0, 2);
        q.close();
        assert_eq!(q.pop(0, true), Pop::Job { job: 1, from: 0 });
        assert_eq!(q.pop(0, true), Pop::Job { job: 2, from: 0 });
        assert_eq!(q.pop(0, true), Pop::<i32>::Closed);
    }

    #[test]
    fn drain_empties_one_queue_for_rerouting() {
        let q = StealQueues::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.push(1, 3);
        assert_eq!(q.drain(0), vec![1, 2]);
        assert_eq!(q.depths(), vec![0, 1]);
    }

    #[test]
    fn blocked_worker_wakes_on_push_and_on_close() {
        let q = Arc::new(StealQueues::new(2));
        let qa = q.clone();
        let h = std::thread::spawn(move || qa.pop(0, true));
        std::thread::sleep(std::time::Duration::from_millis(10));
        // A lone job on queue 1 belongs to its owner; a *backlog* is
        // stealable, so the blocked worker 0 wakes for the second push.
        q.push(1, 7);
        q.push(1, 8);
        assert_eq!(h.join().unwrap(), Pop::Job { job: 7, from: 1 });
        assert_eq!(q.pop(1, true), Pop::Job { job: 8, from: 1 });

        let qb = q.clone();
        let h = std::thread::spawn(move || qb.pop(1, true));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), Pop::<i32>::Closed);
    }

    #[test]
    fn lone_job_is_left_for_its_owner() {
        let q = StealQueues::new(2);
        q.push(1, 9);
        q.close();
        // Worker 0 may not rob the single queued job even though its own
        // queue is empty — owner 1 is presumed about to serve it.
        assert_eq!(q.pop(0, true), Pop::<i32>::Closed);
        assert_eq!(q.pop(1, true), Pop::Job { job: 9, from: 1 });
        assert_eq!(q.pop(1, true), Pop::<i32>::Closed);
    }

    #[test]
    fn backed_up_lone_job_is_rescued_after_the_age_budget() {
        let clock = Clock::sim();
        let q = StealQueues::with_clock(2, clock.clone()).with_backup_age(Duration::from_millis(5));
        q.push(1, 9);
        q.close();
        // Fresh lone job: still owner-only.
        assert_eq!(q.pop(0, true), Pop::<i32>::Closed);
        // Past the age budget the owner is presumed stuck and the job is
        // fair game for the idle thief.
        clock.advance(Duration::from_millis(6));
        assert_eq!(q.pop(0, true), Pop::Job { job: 9, from: 1 });
        assert_eq!(q.steal_count(0), 1);
    }

    #[test]
    fn parked_thief_wakes_when_a_lone_job_goes_stale() {
        let clock = Clock::sim();
        let q = Arc::new(
            StealQueues::with_clock(2, clock.clone()).with_backup_age(Duration::from_millis(5)),
        );
        q.push(1, 42);
        let qa = q.clone();
        let h = std::thread::spawn(move || qa.pop(0, true));
        // The thief is parked: the lone job is fresh. Advancing virtual
        // time past the budget makes it stale; the thief's periodic
        // re-check must pick it up without any push or close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        clock.advance(Duration::from_millis(6));
        assert_eq!(h.join().unwrap(), Pop::Job { job: 42, from: 1 });
    }
}
