//! Routing policies for the [`DevicePool`](crate::DevicePool) scheduler.
//!
//! A policy decides which healthy device a unit of work (a size-class
//! flush, a partitioned-solve phase) is dispatched to. All three policies
//! are deterministic given the same sequence of routing calls and the same
//! set of healthy devices, which keeps whole-pool chaos runs replayable.

use core::fmt;
use core::str::FromStr;

/// How the pool picks a device for the next unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingPolicy {
    /// Cycle through healthy devices in id order — the fairness baseline.
    #[default]
    RoundRobin,
    /// Pick the healthy device with the fewest queued-but-unserved jobs
    /// (ties broken by lowest id). Adapts to stragglers and skewed
    /// size-class mixes.
    LeastLoaded,
    /// Hash the system size `n` to a device, so repeats of one size class
    /// land on the same device — the layout that maximises warm plan/tune
    /// state per device on real hardware.
    PlanAffinity,
}

impl RoutingPolicy {
    /// All policies, in display order (useful for CLI help and sweeps).
    pub const ALL: [RoutingPolicy; 3] =
        [RoutingPolicy::RoundRobin, RoutingPolicy::LeastLoaded, RoutingPolicy::PlanAffinity];
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLoaded => "least-loaded",
            RoutingPolicy::PlanAffinity => "plan-affinity",
        })
    }
}

/// Error returned when parsing an unknown routing-policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRoutingPolicyError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseRoutingPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown routing policy '{}' (expected round-robin, least-loaded, or plan-affinity)",
            self.input
        )
    }
}

impl std::error::Error for ParseRoutingPolicyError {}

impl FromStr for RoutingPolicy {
    type Err = ParseRoutingPolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" => Ok(RoutingPolicy::RoundRobin),
            "least-loaded" => Ok(RoutingPolicy::LeastLoaded),
            "plan-affinity" => Ok(RoutingPolicy::PlanAffinity),
            _ => Err(ParseRoutingPolicyError { input: s.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_from_str_round_trips_every_policy() {
        for policy in RoutingPolicy::ALL {
            let text = policy.to_string();
            let back: RoutingPolicy = text.parse().unwrap();
            assert_eq!(back, policy, "{text} must round-trip");
        }
    }

    #[test]
    fn parse_rejects_unknown_and_miscased_names() {
        for bad in ["roundrobin", "Round-Robin", "least_loaded", "affinity", "", "rr"] {
            let err = bad.parse::<RoutingPolicy>().unwrap_err();
            assert_eq!(err.input, bad);
            assert!(err.to_string().contains("round-robin"), "help text lists valid names");
        }
    }

    #[test]
    fn default_is_round_robin() {
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::RoundRobin);
        assert_eq!(RoutingPolicy::ALL.len(), 3);
    }
}
