//! Property tests for the cross-device partitioned solver: for random
//! diagonally-dominant systems, the pool solve must match the CPU GEP
//! reference within a residual-style tolerance — across 1/2/4/8 devices,
//! awkward (non-power-of-two) sizes, uneven chunk splits, and sizes far
//! beyond one block's shared memory (n up to 2^16).

use device_pool::{solve_partitioned, PoolConfig, RoutingPolicy};
use tridiag_core::residual::l2_residual;
use tridiag_core::{Generator, TridiagonalSystem, Workload};

/// Element-wise agreement with GEP, scaled by the solution magnitude.
fn assert_matches_gep(sys: &TridiagonalSystem<f64>, x: &[f64], tag: &str) {
    let x_ref = cpu_solvers::gep::solve(sys).unwrap();
    let scale = x_ref.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for i in 0..sys.n() {
        let err = (x[i] - x_ref[i]).abs() / scale;
        assert!(err < 1e-10, "{tag}: i={i} rel err {err:.3e} ({} vs {})", x[i], x_ref[i]);
    }
}

#[test]
fn partitioned_matches_gep_across_pool_sizes() {
    let mut rng = 0x1234_5678_u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for devices in [1usize, 2, 4, 8] {
        for _ in 0..3 {
            let seed = next();
            // Awkward sizes: random in [64, 4096], frequently non-pow2.
            let n = 64 + (seed % 4033) as usize;
            let chunks_per_device = 1 + (seed >> 32) as usize % 8;
            let sys: TridiagonalSystem<f64> =
                Generator::new(seed).system(Workload::DiagonallyDominant, n);
            let pool = PoolConfig::new(devices).build();
            let report = solve_partitioned(&pool, &sys, chunks_per_device).unwrap();
            assert_matches_gep(
                &sys,
                &report.x,
                &format!("devices={devices} n={n} cpd={chunks_per_device} seed={seed}"),
            );
            assert_eq!(report.spans.last().unwrap().1, n, "spans must cover the system");
            assert_eq!(report.interface_rows, 2 * report.chunks_total);
        }
    }
}

#[test]
fn uneven_spans_from_non_divisible_sizes_stay_accurate() {
    // n = 1021 (prime) over 4 devices → spans 256/255/255/255, and short
    // chunks inside each span. 8 devices → even more ragged.
    for devices in [2usize, 4, 8] {
        let n = 1021;
        let sys: TridiagonalSystem<f64> =
            Generator::new(97).system(Workload::DiagonallyDominant, n);
        let pool =
            PoolConfig { routing: RoutingPolicy::LeastLoaded, ..PoolConfig::new(devices) }.build();
        let report = solve_partitioned(&pool, &sys, 5).unwrap();
        let lens: Vec<usize> = report.spans.iter().map(|(s, e)| e - s).collect();
        assert!(lens.iter().any(|&l| l != lens[0]), "spans should be uneven: {lens:?}");
        assert_matches_gep(&sys, &report.x, &format!("uneven devices={devices}"));
    }
}

#[test]
fn large_n_beyond_shared_memory_verifies_on_all_pool_sizes() {
    // The acceptance bar: n = 2^16 — far past any one block's shared
    // memory — must verify against GEP on every pool size.
    let n = 1 << 16;
    let sys: TridiagonalSystem<f64> = Generator::new(42).system(Workload::DiagonallyDominant, n);
    let x_ref = cpu_solvers::gep::solve(&sys).unwrap();
    let scale = x_ref.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    for devices in [1usize, 2, 4, 8] {
        let pool = PoolConfig::new(devices).build();
        let report = solve_partitioned(&pool, &sys, 16).unwrap();
        for i in 0..n {
            let err = (report.x[i] - x_ref[i]).abs() / scale;
            assert!(err < 1e-9, "devices={devices} i={i} rel err {err:.3e}");
        }
        let r = l2_residual(&sys, &report.x).unwrap();
        assert!(r < 1e-6, "devices={devices} residual {r}");
        assert!(report.timing.total_ms() > 0.0);
        // More devices must not *increase* the parallel-phase cost.
        if devices > 1 {
            let solo = solve_partitioned(&PoolConfig::new(1).build(), &sys, 16).unwrap();
            assert!(
                report.timing.local_ms <= solo.timing.local_ms + 1e-9,
                "devices={devices}: local phase should not regress vs one device"
            );
        }
    }
}
