//! Cyclic-reduction reduction tree: the CR elimination multipliers,
//! precomputed once per matrix.
//!
//! Forward CR updates every level's active equations with two multipliers
//! `k1 = a_i / b_{i-h}` and `k2 = c_i / b_{i+h}` that depend only on
//! `(a, b, c)` — exactly like the Thomas `wk1`/`wk2` coefficients, the
//! whole reduction tree can be computed ahead of time. A warm solve then
//! applies the stored multipliers to `d` level by level (two multiply-subs
//! per active row), seeds the final 2×2 system, and back-substitutes with
//! the stored reduced coefficients and reciprocal pivots — no divisions,
//! `O(5n)` total, mirroring `cpu_solvers::reference::cr` step for step so
//! the warm answer agrees with a fresh CR solve to rounding.

use cpu_solvers::reference::cr::CrState;
use tridiag_core::{require_pow2, Real, Result};

/// Precomputed CR reduction tree for one matrix (power-of-two `n`).
#[derive(Debug, Clone)]
pub struct CrReductionTree<T: Real> {
    /// Per-level elimination multipliers, flattened level-major: level `ℓ`
    /// holds one `(k1, k2)` pair per active row (`k2 = 0` for the
    /// boundary row with no right neighbour).
    multipliers: Vec<(T, T)>,
    /// Start offset of each level in `multipliers`.
    level_offsets: Vec<usize>,
    /// Fully reduced coefficients (each position at its deepest level).
    state: CrState<T>,
    /// Reciprocal pivots `1 / b_i` of the reduced state.
    rb: Vec<T>,
    /// Reciprocal determinant of the final 2×2 system.
    rdet: T,
}

impl<T: Real> CrReductionTree<T> {
    /// Builds the tree by running the reference CR forward reduction on
    /// `(a, b, c)` with a zero right-hand side, recording the multipliers.
    ///
    /// # Errors
    /// Non-power-of-two sizes (CR's admission rule); a zero pivot or a
    /// singular final 2×2 block surfaces as a non-finite tree, rejected by
    /// [`CrReductionTree::is_finite`] consumers.
    pub fn build(a: &[T], b: &[T], c: &[T]) -> Result<Self> {
        let n = b.len();
        require_pow2(n, 2)?;
        let d = vec![T::ZERO; n];
        let mut st = CrState::new(a, b, c, &d);
        let levels = n.trailing_zeros() - 1;
        let mut multipliers = Vec::new();
        let mut level_offsets = Vec::with_capacity(levels as usize);
        for _ in 0..levels {
            level_offsets.push(multipliers.len());
            // Record this level's multipliers before applying it: they are
            // functions of the *previous* level's coefficients.
            let stride = st.stride();
            let half = stride / 2;
            let mut i = stride - 1;
            while i < n {
                let k1 = st.a[i] / st.b[i - half];
                let k2 = if i + half < n { st.c[i] / st.b[i + half] } else { T::ZERO };
                multipliers.push((k1, k2));
                i += stride;
            }
            st.forward_level();
        }
        let i1 = n / 2 - 1;
        let i2 = n - 1;
        let det = st.b[i1] * st.b[i2] - st.c[i1] * st.a[i2];
        let rdet = T::ONE / det;
        let rb = st.b.iter().map(|&bi| T::ONE / bi).collect();
        Ok(CrReductionTree { multipliers, level_offsets, state: st, rb, rdet })
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.state.n()
    }

    /// Heap bytes this tree occupies (cache accounting): the multiplier
    /// pairs, the four reduced-state arrays and the reciprocal pivots.
    pub fn bytes(&self) -> usize {
        (2 * self.multipliers.len() + 5 * self.n()) * T::BYTES
    }

    /// `true` when every stored coefficient is finite (a zero pivot during
    /// the build shows up here, not as an error).
    pub fn is_finite(&self) -> bool {
        self.rdet.is_finite()
            && self.multipliers.iter().all(|(k1, k2)| k1.is_finite() && k2.is_finite())
            && self.rb.iter().all(|v| v.is_finite())
    }

    /// Solves `A x = d` by applying the stored reduction tree: forward
    /// `d`-reduction with the cached multipliers, the cached 2×2 seed,
    /// then the reference backward substitution.
    pub fn solve_into(&self, d: &[T], x: &mut [T]) {
        let n = self.n();
        debug_assert!(d.len() == n && x.len() == n);
        // x doubles as the d workspace: positions are read exactly once,
        // at the level that solves them, before being overwritten.
        x.copy_from_slice(d);
        let levels = self.level_offsets.len();
        for level in 0..levels {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let mut i = stride - 1;
            let mut m = self.level_offsets[level];
            while i < n {
                let (k1, k2) = self.multipliers[m];
                let mut v = x[i] - x[i - half] * k1;
                if i + half < n {
                    v -= x[i + half] * k2;
                }
                x[i] = v;
                i += stride;
                m += 1;
            }
        }
        let st = &self.state;
        let i1 = n / 2 - 1;
        let i2 = n - 1;
        let (d1, d2) = (x[i1], x[i2]);
        x[i1] = (d1 * st.b[i2] - st.c[i1] * d2) * self.rdet;
        x[i2] = (st.b[i1] * d2 - d1 * st.a[i2]) * self.rdet;
        for level in (0..levels as u32).rev() {
            self.backward_level_warm(level, x);
        }
    }

    /// Warm backward substitution: the reference recurrence with the
    /// division replaced by the cached reciprocal pivot.
    fn backward_level_warm(&self, level: u32, x: &mut [T]) {
        let st = &self.state;
        let n = st.n();
        let stride = 1usize << (level + 1);
        let half = stride / 2;
        let mut i = half - 1;
        while i < n {
            let right = x[i + half];
            let v = if i >= half {
                (x[i] - st.a[i] * x[i - half] - st.c[i] * right) * self.rb[i]
            } else {
                (x[i] - st.c[i] * right) * self.rb[i]
            };
            x[i] = v;
            i += stride;
        }
    }

    /// Convenience wrapper returning a fresh solution vector.
    pub fn solve(&self, d: &[T]) -> Vec<T> {
        let mut x = vec![T::ZERO; self.n()];
        self.solve_into(d, &mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::residual::l2_residual;
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    #[test]
    fn warm_cr_matches_fresh_reference_cr() {
        let mut g = Generator::new(21);
        for n in [2usize, 4, 16, 64, 256, 1024] {
            let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, n);
            let tree = CrReductionTree::build(&s.a, &s.b, &s.c).unwrap();
            assert!(tree.is_finite());
            let warm = tree.solve(&s.d);
            assert!(l2_residual(&s, &warm).unwrap() < 1e-9, "n={n}");
            let mut fresh = vec![0.0; n];
            cpu_solvers::reference::cr::solve_into(&s.a, &s.b, &s.c, &s.d, &mut fresh).unwrap();
            for i in 0..n {
                assert!((warm[i] - fresh[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn tree_is_reusable_across_rhs() {
        let mut g = Generator::new(8);
        let s: TridiagonalSystem<f32> = g.system(Workload::Poisson, 128);
        let tree = CrReductionTree::build(&s.a, &s.b, &s.c).unwrap();
        for k in 0..6 {
            let d: Vec<f32> = (0..128).map(|i| ((i * 31 + k * 11) % 23) as f32 - 11.0).collect();
            let x = tree.solve(&d);
            let probe = TridiagonalSystem::new(s.a.clone(), s.b.clone(), s.c.clone(), d).unwrap();
            assert!(l2_residual(&probe, &x).unwrap() < 1e-2, "rhs {k}");
        }
    }

    #[test]
    fn rejects_non_pow2() {
        let s = TridiagonalSystem::<f64>::toeplitz(6, -1.0, 4.0, -1.0, 1.0).unwrap();
        assert!(CrReductionTree::build(&s.a, &s.b, &s.c).is_err());
    }

    #[test]
    fn accounting_is_sane() {
        let mut g = Generator::new(4);
        let s: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 64);
        let tree = CrReductionTree::build(&s.a, &s.b, &s.c).unwrap();
        assert_eq!(tree.n(), 64);
        assert!(tree.bytes() > 5 * 64 * 8);
    }
}
