//! # factor-cache
//!
//! Bounded LRU cache of precomputed tridiagonal factorizations, keyed by
//! matrix identity ([`tridiag_core::MatrixKey`]): the serving tier's
//! answer to traffic that re-solves the *same* matrix with fresh
//! right-hand sides (ROADMAP open item 1).
//!
//! Each entry holds the Thomas elimination coefficients
//! ([`cpu_solvers::ThomasFactors`] — `wk1` reciprocal pivots / `wk2`
//! swept super-diagonal) and, for power-of-two sizes, the CR reduction
//! tree ([`CrReductionTree`]). Both are pure functions of `(a, b, c)`;
//! consuming one turns the `O(8n)` cold elimination+substitution into
//! `O(5n)` pure substitution.
//!
//! Determinism contract: every operation's outcome (hit/miss, which
//! entry is evicted) is a pure function of the *sequence* of calls —
//! LRU order is a logical access counter, never wall-clock time — so the
//! trace-lab harness can replay warm traffic bit-identically.
//!
//! Safety contract: lookups are advisory. A cached artifact can be
//! stale only through a 64-bit key collision or memory corruption, and
//! the service residual-verifies every warm answer, repairing via GEP
//! and [`FactorCache::invalidate`]-ing the entry on failure — a bad
//! entry degrades to a repaired miss, never a wrong answer.

#![warn(missing_docs)]

pub mod cr_tree;

pub use cr_tree::CrReductionTree;

use cpu_solvers::ThomasFactors;
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tridiag_core::{MatrixKey, NumericCertificate, Real, Result};

/// Default entry capacity: generous for real traffic (a few live
/// operator matrices), small enough that a key-churning adversary stays
/// bounded at ~3n floats per entry.
pub const DEFAULT_CAPACITY: usize = 64;

/// One cached factorization: the Thomas coefficients always, the CR
/// reduction tree when `n` is a power of two.
#[derive(Debug, Clone)]
pub struct FactorEntry<T: Real> {
    /// Identity of the factored matrix.
    pub key: MatrixKey,
    /// Thomas `wk1`/`wk2`/sub-diagonal coefficients.
    pub thomas: Arc<ThomasFactors<T>>,
    /// CR reduction tree (power-of-two sizes only).
    pub cr_tree: Option<Arc<CrReductionTree<T>>>,
    /// Numerical-safety certificate of the factored matrix, making the
    /// warm tier certificate-aware: a warm flush may only skip its
    /// residual verify when the entry's own certificate agrees.
    pub certificate: NumericCertificate,
}

impl<T: Real> FactorEntry<T> {
    /// Heap bytes of every artifact in the entry (eviction accounting).
    pub fn bytes(&self) -> usize {
        self.thomas.bytes() + self.cr_tree.as_ref().map_or(0, |t| t.bytes())
    }
}

/// Cache counters; all monotonic. Snapshot via [`FactorCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries removed because a warm answer failed verification.
    pub invalidations: u64,
    /// Live entries right now.
    pub entries: u64,
    /// Heap bytes of all live artifacts right now.
    pub resident_bytes: u64,
}

struct Slot<T: Real> {
    entry: FactorEntry<T>,
    last_used: u64,
}

struct Inner<T: Real> {
    slots: HashMap<MatrixKey, Slot<T>>,
    capacity: usize,
    access: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// Bounded, deterministic LRU cache of factorizations for one element
/// width (the service holds one per `T`). Thread-safe; all decisions are
/// functions of the call sequence only.
pub struct FactorCache<T: Real> {
    inner: Mutex<Inner<T>>,
}

impl<T: Real> Default for FactorCache<T> {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl<T: Real> FactorCache<T> {
    /// Creates a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FactorCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                capacity: capacity.max(1),
                access: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                invalidations: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Looks `key` up, refreshing its LRU stamp. Counts a hit or a miss.
    pub fn lookup(&self, key: &MatrixKey) -> Option<FactorEntry<T>> {
        let mut inner = self.lock();
        inner.access += 1;
        let stamp = inner.access;
        let found = inner.slots.get_mut(key).map(|slot| {
            slot.last_used = stamp;
            slot.entry.clone()
        });
        if found.is_some() {
            inner.hits += 1;
        } else {
            inner.misses += 1;
        }
        found
    }

    /// Factors `(a, b, c)` and inserts the artifacts under `key`,
    /// evicting the least-recently-used entry if the cache is full.
    /// Returns the fresh entry plus the fingerprints of evicted entries
    /// (for trace emission).
    ///
    /// # Errors
    /// Propagates a zero pivot from the Thomas elimination — singular
    /// matrices are never cached. A non-finite factorization (overflow)
    /// is likewise refused, as `InvalidConfig`.
    pub fn factor_and_insert(
        &self,
        key: MatrixKey,
        a: &[T],
        b: &[T],
        c: &[T],
    ) -> Result<(FactorEntry<T>, Vec<u64>)> {
        self.factor_and_insert_with_certificate(key, a, b, c, NumericCertificate::Uncertified)
    }

    /// [`Self::factor_and_insert`] carrying the matrix's
    /// [`NumericCertificate`] into the cached entry, so later warm hits
    /// know whether the verify-skip fast path is licensed.
    ///
    /// # Errors
    /// Same as [`Self::factor_and_insert`].
    pub fn factor_and_insert_with_certificate(
        &self,
        key: MatrixKey,
        a: &[T],
        b: &[T],
        c: &[T],
        certificate: NumericCertificate,
    ) -> Result<(FactorEntry<T>, Vec<u64>)> {
        let thomas = ThomasFactors::factor(a, b, c)?;
        if !thomas.is_finite() {
            return Err(tridiag_core::TridiagError::InvalidConfig {
                what: "non-finite factorization refused by the factor cache",
            });
        }
        let cr_tree = if key.n.is_power_of_two() && key.n >= 2 {
            CrReductionTree::build(a, b, c).ok().filter(|t| t.is_finite()).map(Arc::new)
        } else {
            None
        };
        let entry = FactorEntry { key, thomas: Arc::new(thomas), cr_tree, certificate };

        let mut inner = self.lock();
        inner.access += 1;
        let stamp = inner.access;
        let mut evicted = Vec::new();
        // Replacing an existing key is not an eviction.
        if !inner.slots.contains_key(&key) {
            while inner.slots.len() >= inner.capacity {
                // The minimum stamp is unique (the counter is strictly
                // increasing), so the victim is independent of HashMap
                // iteration order — the determinism contract.
                let victim = inner
                    .slots
                    .iter()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(k, _)| *k)
                    .expect("non-empty: len >= capacity >= 1");
                inner.slots.remove(&victim);
                inner.evictions += 1;
                evicted.push(victim.fingerprint());
            }
        }
        inner.slots.insert(key, Slot { entry: entry.clone(), last_used: stamp });
        Ok((entry, evicted))
    }

    /// Removes `key` after a failed warm verification. Returns whether an
    /// entry was actually dropped.
    pub fn invalidate(&self, key: &MatrixKey) -> bool {
        let mut inner = self.lock();
        let dropped = inner.slots.remove(key).is_some();
        if dropped {
            inner.invalidations += 1;
        }
        dropped
    }

    /// Current counters.
    pub fn stats(&self) -> FactorStats {
        let inner = self.lock();
        FactorStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.slots.len() as u64,
            resident_bytes: inner.slots.values().map(|s| s.entry.bytes() as u64).sum(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }
}

/// Width-erased pair of caches (one per [`Real`] implementation), so a
/// non-generic service config can carry a single handle and each typed
/// dispatch path can recover its own cache.
pub struct SharedFactorCache {
    caches: [Arc<dyn Any + Send + Sync>; 2],
}

impl std::fmt::Debug for SharedFactorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s32 = self.of::<f32>().stats();
        let s64 = self.of::<f64>().stats();
        f.debug_struct("SharedFactorCache").field("f32", &s32).field("f64", &s64).finish()
    }
}

impl Default for SharedFactorCache {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl SharedFactorCache {
    /// Creates both width caches with the same entry bound.
    pub fn new(capacity: usize) -> Self {
        SharedFactorCache {
            caches: [
                Arc::new(FactorCache::<f32>::new(capacity)),
                Arc::new(FactorCache::<f64>::new(capacity)),
            ],
        }
    }

    /// The cache for element type `T`.
    ///
    /// # Panics
    /// For a `Real` implementation other than `f32`/`f64` (none exist in
    /// this workspace).
    pub fn of<T: Real>(&self) -> Arc<FactorCache<T>> {
        self.caches
            .iter()
            .find_map(|c| Arc::clone(c).downcast::<FactorCache<T>>().ok())
            .expect("factor caches exist for f32 and f64 only")
    }

    /// Combined counters across both widths.
    pub fn stats(&self) -> FactorStats {
        let a = self.of::<f32>().stats();
        let b = self.of::<f64>().stats();
        FactorStats {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
            evictions: a.evictions + b.evictions,
            invalidations: a.invalidations + b.invalidations,
            entries: a.entries + b.entries,
            resident_bytes: a.resident_bytes + b.resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::{Generator, TridiagonalSystem, Workload};

    fn system(seed: u64, n: usize) -> TridiagonalSystem<f64> {
        Generator::new(seed).system(Workload::DiagonallyDominant, n)
    }

    fn keyed(seed: u64, n: usize) -> (MatrixKey, TridiagonalSystem<f64>) {
        let s = system(seed, n);
        (MatrixKey::of_system(&s), s)
    }

    #[test]
    fn miss_insert_hit_round_trip() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let (key, s) = keyed(1, 64);
        assert!(cache.lookup(&key).is_none());
        let (entry, evicted) = cache.factor_and_insert(key, &s.a, &s.b, &s.c).unwrap();
        assert!(evicted.is_empty());
        assert!(entry.cr_tree.is_some(), "pow2 sizes get a CR tree");
        let hit = cache.lookup(&key).expect("warm");
        assert_eq!(hit.key, key);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
        assert!(st.resident_bytes > 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: FactorCache<f64> = FactorCache::new(2);
        let (k1, s1) = keyed(1, 32);
        let (k2, s2) = keyed(2, 32);
        let (k3, s3) = keyed(3, 32);
        cache.factor_and_insert(k1, &s1.a, &s1.b, &s1.c).unwrap();
        cache.factor_and_insert(k2, &s2.a, &s2.b, &s2.c).unwrap();
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.lookup(&k1).is_some());
        let (_, evicted) = cache.factor_and_insert(k3, &s3.a, &s3.b, &s3.c).unwrap();
        assert_eq!(evicted, vec![k2.fingerprint()]);
        assert!(cache.lookup(&k1).is_some());
        assert!(cache.lookup(&k2).is_none(), "k2 was evicted");
        assert!(cache.lookup(&k3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_then_refactorization_round_trips() {
        let cache: FactorCache<f64> = FactorCache::new(1);
        let (k1, s1) = keyed(1, 16);
        let (k2, s2) = keyed(2, 16);
        let (first, _) = cache.factor_and_insert(k1, &s1.a, &s1.b, &s1.c).unwrap();
        cache.factor_and_insert(k2, &s2.a, &s2.b, &s2.c).unwrap();
        assert!(cache.lookup(&k1).is_none(), "displaced");
        let (again, evicted) = cache.factor_and_insert(k1, &s1.a, &s1.b, &s1.c).unwrap();
        assert_eq!(evicted, vec![k2.fingerprint()]);
        // Refactoring the same matrix reproduces identical coefficients.
        assert_eq!(first.thomas.as_ref(), again.thomas.as_ref());
    }

    #[test]
    fn invalidate_drops_the_entry() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let (key, s) = keyed(5, 32);
        cache.factor_and_insert(key, &s.a, &s.b, &s.c).unwrap();
        assert!(cache.invalidate(&key));
        assert!(!cache.invalidate(&key), "second invalidate is a no-op");
        assert!(cache.lookup(&key).is_none());
        let st = cache.stats();
        assert_eq!((st.invalidations, st.entries), (1, 0));
    }

    #[test]
    fn singular_matrices_are_never_cached() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let s = TridiagonalSystem::new(
            vec![0.0f64, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        )
        .unwrap();
        let key = MatrixKey::of_system(&s);
        assert!(cache.factor_and_insert(key, &s.a, &s.b, &s.c).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_order_is_a_pure_function_of_the_call_sequence() {
        // Two caches fed the same sequence evict the same keys — the
        // harness determinism requirement.
        let run = || {
            let cache: FactorCache<f64> = FactorCache::new(3);
            let mut log = Vec::new();
            for seed in 1..=8u64 {
                let (k, s) = keyed(seed, 16);
                let (_, ev) = cache.factor_and_insert(k, &s.a, &s.b, &s.c).unwrap();
                log.extend(ev);
                if seed % 2 == 0 {
                    let (k1, _) = keyed(1, 16);
                    log.push(u64::from(cache.lookup(&k1).is_some()));
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn certificates_ride_along_with_entries() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let (key, s) = keyed(11, 32);
        let cert = NumericCertificate::StrictlyDominant { margin: 1.5 };
        let (entry, _) =
            cache.factor_and_insert_with_certificate(key, &s.a, &s.b, &s.c, cert).unwrap();
        assert_eq!(entry.certificate, cert);
        assert_eq!(cache.lookup(&key).unwrap().certificate, cert);
        // The plain insert defaults to Uncertified.
        let (k2, s2) = keyed(12, 32);
        let (plain, _) = cache.factor_and_insert(k2, &s2.a, &s2.b, &s2.c).unwrap();
        assert_eq!(plain.certificate, NumericCertificate::Uncertified);
    }

    #[test]
    fn non_pow2_sizes_cache_thomas_only() {
        let cache: FactorCache<f64> = FactorCache::new(4);
        let (key, s) = keyed(9, 48);
        let (entry, _) = cache.factor_and_insert(key, &s.a, &s.b, &s.c).unwrap();
        assert!(entry.cr_tree.is_none());
        assert_eq!(entry.bytes(), entry.thomas.bytes());
    }
}
