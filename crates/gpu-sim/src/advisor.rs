//! Automatic performance analysis — the tool the paper asks for in its
//! future work: *"develop tools that can automatically measure various
//! algorithm characteristics' impact on performance, and thus help
//! programmers to optimize their GPU applications. ... a comprehensive
//! performance analysis to reveal the factors that have the most impact on
//! performance."*
//!
//! Because the simulator prices every mechanism separately, each factor's
//! impact can be quantified *counterfactually*: re-price the same counters
//! with one mechanism idealized (no bank conflicts, full occupancy, zero
//! step overhead, ...) and report the saving. Findings are ranked by
//! estimated saving — the "prioritized tasks for optimizations" of §5.3.6.

use crate::cost::CostModel;
use crate::counters::KernelStats;
use crate::device::DeviceConfig;
use crate::profile::{time_launch_with_efficiency, TimingReport};
use serde::Serialize;
use tridiag_core::Result;

/// One diagnosed performance factor.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Which mechanism this finding concerns.
    pub category: Category,
    /// Estimated kernel-time saving if the factor were eliminated, ms.
    pub estimated_saving_ms: f64,
    /// Saving as a fraction of the current kernel time.
    pub saving_fraction: f64,
    /// Human-readable diagnosis.
    pub message: String,
    /// Actionable suggestion, phrased in the paper's vocabulary.
    pub suggestion: String,
}

/// Performance factor categories the advisor distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Category {
    /// Shared-memory bank-conflict serialization.
    BankConflicts,
    /// Fewer resident blocks per SM than the hardware allows.
    LowOccupancy,
    /// Steps whose active thread count is below a warp (idle lanes).
    WarpUnderutilization,
    /// Synchronization + loop-control overhead of many small steps.
    StepOverhead,
    /// Division-heavy arithmetic (SFU-serialized on GT200).
    DivisionHeavy,
    /// PCIe transfer dominating end-to-end time.
    TransferBound,
    /// Global memory traffic dominating kernel time.
    GlobalTrafficBound,
}

impl Category {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Category::BankConflicts => "bank conflicts",
            Category::LowOccupancy => "low occupancy",
            Category::WarpUnderutilization => "warp underutilization",
            Category::StepOverhead => "step overhead",
            Category::DivisionHeavy => "division-heavy arithmetic",
            Category::TransferBound => "PCIe transfer bound",
            Category::GlobalTrafficBound => "global-memory bound",
        }
    }
}

/// Advisor output: findings sorted by estimated saving, largest first.
#[derive(Debug, Clone, Serialize)]
pub struct Advice {
    /// Ranked findings (only factors with a non-trivial impact).
    pub findings: Vec<Finding>,
    /// The kernel time all savings are relative to, ms.
    pub kernel_ms: f64,
}

impl Advice {
    /// The highest-impact finding, if any.
    pub fn top(&self) -> Option<&Finding> {
        self.findings.first()
    }

    /// Finding for `category`, if it was significant.
    pub fn finding(&self, category: Category) -> Option<&Finding> {
        self.findings.iter().find(|f| f.category == category)
    }
}

/// Minimum saving fraction for a finding to be reported.
const SIGNIFICANCE: f64 = 0.03;

/// Analyzes a kernel run and returns ranked, quantified findings.
pub fn analyze(
    device: &DeviceConfig,
    cost: &CostModel,
    stats: &KernelStats,
    timing: &TimingReport,
) -> Result<Advice> {
    let blocks = timing.blocks;
    let base_ms = timing.kernel_ms;
    let mut findings = Vec::new();

    // --- Bank conflicts: re-price with serialization removed.
    {
        let mut ideal = stats.clone();
        for s in &mut ideal.steps {
            s.serialized_shared_instructions = s.shared_instructions;
            s.max_conflict_degree = 1;
        }
        let t = time_launch_with_efficiency(device, cost, &ideal, blocks, 1.0)?;
        let saving = base_ms - t.kernel_ms;
        if saving / base_ms > SIGNIFICANCE {
            let worst = stats.max_conflict_degree();
            findings.push(Finding {
                category: Category::BankConflicts,
                estimated_saving_ms: saving,
                saving_fraction: saving / base_ms,
                message: format!(
                    "shared-memory bank conflicts (up to {worst}-way) serialize accesses; \
                     removing them would save {saving:.3} ms ({:.0}%)",
                    100.0 * saving / base_ms
                ),
                suggestion: "restructure shared-memory layout (pad arrays, de-interleave \
                             even/odd equations) or switch algorithms before the access \
                             stride reaches the bank count (hybrid CR+PCR/CR+RD)"
                    .into(),
            });
        }
    }

    // --- Step overhead: re-price with zero per-step overhead.
    {
        let hypothetical =
            CostModel { step_overhead_cycles: 0.0, sync_only_cycles: 0.0, ..cost.clone() };
        let t = time_launch_with_efficiency(device, &hypothetical, stats, blocks, 1.0)?;
        let saving = base_ms - t.kernel_ms;
        if saving / base_ms > SIGNIFICANCE {
            findings.push(Finding {
                category: Category::StepOverhead,
                estimated_saving_ms: saving,
                saving_fraction: saving / base_ms,
                message: format!(
                    "{} barrier-separated steps spend {saving:.3} ms ({:.0}%) in \
                     synchronization and loop control",
                    stats.num_steps(),
                    100.0 * saving / base_ms
                ),
                suggestion: "prefer step-efficient algorithms (PCR/RD over CR) or switch \
                             solvers mid-algorithm to cut the number of steps (the paper's \
                             hybrid approach)"
                    .into(),
            });
        }
    }

    // --- Warp underutilization: time spent in steps with < warp_size lanes.
    {
        let narrow_ms: f64 = timing
            .per_step
            .iter()
            .filter(|s| s.active_threads < device.warp_size)
            .map(|s| s.ms)
            .sum();
        // An idealized machine would overlap these with other work; treat
        // everything beyond one step's overhead as recoverable.
        if narrow_ms / base_ms > SIGNIFICANCE {
            findings.push(Finding {
                category: Category::WarpUnderutilization,
                estimated_saving_ms: narrow_ms,
                saving_fraction: narrow_ms / base_ms,
                message: format!(
                    "steps with fewer active threads than a warp ({}) account for \
                     {narrow_ms:.3} ms ({:.0}%) — idle lanes still occupy issue slots",
                    device.warp_size,
                    100.0 * narrow_ms / base_ms
                ),
                suggestion: "a warp is the smallest unit of work: switch to an algorithm \
                             with more parallelism once the active set shrinks below \
                             warp width (the paper switches at far larger sizes because \
                             of bank conflicts)"
                    .into(),
            });
        }
    }

    // --- Low occupancy: only actionable when *shared memory* is the
    // limiter (footprint can be reduced; the thread/slot caps cannot).
    // Residency buys latency hiding, not extra throughput: the what-if is
    // the fully-hidden overhead of an infinitely-resident SM.
    {
        let k = timing.occupancy.blocks_per_sm;
        let cap = device.max_blocks_per_sm.min(device.max_threads_per_sm / stats.block_dim.max(1));
        if timing.occupancy.limiter == crate::occupancy::Limiter::SharedMemory && k < cap {
            let current_scale = (1.0 - cost.hideable_fraction) + cost.hideable_fraction / k as f64;
            let ideal_scale = (1.0 - cost.hideable_fraction) + cost.hideable_fraction / cap as f64;
            let saving = timing.overhead_ms * (1.0 - ideal_scale / current_scale);
            if saving / base_ms > SIGNIFICANCE {
                findings.push(Finding {
                    category: Category::LowOccupancy,
                    estimated_saving_ms: saving,
                    saving_fraction: saving / base_ms,
                    message: format!(
                        "only {k} block(s) resident per SM (shared-memory limited); \
                         block switching at full residency would hide about \
                         {saving:.3} ms ({:.0}%) of sync/control stalls",
                        100.0 * saving / base_ms
                    ),
                    suggestion: "reduce the per-block shared-memory footprint (smaller \
                                 systems per block, reuse dead arrays) so the GPU can \
                                 switch between blocks and hide latency"
                        .into(),
                });
            }
        }
    }

    // --- Division-heavy arithmetic: re-price divisions at mul/add cost.
    {
        let hypothetical = CostModel { div_extra_cycles_per_warp: 0.0, ..cost.clone() };
        let t = time_launch_with_efficiency(device, &hypothetical, stats, blocks, 1.0)?;
        let saving = base_ms - t.kernel_ms;
        if saving / base_ms > SIGNIFICANCE {
            findings.push(Finding {
                category: Category::DivisionHeavy,
                estimated_saving_ms: saving,
                saving_fraction: saving / base_ms,
                message: format!(
                    "{} divisions per system cost an extra {saving:.3} ms ({:.0}%)",
                    stats.total_divs(),
                    100.0 * saving / base_ms
                ),
                suggestion: "precompute reciprocals where a denominator is reused, or \
                             pick the division-free formulation (RD's scan has none)"
                    .into(),
            });
        }
    }

    // --- Global-memory bound.
    if timing.global_ms / base_ms > 0.4 {
        findings.push(Finding {
            category: Category::GlobalTrafficBound,
            estimated_saving_ms: timing.global_ms,
            saving_fraction: timing.global_ms / base_ms,
            message: format!(
                "global memory traffic takes {:.3} ms ({:.0}%) of the kernel",
                timing.global_ms,
                100.0 * timing.global_ms / base_ms
            ),
            suggestion: "stage data in shared memory (the paper's kernels touch global \
                         memory only at the start and end) and keep accesses coalesced"
                .into(),
        });
    }

    // --- Transfer bound (end-to-end view).
    if timing.transfer_ms > base_ms {
        findings.push(Finding {
            category: Category::TransferBound,
            estimated_saving_ms: timing.transfer_ms,
            saving_fraction: timing.transfer_ms / (base_ms + timing.transfer_ms),
            message: format!(
                "the PCIe transfer ({:.3} ms) exceeds the kernel itself ({base_ms:.3} ms)",
                timing.transfer_ms
            ),
            suggestion: "use the solver as a component of a larger GPU computation so \
                         the transfer is amortized (the paper's recommendation)"
                .into(),
        });
    }

    // Rank kernel-level factors by saving; the transfer finding is a
    // deployment concern (amortize, don't optimize the kernel) and goes
    // last regardless of magnitude.
    findings.sort_by(|a, b| {
        let rank = |f: &Finding| f.category == Category::TransferBound;
        rank(a)
            .cmp(&rank(b))
            .then(b.estimated_saving_ms.partial_cmp(&a.estimated_saving_ms).unwrap())
    });
    Ok(Advice { findings, kernel_ms: base_ms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{Phase, StepRecord};

    fn step(
        phase: Phase,
        threads: usize,
        instr: u64,
        serialized: u64,
        ops: u64,
        divs: u64,
    ) -> StepRecord {
        StepRecord {
            phase,
            active_threads: threads,
            warps: threads.div_ceil(32),
            half_warps: threads.div_ceil(16),
            shared_loads: instr * 16,
            shared_stores: 0,
            shared_instructions: instr,
            serialized_shared_instructions: serialized,
            max_conflict_degree: if serialized > instr { 8 } else { 1 },
            ops: ops * threads as u64,
            divs: divs * threads as u64,
            warp_op_instructions: ops * threads.div_ceil(32) as u64,
            warp_div_instructions: divs * threads.div_ceil(32) as u64,
            global_loads: 0,
            global_stores: 0,
            max_dependent_chain: 0,
        }
    }

    fn stats(steps: Vec<StepRecord>) -> KernelStats {
        KernelStats {
            steps,
            shared_words: 2560,
            element_bytes: 4,
            block_dim: 256,
            global_bytes_read: 8192,
            global_bytes_written: 2048,
            global_accesses: 2560,
        }
    }

    fn advise(stats: &KernelStats, blocks: usize) -> Advice {
        let device = DeviceConfig::gtx280();
        let cost = CostModel::gtx280();
        let timing = crate::profile::time_launch(&device, &cost, stats, blocks).unwrap();
        analyze(&device, &cost, stats, &timing).unwrap()
    }

    #[test]
    fn conflict_heavy_kernel_flags_bank_conflicts_first() {
        let s = stats(vec![
            step(Phase::ForwardReduction, 256, 200, 1600, 10, 2),
            step(Phase::ForwardReduction, 128, 100, 800, 10, 2),
        ]);
        let advice = advise(&s, 512);
        let top = advice.top().expect("has findings");
        assert_eq!(top.category, Category::BankConflicts);
        assert!(top.estimated_saving_ms > 0.0);
        assert!(top.saving_fraction > 0.3);
    }

    #[test]
    fn conflict_free_kernel_does_not_flag_conflicts() {
        let s = stats(vec![step(Phase::PcrReduction, 256, 400, 400, 14, 2)]);
        let advice = advise(&s, 512);
        assert!(advice.finding(Category::BankConflicts).is_none());
    }

    #[test]
    fn many_tiny_steps_flag_step_overhead() {
        let steps: Vec<_> = (0..30).map(|_| step(Phase::ForwardReduction, 4, 2, 2, 4, 1)).collect();
        let advice = advise(&stats(steps), 512);
        assert!(advice.finding(Category::StepOverhead).is_some());
        assert!(advice.finding(Category::WarpUnderutilization).is_some());
    }

    #[test]
    fn findings_are_ranked_by_saving() {
        let s = stats(vec![
            step(Phase::ForwardReduction, 256, 200, 1600, 10, 6),
            step(Phase::ForwardReduction, 8, 10, 80, 10, 6),
        ]);
        let advice = advise(&s, 512);
        for pair in advice.findings.windows(2) {
            assert!(pair[0].estimated_saving_ms >= pair[1].estimated_saving_ms);
        }
    }

    #[test]
    fn category_labels_are_distinct() {
        let cats = [
            Category::BankConflicts,
            Category::LowOccupancy,
            Category::WarpUnderutilization,
            Category::StepOverhead,
            Category::DivisionHeavy,
            Category::TransferBound,
            Category::GlobalTrafficBound,
        ];
        let labels: std::collections::HashSet<_> = cats.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), cats.len());
    }
}
