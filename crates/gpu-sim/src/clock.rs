//! Virtual time: one clock abstraction for the whole serving stack.
//!
//! Everything above the kernels that *waits* — batcher linger deadlines,
//! retry backoff, breaker cool-downs, steal-queue backup detection — reads
//! time through a [`Clock`] instead of calling [`Instant::now`] directly.
//! Two implementations share the handle:
//!
//! * **Real** ([`Clock::real`]): wall time relative to the clock's
//!   creation; `sleep` parks the thread. Production behaviour, unchanged.
//! * **Simulated** ([`Clock::sim`]): a shared virtual-nanosecond counter.
//!   `sleep` *advances the counter* instead of parking, so a test (or the
//!   trace-lab replay harness) covers hours of linger/cool-down behaviour
//!   in microseconds of host time — and, driven from a single thread, the
//!   entire service becomes a deterministic function of its inputs.
//!
//! Time is a [`Tick`]: nanoseconds since the clock's epoch. Ticks are
//! plain `u64`s so they can ride in trace events and replay byte-for-byte
//! (an [`Instant`] is opaque and process-local; a tick is portable).
//!
//! ## Invariants (the virtual-clock contract)
//!
//! 1. `now()` is monotone non-decreasing on every handle.
//! 2. A simulated clock only moves when someone *asks* it to (`sleep`,
//!    `advance`, `advance_to`, `work`) — there is no background drift, so
//!    a single-threaded driver sees a fully deterministic timeline.
//! 3. `work(d)` charges the duration of *computed* work: a no-op on the
//!    real clock (wall time already elapsed while computing) and an
//!    `advance(d)` on the simulated one. Dispatch uses it to convert
//!    simulated device-milliseconds into simulated latency.
//! 4. Cloned handles share the same timeline (real handles share an
//!    epoch; simulated handles share the counter).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point in time: nanoseconds since the owning clock's epoch.
pub type Tick = u64;

/// Converts a tick difference into a [`Duration`] (saturating at zero).
pub fn tick_duration(from: Tick, to: Tick) -> Duration {
    Duration::from_nanos(to.saturating_sub(from))
}

#[derive(Debug, Clone)]
enum Inner {
    Real { epoch: Instant },
    Sim { nanos: Arc<AtomicU64> },
}

/// A cloneable clock handle: real wall time or shared simulated time.
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Inner,
}

impl Default for Clock {
    fn default() -> Self {
        Self::real()
    }
}

impl Clock {
    /// A real clock: ticks are nanoseconds since this call; `sleep` parks.
    pub fn real() -> Self {
        Self { inner: Inner::Real { epoch: Instant::now() } }
    }

    /// A simulated clock starting at tick 0; `sleep` advances it.
    pub fn sim() -> Self {
        Self { inner: Inner::Sim { nanos: Arc::new(AtomicU64::new(0)) } }
    }

    /// `true` for simulated clocks.
    pub fn is_sim(&self) -> bool {
        matches!(self.inner, Inner::Sim { .. })
    }

    /// Current tick.
    pub fn now(&self) -> Tick {
        match &self.inner {
            Inner::Real { epoch } => epoch.elapsed().as_nanos() as u64,
            Inner::Sim { nanos } => nanos.load(Ordering::SeqCst),
        }
    }

    /// The tick `d` from now.
    pub fn tick_after(&self, d: Duration) -> Tick {
        self.now().saturating_add(d.as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Sleeps for `d`: parks the thread (real) or advances time (sim).
    pub fn sleep(&self, d: Duration) {
        match &self.inner {
            Inner::Real { .. } => std::thread::sleep(d),
            Inner::Sim { .. } => self.advance(d),
        }
    }

    /// Advances a simulated clock by `d`. No-op on a real clock (wall time
    /// cannot be pushed; callers use this only for sim-specific pacing).
    pub fn advance(&self, d: Duration) {
        if let Inner::Sim { nanos } = &self.inner {
            nanos.fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
        }
    }

    /// Advances a simulated clock *to* `t` (never backwards — invariant 1).
    /// No-op on a real clock.
    pub fn advance_to(&self, t: Tick) {
        if let Inner::Sim { nanos } = &self.inner {
            nanos.fetch_max(t, Ordering::SeqCst);
        }
    }

    /// Charges the duration of computed work: `advance(d)` on a simulated
    /// clock, no-op on a real one (the wall already paid it).
    pub fn work(&self, d: Duration) {
        if self.is_sim() {
            self.advance(d);
        }
    }

    /// How long a waiter should actually park for a virtual `deadline`:
    /// `Some(remaining)` on a real clock, or the polling quantum on a
    /// simulated clock (a blocked thread cannot observe another thread's
    /// `advance` through a foreign condvar, so it re-checks periodically —
    /// single-threaded sim drivers never block at all). `None` means the
    /// deadline has already passed.
    pub fn park_budget(&self, deadline: Tick) -> Option<Duration> {
        let now = self.now();
        if now >= deadline {
            return None;
        }
        match &self.inner {
            Inner::Real { .. } => Some(Duration::from_nanos(deadline - now)),
            Inner::Sim { .. } => Some(SIM_POLL_QUANTUM),
        }
    }
}

/// How long threaded waiters park between simulated-time re-checks. Only
/// multi-threaded tests under a sim clock ever pay this; the deterministic
/// replay harness is single-threaded and never parks.
pub const SIM_POLL_QUANTUM: Duration = Duration::from_micros(500);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_starts_at_zero_and_only_moves_on_request() {
        let c = Clock::sim();
        assert!(c.is_sim());
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 0, "no background drift");
        c.advance(Duration::from_micros(3));
        assert_eq!(c.now(), 3_000);
    }

    #[test]
    fn sim_sleep_advances_instead_of_parking() {
        let c = Clock::sim();
        let wall = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert_eq!(c.now(), 3_600_000_000_000);
        assert!(wall.elapsed() < Duration::from_millis(100), "sim sleep must not park");
    }

    #[test]
    fn cloned_sim_handles_share_the_timeline() {
        let a = Clock::sim();
        let b = a.clone();
        a.advance(Duration::from_nanos(7));
        assert_eq!(b.now(), 7);
        b.advance_to(100);
        assert_eq!(a.now(), 100);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let c = Clock::sim();
        c.advance_to(50);
        c.advance_to(10);
        assert_eq!(c.now(), 50);
    }

    #[test]
    fn real_clock_is_monotone_and_work_is_free() {
        let c = Clock::real();
        let t0 = c.now();
        c.work(Duration::from_secs(3600)); // no-op on real clocks
        let t1 = c.now();
        assert!(t1 >= t0);
        assert!(t1 - t0 < 1_000_000_000, "work() must not advance a real clock");
    }

    #[test]
    fn sim_work_charges_the_duration() {
        let c = Clock::sim();
        c.work(Duration::from_micros(42));
        assert_eq!(c.now(), 42_000);
    }

    #[test]
    fn park_budget_reports_remaining_or_elapsed() {
        let c = Clock::sim();
        assert_eq!(c.park_budget(0), None, "deadline at now has passed");
        assert_eq!(c.park_budget(1_000), Some(SIM_POLL_QUANTUM));
        let r = Clock::real();
        let d = r.tick_after(Duration::from_secs(10));
        let budget = r.park_budget(d).expect("future deadline");
        assert!(budget <= Duration::from_secs(10));
        assert!(budget > Duration::from_secs(9));
    }

    #[test]
    fn tick_duration_saturates() {
        assert_eq!(tick_duration(5, 9), Duration::from_nanos(4));
        assert_eq!(tick_duration(9, 5), Duration::ZERO);
    }
}
