//! The analytic cost model that converts counted work into simulated time.
//!
//! The paper decomposes kernel time into global memory access, shared memory
//! access (dominated by bank conflicts for CR), computation, and per-step
//! synchronization/control overhead. The model below mirrors that
//! decomposition with one constant per mechanism. Defaults are calibrated so
//! the GTX 280 measurements of §5.3 are reproduced in *shape* (orderings,
//! ratios, breakdown percentages); see EXPERIMENTS.md for the calibration
//! table.

use serde::Serialize;

/// Cycle/bandwidth constants of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CostModel {
    /// Throughput floor: cycles per conflict-free half-warp shared-memory
    /// instruction when enough warps are in flight to hide its latency.
    pub smem_base_cycles: f64,
    /// Raw latency of a shared-memory instruction; with `w` active warps
    /// the exposed cost is `max(base, latency / w)` — one warp exposes the
    /// full latency, many warps pipeline down to the throughput floor.
    pub smem_latency_cycles: f64,
    /// Fixed cost of each additional serialized (bank-conflicted) access.
    pub smem_replay_base_cycles: f64,
    /// Latency component of a replay, hidden by warp parallelism like the
    /// base latency: per-replay cost = `replay_base + replay_latency / w`.
    pub smem_replay_latency_cycles: f64,
    /// Cycles per warp arithmetic instruction (32 lanes over 8 SPs = 4).
    pub op_cycles_per_warp: f64,
    /// Extra cycles per warp division instruction (SFU-serviced on GT200).
    pub div_extra_cycles_per_warp: f64,
    /// Fixed cycles per superstep: `__syncthreads()` plus loop control.
    pub step_overhead_cycles: f64,
    /// Fixed cycles for a straight-line (non-loop) superstep such as the
    /// initial global load: barrier only, no loop control.
    pub sync_only_cycles: f64,
    /// Fixed cycles per block: prologue/epilogue (index math, bounds).
    pub block_overhead_cycles: f64,
    /// Kernel launch latency in microseconds (driver + front-end).
    pub kernel_launch_us: f64,
    /// Fraction of the per-step overhead that can be hidden when more than
    /// one block is resident on an SM (the paper's observation that
    /// "running multiple blocks simultaneously enables the GPU to switch
    /// between blocks ... and thus improve the hardware utilization").
    pub hideable_fraction: f64,
    /// Achieved global-to-shared memory bandwidth, GB/s (paper measures
    /// 45.9–48.5 GB/s for the coalesced 5-array traffic).
    pub global_bw_gbps: f64,
    /// Latency of a dependent global-memory load, cycles (GT200: ~400-600).
    /// Charged per link of a serial load chain (see
    /// `ThreadCtx::load_global_dependent`); chains cannot be hidden by
    /// parallelism — they bound the wall time of latency-bound kernels.
    pub global_latency_cycles: f64,
    /// Effective host-device PCIe bandwidth, GB/s (paper's transfers imply
    /// ~1.1 GB/s effective for pageable memory on their system).
    pub pcie_bw_gbps: f64,
    /// One-way PCIe/driver latency per transfer batch, microseconds.
    pub pcie_latency_us: f64,
}

impl CostModel {
    /// Constants calibrated against the paper's GTX 280 measurements.
    pub fn gtx280() -> Self {
        Self {
            smem_base_cycles: 2.7,
            smem_latency_cycles: 30.0,
            smem_replay_base_cycles: 4.0,
            smem_replay_latency_cycles: 14.0,
            op_cycles_per_warp: 4.0,
            div_extra_cycles_per_warp: 22.0,
            step_overhead_cycles: 700.0,
            sync_only_cycles: 200.0,
            block_overhead_cycles: 400.0,
            kernel_launch_us: 3.5,
            hideable_fraction: 0.35,
            global_bw_gbps: 48.5,
            global_latency_cycles: 450.0,
            pcie_bw_gbps: 1.1,
            pcie_latency_us: 15.0,
        }
    }

    /// Seconds to move `bytes` over PCIe (one combined host<->device batch,
    /// as the paper's "data transfer" bar).
    pub fn pcie_seconds(&self, bytes: u64) -> f64 {
        self.pcie_latency_us * 1e-6 + bytes as f64 / (self.pcie_bw_gbps * 1e9)
    }

    /// Seconds to move `bytes` between global memory and the SMs.
    pub fn global_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.global_bw_gbps * 1e9)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::gtx280()
    }
}

/// Per-superstep cycle cost, split by mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct StepCost {
    /// Shared-memory access cycles (bank-conflict serialization included).
    pub shared_cycles: f64,
    /// Arithmetic cycles at warp granularity.
    pub compute_cycles: f64,
    /// Synchronization + control cycles (before occupancy hiding).
    pub overhead_cycles: f64,
    /// Exposed serial dependent-load latency (longest chain x latency) —
    /// unhideable by warp or block parallelism.
    pub latency_cycles: f64,
}

impl StepCost {
    /// Total cycles of the step before occupancy-based hiding.
    pub fn total(&self) -> f64 {
        self.shared_cycles + self.compute_cycles + self.overhead_cycles + self.latency_cycles
    }
}

impl CostModel {
    /// Costs one superstep from its counters.
    pub fn step_cost(&self, step: &crate::counters::StepRecord) -> StepCost {
        let w = step.warps.max(1) as f64;
        let lambda = (self.smem_latency_cycles / w).max(self.smem_base_cycles);
        let replay = self.smem_replay_base_cycles + self.smem_replay_latency_cycles / w;
        let conflict_extra =
            step.serialized_shared_instructions.saturating_sub(step.shared_instructions);
        StepCost {
            shared_cycles: step.shared_instructions as f64 * lambda
                + conflict_extra as f64 * replay,
            compute_cycles: step.warp_op_instructions as f64 * self.op_cycles_per_warp
                + step.warp_div_instructions as f64 * self.div_extra_cycles_per_warp,
            latency_cycles: step.max_dependent_chain as f64 * self.global_latency_cycles,
            overhead_cycles: if step.active_threads == 0 {
                0.0
            } else if step.phase.is_straight_line() {
                self.sync_only_cycles
            } else {
                self.step_overhead_cycles
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{Phase, StepRecord};

    fn step(instr: u64, serialized: u64, ops: u64, divs: u64) -> StepRecord {
        StepRecord {
            phase: Phase::ForwardReduction,
            active_threads: 32,
            warps: 1,
            half_warps: 2,
            shared_loads: 0,
            shared_stores: 0,
            shared_instructions: instr,
            serialized_shared_instructions: serialized,
            max_conflict_degree: if serialized > instr { 2 } else { 1 },
            ops: 0,
            divs: 0,
            warp_op_instructions: ops,
            warp_div_instructions: divs,
            global_loads: 0,
            global_stores: 0,
            max_dependent_chain: 0,
        }
    }

    #[test]
    fn conflict_free_step_pays_exposed_latency() {
        let m = CostModel::gtx280();
        // One warp exposes the full shared latency per instruction.
        let c = m.step_cost(&step(10, 10, 0, 0));
        assert!((c.shared_cycles - 10.0 * m.smem_latency_cycles).abs() < 1e-9);
        assert_eq!(c.compute_cycles, 0.0);
        assert_eq!(c.overhead_cycles, m.step_overhead_cycles);
    }

    #[test]
    fn many_warps_hit_the_throughput_floor() {
        let m = CostModel::gtx280();
        let mut s = step(10, 10, 0, 0);
        s.warps = 16;
        s.active_threads = 512;
        let c = m.step_cost(&s);
        assert!((c.shared_cycles - 10.0 * m.smem_base_cycles).abs() < 1e-9);
    }

    #[test]
    fn conflicts_add_serialization_cost() {
        let m = CostModel::gtx280();
        let free = m.step_cost(&step(10, 10, 0, 0));
        let conflicted = m.step_cost(&step(10, 40, 0, 0));
        assert!(conflicted.shared_cycles > free.shared_cycles);
        let replay = m.smem_replay_base_cycles + m.smem_replay_latency_cycles; // 1 warp
        let expected = 10.0 * m.smem_latency_cycles + 30.0 * replay;
        assert!((conflicted.shared_cycles - expected).abs() < 1e-9);
    }

    #[test]
    fn replays_get_cheaper_with_more_warps() {
        let m = CostModel::gtx280();
        let one_warp = m.step_cost(&step(10, 40, 0, 0));
        let mut s = step(10, 40, 0, 0);
        s.warps = 8;
        s.active_threads = 256;
        let eight_warps = m.step_cost(&s);
        assert!(eight_warps.shared_cycles < one_warp.shared_cycles);
    }

    #[test]
    fn divisions_cost_extra() {
        let m = CostModel::gtx280();
        let plain = m.step_cost(&step(0, 0, 12, 0));
        let divs = m.step_cost(&step(0, 0, 12, 2));
        assert!(divs.compute_cycles > plain.compute_cycles);
        assert!(
            (divs.compute_cycles - plain.compute_cycles - 2.0 * m.div_extra_cycles_per_warp).abs()
                < 1e-9
        );
    }

    #[test]
    fn pcie_includes_latency() {
        let m = CostModel::gtx280();
        let t0 = m.pcie_seconds(0);
        assert!((t0 - 15e-6).abs() < 1e-12);
        let t = m.pcie_seconds(1_100_000_000);
        assert!((t - (15e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn step_cost_total_sums_components() {
        let m = CostModel::gtx280();
        let c = m.step_cost(&step(10, 20, 5, 1));
        assert!(
            (c.total() - (c.shared_cycles + c.compute_cycles + c.overhead_cycles)).abs() < 1e-12
        );
    }
}
