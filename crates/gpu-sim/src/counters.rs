//! Instrumentation records produced by a kernel run.
//!
//! Everything the paper's "differential method" measures on hardware, the
//! simulator simply counts: per-superstep shared-memory accesses (before and
//! after bank-conflict serialization), arithmetic operations (with divisions
//! separated), warp-granular instruction counts, and global memory traffic.

use serde::Serialize;

/// Label for an algorithmic phase, used to aggregate the paper's
/// time-breakdown pies (Figures 8, 11, 13, 15, 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Phase {
    /// Reading inputs from global memory (and, for RD, matrix setup).
    GlobalLoad,
    /// CR forward reduction steps.
    ForwardReduction,
    /// Solving the final 2-unknown system (CR).
    SolveTwoUnknown,
    /// CR backward substitution steps.
    BackwardSubstitution,
    /// PCR reduction steps.
    PcrReduction,
    /// PCR final step: solve all 2-unknown systems.
    PcrSolveTwoUnknown,
    /// Copying the intermediate system into fresh arrays (hybrids).
    CopyIntermediate,
    /// RD matrix setup.
    MatrixSetup,
    /// RD scan steps.
    Scan,
    /// RD solution evaluation.
    SolutionEvaluation,
    /// Writing results back to global memory.
    GlobalStore,
    /// Anything else (used by tests and auxiliary kernels).
    Other(&'static str),
}

impl Phase {
    /// `true` for prologue/epilogue copies executed as straight-line code
    /// (one barrier, no per-step loop control) — they pay only the barrier
    /// cost, not the full algorithmic-step overhead.
    pub fn is_straight_line(self) -> bool {
        matches!(self, Phase::GlobalLoad | Phase::GlobalStore | Phase::CopyIntermediate)
    }

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Phase::GlobalLoad => "global load",
            Phase::ForwardReduction => "CR: forward reduction",
            Phase::SolveTwoUnknown => "CR: solve 2-unknown system",
            Phase::BackwardSubstitution => "CR: backward substitution",
            Phase::PcrReduction => "PCR: forward reduction",
            Phase::PcrSolveTwoUnknown => "PCR: solve all 2-unknown systems",
            Phase::CopyIntermediate => "copy intermediate system",
            Phase::MatrixSetup => "RD: matrix setup",
            Phase::Scan => "RD: scan",
            Phase::SolutionEvaluation => "RD: solution evaluation",
            Phase::GlobalStore => "global store",
            Phase::Other(s) => s,
        }
    }
}

/// Counters for one barrier-separated superstep of one block.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepRecord {
    /// Phase this step belongs to.
    pub phase: Phase,
    /// Number of active threads (always a contiguous prefix-aligned range,
    /// as in the paper's kernels).
    pub active_threads: usize,
    /// Warps spanned by the active threads.
    pub warps: usize,
    /// Half-warps spanned by the active threads.
    pub half_warps: usize,
    /// Thread-level shared-memory loads.
    pub shared_loads: u64,
    /// Thread-level shared-memory stores.
    pub shared_stores: u64,
    /// Shared-memory instructions at half-warp granularity, before
    /// serialization (distinct access slots x half-warps that issued them).
    pub shared_instructions: u64,
    /// Shared-memory instructions after bank-conflict serialization
    /// (each slot costs its conflict degree).
    pub serialized_shared_instructions: u64,
    /// Worst conflict degree observed in this step (1 = conflict-free).
    pub max_conflict_degree: u32,
    /// Thread-level arithmetic operations (divisions included).
    pub ops: u64,
    /// Thread-level divisions (subset of `ops`).
    pub divs: u64,
    /// Warp-granular arithmetic instruction count: sum over warps of the
    /// per-lane maximum (an idle lane still occupies its warp's issue slot).
    pub warp_op_instructions: u64,
    /// Warp-granular division instruction count.
    pub warp_div_instructions: u64,
    /// Thread-level global-memory element loads performed inside this step.
    pub global_loads: u64,
    /// Thread-level global-memory element stores performed inside this step.
    pub global_stores: u64,
    /// Longest per-thread chain of *dependent* global loads in the step
    /// (each link pays the full memory latency; see the coarse-grained
    /// kernels). 0 for the bulk-synchronous solvers.
    pub max_dependent_chain: u64,
}

impl StepRecord {
    /// Total thread-level shared accesses (loads + stores).
    pub fn shared_accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores
    }

    /// `true` if any access slot in this step had a bank conflict.
    pub fn has_conflicts(&self) -> bool {
        self.max_conflict_degree > 1
    }
}

/// Per-block counters for a full kernel run. All figures are *per block*;
/// grid-level totals are obtained by scaling with the grid dimension
/// (every block executes identical control flow in these solvers).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct KernelStats {
    /// One record per superstep, in execution order.
    pub steps: Vec<StepRecord>,
    /// Shared-memory footprint of the block, in 32-bit words.
    pub shared_words: usize,
    /// Size in bytes of one element (4 for f32, 8 for f64); used to convert
    /// access counts into bandwidth figures.
    pub element_bytes: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Bytes read from global memory by the block.
    pub global_bytes_read: u64,
    /// Bytes written to global memory by the block.
    pub global_bytes_written: u64,
    /// Global memory element accesses (reads + writes) by the block.
    pub global_accesses: u64,
}

impl KernelStats {
    /// Number of supersteps executed.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total thread-level shared accesses across the kernel.
    pub fn total_shared_accesses(&self) -> u64 {
        self.steps.iter().map(StepRecord::shared_accesses).sum()
    }

    /// Total thread-level arithmetic operations.
    pub fn total_ops(&self) -> u64 {
        self.steps.iter().map(|s| s.ops).sum()
    }

    /// Total thread-level divisions.
    pub fn total_divs(&self) -> u64 {
        self.steps.iter().map(|s| s.divs).sum()
    }

    /// Worst bank-conflict degree across the kernel.
    pub fn max_conflict_degree(&self) -> u32 {
        self.steps.iter().map(|s| s.max_conflict_degree).max().unwrap_or(1)
    }

    /// Steps belonging to `phase`, in order.
    pub fn steps_in_phase(&self, phase: Phase) -> impl Iterator<Item = &StepRecord> {
        self.steps.iter().filter(move |s| s.phase == phase)
    }

    /// Total global bytes moved (read + written).
    pub fn global_bytes(&self) -> u64 {
        self.global_bytes_read + self.global_bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(phase: Phase, conflicts: u32) -> StepRecord {
        StepRecord {
            phase,
            active_threads: 32,
            warps: 1,
            half_warps: 2,
            shared_loads: 10,
            shared_stores: 4,
            shared_instructions: 28,
            serialized_shared_instructions: 28 * conflicts as u64,
            max_conflict_degree: conflicts,
            ops: 17,
            divs: 2,
            warp_op_instructions: 17,
            warp_div_instructions: 2,
            global_loads: 0,
            global_stores: 0,
            max_dependent_chain: 0,
        }
    }

    #[test]
    fn step_totals() {
        let s = record(Phase::ForwardReduction, 4);
        assert_eq!(s.shared_accesses(), 14);
        assert!(s.has_conflicts());
        assert!(!record(Phase::PcrReduction, 1).has_conflicts());
    }

    #[test]
    fn kernel_aggregation() {
        let stats = KernelStats {
            steps: vec![
                record(Phase::ForwardReduction, 2),
                record(Phase::ForwardReduction, 16),
                record(Phase::BackwardSubstitution, 1),
            ],
            shared_words: 2560,
            element_bytes: 4,
            block_dim: 256,
            global_bytes_read: 4096,
            global_bytes_written: 1024,
            global_accesses: 1280,
        };
        assert_eq!(stats.num_steps(), 3);
        assert_eq!(stats.total_shared_accesses(), 42);
        assert_eq!(stats.total_ops(), 51);
        assert_eq!(stats.total_divs(), 6);
        assert_eq!(stats.max_conflict_degree(), 16);
        assert_eq!(stats.steps_in_phase(Phase::ForwardReduction).count(), 2);
        assert_eq!(stats.global_bytes(), 5120);
    }

    #[test]
    fn phase_labels() {
        assert_eq!(Phase::ForwardReduction.label(), "CR: forward reduction");
        assert_eq!(Phase::Other("x").label(), "x");
    }
}
