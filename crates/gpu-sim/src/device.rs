//! Device model: the architectural parameters of the simulated GPU.
//!
//! Defaults describe the NVIDIA GTX 280 (GT200) used in the paper:
//! 30 multiprocessors, 8 thread processors each, 16 KB shared memory per SM
//! organised in 16 banks of 32-bit words, warps of 32 threads with shared
//! memory serviced per *half-warp* of 16 threads.

use serde::Serialize;

/// Architectural parameters of the simulated device.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors (GTX 280: 30).
    pub num_sms: usize,
    /// Threads per warp (32) — the smallest unit of issued work.
    pub warp_size: usize,
    /// Threads per shared-memory service group (GT200: 16, a half-warp).
    pub half_warp: usize,
    /// Number of 32-bit shared memory banks (16).
    pub banks: usize,
    /// Shared memory per SM in bytes (16 KB).
    pub shared_mem_per_sm: usize,
    /// Shared memory consumed per block by kernel parameters and static
    /// allocations (GT200 passes kernel arguments via shared memory).
    pub shared_mem_reserved_per_block: usize,
    /// Hardware cap on resident blocks per SM (8 on GT200).
    pub max_blocks_per_sm: usize,
    /// Hardware cap on resident threads per SM (1024 on GT200).
    pub max_threads_per_sm: usize,
    /// Maximum threads per block (512 on GT200).
    pub max_threads_per_block: usize,
    /// Shader (SP) clock in GHz (GTX 280: 1.296).
    pub clock_ghz: f64,
}

impl DeviceConfig {
    /// The paper's test device.
    pub fn gtx280() -> Self {
        Self {
            name: "GeForce GTX 280 (simulated)",
            num_sms: 30,
            warp_size: 32,
            half_warp: 16,
            banks: 16,
            shared_mem_per_sm: 16 * 1024,
            shared_mem_reserved_per_block: 256,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1024,
            max_threads_per_block: 512,
            clock_ghz: 1.296,
        }
    }

    /// A Fermi-generation-like device (GF100 class): twice the banks,
    /// full-warp shared-memory service, triple the shared memory, fewer but
    /// wider SMs. Used by the device-sensitivity ablation to test the
    /// paper's claim that the work-efficiency / step-efficiency tradeoff
    /// "will be an issue on any vector architecture".
    pub fn fermi_like() -> Self {
        Self {
            name: "Fermi-class (simulated)",
            num_sms: 16,
            warp_size: 32,
            half_warp: 32, // Fermi services a full warp per shared access
            banks: 32,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_reserved_per_block: 256,
            max_blocks_per_sm: 8,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            clock_ghz: 1.15,
        }
    }

    /// Warps needed to cover `threads` threads.
    #[inline]
    pub fn warps_for(&self, threads: usize) -> usize {
        threads.div_ceil(self.warp_size)
    }

    /// Half-warps needed to cover `threads` threads.
    #[inline]
    pub fn half_warps_for(&self, threads: usize) -> usize {
        threads.div_ceil(self.half_warp)
    }

    /// Cycles, at the device clock, corresponding to `us` microseconds.
    #[inline]
    pub fn cycles_from_us(&self, us: f64) -> f64 {
        us * 1e3 * self.clock_ghz
    }

    /// Milliseconds corresponding to `cycles` at the device clock.
    #[inline]
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9) * 1e3
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::gtx280()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx280_parameters() {
        let d = DeviceConfig::gtx280();
        assert_eq!(d.num_sms, 30);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.half_warp, 16);
        assert_eq!(d.banks, 16);
        assert_eq!(d.shared_mem_per_sm, 16384);
        assert_eq!(d.max_threads_per_block, 512);
    }

    #[test]
    fn warp_rounding() {
        let d = DeviceConfig::gtx280();
        assert_eq!(d.warps_for(1), 1);
        assert_eq!(d.warps_for(32), 1);
        assert_eq!(d.warps_for(33), 2);
        assert_eq!(d.warps_for(256), 8);
        assert_eq!(d.half_warps_for(16), 1);
        assert_eq!(d.half_warps_for(17), 2);
        assert_eq!(d.warps_for(0), 0);
    }

    #[test]
    fn time_conversions_invert() {
        let d = DeviceConfig::gtx280();
        let cycles = d.cycles_from_us(1.0);
        assert!((d.cycles_to_ms(cycles) - 1e-3).abs() < 1e-12);
    }
}
