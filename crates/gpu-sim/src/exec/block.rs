//! Block-level execution: bulk-synchronous supersteps with buffered stores.
//!
//! A kernel is a sequence of [`BlockCtx::step`] calls. Within a step every
//! active thread runs the same closure; shared-memory **loads observe the
//! pre-step state** and **stores are buffered** until the step's closing
//! barrier. This models the `read / __syncthreads() / write /
//! __syncthreads()` discipline of the paper's CUDA kernels and makes the
//! in-place CR/PCR/RD updates deterministic regardless of thread order.
//!
//! When recording is enabled (the representative block of a launch), every
//! shared access is logged with its word address and instruction slot so
//! bank conflicts can be counted exactly, and every arithmetic helper call
//! increments FLOP/division counters at warp granularity.

use crate::counters::{KernelStats, Phase, StepRecord};
use crate::device::DeviceConfig;
use crate::exec::shadow::{ShadowLog, ShadowOp, ShadowSpace, ShadowState};
use crate::memory::banks::conflict_degree;
use crate::memory::global::{GlobalArray, GlobalMem};
use crate::memory::shared::{PendingStore, Shared, SharedMem};
use crate::sanitize::{Diagnostic, SanitizeOptions, Sanitizer};
use core::ops::Range;
use core::panic::Location;
use tridiag_core::Real;

/// One recorded shared-memory access (representative block only).
#[derive(Debug, Clone, Copy)]
struct AccessRec {
    tid: u32,
    slot: u16,
    word: u32,
    /// Source location of the access (for the bank-conflict lint).
    loc: &'static Location<'static>,
}

/// Per-thread arithmetic counters for the current step.
#[derive(Debug, Clone, Copy, Default)]
struct OpCounts {
    ops: u32,
    divs: u32,
    dependent_loads: u32,
}

/// Execution context of one block.
pub struct BlockCtx<'g, T: Real> {
    device: DeviceConfig,
    global: &'g mut GlobalMem<T>,
    shared: SharedMem<T>,
    pending: Vec<PendingStore<T>>,
    block_dim: usize,
    recording: bool,
    /// Hazard/race/overflow checker (all blocks when sanitizing is on).
    sanitizer: Option<Box<Sanitizer>>,
    /// Access capture for the symbolic verifier (shadowed contexts only).
    shadow: Option<Box<ShadowState>>,
    // Per-step scratch (recording only).
    accesses: Vec<AccessRec>,
    ops: Vec<OpCounts>,
    step_shared_loads: u64,
    step_shared_stores: u64,
    step_global_loads: u64,
    step_global_stores: u64,
    stats: KernelStats,
}

impl<'g, T: Real> BlockCtx<'g, T> {
    /// Creates a context. `recording` enables full instrumentation and
    /// intra-step write-race detection.
    pub fn new(
        device: &DeviceConfig,
        global: &'g mut GlobalMem<T>,
        block_dim: usize,
        recording: bool,
    ) -> Self {
        assert!(
            block_dim >= 1 && block_dim <= device.max_threads_per_block,
            "block dim {block_dim} out of range"
        );
        Self {
            device: device.clone(),
            global,
            shared: SharedMem::new(),
            pending: Vec::new(),
            block_dim,
            recording,
            sanitizer: None,
            shadow: None,
            accesses: Vec::new(),
            ops: vec![OpCounts::default(); block_dim],
            step_shared_loads: 0,
            step_shared_stores: 0,
            step_global_loads: 0,
            step_global_stores: 0,
            stats: KernelStats { element_bytes: T::BYTES, block_dim, ..KernelStats::default() },
        }
    }

    /// Creates a context carrying a [`Sanitizer`] when `opts.mode` is on.
    /// `block_id` tags the diagnostics. Must be used *before* any shared
    /// allocations so the shadow valid-bitmaps stay in sync.
    pub fn sanitized(
        device: &DeviceConfig,
        global: &'g mut GlobalMem<T>,
        block_dim: usize,
        recording: bool,
        opts: SanitizeOptions,
        block_id: usize,
    ) -> Self {
        let mut ctx = Self::new(device, global, block_dim, recording);
        if opts.mode.is_on() {
            ctx.sanitizer = Some(Box::new(Sanitizer::new(opts, block_id)));
        }
        ctx
    }

    /// Creates a *shadowed* context for the symbolic verifier: recording
    /// and sanitizing are off, and every shared/global access is captured
    /// into a [`ShadowLog`] (read back with [`BlockCtx::finish_shadow`]).
    /// Invalid-handle and out-of-bounds accesses are recorded and then
    /// suppressed, mirroring the sanitizer, so buggy fixture kernels can
    /// be captured end-to-end. `budget` bounds the number of captured
    /// events; past it the log is flagged truncated.
    pub fn shadowed(
        device: &DeviceConfig,
        global: &'g mut GlobalMem<T>,
        block_dim: usize,
        block_id: usize,
        budget: usize,
    ) -> Self {
        let mut ctx = Self::new(device, global, block_dim, false);
        ctx.shadow = Some(Box::new(ShadowState::new(block_id, block_dim, budget)));
        ctx
    }

    /// Threads in the block.
    #[inline]
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Allocates a shared array of `len` elements (a `__shared__` buffer).
    pub fn alloc(&mut self, len: usize) -> Shared<T> {
        if let Some(san) = self.sanitizer.as_mut() {
            san.on_alloc(len);
        }
        self.shared.alloc(len)
    }

    /// Shared-memory footprint so far, in 32-bit words.
    pub fn shared_words_used(&self) -> usize {
        self.shared.words_used()
    }

    /// Host-side view of a shared array (tests/diagnostics only).
    pub fn shared_slice(&self, arr: Shared<T>) -> &[T] {
        self.shared.as_slice(arr)
    }

    /// Runs one barrier-separated superstep with the contiguous thread range
    /// `active`. The closure receives each thread's [`ThreadCtx`].
    pub fn step(
        &mut self,
        phase: Phase,
        active: Range<usize>,
        mut f: impl FnMut(&mut ThreadCtx<'_, 'g, T>),
    ) {
        assert!(
            active.end <= self.block_dim && active.start <= active.end,
            "active range {active:?} exceeds block dim {}",
            self.block_dim
        );
        if active.is_empty() {
            return;
        }
        if let Some(san) = self.sanitizer.as_mut() {
            san.begin_step(phase);
        }
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.begin_step(phase, active.clone());
        }
        if self.recording {
            self.accesses.clear();
            self.step_shared_loads = 0;
            self.step_shared_stores = 0;
            self.step_global_loads = 0;
            self.step_global_stores = 0;
            for o in &mut self.ops {
                *o = OpCounts::default();
            }
        }
        for tid in active.clone() {
            let pending_start = self.pending.len();
            let mut t = ThreadCtx {
                block: self,
                tid,
                slot: 0,
                ops: 0,
                divs: 0,
                dependent_loads: 0,
                pending_start,
            };
            f(&mut t);
            let (ops, divs, dependent_loads) = (t.ops, t.divs, t.dependent_loads);
            if self.recording {
                self.ops[tid] = OpCounts { ops, divs, dependent_loads };
            }
        }
        self.apply_pending();
        if self.recording {
            self.finish_step(phase, active);
        }
    }

    /// Applies buffered stores at the step's closing barrier, detecting
    /// intra-step write-write races (a panic in legacy recording mode, a
    /// [`Diagnostic`] when a sanitizer is attached).
    fn apply_pending(&mut self) {
        let sanitizing = self.sanitizer.is_some();
        if (self.recording || sanitizing) && self.pending.len() > 1 {
            let mut order: Vec<u32> = (0..self.pending.len() as u32).collect();
            order.sort_unstable_by_key(|&k| {
                let p = &self.pending[k as usize];
                (p.array, p.index, p.tid)
            });
            for w in order.windows(2) {
                let a = self.pending[w[0] as usize];
                let b = self.pending[w[1] as usize];
                if a.array == b.array && a.index == b.index {
                    if let Some(san) = self.sanitizer.as_mut() {
                        if a.tid != b.tid {
                            san.note_race(a.tid, b.tid, a.array, a.index, a.loc, b.loc);
                        }
                    } else {
                        panic!(
                            "intra-step write-write race: threads {} and {} both stored to \
                             shared array {} element {}",
                            a.tid, b.tid, a.array, a.index
                        );
                    }
                }
            }
        }
        let pending = core::mem::take(&mut self.pending);
        for p in &pending {
            self.shared.write(
                Shared { index: p.array, _marker: core::marker::PhantomData },
                p.index,
                p.value,
            );
            if let Some(san) = self.sanitizer.as_mut() {
                san.mark_valid(p.array, p.index);
            }
        }
        self.pending = pending;
        self.pending.clear();
    }

    /// Computes the step's [`StepRecord`] from the recorded accesses.
    fn finish_step(&mut self, phase: Phase, active: Range<usize>) {
        let hw = self.device.half_warp;
        let ws = self.device.warp_size;

        // Group shared accesses by (instruction slot, half-warp).
        self.accesses.sort_unstable_by_key(|r| (r.slot, r.tid / hw as u32));
        let mut shared_instructions = 0u64;
        let mut serialized = 0u64;
        let mut max_degree = 0u32;
        let mut i = 0;
        let mut words: Vec<u32> = Vec::with_capacity(hw);
        let mut lint_sites: Vec<(u32, &'static Location<'static>)> = Vec::new();
        while i < self.accesses.len() {
            let key = (self.accesses[i].slot, self.accesses[i].tid / hw as u32);
            let site = self.accesses[i].loc;
            words.clear();
            while i < self.accesses.len()
                && (self.accesses[i].slot, self.accesses[i].tid / hw as u32) == key
            {
                words.push(self.accesses[i].word);
                i += 1;
            }
            let deg = conflict_degree(&words, self.device.banks);
            shared_instructions += 1;
            serialized += deg as u64;
            max_degree = max_degree.max(deg);
            if self.sanitizer.is_some() && deg > 1 {
                lint_sites.push((deg, site));
            }
        }
        if let Some(san) = self.sanitizer.as_mut() {
            // Bank-conflict lint: attribute the worst degree to each source
            // site (recording block only — all blocks execute identical
            // control flow, so banking is identical across blocks).
            for (deg, loc) in lint_sites {
                san.note_bank_conflict(deg, loc);
            }
        }

        // Warp-granular arithmetic: per warp, the slowest lane sets the
        // instruction count (lockstep issue).
        let first_warp = active.start / ws;
        let last_warp = (active.end - 1) / ws;
        let mut warp_ops = 0u64;
        let mut warp_divs = 0u64;
        let mut total_ops = 0u64;
        let mut total_divs = 0u64;
        for w in first_warp..=last_warp {
            let lo = (w * ws).max(active.start);
            let hi = ((w + 1) * ws).min(active.end);
            let mut mo = 0u32;
            let mut md = 0u32;
            for tid in lo..hi {
                let o = self.ops[tid];
                mo = mo.max(o.ops);
                md = md.max(o.divs);
                total_ops += o.ops as u64;
                total_divs += o.divs as u64;
            }
            warp_ops += mo as u64;
            warp_divs += md as u64;
        }

        let max_dependent_chain =
            active.clone().map(|tid| self.ops[tid].dependent_loads as u64).max().unwrap_or(0);

        let first_hw = active.start / hw;
        let last_hw = (active.end - 1) / hw;
        self.stats.steps.push(StepRecord {
            phase,
            active_threads: active.len(),
            warps: last_warp - first_warp + 1,
            half_warps: last_hw - first_hw + 1,
            shared_loads: self.step_shared_loads,
            shared_stores: self.step_shared_stores,
            shared_instructions,
            serialized_shared_instructions: serialized,
            max_conflict_degree: max_degree.max(1),
            ops: total_ops,
            divs: total_divs,
            warp_op_instructions: warp_ops,
            warp_div_instructions: warp_divs,
            global_loads: self.step_global_loads,
            global_stores: self.step_global_stores,
            max_dependent_chain,
        });
        self.stats.global_accesses += self.step_global_loads + self.step_global_stores;
        self.stats.global_bytes_read += self.step_global_loads * T::BYTES as u64;
        self.stats.global_bytes_written += self.step_global_stores * T::BYTES as u64;
    }

    /// Finalizes the block and returns its counters.
    pub fn finish(self) -> KernelStats {
        self.finish_with_diagnostics().0
    }

    /// Finalizes the block, returning counters plus any sanitizer findings
    /// (empty when no sanitizer is attached).
    pub fn finish_with_diagnostics(mut self) -> (KernelStats, Vec<Diagnostic>) {
        assert!(self.pending.is_empty(), "finish() called mid-step");
        self.stats.shared_words = self.shared.words_used();
        let diags = self.sanitizer.take().map(|s| s.into_diagnostics()).unwrap_or_default();
        (self.stats, diags)
    }

    /// Finalizes a shadowed block (see [`BlockCtx::shadowed`]) and returns
    /// its capture log, annotated with the final arena geometry.
    ///
    /// # Panics
    /// Panics when the context was not created with [`BlockCtx::shadowed`].
    pub fn finish_shadow(mut self) -> ShadowLog {
        assert!(self.pending.is_empty(), "finish_shadow() called mid-step");
        let shadow = self.shadow.take().expect("finish_shadow on a non-shadowed context");
        let mut shared_lens = Vec::with_capacity(self.shared.num_arrays());
        let mut shared_base_words = Vec::with_capacity(self.shared.num_arrays());
        for index in 0..self.shared.num_arrays() as u32 {
            let arr = Shared::<T> { index, _marker: core::marker::PhantomData };
            shared_lens.push(self.shared.len_of(arr));
            shared_base_words.push(self.shared.word_of(arr, 0) as usize);
        }
        let global_lens = (0..self.global.num_arrays() as u32)
            .map(|index| {
                self.global.len_of(GlobalArray::<T> { index, _marker: core::marker::PhantomData })
            })
            .collect();
        shadow.finish(shared_lens, shared_base_words, T::SHARED_WORDS, global_lens)
    }
}

/// Per-thread view inside a superstep.
pub struct ThreadCtx<'b, 'g, T: Real> {
    block: &'b mut BlockCtx<'g, T>,
    tid: usize,
    slot: u16,
    ops: u32,
    divs: u32,
    dependent_loads: u32,
    /// Index into `block.pending` where this thread's own buffered stores
    /// begin (threads run sequentially within a step) — used for the
    /// same-thread read-after-buffered-write hazard scan.
    pending_start: usize,
}

impl<T: Real> ThreadCtx<'_, '_, T> {
    /// This thread's index within the block.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Reads shared memory — observes the *pre-step* state.
    #[inline]
    #[track_caller]
    pub fn load(&mut self, arr: Shared<T>, i: usize) -> T {
        let loc = Location::caller();
        if self.block.sanitizer.is_some() && !self.sanitize_shared(arr.index, i, false, loc) {
            return T::ZERO;
        }
        if self.block.shadow.is_some() && !self.shadow_shared(arr.index, i, ShadowOp::Load, loc) {
            return T::ZERO;
        }
        self.record_shared(arr, i, false, loc);
        self.block.shared.read(arr, i)
    }

    /// Writes shared memory — buffered until the step's closing barrier.
    #[inline]
    #[track_caller]
    pub fn store(&mut self, arr: Shared<T>, i: usize, v: T) {
        let loc = Location::caller();
        if self.block.sanitizer.is_some() {
            if !self.sanitize_shared(arr.index, i, true, loc) {
                return;
            }
            if !v.is_finite() {
                let tid = self.tid;
                if let Some(san) = self.block.sanitizer.as_mut() {
                    san.note_nonfinite(tid, loc);
                }
            }
        }
        if self.block.shadow.is_some() && !self.shadow_shared(arr.index, i, ShadowOp::Store, loc) {
            return;
        }
        self.record_shared(arr, i, true, loc);
        self.block.pending.push(PendingStore {
            array: arr.index,
            index: i,
            value: v,
            tid: self.tid,
            loc,
        });
    }

    /// Runs the sanitizer's shared-memory checks. Returns `false` when the
    /// access must be suppressed (invalid handle or out of bounds) so the
    /// storage layer is never reached with a bad address.
    fn sanitize_shared(
        &mut self,
        array: u32,
        i: usize,
        store: bool,
        loc: &'static Location<'static>,
    ) -> bool {
        let tid = self.tid;
        let pending_start = self.pending_start;
        // Disjoint field borrows of the block.
        let block: &mut BlockCtx<'_, T> = self.block;
        let san = block.sanitizer.as_mut().expect("sanitize_shared without sanitizer");
        if !san.shared_handle_ok(array) {
            san.note_invalid_handle(tid, array, true, loc);
            return false;
        }
        let len = san.shared_len(array);
        if i >= len {
            san.note_shared_oob(tid, array, i, len, store, loc);
            return false;
        }
        if !store {
            // Same-thread store-then-load: the load observes the stale
            // pre-step value, which the paper's read/sync/write compilation
            // would not — report, then proceed (the simulator's semantics
            // stay deterministic either way).
            if let Some(p) =
                block.pending[pending_start..].iter().find(|p| p.array == array && p.index == i)
            {
                let store_loc = p.loc;
                san.note_hazard(tid, array, i, loc, store_loc);
            }
            if !san.is_valid(array, i) {
                san.note_uninit(tid, array, i, loc);
            }
        }
        true
    }

    /// Records a shared access into the shadow log. Returns `false` when
    /// the access must be suppressed (invalid handle or out of bounds), so
    /// the storage layer is never reached with a bad address — the same
    /// discipline as [`ThreadCtx::sanitize_shared`].
    fn shadow_shared(
        &mut self,
        array: u32,
        i: usize,
        op: ShadowOp,
        loc: &'static Location<'static>,
    ) -> bool {
        let tid = self.tid;
        let block: &mut BlockCtx<'_, T> = self.block;
        let handle = Shared::<T> { index: array, _marker: core::marker::PhantomData };
        let ok = (array as usize) < block.shared.num_arrays() && i < block.shared.len_of(handle);
        let shadow = block.shadow.as_mut().expect("shadow_shared without shadow");
        shadow.record(tid, loc, ShadowSpace::Shared, op, array, i, ok);
        ok
    }

    /// Records a global access into the shadow log; `false` suppresses it.
    fn shadow_global(
        &mut self,
        array: u32,
        i: usize,
        op: ShadowOp,
        loc: &'static Location<'static>,
    ) -> bool {
        let tid = self.tid;
        let block: &mut BlockCtx<'_, T> = self.block;
        let handle = GlobalArray::<T> { index: array, _marker: core::marker::PhantomData };
        let ok = (array as usize) < block.global.num_arrays() && i < block.global.len_of(handle);
        let shadow = block.shadow.as_mut().expect("shadow_global without shadow");
        shadow.record(tid, loc, ShadowSpace::Global, op, array, i, ok);
        ok
    }

    /// Runs the sanitizer's global-memory checks; `false` suppresses the
    /// access.
    fn sanitize_global(
        &mut self,
        arr: GlobalArray<T>,
        i: usize,
        store: bool,
        loc: &'static Location<'static>,
    ) -> bool {
        let tid = self.tid;
        let block: &mut BlockCtx<'_, T> = self.block;
        let san = block.sanitizer.as_mut().expect("sanitize_global without sanitizer");
        if (arr.index as usize) >= block.global.num_arrays() {
            san.note_invalid_handle(tid, arr.index, false, loc);
            return false;
        }
        let len = block.global.len_of(arr);
        if i >= len {
            san.note_global_oob(tid, arr.index, i, len, store, loc);
            return false;
        }
        true
    }

    #[inline]
    fn record_shared(
        &mut self,
        arr: Shared<T>,
        i: usize,
        store: bool,
        loc: &'static Location<'static>,
    ) {
        if self.block.recording {
            if store {
                self.block.step_shared_stores += 1;
            } else {
                self.block.step_shared_loads += 1;
            }
            // An f64 element is two 32-bit words = two bank transactions.
            let base = self.block.shared.word_of(arr, i);
            for w in 0..T::SHARED_WORDS as u32 {
                self.block.accesses.push(AccessRec {
                    tid: self.tid as u32,
                    slot: self.slot,
                    word: base + w,
                    loc,
                });
                self.slot += 1;
            }
        } else {
            self.slot = self.slot.wrapping_add(T::SHARED_WORDS as u16);
        }
    }

    /// Reads an element from global memory (coalesced traffic accounting).
    #[inline]
    #[track_caller]
    pub fn load_global(&mut self, arr: GlobalArray<T>, i: usize) -> T {
        let loc = Location::caller();
        if self.block.sanitizer.is_some() && !self.sanitize_global(arr, i, false, loc) {
            return T::ZERO;
        }
        if self.block.shadow.is_some() && !self.shadow_global(arr.index, i, ShadowOp::Load, loc) {
            return T::ZERO;
        }
        if self.block.recording {
            self.block.step_global_loads += 1;
        }
        self.block.global.read(arr, i)
    }

    /// Reads an element from global memory as a link in a *serial
    /// dependence chain* (the address or use depends on the previous
    /// load). Each link pays the full memory latency — neither warps nor
    /// resident blocks can hide a chain, which is what makes
    /// thread-per-system (coarse-grained) kernels latency-bound.
    #[inline]
    #[track_caller]
    pub fn load_global_dependent(&mut self, arr: GlobalArray<T>, i: usize) -> T {
        let loc = Location::caller();
        if self.block.sanitizer.is_some() && !self.sanitize_global(arr, i, false, loc) {
            self.dependent_loads += 1;
            return T::ZERO;
        }
        if self.block.shadow.is_some() && !self.shadow_global(arr.index, i, ShadowOp::Load, loc) {
            self.dependent_loads += 1;
            return T::ZERO;
        }
        if self.block.recording {
            self.block.step_global_loads += 1;
        }
        self.dependent_loads += 1;
        self.block.global.read(arr, i)
    }

    /// Writes an element to global memory (applied immediately; the solvers
    /// only write distinct result elements at kernel end).
    #[inline]
    #[track_caller]
    pub fn store_global(&mut self, arr: GlobalArray<T>, i: usize, v: T) {
        let loc = Location::caller();
        if self.block.sanitizer.is_some() {
            if !self.sanitize_global(arr, i, true, loc) {
                return;
            }
            if !v.is_finite() {
                let tid = self.tid;
                if let Some(san) = self.block.sanitizer.as_mut() {
                    san.note_nonfinite(tid, loc);
                }
            }
        }
        if self.block.shadow.is_some() && !self.shadow_global(arr.index, i, ShadowOp::Store, loc) {
            return;
        }
        if self.block.recording {
            self.block.step_global_stores += 1;
        }
        self.block.global.write(arr, i, v);
    }

    /// Counted addition.
    #[inline]
    pub fn add(&mut self, a: T, b: T) -> T {
        self.ops += 1;
        a + b
    }

    /// Counted subtraction.
    #[inline]
    pub fn sub(&mut self, a: T, b: T) -> T {
        self.ops += 1;
        a - b
    }

    /// Counted multiplication.
    #[inline]
    pub fn mul(&mut self, a: T, b: T) -> T {
        self.ops += 1;
        a * b
    }

    /// Counted negation.
    #[inline]
    pub fn neg(&mut self, a: T) -> T {
        self.ops += 1;
        -a
    }

    /// Counted division (tracked separately: divisions are far more
    /// expensive on GT200 and the paper reports them separately in Table 1).
    #[inline]
    pub fn div(&mut self, a: T, b: T) -> T {
        self.ops += 1;
        self.divs += 1;
        a / b
    }

    /// Counted multiply-add `a * b + c` (2 flops, like the paper's MADs).
    #[inline]
    pub fn fma(&mut self, a: T, b: T, c: T) -> T {
        self.ops += 2;
        a.mul_add(b, c)
    }

    /// Charges `n` extra arithmetic instructions without computing anything
    /// — used for work done with host operators that still costs issue
    /// slots on the device (comparisons, abs, min/max chains).
    #[inline]
    pub fn ops_charge(&mut self, n: u32) {
        self.ops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(global: &mut GlobalMem<f32>, dim: usize) -> BlockCtx<'_, f32> {
        BlockCtx::new(&DeviceConfig::gtx280(), global, dim, true)
    }

    #[test]
    fn stores_are_buffered_until_barrier() {
        let mut g = GlobalMem::new();
        let mut b = ctx(&mut g, 16);
        let arr = b.alloc(16);
        b.step(Phase::Other("init"), 0..16, |t| {
            let i = t.tid();
            t.store(arr, i, i as f32);
        });
        // Reverse in place: every thread reads its mirror. With buffered
        // stores this is exact regardless of sequential thread order.
        b.step(Phase::Other("reverse"), 0..16, |t| {
            let i = t.tid();
            let v = t.load(arr, 15 - i);
            t.store(arr, i, v);
        });
        let got: Vec<f32> = b.shared_slice(arr).to_vec();
        let want: Vec<f32> = (0..16).rev().map(|i| i as f32).collect();
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "write-write race")]
    fn write_race_is_detected() {
        let mut g = GlobalMem::new();
        let mut b = ctx(&mut g, 4);
        let arr = b.alloc(4);
        b.step(Phase::Other("race"), 0..4, |t| {
            t.store(arr, 0, t.tid() as f32);
        });
    }

    #[test]
    fn unit_stride_has_no_conflicts() {
        let mut g = GlobalMem::new();
        let mut b = ctx(&mut g, 32);
        let arr = b.alloc(32);
        b.step(Phase::Other("copy"), 0..32, |t| {
            let i = t.tid();
            t.store(arr, i, 1.0);
        });
        let stats = b.finish();
        assert_eq!(stats.steps.len(), 1);
        let s = &stats.steps[0];
        assert_eq!(s.max_conflict_degree, 1);
        assert_eq!(s.shared_stores, 32);
        assert_eq!(s.shared_instructions, 2); // two half-warps, one slot
        assert_eq!(s.serialized_shared_instructions, 2);
    }

    #[test]
    fn stride_16_is_16way_conflicted() {
        let mut g = GlobalMem::new();
        let mut b = ctx(&mut g, 32);
        let arr = b.alloc(512);
        b.step(Phase::Other("strided"), 0..32, |t| {
            let i = t.tid() * 16;
            t.store(arr, i, 1.0);
        });
        let stats = b.finish();
        assert_eq!(stats.steps[0].max_conflict_degree, 16);
        // 2 half-warps, each serialized 16-ways.
        assert_eq!(stats.steps[0].serialized_shared_instructions, 32);
    }

    #[test]
    fn op_counting_is_warp_granular() {
        let mut g = GlobalMem::new();
        let mut b = ctx(&mut g, 64);
        let arr = b.alloc(64);
        // Half the threads in each warp do extra work; the warp pays for
        // the slowest lane.
        b.step(Phase::Other("divergent"), 0..64, |t| {
            let i = t.tid();
            let mut v = i as f32;
            v = t.add(v, 1.0);
            if i % 2 == 0 {
                v = t.mul(v, 2.0);
                v = t.div(v, 3.0);
            }
            t.store(arr, i, v);
        });
        let stats = b.finish();
        let s = &stats.steps[0];
        assert_eq!(s.ops, 64 + 32 * 2); // thread-level
        assert_eq!(s.divs, 32);
        assert_eq!(s.warp_op_instructions, 2 * 3); // 2 warps x max 3 ops
        assert_eq!(s.warp_div_instructions, 2);
    }

    #[test]
    fn global_traffic_is_counted() {
        let mut g = GlobalMem::new();
        let input = g.upload(vec![2.0f32; 64]);
        let output = g.alloc_zeroed(64);
        let mut b = ctx(&mut g, 64);
        let arr = b.alloc(64);
        b.step(Phase::GlobalLoad, 0..64, |t| {
            let i = t.tid();
            let v = t.load_global(input, i);
            t.store(arr, i, v);
        });
        b.step(Phase::GlobalStore, 0..64, |t| {
            let i = t.tid();
            let v = t.load(arr, i);
            t.store_global(output, i, v);
        });
        let stats = b.finish();
        assert_eq!(stats.global_bytes_read, 64 * 4);
        assert_eq!(stats.global_bytes_written, 64 * 4);
        assert_eq!(stats.global_accesses, 128);
        assert_eq!(g.view(output), vec![2.0f32; 64].as_slice());
    }

    #[test]
    fn empty_active_range_is_a_noop() {
        let mut g = GlobalMem::new();
        let mut b = ctx(&mut g, 8);
        b.step(Phase::Other("empty"), 4..4, |_| panic!("must not run"));
        assert_eq!(b.finish().steps.len(), 0);
    }

    #[test]
    fn offset_active_range_counts_warps_correctly() {
        let mut g = GlobalMem::new();
        let mut b = ctx(&mut g, 128);
        let arr = b.alloc(128);
        // Threads 64..128 active: warps 2..3 -> 2 warps, 4 half-warps.
        b.step(Phase::Other("offset"), 64..128, |t| {
            let i = t.tid();
            t.store(arr, i, 0.5);
        });
        let stats = b.finish();
        assert_eq!(stats.steps[0].warps, 2);
        assert_eq!(stats.steps[0].half_warps, 4);
        assert_eq!(stats.steps[0].active_threads, 64);
    }

    #[test]
    fn sanitizer_reports_write_race_without_panicking() {
        use crate::sanitize::{DiagnosticKind, SanitizeOptions};
        let mut g = GlobalMem::new();
        let mut b = BlockCtx::sanitized(
            &DeviceConfig::gtx280(),
            &mut g,
            4,
            true,
            SanitizeOptions::record(),
            0,
        );
        let arr = b.alloc(4);
        b.step(Phase::Other("race"), 0..4, |t| {
            t.store(arr, 0, t.tid() as f32);
        });
        let (_, diags) = b.finish_with_diagnostics();
        let race: Vec<_> =
            diags.iter().filter(|d| d.kind == DiagnosticKind::WriteWriteRace).collect();
        assert_eq!(race.len(), 1);
        assert!(race[0].related.is_some(), "both colliding locations reported");
        assert_eq!(race[0].occurrences, 3, "4 threads -> 3 colliding pairs");
    }

    #[test]
    fn sanitizer_reports_invalid_shared_handle() {
        use crate::sanitize::{DiagnosticKind, SanitizeOptions};
        let mut g = GlobalMem::new();
        let mut b = BlockCtx::sanitized(
            &DeviceConfig::gtx280(),
            &mut g,
            1,
            true,
            SanitizeOptions::record(),
            0,
        );
        let _arr = b.alloc(4);
        // A handle from "another context": index beyond this arena.
        let foreign: Shared<f32> = Shared { index: 7, _marker: core::marker::PhantomData };
        b.step(Phase::Other("bad-handle"), 0..1, |t| {
            let v = t.load(foreign, 0);
            assert_eq!(v, 0.0, "suppressed access reads as zero");
            t.store(foreign, 1, 1.0);
        });
        let (_, diags) = b.finish_with_diagnostics();
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::InvalidHandle && d.array == Some(7)));
    }

    #[test]
    fn sanitizer_reports_same_thread_store_then_load_hazard() {
        use crate::sanitize::{DiagnosticKind, SanitizeOptions};
        let mut g = GlobalMem::new();
        let mut b = BlockCtx::sanitized(
            &DeviceConfig::gtx280(),
            &mut g,
            2,
            true,
            SanitizeOptions::record(),
            0,
        );
        let arr = b.alloc(2);
        b.step(Phase::Other("init"), 0..2, |t| t.store(arr, t.tid(), 1.0));
        b.step(Phase::Other("hazard"), 0..2, |t| {
            let i = t.tid();
            t.store(arr, i, 2.0);
            let _ = t.load(arr, i); // observes stale pre-step value
        });
        let (_, diags) = b.finish_with_diagnostics();
        let h: Vec<_> =
            diags.iter().filter(|d| d.kind == DiagnosticKind::ReadWriteHazard).collect();
        assert_eq!(h.len(), 1);
        assert!(h[0].related.is_some(), "buffered store location attached");
        assert_eq!(h[0].occurrences, 2);
    }

    #[test]
    fn sanitizer_reports_uninitialized_read_and_oob() {
        use crate::sanitize::{DiagnosticKind, SanitizeOptions};
        let mut g = GlobalMem::<f32>::new();
        let out = g.alloc_zeroed(2);
        let mut b = BlockCtx::sanitized(
            &DeviceConfig::gtx280(),
            &mut g,
            2,
            true,
            SanitizeOptions::record(),
            0,
        );
        let arr = b.alloc(2);
        let _other = b.alloc(2);
        b.step(Phase::Other("bugs"), 0..2, |t| {
            let i = t.tid();
            let v = t.load(arr, i); // never written -> uninit
            let w = t.load(arr, 2 + i); // OOB (would hit _other's words)
            assert_eq!(w, 0.0);
            t.store_global(out, 4 + i, v); // global OOB -> dropped
        });
        let (_, diags) = b.finish_with_diagnostics();
        assert!(diags.iter().any(|d| d.kind == DiagnosticKind::UninitializedRead));
        assert!(diags.iter().any(|d| d.kind == DiagnosticKind::SharedOutOfBounds));
        assert!(diags.iter().any(|d| d.kind == DiagnosticKind::GlobalOutOfBounds));
    }

    #[test]
    fn sanitizer_flags_nonfinite_origin_and_bank_conflicts() {
        use crate::sanitize::{DiagnosticKind, SanitizeOptions};
        let mut g = GlobalMem::new();
        let mut b = BlockCtx::sanitized(
            &DeviceConfig::gtx280(),
            &mut g,
            32,
            true,
            SanitizeOptions::record(),
            0,
        );
        let arr = b.alloc(512);
        b.step(Phase::Other("strided"), 0..32, |t| {
            let i = t.tid() * 16; // 16-way conflict on 16 banks
            let v = if t.tid() == 3 { f32::INFINITY } else { 1.0 };
            t.store(arr, i, v);
        });
        let (_, diags) = b.finish_with_diagnostics();
        let nf: Vec<_> =
            diags.iter().filter(|d| d.kind == DiagnosticKind::NonFiniteOrigin).collect();
        assert_eq!(nf.len(), 1);
        assert_eq!(nf[0].tid, 3);
        let bc: Vec<_> = diags.iter().filter(|d| d.kind == DiagnosticKind::BankConflict).collect();
        assert_eq!(bc.len(), 1);
        assert_eq!(bc[0].degree, Some(16));
    }

    #[test]
    fn clean_kernel_yields_no_diagnostics_and_identical_counters() {
        use crate::sanitize::SanitizeOptions;
        let run = |opts: Option<SanitizeOptions>| {
            let mut g = GlobalMem::new();
            let input = g.upload((0..32).map(|i| i as f32).collect());
            let output = g.alloc_zeroed(32);
            let mut b = match opts {
                Some(o) => BlockCtx::sanitized(&DeviceConfig::gtx280(), &mut g, 32, true, o, 0),
                None => BlockCtx::new(&DeviceConfig::gtx280(), &mut g, 32, true),
            };
            let arr = b.alloc(32);
            b.step(Phase::GlobalLoad, 0..32, |t| {
                let v = t.load_global(input, t.tid());
                t.store(arr, t.tid(), v);
            });
            b.step(Phase::GlobalStore, 0..32, |t| {
                let v = t.load(arr, 31 - t.tid());
                t.store_global(output, t.tid(), v);
            });
            b.finish_with_diagnostics()
        };
        let (plain, d0) = run(None);
        let (sanitized, d1) = run(Some(SanitizeOptions::record()));
        assert!(d0.is_empty());
        assert!(d1.is_empty(), "clean kernel must produce no diagnostics: {d1:?}");
        assert_eq!(plain, sanitized, "sanitizing must not perturb counters");
    }

    #[test]
    fn f64_access_spans_two_slots() {
        let mut g: GlobalMem<f64> = GlobalMem::new();
        let mut b = BlockCtx::new(&DeviceConfig::gtx280(), &mut g, 16, true);
        let arr = b.alloc(16);
        b.step(Phase::Other("f64"), 0..16, |t| {
            let i = t.tid();
            t.store(arr, i, 1.0f64);
        });
        let stats = b.finish();
        // 16 lanes x 2 words = 1 half-warp x 2 slots; stride-2 words give a
        // 2-way conflict per slot on 16 banks.
        assert_eq!(stats.steps[0].shared_instructions, 2);
        assert_eq!(stats.steps[0].max_conflict_degree, 2);
    }
}
