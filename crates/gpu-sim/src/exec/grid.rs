//! Grid-level launches: run every block, instrument one.
//!
//! The solvers map "systems to blocks and equations to threads" (§4) and
//! every block executes identical control flow on different data. The
//! launcher therefore runs **all** blocks for numerical fidelity but records
//! detailed counters only for block 0, then scales per-block counters by the
//! grid dimension inside the timing model.

use crate::cost::CostModel;
use crate::counters::KernelStats;
use crate::device::DeviceConfig;
use crate::exec::block::BlockCtx;
use crate::memory::global::GlobalMem;
use crate::profile::{time_launch_with_efficiency, TimingReport};
use crate::sanitize::{merge_diagnostics, Diagnostic, SanitizeMode, SanitizeOptions, Severity};
use tridiag_core::{Real, Result, TridiagError};

/// A kernel launched over a 1-D grid of identical blocks.
pub trait GridKernel<T: Real> {
    /// Threads per block.
    fn block_dim(&self) -> usize;
    /// Declared shared-memory footprint in 32-bit words (checked against
    /// the actual allocations of the instrumented block).
    fn shared_words(&self) -> usize;
    /// Fraction of peak global-memory bandwidth this kernel's access
    /// pattern achieves (1.0 = fully coalesced; strided global-only
    /// kernels waste most of each 32-byte segment).
    fn global_efficiency(&self) -> f64 {
        1.0
    }
    /// Body of one block.
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>);
}

/// Result of a launch: per-block counters plus grid-level simulated timing.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Counters of the representative block (all blocks are identical in
    /// structure).
    pub stats: KernelStats,
    /// Simulated grid timing.
    pub timing: TimingReport,
    /// Sanitizer findings across **all** blocks, merged by (kind, source
    /// site, array). Empty when the launcher's sanitize mode is `Off`.
    pub diagnostics: Vec<Diagnostic>,
}

impl LaunchReport {
    /// `Error`-severity diagnostics (correctness hazards).
    pub fn sanitizer_errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// `Warning`-severity diagnostics (non-finite origin, bank lint).
    pub fn sanitizer_warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }
}

/// Executes kernels against a device and cost model.
#[derive(Debug, Clone, Default)]
pub struct Launcher {
    /// Architectural parameters.
    pub device: DeviceConfig,
    /// Cycle-cost constants.
    pub cost: CostModel,
    /// Sanitizer configuration (default: `Off`, legacy behaviour).
    pub sanitize: SanitizeOptions,
}

impl Launcher {
    /// Launcher for the paper's GTX 280.
    pub fn gtx280() -> Self {
        Self {
            device: DeviceConfig::gtx280(),
            cost: CostModel::gtx280(),
            sanitize: SanitizeOptions::default(),
        }
    }

    /// Returns this launcher with the given sanitizer options.
    pub fn with_sanitize(mut self, opts: SanitizeOptions) -> Self {
        self.sanitize = opts;
        self
    }

    /// Returns this launcher with the given sanitize mode (other options at
    /// defaults).
    pub fn with_sanitize_mode(mut self, mode: SanitizeMode) -> Self {
        self.sanitize.mode = mode;
        self
    }

    /// Runs `kernel` over `grid_dim` blocks against `global` memory.
    ///
    /// # Errors
    /// Fails when the block shape violates device limits (too many threads,
    /// shared memory exceeding the per-SM capacity) or `grid_dim == 0`.
    pub fn launch<T: Real, K: GridKernel<T>>(
        &self,
        kernel: &K,
        grid_dim: usize,
        global: &mut GlobalMem<T>,
    ) -> Result<LaunchReport> {
        if grid_dim == 0 {
            return Err(TridiagError::InvalidConfig { what: "grid dimension must be >= 1" });
        }
        let block_dim = kernel.block_dim();
        if block_dim == 0 || block_dim > self.device.max_threads_per_block {
            return Err(TridiagError::InvalidConfig { what: "block dimension out of range" });
        }
        let declared_bytes = kernel.shared_words() * 4;
        if declared_bytes > self.device.shared_mem_per_sm {
            return Err(TridiagError::SharedMemExceeded {
                required_bytes: declared_bytes,
                available_bytes: self.device.shared_mem_per_sm,
            });
        }

        let sanitizing = self.sanitize.mode.is_on();

        // Block 0: fully instrumented (and sanitized when enabled).
        let (stats, mut diagnostics) = {
            let mut ctx =
                BlockCtx::sanitized(&self.device, global, block_dim, true, self.sanitize, 0);
            kernel.run_block(0, &mut ctx);
            ctx.finish_with_diagnostics()
        };
        assert_eq!(
            stats.shared_words,
            kernel.shared_words(),
            "kernel declared a shared footprint of {} words but allocated {}",
            kernel.shared_words(),
            stats.shared_words
        );

        // Remaining blocks: numerics only — plus sanitation when enabled
        // (the sanitizer checks *all* blocks, not just the recorded one).
        for block_id in 1..grid_dim {
            let mut ctx = BlockCtx::sanitized(
                &self.device,
                global,
                block_dim,
                false,
                self.sanitize,
                block_id,
            );
            kernel.run_block(block_id, &mut ctx);
            if sanitizing {
                let (_, d) = ctx.finish_with_diagnostics();
                merge_diagnostics(&mut diagnostics, d);
            }
        }

        if self.sanitize.mode == SanitizeMode::Enforce {
            let errors: Vec<&Diagnostic> =
                diagnostics.iter().filter(|d| d.severity == Severity::Error).collect();
            if !errors.is_empty() {
                let mut msg =
                    format!("sanitizer: {} error diagnostic(s) in enforce mode:\n", errors.len());
                for d in &errors {
                    msg.push_str(&format!(
                        "  [{}] {} at {} (x{})\n",
                        d.kind.name(),
                        d.message,
                        d.site(),
                        d.occurrences
                    ));
                }
                panic!("{msg}");
            }
        }

        let timing = time_launch_with_efficiency(
            &self.device,
            &self.cost,
            &stats,
            grid_dim,
            kernel.global_efficiency(),
        )?;
        Ok(LaunchReport { stats, timing, diagnostics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Phase;
    use crate::memory::global::GlobalArray;

    /// Doubles each element of its block's slice.
    struct DoubleKernel {
        n: usize,
        input: GlobalArray<f32>,
        output: GlobalArray<f32>,
    }

    impl GridKernel<f32> for DoubleKernel {
        fn block_dim(&self) -> usize {
            self.n
        }
        fn shared_words(&self) -> usize {
            self.n
        }
        fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, f32>) {
            let buf = ctx.alloc(self.n);
            let base = block_id * self.n;
            ctx.step(Phase::GlobalLoad, 0..self.n, |t| {
                let i = t.tid();
                let v = t.load_global(self.input, base + i);
                t.store(buf, i, v);
            });
            ctx.step(Phase::Other("double"), 0..self.n, |t| {
                let i = t.tid();
                let v = t.load(buf, i);
                let v = t.mul(v, 2.0);
                t.store(buf, i, v);
            });
            ctx.step(Phase::GlobalStore, 0..self.n, |t| {
                let i = t.tid();
                let v = t.load(buf, i);
                t.store_global(self.output, base + i, v);
            });
        }
    }

    #[test]
    fn launch_runs_all_blocks() {
        let mut g = GlobalMem::new();
        let input = g.upload((0..64).map(|i| i as f32).collect());
        let output = g.alloc_zeroed(64);
        let kernel = DoubleKernel { n: 16, input, output };
        let report = Launcher::gtx280().launch(&kernel, 4, &mut g).unwrap();
        let got = g.download(output);
        let want: Vec<f32> = (0..64).map(|i| 2.0 * i as f32).collect();
        assert_eq!(got, want);
        assert_eq!(report.stats.steps.len(), 3);
        assert!(report.timing.kernel_ms > 0.0);
        assert_eq!(report.timing.blocks, 4);
    }

    #[test]
    fn launch_rejects_zero_grid() {
        let mut g = GlobalMem::new();
        let input = g.upload(vec![0.0; 16]);
        let output = g.alloc_zeroed(16);
        let kernel = DoubleKernel { n: 16, input, output };
        assert!(Launcher::gtx280().launch(&kernel, 0, &mut g).is_err());
    }

    #[test]
    fn launch_rejects_oversized_block() {
        let mut g = GlobalMem::new();
        let input = g.upload(vec![0.0; 1024]);
        let output = g.alloc_zeroed(1024);
        let kernel = DoubleKernel { n: 1024, input, output };
        let err = Launcher::gtx280().launch(&kernel, 1, &mut g).unwrap_err();
        assert!(matches!(err, TridiagError::InvalidConfig { .. }));
    }

    #[test]
    fn global_traffic_matches_expectation() {
        let mut g = GlobalMem::new();
        let input = g.upload(vec![1.0; 32]);
        let output = g.alloc_zeroed(32);
        let kernel = DoubleKernel { n: 32, input, output };
        let report = Launcher::gtx280().launch(&kernel, 1, &mut g).unwrap();
        assert_eq!(report.stats.global_bytes_read, 32 * 4);
        assert_eq!(report.stats.global_bytes_written, 32 * 4);
    }
}
