//! Grid-level launches: run every block, instrument one.
//!
//! The solvers map "systems to blocks and equations to threads" (§4) and
//! every block executes identical control flow on different data. The
//! launcher therefore runs **all** blocks for numerical fidelity but records
//! detailed counters only for block 0, then scales per-block counters by the
//! grid dimension inside the timing model.

use crate::cost::CostModel;
use crate::counters::KernelStats;
use crate::device::DeviceConfig;
use crate::exec::block::BlockCtx;
use crate::fault::{corrupt_draw, FailKind, FaultPlan, InjectedFault, LaunchDecision};
use crate::memory::global::GlobalMem;
use crate::profile::{time_launch_with_efficiency, TimingReport};
use crate::sanitize::{merge_diagnostics, Diagnostic, SanitizeMode, SanitizeOptions, Severity};
use std::sync::Arc;
use tridiag_core::{Real, Result, TridiagError};

/// A kernel launched over a 1-D grid of identical blocks.
pub trait GridKernel<T: Real> {
    /// Threads per block.
    fn block_dim(&self) -> usize;
    /// Declared shared-memory footprint in 32-bit words (checked against
    /// the actual allocations of the instrumented block).
    fn shared_words(&self) -> usize;
    /// Fraction of peak global-memory bandwidth this kernel's access
    /// pattern achieves (1.0 = fully coalesced; strided global-only
    /// kernels waste most of each 32-byte segment).
    fn global_efficiency(&self) -> f64 {
        1.0
    }
    /// Body of one block.
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>);
}

/// References forward the kernel interface, so type-erased kernels
/// (`&dyn GridKernel<T>`, e.g. from the static verifier's instantiation
/// glue) can be launched and shadow-captured without knowing the concrete
/// type.
impl<T: Real, K: GridKernel<T> + ?Sized> GridKernel<T> for &K {
    fn block_dim(&self) -> usize {
        (**self).block_dim()
    }
    fn shared_words(&self) -> usize {
        (**self).shared_words()
    }
    fn global_efficiency(&self) -> f64 {
        (**self).global_efficiency()
    }
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        (**self).run_block(block_id, ctx)
    }
}

/// Result of a launch: per-block counters plus grid-level simulated timing.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Counters of the representative block (all blocks are identical in
    /// structure).
    pub stats: KernelStats,
    /// Simulated grid timing.
    pub timing: TimingReport,
    /// Sanitizer findings across **all** blocks, merged by (kind, source
    /// site, array). Empty when the launcher's sanitize mode is `Off`.
    pub diagnostics: Vec<Diagnostic>,
    /// Faults the fault plan actually applied to this launch (corruptions
    /// and stalls; failures surface as launch errors). Always empty when
    /// no plan is installed.
    pub injected_faults: Vec<InjectedFault>,
}

impl LaunchReport {
    /// `Error`-severity diagnostics (correctness hazards).
    pub fn sanitizer_errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// `Warning`-severity diagnostics (non-finite origin, bank lint).
    pub fn sanitizer_warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }
}

/// Executes kernels against a device and cost model.
#[derive(Debug, Clone, Default)]
pub struct Launcher {
    /// Architectural parameters.
    pub device: DeviceConfig,
    /// Cycle-cost constants.
    pub cost: CostModel,
    /// Sanitizer configuration (default: `Off`, legacy behaviour).
    pub sanitize: SanitizeOptions,
    /// Fault-injection plan (default: `None`, a perfect device). Shared via
    /// `Arc` so launcher clones draw launch indices from one counter.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Launcher {
    /// Launcher for the paper's GTX 280.
    pub fn gtx280() -> Self {
        Self {
            device: DeviceConfig::gtx280(),
            cost: CostModel::gtx280(),
            sanitize: SanitizeOptions::default(),
            fault: None,
        }
    }

    /// Returns this launcher with the given sanitizer options.
    pub fn with_sanitize(mut self, opts: SanitizeOptions) -> Self {
        self.sanitize = opts;
        self
    }

    /// Returns this launcher with the given sanitize mode (other options at
    /// defaults).
    pub fn with_sanitize_mode(mut self, mode: SanitizeMode) -> Self {
        self.sanitize.mode = mode;
        self
    }

    /// Returns this launcher with the given fault plan installed.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Runs `kernel` over `grid_dim` blocks against `global` memory.
    ///
    /// # Errors
    /// Fails when the block shape violates device limits (too many threads,
    /// shared memory exceeding the per-SM capacity) or `grid_dim == 0`.
    pub fn launch<T: Real, K: GridKernel<T>>(
        &self,
        kernel: &K,
        grid_dim: usize,
        global: &mut GlobalMem<T>,
    ) -> Result<LaunchReport> {
        if grid_dim == 0 {
            return Err(TridiagError::InvalidConfig { what: "grid dimension must be >= 1" });
        }
        let block_dim = kernel.block_dim();
        if block_dim == 0 || block_dim > self.device.max_threads_per_block {
            return Err(TridiagError::InvalidConfig { what: "block dimension out of range" });
        }
        let declared_bytes = kernel.shared_words() * 4;
        if declared_bytes > self.device.shared_mem_per_sm {
            return Err(TridiagError::SharedMemExceeded {
                required_bytes: declared_bytes,
                available_bytes: self.device.shared_mem_per_sm,
            });
        }

        // Adjudicate the launch against the fault plan (if any) *after*
        // configuration validation: a malformed launch is a caller bug, not
        // device adversity. A failed launch still consumes a launch index.
        let fault: Option<(&FaultPlan, u64, LaunchDecision)> = match &self.fault {
            Some(plan) => {
                let (launch, decision) = plan.begin_launch();
                match decision.fail {
                    Some(FailKind::Transient) => {
                        return Err(TridiagError::DeviceFault { launch });
                    }
                    Some(FailKind::Lost) => return Err(TridiagError::DeviceLost),
                    None => {}
                }
                // Track which arrays this kernel writes so corruption only
                // targets launch outputs.
                global.clear_dirty();
                Some((plan.as_ref(), launch, decision))
            }
            None => None,
        };

        let sanitizing = self.sanitize.mode.is_on();

        // Block 0: fully instrumented (and sanitized when enabled).
        let (stats, mut diagnostics) = {
            let mut ctx =
                BlockCtx::sanitized(&self.device, global, block_dim, true, self.sanitize, 0);
            kernel.run_block(0, &mut ctx);
            ctx.finish_with_diagnostics()
        };
        assert_eq!(
            stats.shared_words,
            kernel.shared_words(),
            "kernel declared a shared footprint of {} words but allocated {}",
            kernel.shared_words(),
            stats.shared_words
        );

        // Remaining blocks: numerics only — plus sanitation when enabled
        // (the sanitizer checks *all* blocks, not just the recorded one).
        for block_id in 1..grid_dim {
            let mut ctx = BlockCtx::sanitized(
                &self.device,
                global,
                block_dim,
                false,
                self.sanitize,
                block_id,
            );
            kernel.run_block(block_id, &mut ctx);
            if sanitizing {
                let (_, d) = ctx.finish_with_diagnostics();
                merge_diagnostics(&mut diagnostics, d);
            }
        }

        if self.sanitize.mode == SanitizeMode::Enforce {
            let errors: Vec<&Diagnostic> =
                diagnostics.iter().filter(|d| d.severity == Severity::Error).collect();
            if !errors.is_empty() {
                let mut msg =
                    format!("sanitizer: {} error diagnostic(s) in enforce mode:\n", errors.len());
                for d in &errors {
                    msg.push_str(&format!(
                        "  [{}] {} at {} (x{})\n",
                        d.kind.name(),
                        d.message,
                        d.site(),
                        d.occurrences
                    ));
                }
                panic!("{msg}");
            }
        }

        let mut timing = time_launch_with_efficiency(
            &self.device,
            &self.cost,
            &stats,
            grid_dim,
            kernel.global_efficiency(),
        )?;

        // Post-kernel adversity: corrupt launch outputs (simulated ECC
        // misses) and/or stretch the launch's simulated time (straggler).
        let mut injected_faults = Vec::new();
        if let Some((plan, launch, decision)) = fault {
            if decision.bit_flips > 0 || decision.nan_poisons > 0 {
                let dirty = global.dirty_arrays();
                if !dirty.is_empty() {
                    let seed = plan.config().seed;
                    let mut event = 0u64;
                    for _ in 0..decision.bit_flips {
                        let (array, index) = pick_element(global, &dirty, seed, launch, event);
                        event += 1;
                        let v = global.read_raw(array, index).to_f64();
                        // Flip the top exponent bit: the value changes by
                        // many orders of magnitude (or to NaN/Inf), so the
                        // residual check downstream is guaranteed to see it.
                        let flipped = f64::from_bits(v.to_bits() ^ (1u64 << 62));
                        global.write_raw(array, index, T::from_f64(flipped));
                        injected_faults.push(InjectedFault::BitFlip { array, index });
                    }
                    for _ in 0..decision.nan_poisons {
                        let (array, index) = pick_element(global, &dirty, seed, launch, event);
                        event += 1;
                        global.write_raw(array, index, T::from_f64(f64::NAN));
                        injected_faults.push(InjectedFault::NanPoison { array, index });
                    }
                }
            }
            if let Some(multiplier) = decision.stall {
                timing = timing.scaled(multiplier);
                injected_faults.push(InjectedFault::Stall { multiplier });
            }
            plan.record_applied(&injected_faults);
        }

        Ok(LaunchReport { stats, timing, diagnostics, injected_faults })
    }
}

/// Picks a (dirty array, element) pair for corruption event `event` of
/// launch `launch` — deterministic in (seed, launch, event).
fn pick_element<T: Real>(
    global: &GlobalMem<T>,
    dirty: &[u32],
    seed: u64,
    launch: u64,
    event: u64,
) -> (u32, usize) {
    let r = corrupt_draw(seed, launch, event);
    let array = dirty[(r % dirty.len() as u64) as usize];
    let len = global.len_raw(array);
    let index = ((r >> 20) % len.max(1) as u64) as usize;
    (array, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Phase;
    use crate::memory::global::GlobalArray;

    /// Doubles each element of its block's slice.
    struct DoubleKernel {
        n: usize,
        input: GlobalArray<f32>,
        output: GlobalArray<f32>,
    }

    impl GridKernel<f32> for DoubleKernel {
        fn block_dim(&self) -> usize {
            self.n
        }
        fn shared_words(&self) -> usize {
            self.n
        }
        fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, f32>) {
            let buf = ctx.alloc(self.n);
            let base = block_id * self.n;
            ctx.step(Phase::GlobalLoad, 0..self.n, |t| {
                let i = t.tid();
                let v = t.load_global(self.input, base + i);
                t.store(buf, i, v);
            });
            ctx.step(Phase::Other("double"), 0..self.n, |t| {
                let i = t.tid();
                let v = t.load(buf, i);
                let v = t.mul(v, 2.0);
                t.store(buf, i, v);
            });
            ctx.step(Phase::GlobalStore, 0..self.n, |t| {
                let i = t.tid();
                let v = t.load(buf, i);
                t.store_global(self.output, base + i, v);
            });
        }
    }

    #[test]
    fn launch_runs_all_blocks() {
        let mut g = GlobalMem::new();
        let input = g.upload((0..64).map(|i| i as f32).collect());
        let output = g.alloc_zeroed(64);
        let kernel = DoubleKernel { n: 16, input, output };
        let report = Launcher::gtx280().launch(&kernel, 4, &mut g).unwrap();
        let got = g.download(output);
        let want: Vec<f32> = (0..64).map(|i| 2.0 * i as f32).collect();
        assert_eq!(got, want);
        assert_eq!(report.stats.steps.len(), 3);
        assert!(report.timing.kernel_ms > 0.0);
        assert_eq!(report.timing.blocks, 4);
    }

    #[test]
    fn launch_rejects_zero_grid() {
        let mut g = GlobalMem::new();
        let input = g.upload(vec![0.0; 16]);
        let output = g.alloc_zeroed(16);
        let kernel = DoubleKernel { n: 16, input, output };
        assert!(Launcher::gtx280().launch(&kernel, 0, &mut g).is_err());
    }

    #[test]
    fn launch_rejects_oversized_block() {
        let mut g = GlobalMem::new();
        let input = g.upload(vec![0.0; 1024]);
        let output = g.alloc_zeroed(1024);
        let kernel = DoubleKernel { n: 1024, input, output };
        let err = Launcher::gtx280().launch(&kernel, 1, &mut g).unwrap_err();
        assert!(matches!(err, TridiagError::InvalidConfig { .. }));
    }

    #[test]
    fn global_traffic_matches_expectation() {
        let mut g = GlobalMem::new();
        let input = g.upload(vec![1.0; 32]);
        let output = g.alloc_zeroed(32);
        let kernel = DoubleKernel { n: 32, input, output };
        let report = Launcher::gtx280().launch(&kernel, 1, &mut g).unwrap();
        assert_eq!(report.stats.global_bytes_read, 32 * 4);
        assert_eq!(report.stats.global_bytes_written, 32 * 4);
    }

    use crate::fault::{FaultConfig, FaultPlan};
    use std::sync::Arc;

    fn run_double(launcher: &Launcher) -> (Result<LaunchReport>, Vec<f32>) {
        let mut g = GlobalMem::new();
        let input = g.upload((0..64).map(|i| i as f32).collect());
        let output = g.alloc_zeroed(64);
        let kernel = DoubleKernel { n: 16, input, output };
        let report = launcher.launch(&kernel, 4, &mut g);
        (report, g.download(output))
    }

    #[test]
    fn quiet_fault_plan_is_counter_neutral() {
        let baseline = Launcher::gtx280();
        let quiet =
            Launcher::gtx280().with_fault_plan(Arc::new(FaultPlan::new(FaultConfig::quiet(99))));
        let (a, xa) = run_double(&baseline);
        let (b, xb) = run_double(&quiet);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(xa, xb);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.timing, b.timing);
        assert!(b.injected_faults.is_empty());
    }

    #[test]
    fn burst_launches_fail_then_recover() {
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: 5,
            launch_fault_burst: 2,
            ..Default::default()
        }));
        let launcher = Launcher::gtx280().with_fault_plan(Arc::clone(&plan));
        assert!(matches!(run_double(&launcher).0, Err(TridiagError::DeviceFault { launch: 0 })));
        assert!(matches!(run_double(&launcher).0, Err(TridiagError::DeviceFault { launch: 1 })));
        let (ok, x) = run_double(&launcher);
        assert!(ok.is_ok());
        assert_eq!(x, (0..64).map(|i| 2.0 * i as f32).collect::<Vec<_>>());
        assert_eq!(plan.stats().launch_failures, 2);
        assert_eq!(plan.stats().launches, 3);
    }

    #[test]
    fn device_lost_is_sticky_across_launches() {
        let launcher = Launcher::gtx280().with_fault_plan(Arc::new(FaultPlan::new(FaultConfig {
            seed: 5,
            device_lost_after: Some(1),
            ..Default::default()
        })));
        assert!(run_double(&launcher).0.is_ok());
        for _ in 0..3 {
            assert!(matches!(run_double(&launcher).0, Err(TridiagError::DeviceLost)));
        }
    }

    #[test]
    fn bit_flip_corrupts_only_the_written_array() {
        let plan = Arc::new(FaultPlan::new(FaultConfig {
            seed: 11,
            bit_flip_rate: 1.0,
            ..Default::default()
        }));
        let launcher = Launcher::gtx280().with_fault_plan(Arc::clone(&plan));
        let mut g = GlobalMem::new();
        let input_data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let input = g.upload(input_data.clone());
        let output = g.alloc_zeroed(64);
        let kernel = DoubleKernel { n: 16, input, output };
        let report = launcher.launch(&kernel, 4, &mut g).unwrap();
        assert_eq!(report.injected_faults.len(), 1);
        let InjectedFault::BitFlip { array, index } = report.injected_faults[0] else {
            panic!("expected a bit flip, got {:?}", report.injected_faults[0]);
        };
        assert_eq!(array, output.index, "corruption must target the written array");
        // Input is untouched; exactly one output element deviates, wildly.
        assert_eq!(g.view(input), &input_data[..]);
        let x = g.download(output);
        for (i, (&got, want)) in x.iter().zip((0..64).map(|i| 2.0 * i as f32)).enumerate() {
            if i == index {
                assert!(
                    !got.is_finite() || (got - want).abs() > 1.0,
                    "flip at {i} too subtle: {got} vs {want}"
                );
            } else {
                assert_eq!(got, want, "element {i} should be untouched");
            }
        }
        assert_eq!(plan.stats().bit_flips, 1);
    }

    #[test]
    fn nan_poison_lands_in_output() {
        let launcher = Launcher::gtx280().with_fault_plan(Arc::new(FaultPlan::new(FaultConfig {
            seed: 2,
            nan_poison_rate: 1.0,
            ..Default::default()
        })));
        let (report, x) = run_double(&launcher);
        let report = report.unwrap();
        assert_eq!(report.injected_faults.len(), 1);
        assert!(matches!(report.injected_faults[0], InjectedFault::NanPoison { .. }));
        assert_eq!(x.iter().filter(|v| v.is_nan()).count(), 1);
    }

    #[test]
    fn stall_inflates_timing_but_not_numerics() {
        let clean = run_double(&Launcher::gtx280());
        let stalled = run_double(&Launcher::gtx280().with_fault_plan(Arc::new(FaultPlan::new(
            FaultConfig { seed: 2, stall_rate: 1.0, stall_multiplier: 4.0, ..Default::default() },
        ))));
        let (clean_rep, clean_x) = (clean.0.unwrap(), clean.1);
        let (stall_rep, stall_x) = (stalled.0.unwrap(), stalled.1);
        assert_eq!(clean_x, stall_x);
        assert_eq!(clean_rep.stats, stall_rep.stats);
        assert!(
            (stall_rep.timing.kernel_ms - 4.0 * clean_rep.timing.kernel_ms).abs() < 1e-12,
            "stall must stretch simulated time 4x"
        );
        assert!(
            matches!(stall_rep.injected_faults[0], InjectedFault::Stall { multiplier } if multiplier == 4.0)
        );
    }
}
