//! Kernel execution: per-block bulk-synchronous supersteps and grid launch.

pub mod block;
pub mod grid;
pub mod shadow;
