//! Shadow capture: a recording layer beneath the symbolic verifier.
//!
//! A *shadowed* [`BlockCtx`](crate::exec::block::BlockCtx) executes a kernel
//! block exactly as usual, but logs every shared/global access — thread id,
//! source location, array, element index, in-bounds flag — into a
//! [`ShadowLog`], together with the step skeleton (phase, active range) and
//! the shared/global array geometry. The `kernel-verify` crate replays
//! captured logs from a handful of concrete launches, fits each access
//! site to an affine form `a·tid + b·ordinal + c` (plus a per-block offset
//! for global arrays), and discharges race/OOB/hazard/bank-conflict checks
//! for the *whole declared size family* instead of the launches that
//! happened to run.
//!
//! The shadow follows the dynamic sanitizer's suppression discipline:
//! accesses with an invalid handle or out-of-bounds index are **recorded
//! and then suppressed** (loads read as zero, stores are dropped) so a
//! deliberately-buggy kernel can be captured end-to-end without corrupting
//! the arena. An event budget bounds memory: once exceeded, the log is
//! flagged truncated and the verifier must return `Unproven`, never a
//! proof from partial evidence.

use crate::counters::Phase;
use core::ops::Range;
use core::panic::Location;
use std::collections::HashMap;

/// Which address space an access touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShadowSpace {
    /// Per-block shared memory (`__shared__`).
    Shared,
    /// Device global memory.
    Global,
}

/// Whether an access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShadowOp {
    /// A load (shared loads observe the pre-step state).
    Load,
    /// A store (shared stores are buffered until the closing barrier).
    Store,
}

/// One captured memory access.
#[derive(Debug, Clone, Copy)]
pub struct ShadowAccess {
    /// Thread index within the block.
    pub tid: u32,
    /// Index into [`ShadowLog::sites`] — the source location of the access.
    pub site: u32,
    /// Address space.
    pub space: ShadowSpace,
    /// Load or store.
    pub op: ShadowOp,
    /// Array handle index (shared arena or global arena, per `space`).
    pub array: u32,
    /// Element index the kernel asked for (pre-suppression).
    pub index: usize,
    /// `false` when the handle was invalid or the index out of bounds —
    /// the access was recorded, then suppressed.
    pub in_bounds: bool,
}

/// One barrier-separated superstep's skeleton and accesses.
#[derive(Debug, Clone)]
pub struct ShadowStep {
    /// The step's phase label.
    pub phase: Phase,
    /// The contiguous active thread range.
    pub active: Range<usize>,
    /// Every access of the step, in execution order (threads run
    /// sequentially, so a thread's accesses are contiguous and ordered).
    pub accesses: Vec<ShadowAccess>,
}

/// The full capture of one block's execution.
#[derive(Debug, Clone, Default)]
pub struct ShadowLog {
    /// Block id the capture ran as.
    pub block_id: usize,
    /// Threads in the block.
    pub block_dim: usize,
    /// Length (elements) of each shared array, in allocation order.
    pub shared_lens: Vec<usize>,
    /// First 32-bit word of each shared array in the arena — the banking
    /// base address used for analytic conflict degrees.
    pub shared_base_words: Vec<usize>,
    /// Words per element (1 for f32, 2 for f64).
    pub words_per_elem: usize,
    /// Length (elements) of each global array at capture time.
    pub global_lens: Vec<usize>,
    /// The executed steps, in order.
    pub steps: Vec<ShadowStep>,
    /// Interned source locations; [`ShadowAccess::site`] indexes here.
    pub sites: Vec<&'static Location<'static>>,
    /// Total events captured.
    pub events: usize,
    /// `true` when the event budget was exhausted — the log is incomplete
    /// and must not be used as proof evidence.
    pub truncated: bool,
}

impl ShadowLog {
    /// The source location of site `s`.
    pub fn site(&self, s: u32) -> &'static Location<'static> {
        self.sites[s as usize]
    }
}

/// Internal capture state attached to a shadowed `BlockCtx`.
#[derive(Debug)]
pub(crate) struct ShadowState {
    log: ShadowLog,
    /// Location pointer -> site id (locations are `'static`, so the
    /// address is a stable identity within a process).
    site_ids: HashMap<usize, u32>,
    budget: usize,
}

impl ShadowState {
    pub(crate) fn new(block_id: usize, block_dim: usize, budget: usize) -> Self {
        Self {
            log: ShadowLog { block_id, block_dim, ..ShadowLog::default() },
            site_ids: HashMap::new(),
            budget,
        }
    }

    /// Starts a new step record.
    pub(crate) fn begin_step(&mut self, phase: Phase, active: Range<usize>) {
        self.log.steps.push(ShadowStep { phase, active, accesses: Vec::new() });
    }

    fn intern(&mut self, loc: &'static Location<'static>) -> u32 {
        let key = loc as *const _ as usize;
        if let Some(&id) = self.site_ids.get(&key) {
            return id;
        }
        let id = self.log.sites.len() as u32;
        self.log.sites.push(loc);
        self.site_ids.insert(key, id);
        id
    }

    /// Records one access. Returns `false` once the budget is exhausted
    /// (the access still executes; only the log stops growing).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        tid: usize,
        loc: &'static Location<'static>,
        space: ShadowSpace,
        op: ShadowOp,
        array: u32,
        index: usize,
        in_bounds: bool,
    ) {
        if self.log.events >= self.budget {
            self.log.truncated = true;
            return;
        }
        self.log.events += 1;
        let site = self.intern(loc);
        let step = self.log.steps.last_mut().expect("shadow access outside a step");
        step.accesses.push(ShadowAccess {
            tid: tid as u32,
            site,
            space,
            op,
            array,
            index,
            in_bounds,
        });
    }

    /// Finalizes the log with the arena geometry captured at finish time.
    pub(crate) fn finish(
        mut self,
        shared_lens: Vec<usize>,
        shared_base_words: Vec<usize>,
        words_per_elem: usize,
        global_lens: Vec<usize>,
    ) -> ShadowLog {
        self.log.shared_lens = shared_lens;
        self.log.shared_base_words = shared_base_words;
        self.log.words_per_elem = words_per_elem;
        self.log.global_lens = global_lens;
        self.log
    }
}
