//! Deterministic fault injection: a chaos layer for the simulated device.
//!
//! The simulated GTX 280 is, by construction, a *perfect* device — every
//! launch succeeds, every store lands, every block finishes on schedule.
//! Real devices are not: production batch solvers live with transient
//! launch failures, ECC misses silently corrupting a result, straggler
//! SMs, and the occasional wholesale device loss. This module makes those
//! adversities **reproducible**: a [`FaultPlan`] installed on a
//! [`crate::Launcher`] draws a deterministic, seed-keyed schedule of
//!
//! * **transient launch failures** — the launch aborts with
//!   [`tridiag_core::TridiagError::DeviceFault`] before any block runs;
//! * **bit flips** — after the kernel completes, one (or several) exponent
//!   bits of elements in global arrays *written by the launch* are flipped,
//!   modelling an ECC miss on the result path (distinct from the
//!   sanitizer's *program* bugs: the kernel is correct, the memory lied);
//! * **NaN poisoning** — a written element is overwritten with NaN;
//! * **SM stalls** — the launch's simulated timing is inflated by a
//!   multiplier (a straggler), numerics untouched;
//! * **sticky device loss** — from a configured launch index onward, every
//!   launch fails with [`tridiag_core::TridiagError::DeviceLost`].
//!
//! Everything is **off by default** and counter-neutral when off: a
//! `Launcher` without a plan (or with an all-zero-rate plan) produces
//! byte-identical counters, timings, and solutions to the pre-fault-layer
//! simulator — mirroring the `SanitizeMode::Off` contract.
//!
//! Determinism: the per-launch decision is a *pure function* of
//! `(seed, launch index)` — not of a shared sequential RNG — so the
//! schedule is independent of thread interleaving; only the assignment of
//! launch indices (one atomic counter per plan) is order-dependent. A
//! sequential driver replays the exact same schedule every run
//! ([`FaultPlan::schedule`] exposes it for pinned tests).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Rates and knobs for one fault plan. All rates are per-launch
/// probabilities in `[0, 1]`; everything defaults to zero (no faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed keying the whole schedule. Same seed + same config ⇒ same
    /// schedule, always.
    pub seed: u64,
    /// Probability that a launch aborts with a transient
    /// [`tridiag_core::TridiagError::DeviceFault`].
    pub launch_failure_rate: f64,
    /// The first `launch_fault_burst` launches *always* fail transiently —
    /// a deterministic adversity window for breaker tests, applied on top
    /// of the stochastic rate.
    pub launch_fault_burst: u64,
    /// Probability that a completed launch has output bits flipped.
    pub bit_flip_rate: f64,
    /// Elements corrupted per bit-flip event (1 = single-event upset).
    pub flips_per_event: u32,
    /// Probability that a completed launch has one output element
    /// overwritten with NaN.
    pub nan_poison_rate: f64,
    /// Probability that a launch is a straggler: its simulated timing is
    /// multiplied by [`FaultConfig::stall_multiplier`].
    pub stall_rate: f64,
    /// Simulated-time inflation factor for straggler launches (> 1).
    pub stall_multiplier: f64,
    /// When set, every launch with index `>= k` fails with
    /// [`tridiag_core::TridiagError::DeviceLost`] — sticky, never recovers.
    pub device_lost_after: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            launch_failure_rate: 0.0,
            launch_fault_burst: 0,
            bit_flip_rate: 0.0,
            flips_per_event: 1,
            nan_poison_rate: 0.0,
            stall_rate: 0.0,
            stall_multiplier: 4.0,
            device_lost_after: None,
        }
    }
}

impl FaultConfig {
    /// A plan that injects nothing — byte-identical behaviour to no plan
    /// at all (the counter-neutrality baseline).
    pub fn quiet(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// The chaos-sweep shorthand: transient launch failures at `launch`,
    /// bit flips at `flip` (single-event, exponent-bit), no stalls.
    pub fn chaos(seed: u64, launch: f64, flip: f64) -> Self {
        Self { seed, launch_failure_rate: launch, bit_flip_rate: flip, ..Self::default() }
    }
}

/// How a launch fails, when it fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// Transient: the launch aborts, a retry may succeed.
    Transient,
    /// Sticky device loss: this and every later launch fails.
    Lost,
}

/// The fault decision for one launch — pure function of (config, index).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaunchDecision {
    /// Abort the launch with this failure, if set.
    pub fail: Option<FailKind>,
    /// Number of output elements to bit-flip after the kernel.
    pub bit_flips: u32,
    /// Number of output elements to poison with NaN after the kernel.
    pub nan_poisons: u32,
    /// Inflate the launch's simulated timing by this factor, if set.
    pub stall: Option<f64>,
}

impl LaunchDecision {
    /// `true` when this launch is completely unaffected.
    pub fn is_clean(&self) -> bool {
        self.fail.is_none() && self.bit_flips == 0 && self.nan_poisons == 0 && self.stall.is_none()
    }
}

/// One fault that was actually applied to a completed launch (failures
/// surface as launch errors instead and never appear here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// An exponent bit of a written global-memory element was flipped.
    BitFlip {
        /// Global array handle index.
        array: u32,
        /// Element index within the array.
        index: usize,
    },
    /// A written global-memory element was overwritten with NaN.
    NanPoison {
        /// Global array handle index.
        array: u32,
        /// Element index within the array.
        index: usize,
    },
    /// The launch's simulated timing was inflated by this factor.
    Stall {
        /// Multiplier applied to the timing report.
        multiplier: f64,
    },
}

/// Aggregate injection counts since the plan was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Launches the plan has adjudicated (failed or not).
    pub launches: u64,
    /// Launches aborted with a transient `DeviceFault`.
    pub launch_failures: u64,
    /// Launches aborted with `DeviceLost`.
    pub device_lost_failures: u64,
    /// Elements bit-flipped post-kernel.
    pub bit_flips: u64,
    /// Elements NaN-poisoned post-kernel.
    pub nan_poisons: u64,
    /// Straggler launches (timing inflated).
    pub stalls: u64,
}

/// A deterministic per-launch fault schedule, shareable (via `Arc`)
/// between launcher clones so all of them draw from one launch counter.
pub struct FaultPlan {
    cfg: FaultConfig,
    next_launch: AtomicU64,
    stats: Mutex<FaultStats>,
}

impl core::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("next_launch", &self.next_launch.load(Ordering::Relaxed))
            .finish()
    }
}

impl FaultPlan {
    /// Creates a plan from `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self { cfg, next_launch: AtomicU64::new(0), stats: Mutex::new(FaultStats::default()) }
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injection counts so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The decision sequence for the first `launches` launches — the
    /// schedule a sequential driver will observe. Pure: two calls with the
    /// same config always agree (the determinism guard pins this).
    pub fn schedule(cfg: &FaultConfig, launches: u64) -> Vec<LaunchDecision> {
        (0..launches).map(|i| decide(cfg, i)).collect()
    }

    /// Claims the next launch index and returns its decision, recording
    /// failure stats. Corruption/stall stats are recorded by the launcher
    /// after it applies them (a decided flip may find nothing to corrupt).
    pub(crate) fn begin_launch(&self) -> (u64, LaunchDecision) {
        let launch = self.next_launch.fetch_add(1, Ordering::Relaxed);
        let decision = decide(&self.cfg, launch);
        let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        stats.launches += 1;
        match decision.fail {
            Some(FailKind::Transient) => stats.launch_failures += 1,
            Some(FailKind::Lost) => stats.device_lost_failures += 1,
            None => {}
        }
        (launch, decision)
    }

    /// Records faults the launcher actually applied.
    pub(crate) fn record_applied(&self, applied: &[InjectedFault]) {
        if applied.is_empty() {
            return;
        }
        let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        for fault in applied {
            match fault {
                InjectedFault::BitFlip { .. } => stats.bit_flips += 1,
                InjectedFault::NanPoison { .. } => stats.nan_poisons += 1,
                InjectedFault::Stall { .. } => stats.stalls += 1,
            }
        }
    }
}

/// The per-launch decision: a pure function of `(cfg, launch index)`.
fn decide(cfg: &FaultConfig, launch: u64) -> LaunchDecision {
    if let Some(k) = cfg.device_lost_after {
        if launch >= k {
            return LaunchDecision { fail: Some(FailKind::Lost), ..Default::default() };
        }
    }
    if launch < cfg.launch_fault_burst {
        return LaunchDecision { fail: Some(FailKind::Transient), ..Default::default() };
    }
    // Independent draws per fault class, each from its own keyed stream so
    // the classes do not alias each other.
    let mut decision = LaunchDecision::default();
    if unit(cfg.seed, launch, 0x1) < cfg.launch_failure_rate {
        decision.fail = Some(FailKind::Transient);
        return decision;
    }
    if unit(cfg.seed, launch, 0x2) < cfg.bit_flip_rate {
        decision.bit_flips = cfg.flips_per_event.max(1);
    }
    if unit(cfg.seed, launch, 0x3) < cfg.nan_poison_rate {
        decision.nan_poisons = 1;
    }
    if unit(cfg.seed, launch, 0x4) < cfg.stall_rate {
        decision.stall = Some(cfg.stall_multiplier.max(1.0));
    }
    decision
}

/// Derives the fault-plan seed for one device of a multi-device pool as a
/// **pure function** of `(pool_seed, device_index)` — no shared RNG, no
/// ordering dependence. Two pools built from the same pool seed therefore
/// replay byte-identical per-device fault schedules regardless of how many
/// devices exist, which device spins up first, or what any other device
/// does: whole-pool chaos runs are reproducible cell by cell.
///
/// Distinct devices draw distinct seeds (the index is mixed through
/// SplitMix64 twice), and device 0's seed differs from the raw pool seed so
/// a single-device pool is *also* decorrelated from a bare launcher using
/// the pool seed directly.
#[inline]
pub fn derive_device_seed(pool_seed: u64, device_index: u64) -> u64 {
    splitmix64(pool_seed ^ splitmix64(device_index.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0xDE71CE))
}

/// Derives the pool seed for one node of a multi-node cluster as a **pure
/// function** of `(cluster_seed, node_index)` — the node-level analogue of
/// [`derive_device_seed`]. Layered together,
/// `derive_device_seed(derive_node_seed(cluster, node), device)` makes every
/// device's fault schedule a pure function of `(cluster seed, node id,
/// device id)`: a node that crashes and restarts rebuilds the exact same
/// per-device plans, and no two devices anywhere in the cluster share a
/// schedule.
///
/// The mixing constant differs from the device layer's so that
/// `derive_node_seed(s, i) != derive_device_seed(s, i)` — node `i`'s pool
/// seed never collides with device `i`'s plan seed under the same parent.
#[inline]
pub fn derive_node_seed(cluster_seed: u64, node_index: u64) -> u64 {
    splitmix64(
        cluster_seed ^ splitmix64(node_index.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7) ^ 0xC1A5_7E12),
    )
}

impl FaultConfig {
    /// This configuration re-keyed for device `device_index` of a pool
    /// seeded with `pool_seed`: every rate and knob is kept, only the seed
    /// is replaced by [`derive_device_seed`].
    pub fn for_device(self, pool_seed: u64, device_index: u64) -> Self {
        Self { seed: derive_device_seed(pool_seed, device_index), ..self }
    }
}

/// SplitMix64 finalizer — the same mixer the offline `rand` shim seeds
/// with, reimplemented here so `gpu-sim` stays dependency-free.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` draw keyed by (seed, launch, stream).
#[inline]
fn unit(seed: u64, launch: u64, stream: u64) -> f64 {
    let bits = splitmix64(seed ^ splitmix64(launch.wrapping_mul(0x517C_C1B7_2722_0A95) ^ stream));
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic element pick for corruption: returns a pseudo-random
/// value keyed by (seed, launch, which corruption event).
#[inline]
pub(crate) fn corrupt_draw(seed: u64, launch: u64, event: u64) -> u64 {
    splitmix64(seed ^ splitmix64(launch ^ 0x0C04_40C7 ^ event.wrapping_mul(0x2545_F491_4F6C_DD1D)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_config_never_faults() {
        let schedule = FaultPlan::schedule(&FaultConfig::quiet(42), 256);
        assert!(schedule.iter().all(LaunchDecision::is_clean));
    }

    #[test]
    fn schedule_is_deterministic() {
        let cfg = FaultConfig {
            seed: 7,
            launch_failure_rate: 0.2,
            bit_flip_rate: 0.1,
            nan_poison_rate: 0.05,
            stall_rate: 0.3,
            ..Default::default()
        };
        assert_eq!(FaultPlan::schedule(&cfg, 512), FaultPlan::schedule(&cfg, 512));
        // Different seeds draw different schedules (overwhelmingly likely).
        let other = FaultConfig { seed: 8, ..cfg };
        assert_ne!(FaultPlan::schedule(&cfg, 512), FaultPlan::schedule(&other, 512));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let cfg = FaultConfig { seed: 3, launch_failure_rate: 0.25, ..Default::default() };
        let n = 4000;
        let fails = FaultPlan::schedule(&cfg, n).iter().filter(|d| d.fail.is_some()).count();
        let rate = fails as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "observed failure rate {rate}");
    }

    #[test]
    fn burst_fails_exactly_the_first_k_launches() {
        let cfg = FaultConfig { seed: 1, launch_fault_burst: 5, ..Default::default() };
        let schedule = FaultPlan::schedule(&cfg, 16);
        for (i, d) in schedule.iter().enumerate() {
            if i < 5 {
                assert_eq!(d.fail, Some(FailKind::Transient), "launch {i}");
            } else {
                assert!(d.is_clean(), "launch {i}");
            }
        }
    }

    #[test]
    fn device_lost_is_sticky_and_wins_over_everything() {
        let cfg = FaultConfig {
            seed: 1,
            launch_fault_burst: 100,
            device_lost_after: Some(3),
            ..Default::default()
        };
        let schedule = FaultPlan::schedule(&cfg, 8);
        assert!(schedule[..3].iter().all(|d| d.fail == Some(FailKind::Transient)));
        assert!(schedule[3..].iter().all(|d| d.fail == Some(FailKind::Lost)));
    }

    #[test]
    fn plan_counts_launches_and_failures() {
        let plan =
            FaultPlan::new(FaultConfig { seed: 1, launch_fault_burst: 2, ..Default::default() });
        for _ in 0..5 {
            let _ = plan.begin_launch();
        }
        let stats = plan.stats();
        assert_eq!(stats.launches, 5);
        assert_eq!(stats.launch_failures, 2);
        assert_eq!(stats.device_lost_failures, 0);
    }

    #[test]
    fn device_seeds_are_pure_distinct_and_decorrelated() {
        // Pure function: same inputs, same seed — across calls and pools.
        assert_eq!(derive_device_seed(42, 3), derive_device_seed(42, 3));
        // Distinct devices draw distinct seeds, and none equals the raw
        // pool seed (device 0 included).
        let seeds: Vec<u64> = (0..16).map(|i| derive_device_seed(42, i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_ne!(a, 42, "device {i} must not reuse the pool seed");
            for (j, &b) in seeds.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "devices {i} and {j} collided");
            }
        }
        // Different pool seeds shift every device.
        assert_ne!(derive_device_seed(42, 0), derive_device_seed(43, 0));
    }

    #[test]
    fn for_device_rekeys_but_keeps_the_rates() {
        let base = FaultConfig { seed: 7, launch_failure_rate: 0.25, ..Default::default() };
        let derived = base.for_device(99, 2);
        assert_eq!(derived.seed, derive_device_seed(99, 2));
        assert_eq!(derived.launch_failure_rate, 0.25);
        // The derived schedule is exactly the schedule of the derived seed.
        let direct = FaultConfig { seed: derive_device_seed(99, 2), ..base };
        assert_eq!(FaultPlan::schedule(&derived, 128), FaultPlan::schedule(&direct, 128));
    }

    #[test]
    fn failed_launches_do_not_also_corrupt() {
        let cfg = FaultConfig {
            seed: 9,
            launch_failure_rate: 1.0,
            bit_flip_rate: 1.0,
            nan_poison_rate: 1.0,
            stall_rate: 1.0,
            ..Default::default()
        };
        for d in FaultPlan::schedule(&cfg, 32) {
            assert_eq!(d.fail, Some(FailKind::Transient));
            assert_eq!(d.bit_flips, 0);
            assert_eq!(d.nan_poisons, 0);
            assert_eq!(d.stall, None);
        }
    }
}
