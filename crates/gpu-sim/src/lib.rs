//! # gpu-sim
//!
//! A deterministic SIMT GPU simulator — the hardware substrate for the
//! PPoPP 2010 tridiagonal-solver reproduction. Since no GTX 280 (nor any
//! GPU) is available in this environment, the kernels of the paper run on
//! this simulator instead. It models exactly the mechanisms the paper's
//! analysis hinges on:
//!
//! * **warps** (32 threads) as the smallest unit of issued work, with
//!   shared memory serviced per **half-warp** of 16 threads;
//! * **16 word-interleaved shared-memory banks** with per-instruction
//!   conflict-degree accounting (the `n-way bank conflict` of Figure 9);
//! * **bulk-synchronous supersteps** with buffered stores, matching the
//!   `__syncthreads()`-separated read/write pattern of the CUDA kernels;
//! * **warp-granular arithmetic issue** with separately-priced divisions;
//! * **occupancy** (blocks resident per SM limited by shared memory,
//!   block slots, threads) and wave-quantized grid execution;
//! * a calibrated **cost model** turning the counters into simulated time,
//!   plus global-memory and PCIe bandwidth models.
//!
//! Numerics are bit-faithful: kernels perform real `f32`/`f64` arithmetic,
//! so accuracy experiments (Figure 18) are as meaningful as on hardware.
//!
//! ```
//! use gpu_sim::{BlockCtx, GridKernel, Launcher, Phase};
//! use gpu_sim::memory::global::{GlobalArray, GlobalMem};
//!
//! /// Adds 1.0 to every element of each block's slice.
//! struct AddOne { n: usize, data: GlobalArray<f32> }
//!
//! impl GridKernel<f32> for AddOne {
//!     fn block_dim(&self) -> usize { self.n }
//!     fn shared_words(&self) -> usize { self.n }
//!     fn run_block(&self, block: usize, ctx: &mut BlockCtx<'_, f32>) {
//!         let buf = ctx.alloc(self.n);
//!         let base = block * self.n;
//!         ctx.step(Phase::GlobalLoad, 0..self.n, |t| {
//!             let v = t.load_global(self.data, base + t.tid());
//!             t.store(buf, t.tid(), v);
//!         });
//!         ctx.step(Phase::GlobalStore, 0..self.n, |t| {
//!             let v = t.load(buf, t.tid());
//!             let v = t.add(v, 1.0);
//!             t.store_global(self.data, base + t.tid(), v);
//!         });
//!     }
//! }
//!
//! let mut gmem = GlobalMem::new();
//! let data = gmem.upload(vec![0.0f32; 64]);
//! let kernel = AddOne { n: 32, data };
//! let report = Launcher::gtx280().launch(&kernel, 2, &mut gmem).unwrap();
//! assert_eq!(gmem.view(data), vec![1.0f32; 64].as_slice());
//! assert!(report.timing.kernel_ms > 0.0);
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod clock;
pub mod cost;
pub mod counters;
pub mod device;
pub mod exec;
pub mod fault;
pub mod memory;
pub mod occupancy;
pub mod profile;
pub mod sanitize;
pub mod scan;
pub mod trace;

pub use advisor::{analyze, Advice, Category, Finding};
pub use clock::{tick_duration, Clock, Tick};
pub use cost::{CostModel, StepCost};
pub use counters::{KernelStats, Phase, StepRecord};
pub use device::DeviceConfig;
pub use exec::block::{BlockCtx, ThreadCtx};
pub use exec::grid::{GridKernel, LaunchReport, Launcher};
pub use exec::shadow::{ShadowAccess, ShadowLog, ShadowOp, ShadowSpace, ShadowStep};
pub use fault::{
    derive_device_seed, derive_node_seed, FailKind, FaultConfig, FaultPlan, FaultStats,
    InjectedFault, LaunchDecision,
};
pub use memory::global::{GlobalArray, GlobalMem};
pub use memory::shared::{Shared, SharedMem};
pub use occupancy::{occupancy, waves, Limiter, Occupancy};
pub use profile::{time_launch, time_launch_with_efficiency, PhaseTime, StepTime, TimingReport};
pub use sanitize::{
    diagnostics_to_json, Diagnostic, DiagnosticKind, SanitizeMode, SanitizeOptions, Severity,
};
pub use scan::{hillis_steele, scan_add};
