//! Shared-memory bank-conflict analysis.
//!
//! GT200 shared memory maps sequential 32-bit words to sequential banks
//! (16 banks) and services one *half-warp* (16 threads) per instruction.
//! Threads of a half-warp that touch **distinct words in the same bank**
//! serialize; all threads reading the *same* word are satisfied by a
//! broadcast. The conflict degree of an instruction is therefore the
//! maximum, over banks, of the number of distinct words addressed in that
//! bank — exactly the `n-way bank conflict` annotation of the paper's
//! Figure 9.

/// Computes the conflict degree of one half-warp shared-memory instruction.
///
/// `words` are the 32-bit word addresses touched by the participating lanes
/// (inactive lanes simply don't contribute). Returns 1 for a conflict-free
/// (or broadcast) access; an empty slice yields 0 (no instruction issued).
pub fn conflict_degree(words: &[u32], banks: usize) -> u32 {
    if words.is_empty() {
        return 0;
    }
    debug_assert!(banks.is_power_of_two() && banks <= 32);
    // Distinct words per bank. Half-warps have at most 16 lanes, so a tiny
    // fixed-size scratch table beats hashing.
    let mut distinct: [heapless_set::WordSet; 32] =
        core::array::from_fn(|_| heapless_set::WordSet::new());
    let mask = (banks - 1) as u32;
    for &w in words {
        distinct[(w & mask) as usize].insert(w);
    }
    distinct.iter().map(|s| s.len() as u32).max().unwrap_or(0).max(1)
}

/// A tiny fixed-capacity set of words (a half-warp has <= 16 lanes, so at
/// most 16 distinct words can land in one bank).
mod heapless_set {
    pub struct WordSet {
        items: [u32; 16],
        len: usize,
    }

    impl WordSet {
        pub const fn new() -> Self {
            Self { items: [0; 16], len: 0 }
        }

        pub fn insert(&mut self, w: u32) {
            if !self.items[..self.len].contains(&w) {
                debug_assert!(self.len < 16, "more than 16 lanes in a half-warp?");
                self.items[self.len] = w;
                self.len += 1;
            }
        }

        pub fn len(&self) -> usize {
            self.len
        }
    }
}

/// Conflict degree of a strided access pattern: lane `l` of `lanes` touches
/// word `base + l * stride`. This is the pattern cyclic reduction generates
/// (stride doubling each forward-reduction step). Exposed for tests and for
/// the analytic Figure 9 annotations.
pub fn strided_conflict_degree(lanes: usize, stride: usize, banks: usize) -> u32 {
    let words: Vec<u32> = (0..lanes).map(|l| (l * stride) as u32).collect();
    conflict_degree(&words, banks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(strided_conflict_degree(16, 1, 16), 1);
        assert_eq!(strided_conflict_degree(8, 1, 16), 1);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let words = [5u32; 16];
        assert_eq!(conflict_degree(&words, 16), 1);
    }

    #[test]
    fn empty_access_is_zero() {
        assert_eq!(conflict_degree(&[], 16), 0);
    }

    #[test]
    fn paper_figure9_degrees() {
        // Figure 9 annotates CR's forward reduction steps as
        // (threads, warps, n-way bank conflicts):
        // (256,8,2) (128,4,4) (64,2,8) (32,1,16) (16,1,16) (8,1,8) (4,1,4) (2,1,2)
        // The access stride at step s is 2^(s+1).
        let expect = [
            (256usize, 2usize, 2u32),
            (128, 4, 4),
            (64, 8, 8),
            (32, 16, 16),
            (16, 32, 16),
            (8, 64, 8),
            (4, 128, 4),
            (2, 256, 2),
        ];
        for (threads, stride, degree) in expect {
            let lanes = threads.min(16); // one half-warp
            assert_eq!(
                strided_conflict_degree(lanes, stride, 16),
                degree,
                "threads={threads} stride={stride}"
            );
        }
    }

    #[test]
    fn odd_strides_are_conflict_free() {
        for stride in [1usize, 3, 5, 7, 15, 17] {
            assert_eq!(strided_conflict_degree(16, stride, 16), 1, "stride {stride}");
        }
    }

    #[test]
    fn stride_two_with_full_halfwarp() {
        // 16 lanes, stride 2 -> words 0,2,...,30 -> banks 0,2,...,14 twice.
        assert_eq!(strided_conflict_degree(16, 2, 16), 2);
    }

    #[test]
    fn partial_halfwarp_reduces_degree() {
        // Only 4 lanes at stride 16: words 0,16,32,48 -> all bank 0 -> 4-way.
        assert_eq!(strided_conflict_degree(4, 16, 16), 4);
    }

    #[test]
    fn mixed_pattern() {
        // Two lanes broadcast on word 0 plus words 16 and 32: bank 0 holds
        // three distinct words -> 3-way conflict.
        let words = [0u32, 0, 16, 32];
        assert_eq!(conflict_degree(&words, 16), 3);
    }
}
