//! Device "global memory": flat typed arrays shared by all blocks.
//!
//! The solvers only touch global memory at the very beginning and end of a
//! kernel ("global memory communication only occurs at the beginning and end
//! of all algorithms", §4), always with unit-stride, coalesced patterns, so
//! the model is a simple bandwidth-bound arena — no transaction splitting.

use core::marker::PhantomData;
use tridiag_core::Real;

/// Handle to a global-memory array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalArray<T> {
    pub(crate) index: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

/// Global memory of the simulated device.
#[derive(Debug, Clone, Default)]
pub struct GlobalMem<T: Real> {
    arrays: Vec<Vec<T>>,
    /// One flag per array: set by kernel-side [`GlobalMem::write`] since the
    /// last [`GlobalMem::clear_dirty`]. The fault layer uses this to target
    /// corruption at launch *outputs* only (an ECC miss on data the kernel
    /// never touched would be invisible to the run anyway).
    dirty: Vec<bool>,
}

impl<T: Real> GlobalMem<T> {
    /// Empty global memory.
    pub fn new() -> Self {
        Self { arrays: Vec::new(), dirty: Vec::new() }
    }

    /// Uploads `data` (think `cudaMemcpy` host-to-device) and returns the
    /// device handle.
    pub fn upload(&mut self, data: Vec<T>) -> GlobalArray<T> {
        let index = self.arrays.len() as u32;
        self.arrays.push(data);
        self.dirty.push(false);
        GlobalArray { index, _marker: PhantomData }
    }

    /// Allocates a zero-filled output array.
    pub fn alloc_zeroed(&mut self, len: usize) -> GlobalArray<T> {
        self.upload(vec![T::ZERO; len])
    }

    /// Read-only view (host-side inspection after a launch).
    pub fn view(&self, arr: GlobalArray<T>) -> &[T] {
        &self.arrays[arr.index as usize]
    }

    /// Downloads an array back to the host, consuming the device copy's
    /// contents (the handle stays valid but reads as empty).
    pub fn download(&mut self, arr: GlobalArray<T>) -> Vec<T> {
        core::mem::take(&mut self.arrays[arr.index as usize])
    }

    /// Element read used by kernels.
    #[inline]
    pub(crate) fn read(&self, arr: GlobalArray<T>, i: usize) -> T {
        self.arrays[arr.index as usize][i]
    }

    /// Element write used by kernels.
    #[inline]
    pub(crate) fn write(&mut self, arr: GlobalArray<T>, i: usize, v: T) {
        self.arrays[arr.index as usize][i] = v;
        self.dirty[arr.index as usize] = true;
    }

    /// Clears all dirty flags (called by the launcher before a kernel runs
    /// when a fault plan is installed).
    pub(crate) fn clear_dirty(&mut self) {
        for d in &mut self.dirty {
            *d = false;
        }
    }

    /// Indices of arrays written since the last [`GlobalMem::clear_dirty`],
    /// restricted to non-empty arrays.
    pub(crate) fn dirty_arrays(&self) -> Vec<u32> {
        self.dirty
            .iter()
            .enumerate()
            .filter(|&(i, &d)| d && !self.arrays[i].is_empty())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Raw element read by array index (fault-injection path; no handle).
    #[inline]
    pub(crate) fn read_raw(&self, array: u32, i: usize) -> T {
        self.arrays[array as usize][i]
    }

    /// Raw element write by array index (fault-injection path; does not
    /// mark the array dirty — corruption is not kernel output).
    #[inline]
    pub(crate) fn write_raw(&mut self, array: u32, i: usize, v: T) {
        self.arrays[array as usize][i] = v;
    }

    /// Length of an array by raw index (fault-injection path).
    #[inline]
    pub(crate) fn len_raw(&self, array: u32) -> usize {
        self.arrays[array as usize].len()
    }

    /// Length of an array.
    pub fn len_of(&self, arr: GlobalArray<T>) -> usize {
        self.arrays[arr.index as usize].len()
    }

    /// Number of arrays allocated (used to validate handles).
    #[inline]
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_view_download() {
        let mut g = GlobalMem::<f32>::new();
        let h = g.upload(vec![1.0, 2.0, 3.0]);
        assert_eq!(g.view(h), &[1.0, 2.0, 3.0]);
        assert_eq!(g.len_of(h), 3);
        g.write(h, 1, 9.0);
        assert_eq!(g.read(h, 1), 9.0);
        let back = g.download(h);
        assert_eq!(back, vec![1.0, 9.0, 3.0]);
        assert!(g.view(h).is_empty());
    }

    #[test]
    fn alloc_zeroed() {
        let mut g = GlobalMem::<f64>::new();
        let h = g.alloc_zeroed(4);
        assert_eq!(g.view(h), &[0.0; 4]);
    }

    #[test]
    fn dirty_tracking_marks_kernel_writes_only() {
        let mut g = GlobalMem::<f32>::new();
        let a = g.upload(vec![1.0, 2.0]);
        let b = g.alloc_zeroed(2);
        assert!(g.dirty_arrays().is_empty());
        g.write(b, 0, 5.0);
        assert_eq!(g.dirty_arrays(), vec![b.index]);
        g.clear_dirty();
        assert!(g.dirty_arrays().is_empty());
        // Raw writes (corruption) do not mark dirty.
        g.write_raw(a.index, 0, 9.0);
        assert!(g.dirty_arrays().is_empty());
        assert_eq!(g.read_raw(a.index, 0), 9.0);
        assert_eq!(g.len_raw(b.index), 2);
    }
}
