//! Memory models: banked shared memory and flat global memory.

pub mod banks;
pub mod global;
pub mod shared;
