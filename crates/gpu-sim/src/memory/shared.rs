//! Per-block shared memory: a word-addressed arena of typed arrays.
//!
//! Kernels allocate arrays up front (mirroring `__shared__` declarations),
//! then access elements through [`crate::exec::block::ThreadCtx`]. The arena tracks
//! each array's base *word* offset so the bank of every element access is
//! known — banking is word-based, so an `f64` element spans two banks and a
//! second array's base shifts its elements' banks, exactly as on hardware.

use core::marker::PhantomData;
use tridiag_core::Real;

/// Handle to a shared-memory array (a `__shared__ T arr[len]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shared<T> {
    pub(crate) index: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

/// The shared-memory arena of one block.
#[derive(Debug, Clone)]
pub struct SharedMem<T: Real> {
    arrays: Vec<Vec<T>>,
    base_words: Vec<usize>,
    next_word: usize,
}

impl<T: Real> SharedMem<T> {
    /// Empty arena.
    pub fn new() -> Self {
        Self { arrays: Vec::new(), base_words: Vec::new(), next_word: 0 }
    }

    /// Allocates a zero-initialized array of `len` elements and returns its
    /// handle. Allocation order determines bank placement (as declaration
    /// order does in CUDA).
    pub fn alloc(&mut self, len: usize) -> Shared<T> {
        let index = self.arrays.len() as u32;
        self.base_words.push(self.next_word);
        self.next_word += len * T::SHARED_WORDS;
        self.arrays.push(vec![T::ZERO; len]);
        Shared { index, _marker: PhantomData }
    }

    /// Total footprint in 32-bit words.
    #[inline]
    pub fn words_used(&self) -> usize {
        self.next_word
    }

    /// Total footprint in bytes.
    #[inline]
    pub fn bytes_used(&self) -> usize {
        self.next_word * 4
    }

    /// First 32-bit word address of element `i` of `arr` (drives banking).
    #[inline]
    pub fn word_of(&self, arr: Shared<T>, i: usize) -> u32 {
        (self.base_words[arr.index as usize] + i * T::SHARED_WORDS) as u32
    }

    /// Reads element `i` of `arr`.
    #[inline]
    pub fn read(&self, arr: Shared<T>, i: usize) -> T {
        self.arrays[arr.index as usize][i]
    }

    /// Writes element `i` of `arr` (used when applying buffered stores).
    #[inline]
    pub fn write(&mut self, arr: Shared<T>, i: usize, v: T) {
        self.arrays[arr.index as usize][i] = v;
    }

    /// Length of `arr`.
    #[inline]
    pub fn len_of(&self, arr: Shared<T>) -> usize {
        self.arrays[arr.index as usize].len()
    }

    /// Read-only view of a whole array (debugging / final copies).
    pub fn as_slice(&self, arr: Shared<T>) -> &[T] {
        &self.arrays[arr.index as usize]
    }
}

impl<T: Real> Default for SharedMem<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A store buffered during a superstep and applied at its closing barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PendingStore<T> {
    pub array: u32,
    pub index: usize,
    pub value: T,
    /// Thread that issued the store — only for race diagnostics.
    pub tid: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_packs_words_sequentially() {
        let mut m = SharedMem::<f32>::new();
        let a = m.alloc(8);
        let b = m.alloc(4);
        assert_eq!(m.word_of(a, 0), 0);
        assert_eq!(m.word_of(a, 7), 7);
        assert_eq!(m.word_of(b, 0), 8);
        assert_eq!(m.words_used(), 12);
        assert_eq!(m.bytes_used(), 48);
    }

    #[test]
    fn f64_elements_span_two_words() {
        let mut m = SharedMem::<f64>::new();
        let a = m.alloc(4);
        let b = m.alloc(2);
        assert_eq!(m.word_of(a, 1), 2);
        assert_eq!(m.word_of(b, 0), 8);
        assert_eq!(m.words_used(), 12);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = SharedMem::<f32>::new();
        let a = m.alloc(4);
        m.write(a, 2, 7.5);
        assert_eq!(m.read(a, 2), 7.5);
        assert_eq!(m.read(a, 0), 0.0);
        assert_eq!(m.len_of(a), 4);
        assert_eq!(m.as_slice(a), &[0.0, 0.0, 7.5, 0.0]);
    }
}
