//! Per-block shared memory: a word-addressed arena of typed arrays.
//!
//! Kernels allocate arrays up front (mirroring `__shared__` declarations),
//! then access elements through [`crate::exec::block::ThreadCtx`]. The arena tracks
//! each array's base *word* offset so the bank of every element access is
//! known — banking is word-based, so an `f64` element spans two banks and a
//! second array's base shifts its elements' banks, exactly as on hardware.
//!
//! Storage is one flat element arena (like the hardware's single shared
//! address space) with per-array `[base, base+len)` extents; element access
//! bounds-checks against the owning array's extent in debug builds so an
//! off-by-one cannot silently read a neighbouring array's words.

use core::marker::PhantomData;
use core::panic::Location;
use tridiag_core::Real;

/// Handle to a shared-memory array (a `__shared__ T arr[len]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shared<T> {
    pub(crate) index: u32,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

/// Extent of one allocated array inside the flat arena.
#[derive(Debug, Clone, Copy)]
struct ArrayMeta {
    /// First 32-bit word of the array (drives banking).
    base_word: usize,
    /// First element inside the flat `storage` arena.
    base_elem: usize,
    /// Number of elements.
    len: usize,
}

/// The shared-memory arena of one block.
///
/// All arrays share one flat `Vec<T>` — exactly like `__shared__` buffers
/// carved out of the block's single shared-memory segment. `read`/`write`
/// assert `i < len` of the *owning* array in debug builds; release builds
/// keep the raw arena indexing (a neighbouring-array read would be the
/// silent hardware behaviour, which the sanitizer reports instead).
#[derive(Debug, Clone)]
pub struct SharedMem<T: Real> {
    storage: Vec<T>,
    metas: Vec<ArrayMeta>,
    next_word: usize,
}

impl<T: Real> SharedMem<T> {
    /// Empty arena.
    pub fn new() -> Self {
        Self { storage: Vec::new(), metas: Vec::new(), next_word: 0 }
    }

    /// Allocates a zero-initialized array of `len` elements and returns its
    /// handle. Allocation order determines bank placement (as declaration
    /// order does in CUDA).
    pub fn alloc(&mut self, len: usize) -> Shared<T> {
        let index = self.metas.len() as u32;
        self.metas.push(ArrayMeta {
            base_word: self.next_word,
            base_elem: self.storage.len(),
            len,
        });
        self.next_word += len * T::SHARED_WORDS;
        self.storage.extend(core::iter::repeat_n(T::ZERO, len));
        Shared { index, _marker: PhantomData }
    }

    /// Number of arrays allocated so far.
    #[inline]
    pub fn num_arrays(&self) -> usize {
        self.metas.len()
    }

    /// Total footprint in 32-bit words.
    #[inline]
    pub fn words_used(&self) -> usize {
        self.next_word
    }

    /// Total footprint in bytes.
    #[inline]
    pub fn bytes_used(&self) -> usize {
        self.next_word * 4
    }

    /// First 32-bit word address of element `i` of `arr` (drives banking).
    #[inline]
    pub fn word_of(&self, arr: Shared<T>, i: usize) -> u32 {
        (self.metas[arr.index as usize].base_word + i * T::SHARED_WORDS) as u32
    }

    /// Reads element `i` of `arr`.
    #[inline]
    pub fn read(&self, arr: Shared<T>, i: usize) -> T {
        let meta = self.metas[arr.index as usize];
        debug_assert!(
            i < meta.len,
            "shared read out of bounds: array {} has {} elements, index {}",
            arr.index,
            meta.len,
            i
        );
        self.storage[meta.base_elem + i]
    }

    /// Writes element `i` of `arr` (used when applying buffered stores).
    #[inline]
    pub fn write(&mut self, arr: Shared<T>, i: usize, v: T) {
        let meta = self.metas[arr.index as usize];
        debug_assert!(
            i < meta.len,
            "shared write out of bounds: array {} has {} elements, index {}",
            arr.index,
            meta.len,
            i
        );
        self.storage[meta.base_elem + i] = v;
    }

    /// Length of `arr`.
    #[inline]
    pub fn len_of(&self, arr: Shared<T>) -> usize {
        self.metas[arr.index as usize].len
    }

    /// Read-only view of a whole array (debugging / final copies).
    pub fn as_slice(&self, arr: Shared<T>) -> &[T] {
        let meta = self.metas[arr.index as usize];
        &self.storage[meta.base_elem..meta.base_elem + meta.len]
    }
}

impl<T: Real> Default for SharedMem<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A store buffered during a superstep and applied at its closing barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PendingStore<T> {
    pub array: u32,
    pub index: usize,
    pub value: T,
    /// Thread that issued the store — only for race diagnostics.
    pub tid: usize,
    /// Source location of the `store` call — only for diagnostics.
    pub loc: &'static Location<'static>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_packs_words_sequentially() {
        let mut m = SharedMem::<f32>::new();
        let a = m.alloc(8);
        let b = m.alloc(4);
        assert_eq!(m.word_of(a, 0), 0);
        assert_eq!(m.word_of(a, 7), 7);
        assert_eq!(m.word_of(b, 0), 8);
        assert_eq!(m.words_used(), 12);
        assert_eq!(m.bytes_used(), 48);
        assert_eq!(m.num_arrays(), 2);
    }

    #[test]
    fn f64_elements_span_two_words() {
        let mut m = SharedMem::<f64>::new();
        let a = m.alloc(4);
        let b = m.alloc(2);
        assert_eq!(m.word_of(a, 1), 2);
        assert_eq!(m.word_of(b, 0), 8);
        assert_eq!(m.words_used(), 12);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = SharedMem::<f32>::new();
        let a = m.alloc(4);
        m.write(a, 2, 7.5);
        assert_eq!(m.read(a, 2), 7.5);
        assert_eq!(m.read(a, 0), 0.0);
        assert_eq!(m.len_of(a), 4);
        assert_eq!(m.as_slice(a), &[0.0, 0.0, 7.5, 0.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "shared read out of bounds")]
    fn debug_read_checks_owning_array_len() {
        let mut m = SharedMem::<f32>::new();
        let a = m.alloc(4);
        let _b = m.alloc(4);
        // Index 4 is in the arena (array b's first element) but out of
        // bounds for a — must not silently read the neighbour.
        m.read(a, 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "shared write out of bounds")]
    fn debug_write_checks_owning_array_len() {
        let mut m = SharedMem::<f32>::new();
        let a = m.alloc(2);
        let _b = m.alloc(2);
        m.write(a, 2, 1.0);
    }
}
