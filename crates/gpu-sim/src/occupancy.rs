//! Occupancy: how many blocks fit concurrently on one SM.
//!
//! The paper attributes the sub-linear speedup from 256×256 to 512×512 to
//! occupancy: "the system size is too large to fit multiple blocks running
//! simultaneously on a GPU multiprocessor, which hurts the performance".
//! On GT200, residency is limited by shared memory, the block cap, and the
//! thread cap (registers are not the limiter for these kernels, per §5.3).

use crate::device::DeviceConfig;
use serde::Serialize;
use tridiag_core::{Result, TridiagError};

/// Residency of a kernel configuration on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Occupancy {
    /// Concurrent blocks per SM.
    pub blocks_per_sm: usize,
    /// Which resource limits residency.
    pub limiter: Limiter,
}

/// The resource that capped `blocks_per_sm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Limiter {
    /// 16 KB of shared memory per SM.
    SharedMemory,
    /// The hardware cap of 8 blocks per SM.
    BlockSlots,
    /// The hardware cap of 1024 threads per SM.
    Threads,
}

/// Computes occupancy, or fails if a single block cannot fit at all.
pub fn occupancy(
    device: &DeviceConfig,
    shared_bytes_per_block: usize,
    threads_per_block: usize,
) -> Result<Occupancy> {
    if threads_per_block == 0 || threads_per_block > device.max_threads_per_block {
        return Err(TridiagError::InvalidConfig { what: "threads per block out of range" });
    }
    let total_bytes = shared_bytes_per_block + device.shared_mem_reserved_per_block;
    if total_bytes > device.shared_mem_per_sm {
        return Err(TridiagError::SharedMemExceeded {
            required_bytes: total_bytes,
            available_bytes: device.shared_mem_per_sm,
        });
    }
    let by_shared = device.shared_mem_per_sm / total_bytes.max(1);
    let by_threads = device.max_threads_per_sm / threads_per_block;
    let by_slots = device.max_blocks_per_sm;

    let blocks = by_shared.min(by_threads).min(by_slots).max(1);
    // `max(1)` can only trigger via by_threads==0, excluded above; keep the
    // invariant explicit anyway.
    let limiter = if blocks == by_shared {
        Limiter::SharedMemory
    } else if blocks == by_threads {
        Limiter::Threads
    } else {
        Limiter::BlockSlots
    };
    Ok(Occupancy { blocks_per_sm: blocks, limiter })
}

/// Number of sequential "waves" needed to run `blocks` blocks.
pub fn waves(device: &DeviceConfig, occ: Occupancy, blocks: usize) -> usize {
    let concurrent = device.num_sms * occ.blocks_per_sm;
    blocks.div_ceil(concurrent).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr512_is_shared_limited_to_one_block() {
        // CR on n=512: 5 arrays x 512 x 4 B = 10240 B -> 1 block/SM.
        let d = DeviceConfig::gtx280();
        let o = occupancy(&d, 10240, 256).unwrap();
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn n256_fits_three_blocks() {
        let d = DeviceConfig::gtx280();
        // 5 x 256 x 4 = 5120 B -> 3 blocks by shared memory; 128 threads
        // per block allows 8 by threads; cap is 8.
        let o = occupancy(&d, 5120, 128).unwrap();
        assert_eq!(o.blocks_per_sm, 3);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn small_blocks_hit_slot_cap() {
        let d = DeviceConfig::gtx280();
        let o = occupancy(&d, 64, 32).unwrap();
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, Limiter::BlockSlots);
    }

    #[test]
    fn thread_cap_limits() {
        let d = DeviceConfig::gtx280();
        let o = occupancy(&d, 64, 512).unwrap();
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::Threads);
    }

    #[test]
    fn oversized_shared_is_rejected() {
        let d = DeviceConfig::gtx280();
        let err = occupancy(&d, 20 * 1024, 256).unwrap_err();
        assert!(matches!(err, TridiagError::SharedMemExceeded { .. }));
    }

    #[test]
    fn oversized_block_is_rejected() {
        let d = DeviceConfig::gtx280();
        assert!(occupancy(&d, 1024, 1024).is_err());
        assert!(occupancy(&d, 1024, 0).is_err());
    }

    #[test]
    fn wave_math() {
        let d = DeviceConfig::gtx280();
        let o = occupancy(&d, 10240, 256).unwrap(); // 1 block/SM, 30 concurrent
        assert_eq!(waves(&d, o, 512), 18); // ceil(512/30)
        assert_eq!(waves(&d, o, 30), 1);
        assert_eq!(waves(&d, o, 1), 1);
        assert_eq!(waves(&d, o, 31), 2);
    }
}
