//! Turns per-block counters into grid-level simulated time — the analogue
//! of the paper's differential timing plus its Figure 10/12/14 resource
//! breakdowns.

use crate::cost::CostModel;
use crate::counters::{KernelStats, Phase};
use crate::device::DeviceConfig;
use crate::occupancy::{occupancy, waves, Occupancy};
use serde::Serialize;
use tridiag_core::Result;

/// Simulated time of one superstep at grid level (all waves).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StepTime {
    /// Phase the step belongs to.
    pub phase: Phase,
    /// Total milliseconds attributed to this step across the launch.
    pub ms: f64,
    /// Shared-memory portion.
    pub shared_ms: f64,
    /// Arithmetic portion.
    pub compute_ms: f64,
    /// Synchronization/control portion (after occupancy hiding).
    pub overhead_ms: f64,
    /// Active threads in the step.
    pub active_threads: usize,
    /// Warps spanned by the active threads.
    pub warps: usize,
    /// Worst bank-conflict degree in the step.
    pub max_conflict_degree: u32,
}

/// Milliseconds per phase (the paper's pie-chart entries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseTime {
    /// Phase label.
    pub phase: Phase,
    /// Total milliseconds (includes this phase's share of global traffic).
    pub ms: f64,
    /// Number of supersteps in the phase.
    pub steps: usize,
}

/// Full simulated timing of a kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimingReport {
    /// Kernel time in milliseconds (no PCIe transfer).
    pub kernel_ms: f64,
    /// PCIe transfer milliseconds (0 unless [`TimingReport::with_transfer`]
    /// was applied).
    pub transfer_ms: f64,
    /// Global-memory access portion of `kernel_ms`.
    pub global_ms: f64,
    /// Shared-memory access portion of `kernel_ms`.
    pub shared_ms: f64,
    /// Computation portion *including* sync/control overhead — the paper
    /// folds overhead into computation ("Control and synchronization
    /// overhead is included in the computation time").
    pub compute_ms: f64,
    /// The sync/control overhead broken out of `compute_ms`.
    pub overhead_ms: f64,
    /// Exposed serial dependent-load latency (coarse-grained kernels);
    /// included in `kernel_ms`, zero for the bulk-synchronous solvers.
    pub latency_ms: f64,
    /// Per-step grid-level times, in execution order.
    pub per_step: Vec<StepTime>,
    /// Per-phase aggregation (global phases include global traffic time).
    pub per_phase: Vec<PhaseTime>,
    /// Achieved global memory bandwidth, GB/s.
    pub achieved_global_gbps: f64,
    /// Achieved shared memory bandwidth (thread-level bytes / shared time),
    /// GB/s — the paper's 33 GB/s (CR) vs 883 GB/s (PCR) comparison.
    pub achieved_shared_gbps: f64,
    /// Achieved computation rate, GFLOPS (ops / compute time incl. overhead).
    pub gflops: f64,
    /// Blocks in the launch.
    pub blocks: usize,
    /// Residency per SM.
    pub occupancy: Occupancy,
    /// Sequential *scheduling* waves of resident block sets
    /// (`ceil(blocks / (SMs * blocks_per_sm))`) — informational; grid time
    /// scales with blocks assigned per SM.
    pub waves: usize,
}

impl TimingReport {
    /// Total milliseconds including any PCIe transfer.
    pub fn total_ms(&self) -> f64 {
        self.kernel_ms + self.transfer_ms
    }

    /// Adds a PCIe transfer of `bytes` to the report (the paper's
    /// "with data transfer" variant of Figures 6 and 7).
    pub fn with_transfer(mut self, cost: &CostModel, bytes: u64) -> Self {
        self.transfer_ms = cost.pcie_seconds(bytes) * 1e3;
        self
    }

    /// Steps belonging to `phase`.
    pub fn steps_in_phase(&self, phase: Phase) -> impl Iterator<Item = &StepTime> {
        self.per_step.iter().filter(move |s| s.phase == phase)
    }

    /// Milliseconds of `phase` (0 if absent).
    pub fn phase_ms(&self, phase: Phase) -> f64 {
        self.per_phase.iter().find(|p| p.phase == phase).map_or(0.0, |p| p.ms)
    }

    /// Uniformly stretches the launch by `factor` (>= 1): every time field is
    /// multiplied and every achieved rate divided. Used by the fault layer to
    /// model an SM straggler inflating one launch's wall-clock without
    /// changing *what* the kernel did (counters are untouched).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "stall factor must be positive");
        self.kernel_ms *= factor;
        self.transfer_ms *= factor;
        self.global_ms *= factor;
        self.shared_ms *= factor;
        self.compute_ms *= factor;
        self.overhead_ms *= factor;
        self.latency_ms *= factor;
        for s in &mut self.per_step {
            s.ms *= factor;
            s.shared_ms *= factor;
            s.compute_ms *= factor;
            s.overhead_ms *= factor;
        }
        for p in &mut self.per_phase {
            p.ms *= factor;
        }
        self.achieved_global_gbps /= factor;
        self.achieved_shared_gbps /= factor;
        self.gflops /= factor;
        self
    }
}

/// Computes the grid-level timing of a launch of `blocks` identical blocks
/// whose per-block counters are `stats`, at full global-memory coalescing.
pub fn time_launch(
    device: &DeviceConfig,
    cost: &CostModel,
    stats: &KernelStats,
    blocks: usize,
) -> Result<TimingReport> {
    time_launch_with_efficiency(device, cost, stats, blocks, 1.0)
}

/// [`time_launch`] with an explicit global-memory coalescing efficiency
/// (fraction of peak bandwidth the kernel's access pattern achieves).
pub fn time_launch_with_efficiency(
    device: &DeviceConfig,
    cost: &CostModel,
    stats: &KernelStats,
    blocks: usize,
    global_efficiency: f64,
) -> Result<TimingReport> {
    assert!(global_efficiency > 0.0 && global_efficiency <= 1.0);
    let occ = occupancy(device, stats.shared_words * 4, stats.block_dim)?;
    let n_waves = waves(device, occ, blocks);
    let k = occ.blocks_per_sm as f64;
    // Overhead partially hidden when several blocks are resident per SM.
    let overhead_scale = (1.0 - cost.hideable_fraction) + cost.hideable_fraction / k;
    // Throughput model: each SM executes its assigned blocks' work
    // back-to-back (residency interleaves them but does not add compute
    // throughput), so grid time scales with blocks-per-SM, not waves.
    let wave_scale = blocks.div_ceil(device.num_sms) as f64;

    let mut per_step = Vec::with_capacity(stats.steps.len());
    let mut shared_cycles = 0.0;
    let mut compute_cycles = 0.0;
    let mut overhead_cycles = 0.0;
    let mut latency_cycles = 0.0;
    for step in &stats.steps {
        let c = cost.step_cost(step);
        let oh = c.overhead_cycles * overhead_scale;
        shared_cycles += c.shared_cycles;
        compute_cycles += c.compute_cycles;
        overhead_cycles += oh;
        latency_cycles += c.latency_cycles * n_waves as f64 / wave_scale.max(1.0);
        // Dependent-load chains are latency-bound: resident blocks overlap
        // them, so they scale with scheduling waves, not assigned blocks.
        let lat = c.latency_cycles * n_waves as f64 / wave_scale.max(1.0);
        per_step.push(StepTime {
            phase: step.phase,
            ms: device.cycles_to_ms((c.shared_cycles + c.compute_cycles + oh + lat) * wave_scale),
            shared_ms: device.cycles_to_ms(c.shared_cycles * wave_scale),
            compute_ms: device.cycles_to_ms((c.compute_cycles + oh + lat) * wave_scale),
            overhead_ms: device.cycles_to_ms(oh * wave_scale),
            active_threads: step.active_threads,
            warps: step.warps,
            max_conflict_degree: step.max_conflict_degree,
        });
    }
    overhead_cycles += cost.block_overhead_cycles * overhead_scale;

    let shared_ms = device.cycles_to_ms(shared_cycles * wave_scale);
    let compute_only_ms = device.cycles_to_ms(compute_cycles * wave_scale);
    let overhead_ms = device.cycles_to_ms(overhead_cycles * wave_scale);
    let latency_ms = device.cycles_to_ms(latency_cycles * wave_scale);
    let launch_ms = cost.kernel_launch_us * 1e-3;

    // Global traffic is bandwidth-bound across the whole grid.
    let total_global_bytes = stats.global_bytes() * blocks as u64;
    let global_ms = cost.global_seconds(total_global_bytes) * 1e3 / global_efficiency;

    let compute_ms = compute_only_ms + overhead_ms + latency_ms + launch_ms;
    let kernel_ms = shared_ms + compute_ms + global_ms;

    // Attribute global time to the phases that touched global memory,
    // proportionally to their element counts.
    let mut per_phase: Vec<PhaseTime> = Vec::new();
    let total_global_elems: u64 =
        stats.steps.iter().map(|s| s.global_loads + s.global_stores).sum();
    for (step, st) in stats.steps.iter().zip(&per_step) {
        let global_share = if total_global_elems == 0 {
            0.0
        } else {
            (step.global_loads + step.global_stores) as f64 / total_global_elems as f64
        };
        let ms = st.ms + global_share * global_ms;
        match per_phase.iter_mut().find(|p| p.phase == step.phase) {
            Some(p) => {
                p.ms += ms;
                p.steps += 1;
            }
            None => per_phase.push(PhaseTime { phase: step.phase, ms, steps: 1 }),
        }
    }

    // Derived rates, guarding empty kernels.
    let shared_bytes =
        stats.total_shared_accesses() as f64 * stats.element_bytes as f64 * blocks as f64;
    let achieved_shared_gbps =
        if shared_ms > 0.0 { shared_bytes / (shared_ms * 1e-3) / 1e9 } else { 0.0 };
    let achieved_global_gbps =
        if global_ms > 0.0 { total_global_bytes as f64 / (global_ms * 1e-3) / 1e9 } else { 0.0 };
    let flops = stats.total_ops() as f64 * blocks as f64;
    let gflops = if compute_ms > 0.0 { flops / (compute_ms * 1e-3) / 1e9 } else { 0.0 };

    Ok(TimingReport {
        kernel_ms,
        transfer_ms: 0.0,
        global_ms,
        shared_ms,
        compute_ms,
        overhead_ms,
        latency_ms,
        per_step,
        per_phase,
        achieved_global_gbps,
        achieved_shared_gbps,
        gflops,
        blocks,
        occupancy: occ,
        waves: n_waves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::StepRecord;

    fn stats(conflict: bool) -> KernelStats {
        let mut steps = Vec::new();
        steps.push(StepRecord {
            phase: Phase::GlobalLoad,
            active_threads: 256,
            warps: 8,
            half_warps: 16,
            shared_loads: 0,
            shared_stores: 1024,
            shared_instructions: 64,
            serialized_shared_instructions: 64,
            max_conflict_degree: 1,
            ops: 0,
            divs: 0,
            warp_op_instructions: 16,
            warp_div_instructions: 0,
            global_loads: 1024,
            global_stores: 0,
            max_dependent_chain: 0,
        });
        steps.push(StepRecord {
            phase: Phase::ForwardReduction,
            active_threads: 256,
            warps: 8,
            half_warps: 16,
            shared_loads: 2560,
            shared_stores: 1024,
            shared_instructions: 224,
            serialized_shared_instructions: if conflict { 448 } else { 224 },
            max_conflict_degree: if conflict { 2 } else { 1 },
            ops: 3072,
            divs: 512,
            warp_op_instructions: 96,
            warp_div_instructions: 16,
            global_loads: 0,
            global_stores: 0,
            max_dependent_chain: 0,
        });
        steps.push(StepRecord {
            phase: Phase::GlobalStore,
            active_threads: 256,
            warps: 8,
            half_warps: 16,
            shared_loads: 512,
            shared_stores: 0,
            shared_instructions: 32,
            serialized_shared_instructions: 32,
            max_conflict_degree: 1,
            ops: 0,
            divs: 0,
            warp_op_instructions: 0,
            warp_div_instructions: 0,
            global_loads: 0,
            global_stores: 512,
            max_dependent_chain: 0,
        });
        KernelStats {
            steps,
            shared_words: 2560,
            element_bytes: 4,
            block_dim: 256,
            global_bytes_read: 4096,
            global_bytes_written: 2048,
            global_accesses: 1536,
        }
    }

    #[test]
    fn timing_is_positive_and_consistent() {
        let d = DeviceConfig::gtx280();
        let c = CostModel::gtx280();
        let t = time_launch(&d, &c, &stats(false), 512).unwrap();
        assert!(t.kernel_ms > 0.0);
        assert!(t.global_ms > 0.0);
        assert!(t.shared_ms > 0.0);
        assert!(t.compute_ms > 0.0);
        let sum = t.global_ms + t.shared_ms + t.compute_ms;
        assert!((t.kernel_ms - sum).abs() < 1e-9);
        assert_eq!(t.per_step.len(), 3);
        assert_eq!(t.per_phase.len(), 3);
    }

    #[test]
    fn conflicts_slow_the_kernel() {
        let d = DeviceConfig::gtx280();
        let c = CostModel::gtx280();
        let free = time_launch(&d, &c, &stats(false), 512).unwrap();
        let conf = time_launch(&d, &c, &stats(true), 512).unwrap();
        assert!(conf.kernel_ms > free.kernel_ms);
        assert!(conf.shared_ms > free.shared_ms);
        assert_eq!(conf.compute_ms, free.compute_ms);
    }

    #[test]
    fn transfer_adds_time() {
        let d = DeviceConfig::gtx280();
        let c = CostModel::gtx280();
        let t = time_launch(&d, &c, &stats(false), 512).unwrap();
        let base = t.kernel_ms;
        let t = t.with_transfer(&c, 5 * 512 * 512 * 4);
        assert!(t.transfer_ms > 0.0);
        assert!((t.total_ms() - (base + t.transfer_ms)).abs() < 1e-12);
        // At the paper's sizes the transfer dominates (90-95%).
        assert!(t.transfer_ms / t.total_ms() > 0.5);
    }

    #[test]
    fn global_time_is_attributed_to_global_phases() {
        let d = DeviceConfig::gtx280();
        let c = CostModel::gtx280();
        let t = time_launch(&d, &c, &stats(false), 512).unwrap();
        let load = t.phase_ms(Phase::GlobalLoad);
        let store = t.phase_ms(Phase::GlobalStore);
        // Loads moved twice the elements of stores.
        assert!(load > store);
        let phase_sum: f64 = t.per_phase.iter().map(|p| p.ms).sum();
        // Phases cover everything except launch and block overhead.
        assert!(phase_sum <= t.kernel_ms);
        assert!(phase_sum > 0.8 * t.kernel_ms);
    }

    #[test]
    fn more_blocks_more_waves() {
        let d = DeviceConfig::gtx280();
        let c = CostModel::gtx280();
        let small = time_launch(&d, &c, &stats(false), 30).unwrap();
        let large = time_launch(&d, &c, &stats(false), 512).unwrap();
        assert!(large.waves > small.waves);
        assert!(large.kernel_ms > small.kernel_ms);
    }

    #[test]
    fn scaled_stretches_time_and_divides_rates() {
        let d = DeviceConfig::gtx280();
        let c = CostModel::gtx280();
        let base = time_launch(&d, &c, &stats(false), 512).unwrap();
        let slow = base.clone().scaled(3.0);
        assert!((slow.kernel_ms - 3.0 * base.kernel_ms).abs() < 1e-12);
        assert!((slow.gflops - base.gflops / 3.0).abs() < 1e-12);
        assert!((slow.achieved_global_gbps - base.achieved_global_gbps / 3.0).abs() < 1e-12);
        let step_sum: f64 = slow.per_step.iter().map(|s| s.ms).sum();
        let base_sum: f64 = base.per_step.iter().map(|s| s.ms).sum();
        assert!((step_sum - 3.0 * base_sum).abs() < 1e-9);
        // Identity scaling is byte-identical (counter-neutrality).
        assert_eq!(base.clone().scaled(1.0), base);
    }

    #[test]
    fn rates_are_finite() {
        let d = DeviceConfig::gtx280();
        let c = CostModel::gtx280();
        let t = time_launch(&d, &c, &stats(true), 64).unwrap();
        assert!(t.achieved_shared_gbps.is_finite() && t.achieved_shared_gbps > 0.0);
        assert!(t.achieved_global_gbps.is_finite() && t.achieved_global_gbps > 0.0);
        assert!(t.gflops.is_finite() && t.gflops > 0.0);
    }
}
