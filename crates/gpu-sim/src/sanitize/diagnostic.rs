//! Structured sanitizer reports.
//!
//! Every finding is a [`Diagnostic`]: which check fired
//! ([`DiagnosticKind`]), where in the kernel's execution it happened
//! (block / step / phase / thread) and where in the *source* the offending
//! access lives (`#[track_caller]` locations captured on every shared and
//! global accessor). Diagnostics are plain data — JSON-serializable by hand
//! (the in-tree `serde` shim is marker-only) so reports can cross the
//! service boundary.

use crate::counters::Phase;
use core::panic::Location;

/// How bad a finding is. `Error`s are correctness bugs (the kernel computes
/// an unspecified result on real hardware); `Warning`s are numerical or
/// performance observations that enforce mode tolerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: non-finite propagation, bank-conflict lint.
    Warning,
    /// Correctness hazard: races, barrier-discipline violations, OOB,
    /// uninitialized reads, invalid handles.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON and tables.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The class of bug a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// Two distinct threads buffered stores to the same shared cell within
    /// one superstep — the result on hardware depends on warp scheduling.
    WriteWriteRace,
    /// A thread loaded a shared cell *after* buffering a store to it in the
    /// same superstep. The simulator's load observes the stale pre-step
    /// value, but code compiled to the paper's `read / __syncthreads() /
    /// write` discipline would not — exactly the bug class the barrier
    /// discipline exists to prevent (a missing `__syncthreads()`).
    ReadWriteHazard,
    /// Shared-memory access outside the owning array's extent.
    SharedOutOfBounds,
    /// Global-memory access outside the array's extent.
    GlobalOutOfBounds,
    /// A `Shared`/`GlobalArray` handle that does not belong to this block's
    /// arena (e.g. captured from a different launch).
    InvalidHandle,
    /// A load from a shared cell no barrier-committed store has written.
    /// Real `__shared__` memory is uninitialized; the simulator zero-fills,
    /// which would mask the bug without this shadow-bitmap check.
    UninitializedRead,
    /// First store of a non-finite value (Inf/NaN) in the block — pinpoints
    /// where an overflow (e.g. RD's doubling recurrence, §5.2) originates.
    NonFiniteOrigin,
    /// A shared-memory access site whose worst half-warp conflict degree
    /// reached the lint threshold.
    BankConflict,
}

impl DiagnosticKind {
    /// Snake-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticKind::WriteWriteRace => "write_write_race",
            DiagnosticKind::ReadWriteHazard => "read_write_hazard",
            DiagnosticKind::SharedOutOfBounds => "shared_out_of_bounds",
            DiagnosticKind::GlobalOutOfBounds => "global_out_of_bounds",
            DiagnosticKind::InvalidHandle => "invalid_handle",
            DiagnosticKind::UninitializedRead => "uninitialized_read",
            DiagnosticKind::NonFiniteOrigin => "non_finite_origin",
            DiagnosticKind::BankConflict => "bank_conflict",
        }
    }

    /// Default severity of this kind.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticKind::NonFiniteOrigin | DiagnosticKind::BankConflict => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One sanitizer finding. Repeats of the same (kind, source site, array)
/// are merged with `occurrences` counting how many times the site fired.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// What fired.
    pub kind: DiagnosticKind,
    /// `kind.severity()` (kept inline for filtering without re-deriving).
    pub severity: Severity,
    /// Block id the first occurrence was observed in.
    pub block: usize,
    /// Superstep index (0-based, counting every `step` call) of the first
    /// occurrence.
    pub step: u64,
    /// Phase of that superstep.
    pub phase: Phase,
    /// Thread id of the first occurrence.
    pub tid: usize,
    /// Shared/global array handle index, when the finding concerns one.
    pub array: Option<u32>,
    /// Element index, when the finding concerns one.
    pub index: Option<usize>,
    /// Worst conflict degree (bank-conflict lint only).
    pub degree: Option<u32>,
    /// Source location of the offending access.
    pub location: &'static Location<'static>,
    /// Second source location for two-site findings (the colliding store of
    /// a race, the buffered store of a read/write hazard).
    pub related: Option<&'static Location<'static>>,
    /// How many times this (kind, site, array) fired.
    pub occurrences: u64,
    /// Human-readable one-liner.
    pub message: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// `file:line:column` of the offending access.
    pub fn site(&self) -> String {
        format!("{}:{}:{}", self.location.file(), self.location.line(), self.location.column())
    }

    /// Hand-rolled JSON object (the serde shim provides no serialization).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192);
        s.push('{');
        s.push_str(&format!("\"kind\":\"{}\"", self.kind.name()));
        s.push_str(&format!(",\"severity\":\"{}\"", self.severity.name()));
        s.push_str(&format!(",\"block\":{}", self.block));
        s.push_str(&format!(",\"step\":{}", self.step));
        s.push_str(&format!(",\"phase\":\"{}\"", json_escape(self.phase.label())));
        s.push_str(&format!(",\"tid\":{}", self.tid));
        if let Some(a) = self.array {
            s.push_str(&format!(",\"array\":{a}"));
        }
        if let Some(i) = self.index {
            s.push_str(&format!(",\"index\":{i}"));
        }
        if let Some(d) = self.degree {
            s.push_str(&format!(",\"degree\":{d}"));
        }
        s.push_str(&format!(",\"location\":\"{}\"", json_escape(&self.site())));
        if let Some(r) = self.related {
            s.push_str(&format!(
                ",\"related\":\"{}:{}:{}\"",
                json_escape(r.file()),
                r.line(),
                r.column()
            ));
        }
        s.push_str(&format!(",\"occurrences\":{}", self.occurrences));
        s.push_str(&format!(",\"message\":\"{}\"", json_escape(&self.message)));
        s.push('}');
        s
    }
}

/// JSON array of diagnostics.
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&d.to_json());
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_severity_split() {
        assert_eq!(DiagnosticKind::WriteWriteRace.severity(), Severity::Error);
        assert_eq!(DiagnosticKind::ReadWriteHazard.severity(), Severity::Error);
        assert_eq!(DiagnosticKind::SharedOutOfBounds.severity(), Severity::Error);
        assert_eq!(DiagnosticKind::GlobalOutOfBounds.severity(), Severity::Error);
        assert_eq!(DiagnosticKind::InvalidHandle.severity(), Severity::Error);
        assert_eq!(DiagnosticKind::UninitializedRead.severity(), Severity::Error);
        assert_eq!(DiagnosticKind::NonFiniteOrigin.severity(), Severity::Warning);
        assert_eq!(DiagnosticKind::BankConflict.severity(), Severity::Warning);
    }

    #[test]
    fn json_shape() {
        let d = Diagnostic {
            kind: DiagnosticKind::WriteWriteRace,
            severity: Severity::Error,
            block: 0,
            step: 3,
            phase: Phase::ForwardReduction,
            tid: 5,
            array: Some(2),
            index: Some(17),
            degree: None,
            location: Location::caller(),
            related: None,
            occurrences: 4,
            message: "two threads \"collided\"".into(),
        };
        let j = d.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"kind\":\"write_write_race\""), "{j}");
        assert!(j.contains("\"severity\":\"error\""), "{j}");
        assert!(j.contains("\"array\":2"), "{j}");
        assert!(j.contains("\"occurrences\":4"), "{j}");
        assert!(j.contains("\\\"collided\\\""), "{j}");
        let arr = diagnostics_to_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("write_write_race").count(), 2);
    }
}
