//! Kernel sanitizer: always-on hazard/race/overflow analysis.
//!
//! The simulator's default launch path spot-checks write races on the
//! single recording block. This module is the `compute-sanitizer`-style
//! generalisation: with a [`SanitizeMode`] other than `Off`, **every block
//! of every launch** carries a [`Sanitizer`] that checks
//!
//! * intra-step **write-write races** (two threads storing the same shared
//!   cell between barriers), reporting both colliding source locations;
//! * **read-after-buffered-write hazards** — a thread loading a cell it
//!   already stored in the same superstep, i.e. code that cannot be
//!   compiled to the paper's `read / __syncthreads() / write` discipline;
//! * shared/global **out-of-bounds** accesses and **invalid handles**
//!   (cross-arena misuse);
//! * **uninitialized reads** via a shadow valid-bitmap per shared array
//!   (real `__shared__` memory is uninitialized; the simulator zero-fills);
//! * **non-finite origin** — the first step/thread/site that stores an
//!   Inf/NaN, turning §5.2's RD overflow from a wrong answer into a
//!   pinpointed diagnostic;
//! * a **bank-conflict lint** attributing worst conflict degree to source
//!   sites (recording block only — all blocks execute identical control
//!   flow, so their banking is identical).
//!
//! Reports are [`Diagnostic`]s, merged across blocks by (kind, site,
//! array); `Enforce` mode panics after the launch if any `Error`-severity
//! diagnostic was recorded (warnings — bank conflicts, non-finite values —
//! never panic, since CR's 16-way conflicts and RD's overflow are known,
//! *documented* behaviours of the paper's algorithms).

mod diagnostic;

pub use diagnostic::{diagnostics_to_json, Diagnostic, DiagnosticKind, Severity};

use crate::counters::Phase;
use core::panic::Location;
use std::collections::HashMap;

/// How much checking a launch performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeMode {
    /// Legacy behaviour: no sanitizer state, recording-block race panic
    /// only.
    #[default]
    Off,
    /// Check all blocks, collect diagnostics in the launch report, never
    /// panic.
    Record,
    /// Like `Record`, but panic after the launch if any `Error`-severity
    /// diagnostic was found.
    Enforce,
}

impl SanitizeMode {
    /// `true` unless `Off`.
    #[inline]
    pub fn is_on(self) -> bool {
        !matches!(self, SanitizeMode::Off)
    }
}

/// Sanitizer configuration carried by a [`crate::Launcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizeOptions {
    /// Checking mode.
    pub mode: SanitizeMode,
    /// Bank-conflict lint threshold: an access site whose half-warp
    /// conflict degree reaches this value is reported (warning severity).
    pub bank_conflict_threshold: u32,
    /// Maximum number of *distinct* diagnostics kept per launch; further
    /// new sites are dropped (repeats of known sites still count).
    pub max_diagnostics: usize,
}

impl Default for SanitizeOptions {
    fn default() -> Self {
        Self { mode: SanitizeMode::Off, bank_conflict_threshold: 8, max_diagnostics: 64 }
    }
}

impl SanitizeOptions {
    /// Collect-only configuration.
    pub fn record() -> Self {
        Self { mode: SanitizeMode::Record, ..Self::default() }
    }

    /// Panic-on-error configuration.
    pub fn enforce() -> Self {
        Self { mode: SanitizeMode::Enforce, ..Self::default() }
    }
}

/// Dedup key: (kind, source site, array handle).
type SiteKey = (DiagnosticKind, usize, Option<u32>);

fn loc_key(loc: &'static Location<'static>) -> usize {
    loc as *const Location<'static> as usize
}

/// Per-block sanitizer state, driven by hooks in
/// [`crate::exec::block::BlockCtx`].
#[derive(Debug)]
pub struct Sanitizer {
    opts: SanitizeOptions,
    block: usize,
    step: u64,
    phase: Phase,
    /// Shadow valid-bitmap per shared array (true = a barrier-committed
    /// store has written the cell).
    valid: Vec<Vec<bool>>,
    nonfinite_latched: bool,
    sites: HashMap<SiteKey, usize>,
    diags: Vec<Diagnostic>,
    dropped: u64,
}

impl Sanitizer {
    /// New sanitizer for block `block`.
    pub fn new(opts: SanitizeOptions, block: usize) -> Self {
        Self {
            opts,
            block,
            step: 0,
            phase: Phase::Other("pre-step"),
            valid: Vec::new(),
            nonfinite_latched: false,
            sites: HashMap::new(),
            diags: Vec::new(),
            dropped: 0,
        }
    }

    /// Configured options.
    #[inline]
    pub fn options(&self) -> &SanitizeOptions {
        &self.opts
    }

    /// Registers a freshly-allocated shared array of `len` elements. Its
    /// shadow bitmap starts all-invalid: the simulator zero-fills but real
    /// `__shared__` memory is uninitialized.
    pub(crate) fn on_alloc(&mut self, len: usize) {
        self.valid.push(vec![false; len]);
    }

    /// Marks the start of superstep `phase`.
    pub(crate) fn begin_step(&mut self, phase: Phase) {
        self.phase = phase;
        self.step += 1;
    }

    /// `true` if `array` is a handle this block's arena ever allocated.
    #[inline]
    pub(crate) fn shared_handle_ok(&self, array: u32) -> bool {
        (array as usize) < self.valid.len()
    }

    /// Length of shared array `array` per the shadow state.
    #[inline]
    pub(crate) fn shared_len(&self, array: u32) -> usize {
        self.valid[array as usize].len()
    }

    /// `true` if a barrier-committed store has written `array[index]`.
    #[inline]
    pub(crate) fn is_valid(&self, array: u32, index: usize) -> bool {
        self.valid[array as usize][index]
    }

    /// Marks `array[index]` initialized (called when a buffered store is
    /// applied at the step's closing barrier).
    pub(crate) fn mark_valid(&mut self, array: u32, index: usize) {
        if let Some(bits) = self.valid.get_mut(array as usize) {
            if let Some(b) = bits.get_mut(index) {
                *b = true;
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // internal sink; every field is a diagnostic column
    fn push(
        &mut self,
        kind: DiagnosticKind,
        tid: usize,
        array: Option<u32>,
        index: Option<usize>,
        degree: Option<u32>,
        location: &'static Location<'static>,
        related: Option<&'static Location<'static>>,
        message: String,
    ) {
        let key: SiteKey = (kind, loc_key(location), array);
        if let Some(&i) = self.sites.get(&key) {
            let d = &mut self.diags[i];
            d.occurrences += 1;
            // Bank-conflict lint keeps the *worst* degree per site.
            if let (Some(new), Some(old)) = (degree, d.degree) {
                if new > old {
                    d.degree = Some(new);
                    d.message = message;
                }
            }
            return;
        }
        if self.diags.len() >= self.opts.max_diagnostics {
            self.dropped += 1;
            return;
        }
        self.sites.insert(key, self.diags.len());
        self.diags.push(Diagnostic {
            kind,
            severity: kind.severity(),
            block: self.block,
            step: self.step.saturating_sub(1),
            phase: self.phase,
            tid,
            array,
            index,
            degree,
            location,
            related,
            occurrences: 1,
            message,
        });
    }

    /// Reports an intra-step write-write race between `tid_a` and `tid_b`.
    pub(crate) fn note_race(
        &mut self,
        tid_a: usize,
        tid_b: usize,
        array: u32,
        index: usize,
        loc_a: &'static Location<'static>,
        loc_b: &'static Location<'static>,
    ) {
        self.push(
            DiagnosticKind::WriteWriteRace,
            tid_a,
            Some(array),
            Some(index),
            None,
            loc_a,
            Some(loc_b),
            format!(
                "threads {tid_a} and {tid_b} both stored to shared array {array} element \
                 {index} in one superstep"
            ),
        );
    }

    /// Reports a same-thread read-after-buffered-write hazard.
    pub(crate) fn note_hazard(
        &mut self,
        tid: usize,
        array: u32,
        index: usize,
        load_loc: &'static Location<'static>,
        store_loc: &'static Location<'static>,
    ) {
        self.push(
            DiagnosticKind::ReadWriteHazard,
            tid,
            Some(array),
            Some(index),
            None,
            load_loc,
            Some(store_loc),
            format!(
                "thread {tid} loads shared array {array} element {index} after buffering a \
                 store to it in the same superstep (missing __syncthreads barrier)"
            ),
        );
    }

    /// Reports a shared-memory out-of-bounds access.
    pub(crate) fn note_shared_oob(
        &mut self,
        tid: usize,
        array: u32,
        index: usize,
        len: usize,
        store: bool,
        loc: &'static Location<'static>,
    ) {
        let what = if store { "store" } else { "load" };
        self.push(
            DiagnosticKind::SharedOutOfBounds,
            tid,
            Some(array),
            Some(index),
            None,
            loc,
            None,
            format!("{what} at index {index} of shared array {array} (len {len})"),
        );
    }

    /// Reports a global-memory out-of-bounds access.
    pub(crate) fn note_global_oob(
        &mut self,
        tid: usize,
        array: u32,
        index: usize,
        len: usize,
        store: bool,
        loc: &'static Location<'static>,
    ) {
        let what = if store { "store" } else { "load" };
        self.push(
            DiagnosticKind::GlobalOutOfBounds,
            tid,
            Some(array),
            Some(index),
            None,
            loc,
            None,
            format!("{what} at index {index} of global array {array} (len {len})"),
        );
    }

    /// Reports use of a handle foreign to this block's arena.
    pub(crate) fn note_invalid_handle(
        &mut self,
        tid: usize,
        array: u32,
        shared: bool,
        loc: &'static Location<'static>,
    ) {
        let space = if shared { "shared" } else { "global" };
        self.push(
            DiagnosticKind::InvalidHandle,
            tid,
            Some(array),
            None,
            None,
            loc,
            None,
            format!("{space} handle {array} does not belong to this context's arena"),
        );
    }

    /// Reports a read of a never-written shared cell.
    pub(crate) fn note_uninit(
        &mut self,
        tid: usize,
        array: u32,
        index: usize,
        loc: &'static Location<'static>,
    ) {
        self.push(
            DiagnosticKind::UninitializedRead,
            tid,
            Some(array),
            Some(index),
            None,
            loc,
            None,
            format!(
                "thread {tid} reads shared array {array} element {index} before any \
                 barrier-committed store initialized it"
            ),
        );
    }

    /// Latches the first non-finite store of the block.
    pub(crate) fn note_nonfinite(&mut self, tid: usize, loc: &'static Location<'static>) {
        if self.nonfinite_latched {
            return;
        }
        self.nonfinite_latched = true;
        let (step, phase) = (self.step.saturating_sub(1), self.phase.label());
        self.push(
            DiagnosticKind::NonFiniteOrigin,
            tid,
            None,
            None,
            None,
            loc,
            None,
            format!(
                "first non-finite value stored at step {step} ({phase}) by thread {tid} — \
                 overflow origin"
            ),
        );
    }

    /// Reports an access site whose conflict degree reached the lint
    /// threshold.
    pub(crate) fn note_bank_conflict(&mut self, degree: u32, loc: &'static Location<'static>) {
        if degree < self.opts.bank_conflict_threshold {
            return;
        }
        self.push(
            DiagnosticKind::BankConflict,
            0,
            None,
            None,
            Some(degree),
            loc,
            None,
            format!("{degree}-way bank conflict at this access site"),
        );
    }

    /// `true` if any `Error`-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Consumes the sanitizer, returning its findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }
}

/// Merges `from` into `into`, collapsing diagnostics with the same
/// (kind, source site, array) by summing occurrences and keeping the worst
/// conflict degree. Used by the launcher to fold per-block reports.
pub fn merge_diagnostics(into: &mut Vec<Diagnostic>, from: Vec<Diagnostic>) {
    for d in from {
        if let Some(e) = into.iter_mut().find(|e| {
            e.kind == d.kind && loc_key(e.location) == loc_key(d.location) && e.array == d.array
        }) {
            e.occurrences += d.occurrences;
            if let (Some(new), Some(old)) = (d.degree, e.degree) {
                if new > old {
                    e.degree = Some(new);
                    e.message = d.message;
                }
            }
        } else {
            into.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn dedup_counts_occurrences() {
        let mut s = Sanitizer::new(SanitizeOptions::record(), 0);
        s.on_alloc(8);
        s.begin_step(Phase::Other("t"));
        let loc = here();
        for tid in 0..5 {
            s.note_uninit(tid, 0, tid, loc);
        }
        let d = s.into_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].occurrences, 5);
        assert_eq!(d[0].tid, 0, "first occurrence wins the slot");
    }

    #[test]
    fn cap_limits_distinct_sites() {
        let mut opts = SanitizeOptions::record();
        opts.max_diagnostics = 2;
        let mut s = Sanitizer::new(opts, 0);
        s.on_alloc(8);
        // Three distinct arrays -> three distinct keys at one site.
        s.note_uninit(0, 0, 0, here());
        s.note_uninit(0, 1, 0, here());
        s.note_uninit(0, 2, 0, here());
        assert_eq!(s.into_diagnostics().len(), 2);
    }

    #[test]
    fn nonfinite_latches_once() {
        let mut s = Sanitizer::new(SanitizeOptions::record(), 0);
        s.begin_step(Phase::Scan);
        s.note_nonfinite(3, here());
        s.note_nonfinite(4, here());
        let d = s.into_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DiagnosticKind::NonFiniteOrigin);
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].tid, 3);
    }

    #[test]
    fn bank_lint_respects_threshold_and_keeps_worst() {
        let mut s = Sanitizer::new(SanitizeOptions::record(), 0);
        s.begin_step(Phase::ForwardReduction);
        let loc = here();
        s.note_bank_conflict(2, loc); // below threshold 8 -> ignored
        s.note_bank_conflict(8, loc);
        s.note_bank_conflict(16, loc);
        s.note_bank_conflict(4, loc); // below threshold -> ignored
        let d = s.into_diagnostics();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].degree, Some(16));
        assert_eq!(d[0].occurrences, 2);
    }

    #[test]
    fn merge_collapses_same_site() {
        let mut a = Sanitizer::new(SanitizeOptions::record(), 0);
        let mut b = Sanitizer::new(SanitizeOptions::record(), 1);
        a.on_alloc(4);
        b.on_alloc(4);
        let loc = here();
        a.note_uninit(0, 0, 1, loc);
        b.note_uninit(0, 0, 1, loc);
        b.note_uninit(0, 0, 2, loc);
        let mut merged = a.into_diagnostics();
        merge_diagnostics(&mut merged, b.into_diagnostics());
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].occurrences, 3);
        assert_eq!(merged[0].block, 0, "first block's entry wins");
    }

    #[test]
    fn mode_flags() {
        assert!(!SanitizeMode::Off.is_on());
        assert!(SanitizeMode::Record.is_on());
        assert!(SanitizeMode::Enforce.is_on());
        assert_eq!(SanitizeOptions::default().mode, SanitizeMode::Off);
        assert_eq!(SanitizeOptions::enforce().mode, SanitizeMode::Enforce);
    }
}
