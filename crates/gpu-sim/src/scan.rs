//! Hillis–Steele inclusive scan on the simulator — the parallel primitive
//! recursive doubling is built on (§2.3).
//!
//! The paper chooses Hillis–Steele over work-efficient scans "because we
//! need a step-efficient algorithm": `log2 n` steps, with step `s` combining
//! element `i - 2^s` into element `i` for every `i >= 2^s`. The combine
//! operation is caller-supplied (RD multiplies 3×3 matrices stored as two
//! rows); the buffered-store semantics of [`BlockCtx::step`] provide the
//! double-buffering an in-place Hillis–Steele scan requires.

use crate::counters::Phase;
use crate::exec::block::{BlockCtx, ThreadCtx};
use crate::memory::shared::Shared;
use tridiag_core::Real;

/// Runs an in-place inclusive Hillis–Steele scan of `n` elements.
///
/// `combine(t, i, j)` must read elements `i` and `j`, combine them
/// (`elem[i] = elem[i] ∘ elem[j]`), and store the result at `i` via
/// buffered stores. `n` must be a power of two (matching the kernels).
/// Returns the number of scan steps executed (`log2 n`).
pub fn hillis_steele<T: Real>(
    ctx: &mut BlockCtx<'_, T>,
    n: usize,
    phase: Phase,
    mut combine: impl FnMut(&mut ThreadCtx<'_, '_, T>, usize, usize),
) -> usize {
    debug_assert!(n.is_power_of_two());
    let mut steps = 0;
    let mut stride = 1;
    while stride < n {
        ctx.step(phase, stride..n, |t| {
            let i = t.tid();
            combine(t, i, i - stride);
        });
        stride *= 2;
        steps += 1;
    }
    steps
}

/// Convenience: in-place inclusive **sum** scan of one shared array
/// (used by tests and as a building block for auxiliary kernels).
pub fn scan_add<T: Real>(
    ctx: &mut BlockCtx<'_, T>,
    arr: Shared<T>,
    n: usize,
    phase: Phase,
) -> usize {
    hillis_steele(ctx, n, phase, |t, i, j| {
        let x = t.load(arr, i);
        let y = t.load(arr, j);
        let s = t.add(x, y);
        t.store(arr, i, s);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::memory::global::GlobalMem;

    fn run_scan(values: &[f32]) -> (Vec<f32>, usize) {
        let n = values.len();
        let mut g = GlobalMem::new();
        let mut ctx = BlockCtx::new(&DeviceConfig::gtx280(), &mut g, n, true);
        let arr = ctx.alloc(n);
        ctx.step(Phase::Other("init"), 0..n, |t| {
            t.store(arr, t.tid(), values[t.tid()]);
        });
        let steps = scan_add(&mut ctx, arr, n, Phase::Scan);
        let out = ctx.shared_slice(arr).to_vec();
        (out, steps)
    }

    #[test]
    fn matches_sequential_prefix_sum() {
        let values: Vec<f32> = (1..=16).map(|i| i as f32).collect();
        let (scanned, steps) = run_scan(&values);
        let mut expect = values.clone();
        for i in 1..expect.len() {
            expect[i] += expect[i - 1];
        }
        assert_eq!(scanned, expect);
        assert_eq!(steps, 4);
    }

    #[test]
    fn single_element_scan_is_identity() {
        let (scanned, steps) = run_scan(&[42.0]);
        assert_eq!(scanned, vec![42.0]);
        assert_eq!(steps, 0);
    }

    #[test]
    fn scan_of_ones_counts_indices() {
        let (scanned, _) = run_scan(&[1.0; 64]);
        let expect: Vec<f32> = (1..=64).map(|i| i as f32).collect();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn noncommutative_combine_preserves_order() {
        // Scan of 2x2 matrices under multiplication (stored as 4 arrays)
        // must produce M[i] * M[i-1] * ... * M[0] with this orientation.
        let n = 8usize;
        let mut g = GlobalMem::<f64>::new();
        let mut ctx = BlockCtx::new(&DeviceConfig::gtx280(), &mut g, n, true);
        let (m00, m01, m10, m11) = (ctx.alloc(n), ctx.alloc(n), ctx.alloc(n), ctx.alloc(n));
        // M[i] = [[1, i+1], [0, 1]] — shear matrices commute, so also use a
        // flip on odd indices to break commutativity.
        let init: Vec<[f64; 4]> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    [1.0, (i + 1) as f64, 0.0, 1.0]
                } else {
                    [0.0, 1.0, 1.0, (i + 1) as f64]
                }
            })
            .collect();
        ctx.step(Phase::Other("init"), 0..n, |t| {
            let i = t.tid();
            t.store(m00, i, init[i][0]);
            t.store(m01, i, init[i][1]);
            t.store(m10, i, init[i][2]);
            t.store(m11, i, init[i][3]);
        });
        hillis_steele(&mut ctx, n, Phase::Scan, |t, i, j| {
            // C[i] = C[i] * C[j]  (later-index matrix on the left)
            let (a00, a01, a10, a11) =
                (t.load(m00, i), t.load(m01, i), t.load(m10, i), t.load(m11, i));
            let (b00, b01, b10, b11) =
                (t.load(m00, j), t.load(m01, j), t.load(m10, j), t.load(m11, j));
            t.store(m00, i, a00 * b00 + a01 * b10);
            t.store(m01, i, a00 * b01 + a01 * b11);
            t.store(m10, i, a10 * b00 + a11 * b10);
            t.store(m11, i, a10 * b01 + a11 * b11);
        });
        // Sequential reference.
        let mut acc = [[1.0f64, 0.0], [0.0, 1.0]];
        let mut expect = Vec::new();
        for m in &init {
            let b = acc;
            let a = [[m[0], m[1]], [m[2], m[3]]];
            acc = [
                [a[0][0] * b[0][0] + a[0][1] * b[1][0], a[0][0] * b[0][1] + a[0][1] * b[1][1]],
                [a[1][0] * b[0][0] + a[1][1] * b[1][0], a[1][0] * b[0][1] + a[1][1] * b[1][1]],
            ];
            expect.push(acc);
        }
        for i in 0..n {
            assert!((ctx.shared_slice(m00)[i] - expect[i][0][0]).abs() < 1e-9, "i={i}");
            assert!((ctx.shared_slice(m01)[i] - expect[i][0][1]).abs() < 1e-9);
            assert!((ctx.shared_slice(m10)[i] - expect[i][1][0]).abs() < 1e-9);
            assert!((ctx.shared_slice(m11)[i] - expect[i][1][1]).abs() < 1e-9);
        }
    }

    #[test]
    fn scan_steps_are_conflict_free() {
        let (_, _) = run_scan(&[1.0; 32]);
        // Re-run with stats inspection.
        let n = 32;
        let mut g = GlobalMem::<f32>::new();
        let mut ctx = BlockCtx::new(&DeviceConfig::gtx280(), &mut g, n, true);
        let arr = ctx.alloc(n);
        ctx.step(Phase::Other("init"), 0..n, |t| {
            t.store(arr, t.tid(), 1.0);
        });
        scan_add(&mut ctx, arr, n, Phase::Scan);
        let stats = ctx.finish();
        for s in stats.steps_in_phase(Phase::Scan) {
            assert_eq!(s.max_conflict_degree, 1, "scan must be bank-conflict free");
        }
    }
}
