//! Chrome-trace export: turn a [`TimingReport`] into a
//! `chrome://tracing` / Perfetto JSON timeline — one lane for the kernel's
//! supersteps, one for global memory, one for the PCIe transfer.
//!
//! ```no_run
//! # let timing: gpu_sim::TimingReport = unimplemented!();
//! std::fs::write("trace.json", gpu_sim::trace::to_chrome_trace(&timing, "CR")).unwrap();
//! ```

use crate::profile::TimingReport;
use core::fmt::Write as _;

/// Escapes a string for inclusion in a JSON literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the report as Chrome Trace Event Format JSON (complete events,
/// microsecond timestamps). The kernel's steps are laid out sequentially;
/// the global-memory and transfer costs get their own rows.
pub fn to_chrome_trace(timing: &TimingReport, kernel_name: &str) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut event = |out: &mut String,
                     name: &str,
                     tid: u32,
                     ts_us: f64,
                     dur_us: f64,
                     args: &[(&str, String)]| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
            esc(name),
            tid,
            ts_us,
            dur_us.max(0.001)
        )
        .unwrap();
        if !args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":{}", esc(k), v).unwrap();
            }
            out.push('}');
        }
        out.push('}');
    };

    // Lane 1: supersteps, laid out back-to-back.
    let mut cursor = 0.0f64;
    for (i, step) in timing.per_step.iter().enumerate() {
        let dur = step.ms * 1e3;
        event(
            &mut out,
            &format!("{} [{}]", step.phase.label(), i),
            1,
            cursor,
            dur,
            &[
                ("active_threads", step.active_threads.to_string()),
                ("warps", step.warps.to_string()),
                ("conflict_degree", step.max_conflict_degree.to_string()),
                ("shared_ms", format!("{:.6}", step.shared_ms)),
                ("compute_ms", format!("{:.6}", step.compute_ms)),
            ],
        );
        cursor += dur;
    }
    // Lane 2: global memory (modelled as bandwidth-bound, drawn alongside).
    event(
        &mut out,
        &format!("{kernel_name}: global memory traffic"),
        2,
        0.0,
        timing.global_ms * 1e3,
        &[("achieved_gbps", format!("{:.1}", timing.achieved_global_gbps))],
    );
    // Lane 3: PCIe transfer, if present.
    if timing.transfer_ms > 0.0 {
        event(&mut out, "PCIe transfer", 3, 0.0, timing.transfer_ms * 1e3, &[]);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::counters::{KernelStats, Phase, StepRecord};
    use crate::device::DeviceConfig;

    fn report() -> TimingReport {
        let stats = KernelStats {
            steps: vec![StepRecord {
                phase: Phase::ForwardReduction,
                active_threads: 256,
                warps: 8,
                half_warps: 16,
                shared_loads: 100,
                shared_stores: 40,
                shared_instructions: 140,
                serialized_shared_instructions: 280,
                max_conflict_degree: 2,
                ops: 1000,
                divs: 100,
                warp_op_instructions: 96,
                warp_div_instructions: 16,
                global_loads: 0,
                global_stores: 0,
                max_dependent_chain: 0,
            }],
            shared_words: 2560,
            element_bytes: 4,
            block_dim: 256,
            global_bytes_read: 4096,
            global_bytes_written: 1024,
            global_accesses: 1280,
        };
        crate::profile::time_launch(&DeviceConfig::gtx280(), &CostModel::gtx280(), &stats, 64)
            .unwrap()
            .with_transfer(&CostModel::gtx280(), 1 << 20)
    }

    #[test]
    fn trace_is_structurally_sound_json() {
        let json = to_chrome_trace(&report(), "CR");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        // Balanced braces/brackets (no string content interferes here).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("CR: forward reduction [0]"));
        assert!(json.contains("PCIe transfer"));
        assert!(json.contains("\"conflict_degree\":2"));
    }

    #[test]
    fn events_cover_all_steps() {
        let json = to_chrome_trace(&report(), "CR");
        let events = json.matches("\"ph\":\"X\"").count();
        assert_eq!(events, 1 + 1 + 1); // steps + global + transfer
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
    }
}
