//! Property-based tests of the simulator's core invariants.

use gpu_sim::{
    occupancy, scan_add, BlockCtx, CostModel, DeviceConfig, GlobalMem, Phase, StepRecord,
};
use proptest::prelude::*;

/// Analytic conflict degree of a full-half-warp strided access on 16 banks:
/// `gcd`-based closed form for power-of-two strides.
fn analytic_degree(lanes: usize, stride: usize) -> u32 {
    // Words l*stride for l in 0..lanes. Bank of word w = w % 16.
    // Count distinct words per bank directly (reference implementation).
    use std::collections::HashMap;
    let mut banks: HashMap<usize, std::collections::HashSet<usize>> = HashMap::new();
    for l in 0..lanes {
        let w = l * stride;
        banks.entry(w % 16).or_default().insert(w);
    }
    banks.values().map(|s| s.len() as u32).max().unwrap_or(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recorded_conflicts_match_reference(
        stride_exp in 0u32..7,
        lanes in 1usize..17,
    ) {
        let stride = 1usize << stride_exp;
        let len = lanes * stride + 1;
        if len > 4096 { return Ok(()); }
        let mut g = GlobalMem::<f32>::new();
        let mut ctx = BlockCtx::new(&DeviceConfig::gtx280(), &mut g, 16, true);
        let arr = ctx.alloc(len);
        ctx.step(Phase::Other("strided"), 0..lanes, |t| {
            t.store(arr, t.tid() * stride, 1.0);
        });
        let stats = ctx.finish();
        prop_assert_eq!(
            stats.steps[0].max_conflict_degree,
            analytic_degree(lanes, stride)
        );
    }

    #[test]
    fn buffered_stores_match_host_reference(
        values in prop::collection::vec(-10.0f32..10.0, 32),
        offsets in prop::collection::vec(0usize..32, 32),
    ) {
        // Each thread i reads cell offsets[i] (pre-step state) and writes
        // cell i. With buffered stores this must equal the host-computed
        // gather regardless of the sequential thread order.
        let mut g = GlobalMem::<f32>::new();
        let mut ctx = BlockCtx::new(&DeviceConfig::gtx280(), &mut g, 32, true);
        let arr = ctx.alloc(32);
        let vals = values.clone();
        ctx.step(Phase::Other("init"), 0..32, |t| {
            t.store(arr, t.tid(), vals[t.tid()]);
        });
        let offs = offsets.clone();
        ctx.step(Phase::Other("gather"), 0..32, |t| {
            let v = t.load(arr, offs[t.tid()]);
            t.store(arr, t.tid(), v);
        });
        let expect: Vec<f32> = (0..32).map(|i| values[offsets[i]]).collect();
        prop_assert_eq!(ctx.shared_slice(arr), expect.as_slice());
    }

    #[test]
    fn scan_matches_prefix_sums(
        values in prop::collection::vec(-5.0f64..5.0, 1..9),
    ) {
        // Pad to the next power of two with zeros (scan requirement).
        let n = values.len().next_power_of_two();
        let mut padded = values.clone();
        padded.resize(n, 0.0);
        let mut g = GlobalMem::<f64>::new();
        let mut ctx = BlockCtx::new(&DeviceConfig::gtx280(), &mut g, n, true);
        let arr = ctx.alloc(n);
        let p = padded.clone();
        ctx.step(Phase::Other("init"), 0..n, |t| {
            t.store(arr, t.tid(), p[t.tid()]);
        });
        scan_add(&mut ctx, arr, n, Phase::Scan);
        let mut expect = padded;
        for i in 1..n {
            expect[i] += expect[i - 1];
        }
        for i in 0..n {
            prop_assert!((ctx.shared_slice(arr)[i] - expect[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn occupancy_is_monotone_in_shared_usage(
        base in 64usize..4096,
        extra in 1usize..4096,
    ) {
        let d = DeviceConfig::gtx280();
        let small = occupancy(&d, base, 64).unwrap();
        let large = occupancy(&d, base + extra, 64);
        if let Ok(large) = large {
            prop_assert!(large.blocks_per_sm <= small.blocks_per_sm);
        }
    }

    #[test]
    fn step_cost_is_monotone(
        instr in 1u64..1000,
        extra_conflicts in 0u64..1000,
        ops in 0u64..1000,
        divs_extra in 0u64..50,
    ) {
        let cost = CostModel::gtx280();
        let mk = |serialized: u64, warp_ops: u64, warp_divs: u64| StepRecord {
            phase: Phase::ForwardReduction,
            active_threads: 64,
            warps: 2,
            half_warps: 4,
            shared_loads: 0,
            shared_stores: 0,
            shared_instructions: instr,
            serialized_shared_instructions: serialized,
            max_conflict_degree: 1,
            ops: 0,
            divs: 0,
            warp_op_instructions: warp_ops,
            warp_div_instructions: warp_divs,
            global_loads: 0,
            global_stores: 0,
            max_dependent_chain: 0,
        };
        let base = cost.step_cost(&mk(instr, ops, 0));
        let conflicted = cost.step_cost(&mk(instr + extra_conflicts, ops, 0));
        prop_assert!(conflicted.shared_cycles >= base.shared_cycles);
        let divy = cost.step_cost(&mk(instr, ops, divs_extra));
        prop_assert!(divy.compute_cycles >= base.compute_cycles);
    }

    #[test]
    fn grid_time_is_monotone_in_blocks(blocks in 1usize..2000) {
        let d = DeviceConfig::gtx280();
        let cost = CostModel::gtx280();
        let stats = gpu_sim::KernelStats {
            steps: vec![StepRecord {
                phase: Phase::PcrReduction,
                active_threads: 128,
                warps: 4,
                half_warps: 8,
                shared_loads: 1024,
                shared_stores: 512,
                shared_instructions: 96,
                serialized_shared_instructions: 96,
                max_conflict_degree: 1,
                ops: 2048,
                divs: 128,
                warp_op_instructions: 64,
                warp_div_instructions: 8,
                global_loads: 128,
                global_stores: 0,
                max_dependent_chain: 0,
            }],
            shared_words: 640,
            element_bytes: 4,
            block_dim: 128,
            global_bytes_read: 512,
            global_bytes_written: 0,
            global_accesses: 128,
        };
        let t1 = gpu_sim::time_launch(&d, &cost, &stats, blocks).unwrap();
        let t2 = gpu_sim::time_launch(&d, &cost, &stats, blocks + 30).unwrap();
        prop_assert!(t2.kernel_ms >= t1.kernel_ms);
    }
}
