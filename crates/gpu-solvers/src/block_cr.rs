//! Block cyclic reduction on the GPU — the paper's future-work item #1
//! ("generalize the solvers for block tridiagonal matrices"), for 2x2
//! blocks.
//!
//! Structure mirrors the scalar CR kernel (one block-row per thread,
//! in-place forward reduction / backward substitution, stride-doubling
//! access pattern and its bank conflicts), with scalars replaced by 2x2
//! blocks and divisions by *order-aware* block inverses:
//!
//! ```text
//! K1 = A_i B_{i-1}^{-1}          K2 = C_i B_{i+1}^{-1}
//! B'_i = B_i - K1 C_{i-1} - K2 A_{i+1}
//! d'_i = d_i - K1 d_{i-1} - K2 d_{i+1}
//! A'_i = -K1 A_{i-1}             C'_i = -K2 C_{i+1}
//! ```
//!
//! Storage: 16 shared arrays of `n` (four per coefficient block, two each
//! for `d` and `x`), so the largest f32 system per block is `n = 128`
//! (16 KB limit) — block systems hit the capacity wall 3.2x earlier than
//! scalar ones.

use crate::common::log2;
use gpu_sim::{BlockCtx, GlobalArray, GlobalMem, GridKernel, Launcher, Phase, Shared, ThreadCtx};
use tridiag_core::block::{BlockTridiagonalSystem, Vec2};
use tridiag_core::{require_pow2, Real, Result, TridiagError};

/// Thread-local 2x2 block held in registers.
type Blk<T> = [[T; 2]; 2];

/// Device arrays for a batch of block systems: component-major flat
/// layout — `a[r][c]` of block-row `i` of system `s` lives at
/// `arrays.a[2*r + c][s * n + i]`.
#[derive(Debug, Clone, Copy)]
pub struct BlockSystemHandles<T> {
    /// Sub-diagonal block components.
    pub a: [GlobalArray<T>; 4],
    /// Diagonal block components.
    pub b: [GlobalArray<T>; 4],
    /// Super-diagonal block components.
    pub c: [GlobalArray<T>; 4],
    /// Right-hand-side components.
    pub d: [GlobalArray<T>; 2],
    /// Solution components.
    pub x: [GlobalArray<T>; 2],
}

/// Shared-memory arrays of one block (16 arrays of `n`).
struct SharedBlockSystem<T> {
    a: [Shared<T>; 4],
    b: [Shared<T>; 4],
    c: [Shared<T>; 4],
    d: [Shared<T>; 2],
    x: [Shared<T>; 2],
}

impl<T: Real> SharedBlockSystem<T> {
    fn alloc(ctx: &mut BlockCtx<'_, T>, n: usize) -> Self {
        Self {
            a: core::array::from_fn(|_| ctx.alloc(n)),
            b: core::array::from_fn(|_| ctx.alloc(n)),
            c: core::array::from_fn(|_| ctx.alloc(n)),
            d: core::array::from_fn(|_| ctx.alloc(n)),
            x: core::array::from_fn(|_| ctx.alloc(n)),
        }
    }
}

// --- counted 2x2 register algebra -----------------------------------------

fn load_blk<T: Real>(t: &mut ThreadCtx<'_, '_, T>, arr: &[Shared<T>; 4], i: usize) -> Blk<T> {
    [[t.load(arr[0], i), t.load(arr[1], i)], [t.load(arr[2], i), t.load(arr[3], i)]]
}

fn store_blk<T: Real>(t: &mut ThreadCtx<'_, '_, T>, arr: &[Shared<T>; 4], i: usize, m: Blk<T>) {
    t.store(arr[0], i, m[0][0]);
    t.store(arr[1], i, m[0][1]);
    t.store(arr[2], i, m[1][0]);
    t.store(arr[3], i, m[1][1]);
}

fn load_v2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, arr: &[Shared<T>; 2], i: usize) -> Vec2<T> {
    [t.load(arr[0], i), t.load(arr[1], i)]
}

fn store_v2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, arr: &[Shared<T>; 2], i: usize, v: Vec2<T>) {
    t.store(arr[0], i, v[0]);
    t.store(arr[1], i, v[1]);
}

fn mul2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, l: &Blk<T>, r: &Blk<T>) -> Blk<T> {
    let mut out = [[T::ZERO; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            let p = t.mul(l[i][1], r[1][j]);
            out[i][j] = t.fma(l[i][0], r[0][j], p);
        }
    }
    out
}

fn sub2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, l: &Blk<T>, r: &Blk<T>) -> Blk<T> {
    let mut out = [[T::ZERO; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = t.sub(l[i][j], r[i][j]);
        }
    }
    out
}

fn neg2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, m: &Blk<T>) -> Blk<T> {
    let mut out = [[T::ZERO; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = t.neg(m[i][j]);
        }
    }
    out
}

/// Counted 2x2 inverse: one division (the reciprocal determinant).
fn inv2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, m: &Blk<T>) -> Blk<T> {
    let p = t.mul(m[0][1], m[1][0]);
    let q = t.mul(m[0][0], m[1][1]);
    let det = t.sub(q, p);
    let r = t.div(T::ONE, det);
    let m00 = t.mul(m[1][1], r);
    let m11 = t.mul(m[0][0], r);
    let t01 = t.mul(m[0][1], r);
    let m01 = t.neg(t01);
    let t10 = t.mul(m[1][0], r);
    let m10 = t.neg(t10);
    [[m00, m01], [m10, m11]]
}

fn mulvec2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, m: &Blk<T>, v: &Vec2<T>) -> Vec2<T> {
    let p0 = t.mul(m[0][1], v[1]);
    let p1 = t.mul(m[1][1], v[1]);
    [t.fma(m[0][0], v[0], p0), t.fma(m[1][0], v[0], p1)]
}

fn subvec2<T: Real>(t: &mut ThreadCtx<'_, '_, T>, l: &Vec2<T>, r: &Vec2<T>) -> Vec2<T> {
    [t.sub(l[0], r[0]), t.sub(l[1], r[1])]
}

// --- the kernel -------------------------------------------------------------

/// Block cyclic reduction kernel (one block system per CUDA block).
#[derive(Debug, Clone, Copy)]
pub struct BlockCrKernel<T> {
    /// Block rows per system (power of two, >= 2; at most 128 in f32).
    pub n: usize,
    /// Device arrays.
    pub gm: BlockSystemHandles<T>,
}

impl<T: Real> GridKernel<T> for BlockCrKernel<T> {
    fn block_dim(&self) -> usize {
        (self.n / 2).max(1)
    }

    fn shared_words(&self) -> usize {
        16 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let base = block_id * n;
        let threads = self.block_dim();
        let sh = SharedBlockSystem::alloc(ctx, n);
        let gm = self.gm;

        // Load: each thread fetches two block-rows (coalesced halves).
        let per_thread = n / threads;
        ctx.step(Phase::GlobalLoad, 0..threads, |t| {
            for k in 0..per_thread {
                let i = t.tid() + k * threads;
                for comp in 0..4 {
                    let v = t.load_global(gm.a[comp], base + i);
                    t.store(sh.a[comp], i, v);
                    let v = t.load_global(gm.b[comp], base + i);
                    t.store(sh.b[comp], i, v);
                    let v = t.load_global(gm.c[comp], base + i);
                    t.store(sh.c[comp], i, v);
                }
                for comp in 0..2 {
                    let v = t.load_global(gm.d[comp], base + i);
                    t.store(sh.d[comp], i, v);
                }
            }
        });

        let levels = log2(n) - 1;
        for level in 0..levels {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            ctx.step(Phase::ForwardReduction, 0..active, |t| {
                let i = stride * (t.tid() + 1) - 1;
                let il = i - half;
                let ir = (i + half).min(n - 1); // branchless: C of last row is zero
                let a_i = load_blk(t, &sh.a, i);
                let b_il = load_blk(t, &sh.b, il);
                let binv_l = inv2(t, &b_il);
                let k1 = mul2(t, &a_i, &binv_l);
                let c_i = load_blk(t, &sh.c, i);
                let b_ir = load_blk(t, &sh.b, ir);
                let binv_r = inv2(t, &b_ir);
                let k2 = mul2(t, &c_i, &binv_r);

                let a_il = load_blk(t, &sh.a, il);
                let c_il = load_blk(t, &sh.c, il);
                let d_il = load_v2(t, &sh.d, il);
                let b_i = load_blk(t, &sh.b, i);
                let d_i = load_v2(t, &sh.d, i);
                let a_ir = load_blk(t, &sh.a, ir);
                let c_ir = load_blk(t, &sh.c, ir);
                let d_ir = load_v2(t, &sh.d, ir);

                let p = mul2(t, &k1, &c_il);
                let q = mul2(t, &k2, &a_ir);
                let nb = {
                    let s1 = sub2(t, &b_i, &p);
                    sub2(t, &s1, &q)
                };
                let nd = {
                    let p = mulvec2(t, &k1, &d_il);
                    let q = mulvec2(t, &k2, &d_ir);
                    let s1 = subvec2(t, &d_i, &p);
                    subvec2(t, &s1, &q)
                };
                let na = {
                    let p = mul2(t, &k1, &a_il);
                    neg2(t, &p)
                };
                let nc = {
                    let p = mul2(t, &k2, &c_ir);
                    neg2(t, &p)
                };
                store_blk(t, &sh.a, i, na);
                store_blk(t, &sh.b, i, nb);
                store_blk(t, &sh.c, i, nc);
                store_v2(t, &sh.d, i, nd);
            });
        }

        // Solve the remaining 2 block-rows (a 4x4 system) with one thread.
        ctx.step(Phase::SolveTwoUnknown, 0..1, |t| {
            let i1 = n / 2 - 1;
            let i2 = n - 1;
            let b1 = load_blk(t, &sh.b, i1);
            let c1 = load_blk(t, &sh.c, i1);
            let d1 = load_v2(t, &sh.d, i1);
            let a2 = load_blk(t, &sh.a, i2);
            let b2 = load_blk(t, &sh.b, i2);
            let d2 = load_v2(t, &sh.d, i2);
            let b1inv = inv2(t, &b1);
            // Schur complement: S = B2 - A2 B1^{-1} C1.
            let a2b1inv = mul2(t, &a2, &b1inv);
            let p = mul2(t, &a2b1inv, &c1);
            let s = sub2(t, &b2, &p);
            let sinv = inv2(t, &s);
            let q = mulvec2(t, &a2b1inv, &d1);
            let rhs2 = subvec2(t, &d2, &q);
            let x2 = mulvec2(t, &sinv, &rhs2);
            let q = mulvec2(t, &c1, &x2);
            let rhs1 = subvec2(t, &d1, &q);
            let x1 = mulvec2(t, &b1inv, &rhs1);
            store_v2(t, &sh.x, i1, x1);
            store_v2(t, &sh.x, i2, x2);
        });

        for level in (0..levels).rev() {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            ctx.step(Phase::BackwardSubstitution, 0..active, |t| {
                let i = stride * t.tid() + half - 1;
                // The first reduced row has no left neighbour: its A block
                // is exactly zero, so read the (already solved) right
                // neighbour instead — same discarded product, but never a
                // load of uninitialized shared memory (the scalar CR kernel
                // uses the identical idiom; `i.saturating_sub(half)` would
                // read x[0] before any level has written it).
                let il = if i >= half { i - half } else { i + half };
                let d_i = load_v2(t, &sh.d, i);
                let b_i = load_blk(t, &sh.b, i);
                let a_i = load_blk(t, &sh.a, i);
                let c_i = load_blk(t, &sh.c, i);
                let x_l = load_v2(t, &sh.x, il);
                let x_r = load_v2(t, &sh.x, i + half);
                let p = mulvec2(t, &a_i, &x_l);
                let q = mulvec2(t, &c_i, &x_r);
                let s1 = subvec2(t, &d_i, &p);
                let num = subvec2(t, &s1, &q);
                let binv = inv2(t, &b_i);
                let v = mulvec2(t, &binv, &num);
                store_v2(t, &sh.x, i, v);
            });
        }

        ctx.step(Phase::GlobalStore, 0..threads, |t| {
            for k in 0..per_thread {
                let i = t.tid() + k * threads;
                for comp in 0..2 {
                    let v = t.load(sh.x[comp], i);
                    t.store_global(gm.x[comp], base + i, v);
                }
            }
        });
    }
}

/// Solve report for a block batch.
#[derive(Debug, Clone)]
pub struct BlockSolveReport<T: Real> {
    /// Per-system solutions (block sub-vectors per row).
    pub solutions: Vec<Vec<Vec2<T>>>,
    /// Simulated timing of the launch.
    pub timing: gpu_sim::TimingReport,
    /// Per-block instrumentation.
    pub stats: gpu_sim::KernelStats,
}

/// Validates a batch of equally-sized block-tridiagonal systems and
/// uploads it component-major into `gmem` (each of the 16 arrays holds one
/// scalar component of one coefficient block, `n * count` elements).
/// Shared by [`solve_block_batch`] and the static verifier's
/// instantiation glue.
pub fn upload_block_systems<T: Real>(
    gmem: &mut GlobalMem<T>,
    systems: &[BlockTridiagonalSystem<T>],
) -> Result<BlockSystemHandles<T>> {
    if systems.is_empty() {
        return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
    }
    let n = systems[0].n();
    require_pow2(n, 2)?;
    let count = systems.len();
    for sys in systems {
        if sys.n() != n {
            return Err(TridiagError::DimensionMismatch {
                what: "block system size in batch",
                expected: n,
                got: sys.n(),
            });
        }
    }

    // Flatten component-major.
    let flat_blk = |gmem: &mut GlobalMem<T>,
                    pick: &dyn Fn(&BlockTridiagonalSystem<T>, usize) -> Blk<T>,
                    r: usize,
                    cix: usize| {
        let mut v = Vec::with_capacity(n * count);
        for sys in systems {
            for i in 0..n {
                v.push(pick(sys, i)[r][cix]);
            }
        }
        gmem.upload(v)
    };
    let comp = |k: usize| (k / 2, k % 2);
    Ok(BlockSystemHandles {
        a: core::array::from_fn(|k| {
            let (r, c) = comp(k);
            flat_blk(gmem, &|s, i| s.a[i], r, c)
        }),
        b: core::array::from_fn(|k| {
            let (r, c) = comp(k);
            flat_blk(gmem, &|s, i| s.b[i], r, c)
        }),
        c: core::array::from_fn(|k| {
            let (r, c) = comp(k);
            flat_blk(gmem, &|s, i| s.c[i], r, c)
        }),
        d: core::array::from_fn(|k| {
            let mut v = Vec::with_capacity(n * count);
            for sys in systems {
                for i in 0..n {
                    v.push(sys.d[i][k]);
                }
            }
            gmem.upload(v)
        }),
        x: core::array::from_fn(|_| gmem.alloc_zeroed(n * count)),
    })
}

/// Solves a batch of equally-sized block-tridiagonal systems with block CR
/// on the simulated GPU.
pub fn solve_block_batch<T: Real>(
    launcher: &Launcher,
    systems: &[BlockTridiagonalSystem<T>],
) -> Result<BlockSolveReport<T>> {
    let mut gmem = GlobalMem::new();
    let gm = upload_block_systems(&mut gmem, systems)?;
    let n = systems[0].n();
    let count = systems.len();

    let kernel = BlockCrKernel { n, gm };
    let report = launcher.launch(&kernel, count, &mut gmem)?;

    let x0 = gmem.download(gm.x[0]);
    let x1 = gmem.download(gm.x[1]);
    let solutions =
        (0..count).map(|s| (0..n).map(|i| [x0[s * n + i], x1[s * n + i]]).collect()).collect();
    Ok(BlockSolveReport { solutions, timing: report.timing, stats: report.stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::TridiagonalSystem;

    #[test]
    fn matches_block_thomas() {
        let launcher = Launcher::gtx280();
        let systems: Vec<_> =
            (0..4).map(|s| BlockTridiagonalSystem::<f64>::random_dominant(s, 64)).collect();
        let report = solve_block_batch(&launcher, &systems).unwrap();
        for (k, sys) in systems.iter().enumerate() {
            let x_ref = cpu_solvers::block_thomas::solve(sys).unwrap();
            for i in 0..64 {
                for comp in 0..2 {
                    assert!(
                        (report.solutions[k][i][comp] - x_ref[i][comp]).abs() < 1e-9,
                        "sys {k} row {i}.{comp}"
                    );
                }
            }
            assert!(sys.l2_residual(&report.solutions[k]).unwrap() < 1e-10);
        }
    }

    #[test]
    fn decoupled_blocks_match_scalar_cr() {
        // Diagonal blocks = two interleaved scalar systems; the block
        // solver must agree with the scalar GPU CR solver on each.
        let launcher = Launcher::gtx280();
        let mut gen = tridiag_core::Generator::new(9);
        let s0: TridiagonalSystem<f64> = gen.system(tridiag_core::Workload::DiagonallyDominant, 32);
        let s1: TridiagonalSystem<f64> = gen.system(tridiag_core::Workload::DiagonallyDominant, 32);
        let blk = BlockTridiagonalSystem::from_decoupled(&s0, &s1).unwrap();
        let report = solve_block_batch(&launcher, &[blk]).unwrap();

        let batch = tridiag_core::SystemBatch::from_systems(&[s0, s1]).unwrap();
        let scalar =
            crate::solver::solve_batch(&launcher, crate::solver::GpuAlgorithm::Cr, &batch).unwrap();
        for i in 0..32 {
            assert!((report.solutions[0][i][0] - scalar.solutions.system(0)[i]).abs() < 1e-10);
            assert!((report.solutions[0][i][1] - scalar.solutions.system(1)[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn capacity_wall_is_128_for_f32() {
        // 16 arrays x 4 B: n=128 -> 8 KB (fits); n=256 -> 16 KB + reserve
        // (exceeds). Block systems hit the wall earlier than scalar ones.
        let launcher = Launcher::gtx280();
        let ok: Vec<_> =
            (0..2).map(|s| BlockTridiagonalSystem::<f32>::random_dominant(s, 128)).collect();
        assert!(solve_block_batch(&launcher, &ok).is_ok());
        let too_big: Vec<_> =
            (0..2).map(|s| BlockTridiagonalSystem::<f32>::random_dominant(s, 256)).collect();
        assert!(matches!(
            solve_block_batch(&launcher, &too_big),
            Err(TridiagError::SharedMemExceeded { .. })
        ));
    }

    #[test]
    fn same_step_structure_as_scalar_cr() {
        let launcher = Launcher::gtx280();
        let systems: Vec<_> =
            (0..1).map(|s| BlockTridiagonalSystem::<f32>::random_dominant(s, 128)).collect();
        let report = solve_block_batch(&launcher, &systems).unwrap();
        let algo_steps = report.stats.steps.iter().filter(|s| !s.phase.is_straight_line()).count();
        assert_eq!(algo_steps, 2 * 7 - 1); // 2 log2(128) - 1, like scalar CR
                                           // Stride-doubling conflicts appear here too.
        assert!(report.stats.max_conflict_degree() >= 8);
    }

    #[test]
    fn rejects_bad_shapes() {
        let launcher = Launcher::gtx280();
        let empty: Vec<BlockTridiagonalSystem<f32>> = vec![];
        assert!(solve_block_batch(&launcher, &empty).is_err());
        let odd = vec![BlockTridiagonalSystem::<f32>::random_dominant(1, 24)];
        assert!(solve_block_batch(&launcher, &odd).is_err());
        let mixed = vec![
            BlockTridiagonalSystem::<f32>::random_dominant(1, 32),
            BlockTridiagonalSystem::<f32>::random_dominant(2, 64),
        ];
        assert!(solve_block_batch(&launcher, &mixed).is_err());
    }
}
