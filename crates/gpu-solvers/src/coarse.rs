//! Coarse-grained batched Thomas kernel: **one thread per system**.
//!
//! The paper sets these aside: "Other parallel approaches, such as the
//! sub-structuring method and two-way Gaussian elimination, are
//! coarse-grained methods that map larger amounts of work per thread.
//! These methods would be more suitable to a multi-core CPU." This kernel
//! implements the canonical GPU variant anyway (it later became cuSPARSE's
//! `gtsvStridedBatch`) as an ablation: with an **interleaved layout**
//! (element `i` of system `s` at `i * count + s`) every access is
//! perfectly coalesced, but the recurrence makes each thread's loads a
//! serial dependence chain — the kernel is latency-bound, so it only pays
//! off when the batch is large enough to bury the chain in parallel work.

use crate::solver::GpuSolveReport;
use gpu_sim::{BlockCtx, GlobalArray, GlobalMem, GridKernel, Launcher, Phase};
use tridiag_core::{require_pow2, Real, Result, SolutionBatch, SystemBatch};

/// Threads per block for the coarse kernel (64 keeps many small blocks
/// resident for latency hiding).
const BLOCK_DIM: usize = 64;

/// One-thread-per-system Thomas kernel over interleaved arrays.
#[derive(Debug, Clone, Copy)]
pub struct ThomasPerThreadKernel<T> {
    /// System size.
    pub n: usize,
    /// Number of systems.
    pub count: usize,
    /// Interleaved inputs (element `i` of system `s` at `i * count + s`).
    pub a: GlobalArray<T>,
    /// Main diagonals (interleaved).
    pub b: GlobalArray<T>,
    /// Super-diagonals (interleaved).
    pub c: GlobalArray<T>,
    /// Right-hand sides (interleaved).
    pub d: GlobalArray<T>,
    /// Scratch for the forward-swept super-diagonal (interleaved).
    pub cp: GlobalArray<T>,
    /// Scratch for the forward-swept right-hand side (interleaved).
    pub dp: GlobalArray<T>,
    /// Solutions (interleaved).
    pub x: GlobalArray<T>,
}

impl<T: Real> GridKernel<T> for ThomasPerThreadKernel<T> {
    fn block_dim(&self) -> usize {
        BLOCK_DIM.min(self.count)
    }

    fn shared_words(&self) -> usize {
        0
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let count = self.count;
        let n = self.n;
        let dim = self.block_dim();
        let systems_here = dim.min(count - block_id * dim);
        let k = *self;
        // The whole solve is one superstep: the kernel has no barriers at
        // all — each thread runs its own serial recurrence.
        ctx.step(Phase::Other("thomas per-thread"), 0..systems_here, |t| {
            let s = block_id * dim + t.tid();
            let at = |i: usize| i * count + s;
            // Forward elimination. The loads of b/c/d at row i are
            // independent (prefetchable), but the recurrence on cp/dp makes
            // each iteration depend on the last — charge one chain link per
            // row.
            let b0 = t.load_global_dependent(k.b, at(0));
            let c0 = t.load_global(k.c, at(0));
            let d0 = t.load_global(k.d, at(0));
            let mut cp_prev = t.div(c0, b0);
            let mut dp_prev = t.div(d0, b0);
            t.store_global(k.cp, at(0), cp_prev);
            t.store_global(k.dp, at(0), dp_prev);
            for i in 1..n {
                let ai = t.load_global_dependent(k.a, at(i));
                let bi = t.load_global(k.b, at(i));
                let ci = t.load_global(k.c, at(i));
                let di = t.load_global(k.d, at(i));
                let p = t.mul(cp_prev, ai);
                let denom = t.sub(bi, p);
                cp_prev = t.div(ci, denom);
                let p = t.mul(dp_prev, ai);
                let num = t.sub(di, p);
                dp_prev = t.div(num, denom);
                t.store_global(k.cp, at(i), cp_prev);
                t.store_global(k.dp, at(i), dp_prev);
            }
            // Backward substitution — another dependent chain.
            let mut x_next = dp_prev;
            t.store_global(k.x, at(n - 1), x_next);
            for i in (0..n - 1).rev() {
                let cpi = t.load_global_dependent(k.cp, at(i));
                let dpi = t.load_global(k.dp, at(i));
                let p = t.mul(cpi, x_next);
                x_next = t.sub(dpi, p);
                t.store_global(k.x, at(i), x_next);
            }
        });
    }
}

/// Transposes the batch's system-major arrays into the interleaved layout.
fn interleave<T: Real>(data: &[T], n: usize, count: usize) -> Vec<T> {
    let mut out = vec![T::ZERO; n * count];
    for s in 0..count {
        for i in 0..n {
            out[i * count + s] = data[s * n + i];
        }
    }
    out
}

/// Solves a batch with the coarse-grained per-thread Thomas kernel
/// (any power-of-two system size; no shared-memory limits apply).
pub fn solve_batch_coarse<T: Real>(
    launcher: &Launcher,
    batch: &SystemBatch<T>,
) -> Result<GpuSolveReport<T>> {
    let n = batch.n();
    let count = batch.count();
    require_pow2(n, 2)?;

    let mut gmem = GlobalMem::new();
    let kernel = ThomasPerThreadKernel {
        n,
        count,
        a: gmem.upload(interleave(&batch.a, n, count)),
        b: gmem.upload(interleave(&batch.b, n, count)),
        c: gmem.upload(interleave(&batch.c, n, count)),
        d: gmem.upload(interleave(&batch.d, n, count)),
        cp: gmem.alloc_zeroed(n * count),
        dp: gmem.alloc_zeroed(n * count),
        x: gmem.alloc_zeroed(n * count),
    };
    let blocks = count.div_ceil(kernel.block_dim());
    let report = launcher.launch(&kernel, blocks, &mut gmem)?;

    // De-interleave the solutions.
    let xi = gmem.download(kernel.x);
    let mut x = vec![T::ZERO; n * count];
    for s in 0..count {
        for i in 0..n {
            x[s * n + i] = xi[i * count + s];
        }
    }
    let solutions = SolutionBatch::from_flat(n, count, x)?;
    let timing = report.timing.with_transfer(&launcher.cost, batch.transfer_bytes() as u64);
    Ok(GpuSolveReport {
        algorithm: crate::solver::GpuAlgorithm::ThomasPerThread,
        solutions,
        stats: report.stats,
        timing,
        diagnostics: report.diagnostics,
        injected_faults: report.injected_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_solvers::{solve_batch_seq, Thomas};
    use tridiag_core::residual::max_abs_diff;
    use tridiag_core::{dominant_batch, Generator, Workload};

    #[test]
    fn matches_cpu_thomas_exactly_in_f64() {
        let launcher = Launcher::gtx280();
        let batch: tridiag_core::SystemBatch<f64> =
            Generator::new(5).batch(Workload::DiagonallyDominant, 64, 10).unwrap();
        let gpu = solve_batch_coarse(&launcher, &batch).unwrap();
        let cpu = solve_batch_seq(&Thomas, &batch).unwrap();
        assert_eq!(max_abs_diff(&gpu.solutions.x, &cpu.x), 0.0, "same arithmetic order");
    }

    #[test]
    fn handles_oversized_systems_and_odd_counts() {
        let launcher = Launcher::gtx280();
        // n = 2048 exceeds shared memory for the fine-grained kernels;
        // count = 37 is not a multiple of the block size.
        let batch = dominant_batch::<f32>(9, 2048, 37);
        let r = solve_batch_coarse(&launcher, &batch).unwrap();
        let res = tridiag_core::residual::batch_residual(&batch, &r.solutions).unwrap();
        assert!(!res.has_overflow());
        assert!(res.max_l2 < 1e-2, "{}", res.max_l2);
    }

    #[test]
    fn is_latency_bound() {
        // The dependent chain (2n links) dominates: kernel time is roughly
        // chain_length x latency regardless of batch count (until the
        // machine saturates).
        let launcher = Launcher::gtx280();
        let t_small = solve_batch_coarse(&launcher, &dominant_batch::<f32>(1, 512, 64))
            .unwrap()
            .timing
            .kernel_ms;
        let t_large = solve_batch_coarse(&launcher, &dominant_batch::<f32>(1, 512, 512))
            .unwrap()
            .timing
            .kernel_ms;
        // 8x the systems costs far less than 8x the time.
        assert!(t_large < 3.0 * t_small, "small {t_small}, large {t_large}");
        let chain_ms = 2.0 * 512.0 * launcher.cost.global_latency_cycles
            / (launcher.device.clock_ghz * 1e9)
            * 1e3;
        assert!(t_small > chain_ms * 0.9, "must pay the chain: {t_small} vs {chain_ms}");
    }

    #[test]
    fn fine_grained_wins_at_the_paper_sizes() {
        // At 512x512 the fine-grained hybrid beats thread-per-system —
        // the paper's premise for targeting fine-grained algorithms.
        let launcher = Launcher::gtx280();
        let batch = dominant_batch::<f32>(2, 512, 512);
        let coarse = solve_batch_coarse(&launcher, &batch).unwrap().timing.kernel_ms;
        let fine = crate::solver::solve_batch(
            &launcher,
            crate::solver::GpuAlgorithm::CrPcr { m: 256 },
            &batch,
        )
        .unwrap()
        .timing
        .kernel_ms;
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn coarse_wins_for_huge_batches_of_small_systems() {
        // The crossover: tens of thousands of tiny systems favor the
        // latency-bound-but-work-efficient coarse kernel.
        let launcher = Launcher::gtx280();
        let batch = dominant_batch::<f32>(3, 64, 16384);
        let coarse = solve_batch_coarse(&launcher, &batch).unwrap().timing.kernel_ms;
        let fine = crate::solver::solve_batch(
            &launcher,
            crate::solver::GpuAlgorithm::CrPcr { m: 32 },
            &batch,
        )
        .unwrap()
        .timing
        .kernel_ms;
        assert!(coarse < fine, "coarse {coarse} vs fine {fine}");
    }
}
