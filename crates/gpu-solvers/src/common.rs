//! Plumbing shared by every solver kernel: global-memory handles for the
//! paper's five-array layout and batch upload/download helpers.

use gpu_sim::{GlobalArray, GlobalMem};
use tridiag_core::{Real, SolutionBatch, SystemBatch};

/// Device-side handles to the five arrays of §4: "three for the matrix
/// diagonals, one for the right-hand side, and one for the solution vector",
/// each storing all systems contiguously.
#[derive(Debug, Clone, Copy)]
pub struct SystemHandles<T> {
    /// Sub-diagonals of every system.
    pub a: GlobalArray<T>,
    /// Main diagonals.
    pub b: GlobalArray<T>,
    /// Super-diagonals.
    pub c: GlobalArray<T>,
    /// Right-hand sides.
    pub d: GlobalArray<T>,
    /// Solutions (output).
    pub x: GlobalArray<T>,
}

impl<T: Real> SystemHandles<T> {
    /// Uploads a batch to device global memory.
    pub fn upload(gmem: &mut GlobalMem<T>, batch: &SystemBatch<T>) -> Self {
        Self {
            a: gmem.upload(batch.a.clone()),
            b: gmem.upload(batch.b.clone()),
            c: gmem.upload(batch.c.clone()),
            d: gmem.upload(batch.d.clone()),
            x: gmem.alloc_zeroed(batch.total_len()),
        }
    }

    /// Downloads the solution array as a [`SolutionBatch`].
    pub fn download_solutions(
        &self,
        gmem: &mut GlobalMem<T>,
        batch: &SystemBatch<T>,
    ) -> SolutionBatch<T> {
        SolutionBatch::from_flat(batch.n(), batch.count(), gmem.download(self.x))
            .expect("solution array length matches batch by construction")
    }
}

/// `log2` of a power-of-two size.
#[inline]
pub(crate) fn log2(n: usize) -> u32 {
    debug_assert!(n.is_power_of_two());
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::Generator;
    use tridiag_core::Workload;

    #[test]
    fn upload_download_round_trip() {
        let batch: SystemBatch<f32> = Generator::new(1).batch(Workload::Poisson, 8, 3).unwrap();
        let mut gmem = GlobalMem::new();
        let h = SystemHandles::upload(&mut gmem, &batch);
        assert_eq!(gmem.view(h.a), batch.a.as_slice());
        assert_eq!(gmem.view(h.x), vec![0.0f32; 24].as_slice());
        let sol = h.download_solutions(&mut gmem, &batch);
        assert_eq!(sol.n(), 8);
        assert_eq!(sol.count(), 3);
    }

    #[test]
    fn log2_values() {
        assert_eq!(log2(2), 1);
        assert_eq!(log2(512), 9);
    }
}
