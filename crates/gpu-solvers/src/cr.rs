//! The cyclic reduction (CR) kernel — §2.1/§4 of the paper.
//!
//! One block solves one system of `n` unknowns with `n/2` threads. The
//! five arrays live in shared memory; the reduction is performed **in
//! place**, which saves shared memory (more resident blocks) at the price of
//! the stride-doubling bank conflicts the paper analyses in Figure 9.
//!
//! Structure (each bullet is one barrier-separated superstep):
//! * global load (each thread loads two elements per array, unit stride);
//! * `log2(n) - 1` forward-reduction steps, halving the active threads;
//! * one step solving the remaining 2-unknown system;
//! * `log2(n) - 1` backward-substitution steps, doubling the active threads;
//! * global store.

use crate::common::{log2, SystemHandles};
use gpu_sim::{BlockCtx, GridKernel, Phase, Shared, ThreadCtx};
use tridiag_core::Real;

/// Cyclic-reduction solver kernel (one system per block).
#[derive(Debug, Clone, Copy)]
pub struct CrKernel<T> {
    /// System size (power of two, >= 2).
    pub n: usize,
    /// Device arrays.
    pub gm: SystemHandles<T>,
}

/// The five shared arrays of one block.
pub(crate) struct SharedSystem<T> {
    pub a: Shared<T>,
    pub b: Shared<T>,
    pub c: Shared<T>,
    pub d: Shared<T>,
    pub x: Shared<T>,
}

impl<T: Real> SharedSystem<T> {
    pub fn alloc(ctx: &mut BlockCtx<'_, T>, n: usize) -> Self {
        Self { a: ctx.alloc(n), b: ctx.alloc(n), c: ctx.alloc(n), d: ctx.alloc(n), x: ctx.alloc(n) }
    }
}

/// Global -> shared load of one block's system, two elements per thread
/// (coalesced, conflict-free).
pub(crate) fn load_system<T: Real>(
    ctx: &mut BlockCtx<'_, T>,
    sh: &SharedSystem<T>,
    gm: &SystemHandles<T>,
    base: usize,
    n: usize,
    threads: usize,
) {
    let per_thread = n / threads;
    ctx.step(Phase::GlobalLoad, 0..threads, |t| {
        for k in 0..per_thread {
            // Two coalesced halves (i = tid + k*threads), not adjacent
            // pairs — adjacent pairs would be a 2-way bank conflict.
            let i = t.tid() + k * threads;
            let v = t.load_global(gm.a, base + i);
            t.store(sh.a, i, v);
            let v = t.load_global(gm.b, base + i);
            t.store(sh.b, i, v);
            let v = t.load_global(gm.c, base + i);
            t.store(sh.c, i, v);
            let v = t.load_global(gm.d, base + i);
            t.store(sh.d, i, v);
        }
    });
}

/// Shared -> global store of one block's solution.
pub(crate) fn store_solution<T: Real>(
    ctx: &mut BlockCtx<'_, T>,
    sh: &SharedSystem<T>,
    gm: &SystemHandles<T>,
    base: usize,
    n: usize,
    threads: usize,
) {
    let per_thread = n / threads;
    ctx.step(Phase::GlobalStore, 0..threads, |t| {
        for k in 0..per_thread {
            let i = t.tid() + k * threads;
            let v = t.load(sh.x, i);
            t.store_global(gm.x, base + i, v);
        }
    });
}

/// One CR forward-reduction update of equation `i` against its `±half`
/// neighbours; shared by the plain, hybrid and conflict-free kernels.
///
/// Boundary handling is **branchless**: the last equation's right-neighbour
/// index is clamped to itself, and its `c` coefficient is zero by invariant,
/// so `k2 = c/b = 0` kills all right-hand terms. Branchless code keeps
/// every lane's instruction stream identical — exactly what a warp executes
/// — which also keeps the simulator's per-slot bank-conflict grouping
/// faithful.
#[inline]
pub(crate) fn forward_update<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    sh: &SharedSystem<T>,
    i: usize,
    half: usize,
    n: usize,
) {
    let ir = (i + half).min(n - 1);
    forward_update_at(t, sh, i, i - half, ir);
}

/// [`forward_update`] with explicit access indices — lets the Figure 9
/// stride-one timing variant perform the identical instruction sequence at
/// compacted (bank-conflict-free, numerically wrong) addresses.
#[inline]
pub(crate) fn forward_update_at<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    sh: &SharedSystem<T>,
    i: usize,
    il: usize,
    ir: usize,
) {
    let a_i = t.load(sh.a, i);
    let b_il = t.load(sh.b, il);
    let k1 = t.div(a_i, b_il);
    let a_il = t.load(sh.a, il);
    let c_il = t.load(sh.c, il);
    let d_il = t.load(sh.d, il);
    let b_i = t.load(sh.b, i);
    let c_i = t.load(sh.c, i);
    let d_i = t.load(sh.d, i);
    let b_ir = t.load(sh.b, ir);
    let k2 = t.div(c_i, b_ir);
    let a_ir = t.load(sh.a, ir);
    let c_ir = t.load(sh.c, ir);
    let d_ir = t.load(sh.d, ir);
    let na = {
        let p = t.mul(a_il, k1);
        t.neg(p)
    };
    let nb = {
        let p1 = t.mul(c_il, k1);
        let p2 = t.mul(a_ir, k2);
        let s = t.sub(b_i, p1);
        t.sub(s, p2)
    };
    let nd = {
        let p1 = t.mul(d_il, k1);
        let p2 = t.mul(d_ir, k2);
        let s = t.sub(d_i, p1);
        t.sub(s, p2)
    };
    let nc = {
        let p = t.mul(c_ir, k2);
        t.neg(p)
    };
    t.store(sh.a, i, na);
    t.store(sh.b, i, nb);
    t.store(sh.c, i, nc);
    t.store(sh.d, i, nd);
}

/// Backward-substitution update solving `x[i]` from already-known
/// neighbours; shared by the plain and hybrid kernels.
///
/// Branchless boundary handling: the first unknown has no left neighbour,
/// and its `a` coefficient is zero by invariant, so the left term vanishes
/// whatever is read. The clamp targets the *right* neighbour `x[i + half]`
/// (always solved at this point) rather than `x[0]` (not yet solved until
/// the last level — reading it would be an uninitialized read, which the
/// sanitizer rightly flags).
#[inline]
pub(crate) fn backward_update<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    sh: &SharedSystem<T>,
    i: usize,
    half: usize,
) {
    let ir = i + half;
    let il = if i >= half { i - half } else { ir };
    backward_update_at(t, sh, i, il, ir);
}

/// [`backward_update`] with explicit access indices (see
/// [`forward_update_at`]).
#[inline]
pub(crate) fn backward_update_at<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    sh: &SharedSystem<T>,
    i: usize,
    il: usize,
    ir: usize,
) {
    let d_i = t.load(sh.d, i);
    let b_i = t.load(sh.b, i);
    let c_i = t.load(sh.c, i);
    let x_r = t.load(sh.x, ir);
    let a_i = t.load(sh.a, i);
    let x_l = t.load(sh.x, il);
    let num = {
        let p1 = t.mul(a_i, x_l);
        let p2 = t.mul(c_i, x_r);
        let s = t.sub(d_i, p1);
        t.sub(s, p2)
    };
    let v = t.div(num, b_i);
    t.store(sh.x, i, v);
}

/// Solves the final 2-unknown system at indices `i1 = span/2 - 1` and
/// `i2 = span - 1` (single-thread step, as in the CUDA kernel).
pub(crate) fn solve_two_unknowns<T: Real>(
    ctx: &mut BlockCtx<'_, T>,
    sh: &SharedSystem<T>,
    i1: usize,
    i2: usize,
) {
    ctx.step(Phase::SolveTwoUnknown, 0..1, |t| {
        let b1 = t.load(sh.b, i1);
        let c1 = t.load(sh.c, i1);
        let d1 = t.load(sh.d, i1);
        let a2 = t.load(sh.a, i2);
        let b2 = t.load(sh.b, i2);
        let d2 = t.load(sh.d, i2);
        let det = {
            let p1 = t.mul(b1, b2);
            let p2 = t.mul(c1, a2);
            t.sub(p1, p2)
        };
        let x1 = {
            let p1 = t.mul(d1, b2);
            let p2 = t.mul(c1, d2);
            let num = t.sub(p1, p2);
            t.div(num, det)
        };
        let x2 = {
            let p1 = t.mul(b1, d2);
            let p2 = t.mul(d1, a2);
            let num = t.sub(p1, p2);
            t.div(num, det)
        };
        t.store(sh.x, i1, x1);
        t.store(sh.x, i2, x2);
    });
}

impl<T: Real> GridKernel<T> for CrKernel<T> {
    fn block_dim(&self) -> usize {
        (self.n / 2).max(1)
    }

    fn shared_words(&self) -> usize {
        5 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let base = block_id * n;
        let threads = self.block_dim();
        let sh = SharedSystem::alloc(ctx, n);
        load_system(ctx, &sh, &self.gm, base, n, threads);

        let levels = log2(n) - 1;
        for level in 0..levels {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            ctx.step(Phase::ForwardReduction, 0..active, |t| {
                let i = stride * (t.tid() + 1) - 1;
                forward_update(t, &sh, i, half, n);
            });
        }

        solve_two_unknowns(ctx, &sh, n / 2 - 1, n - 1);

        for level in (0..levels).rev() {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            ctx.step(Phase::BackwardSubstitution, 0..active, |t| {
                let i = stride * t.tid() + half - 1;
                backward_update(t, &sh, i, half);
            });
        }

        store_solution(ctx, &sh, &self.gm, base, n, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMem, Launcher};
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SystemBatch, Workload};

    fn run(
        n: usize,
        count: usize,
    ) -> (SystemBatch<f32>, tridiag_core::SolutionBatch<f32>, gpu_sim::LaunchReport) {
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::DiagonallyDominant, n, count).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = CrKernel { n, gm };
        let report = Launcher::gtx280().launch(&kernel, count, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        (batch, sol, report)
    }

    #[test]
    fn solves_batches_accurately() {
        for n in [2usize, 4, 8, 64, 512] {
            let (batch, sol, _) = run(n, 4);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "n={n}");
            assert!(r.max_l2 < 2e-4, "n={n}: residual {}", r.max_l2);
        }
    }

    #[test]
    fn step_count_matches_paper() {
        // Table 1: 2 log2 n - 1 algorithmic steps (plus our explicit
        // load/store supersteps).
        let (_, _, report) = run(512, 1);
        let algo_steps = report
            .stats
            .steps
            .iter()
            .filter(|s| !matches!(s.phase, Phase::GlobalLoad | Phase::GlobalStore))
            .count();
        assert_eq!(algo_steps, 2 * 9 - 1);
    }

    #[test]
    fn forward_reduction_conflicts_grow_then_shrink() {
        // Figure 9: conflict degrees 2,4,8,16,16,8,4,2 across the eight
        // forward-reduction steps at n = 512.
        let (_, _, report) = run(512, 1);
        let degrees: Vec<u32> = report
            .stats
            .steps_in_phase(Phase::ForwardReduction)
            .map(|s| s.max_conflict_degree)
            .collect();
        assert_eq!(degrees, vec![2, 4, 8, 16, 16, 8, 4, 2]);
    }

    #[test]
    fn active_threads_halve_each_step() {
        let (_, _, report) = run(512, 1);
        let actives: Vec<usize> = report
            .stats
            .steps_in_phase(Phase::ForwardReduction)
            .map(|s| s.active_threads)
            .collect();
        assert_eq!(actives, vec![256, 128, 64, 32, 16, 8, 4, 2]);
    }

    #[test]
    fn shared_footprint_is_five_arrays() {
        let (_, _, report) = run(512, 1);
        assert_eq!(report.stats.shared_words, 5 * 512);
        // 10240 B -> exactly one resident block per SM (paper §5.2).
        assert_eq!(report.timing.occupancy.blocks_per_sm, 1);
    }

    #[test]
    fn work_is_linear_in_n() {
        // Table 1: CR is O(n) — ops(512)/ops(64) must be ~8, not ~12.
        let (_, _, r64) = run(64, 1);
        let (_, _, r512) = run(512, 1);
        let ratio = r512.stats.total_ops() as f64 / r64.stats.total_ops() as f64;
        assert!((7.0..9.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn division_count_matches_table1_scale() {
        // Table 1: 3n divisions out of 17n ops.
        let (_, _, r) = run(512, 1);
        let divs = r.stats.total_divs();
        assert!((2 * 512..=4 * 512).contains(&(divs as usize)), "divs={divs}");
    }

    #[test]
    fn global_traffic_is_5n() {
        let (_, _, r) = run(256, 1);
        assert_eq!(r.stats.global_accesses, 5 * 256);
    }
}
