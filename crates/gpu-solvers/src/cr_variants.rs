//! CR variants for the paper's bank-conflict experiments.
//!
//! * [`CrStrideOneKernel`] — the Figure 9 measurement vehicle: "the same
//!   program modified to enforce a shared memory access stride of one so
//!   that it is bank-conflict-free. This results in an **incorrect
//!   algorithm**, but is for timing comparison only." It performs the exact
//!   instruction sequence of [`crate::cr::CrKernel`] at compacted addresses.
//! * [`CrEvenOddKernel`] — the *correct* bank-conflict-free CR of footnote 1
//!   (Göddeke & Strzodka): "store the even-indexed and odd-indexed equations
//!   of all reduced systems separately, at the cost of extra shared memory
//!   usage and more complicated addressing." Forward reduction becomes fully
//!   unit-stride; backward substitution keeps strided accesses only to the
//!   solution vector.

use crate::common::{log2, SystemHandles};
use crate::cr::{backward_update_at, forward_update_at, SharedSystem};
use gpu_sim::{BlockCtx, GridKernel, Phase, Shared};
use tridiag_core::Real;

// ---------------------------------------------------------------------------
// Stride-one timing variant (incorrect results, Figure 9).
// ---------------------------------------------------------------------------

/// CR with all shared accesses compacted to unit stride — *timing-only*
/// (results are numerically meaningless). Identical structure, instruction
/// counts and active-thread schedule to [`crate::cr::CrKernel`].
#[derive(Debug, Clone, Copy)]
pub struct CrStrideOneKernel<T> {
    /// System size (power of two, >= 2).
    pub n: usize,
    /// Device arrays.
    pub gm: SystemHandles<T>,
}

impl<T: Real> GridKernel<T> for CrStrideOneKernel<T> {
    fn block_dim(&self) -> usize {
        (self.n / 2).max(1)
    }

    fn shared_words(&self) -> usize {
        5 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let base = block_id * n;
        let threads = self.block_dim();
        let sh = SharedSystem::alloc(ctx, n);
        crate::cr::load_system(ctx, &sh, &self.gm, base, n, threads);

        let levels = log2(n) - 1;
        for level in 0..levels {
            let active = n >> (level + 1);
            ctx.step(Phase::ForwardReduction, 0..active, |t| {
                // Identical (branchless) instruction mix at compacted
                // unit-stride addresses.
                let i = t.tid();
                let il = i.saturating_sub(1);
                let ir = (i + 1).min(n - 1);
                forward_update_at(t, &sh, i, il, ir);
            });
        }

        crate::cr::solve_two_unknowns(ctx, &sh, 0, 1);

        for level in (0..levels).rev() {
            let active = n >> (level + 1);
            ctx.step(Phase::BackwardSubstitution, 0..active, |t| {
                let i = t.tid();
                let il = i.saturating_sub(1);
                backward_update_at(t, &sh, i, il, (i + 1).min(n - 1));
            });
        }

        crate::cr::store_solution(ctx, &sh, &self.gm, base, n, threads);
    }
}

// ---------------------------------------------------------------------------
// Even/odd separated, correct bank-conflict-free CR (Göddeke & Strzodka).
// ---------------------------------------------------------------------------

/// Correct bank-conflict-free CR using de-interleaved even/odd storage per
/// reduction level. Costs ~40% extra shared memory (the footnote cites 50%
/// for the original implementation).
#[derive(Debug, Clone, Copy)]
pub struct CrEvenOddKernel<T> {
    /// System size (power of two, >= 4).
    pub n: usize,
    /// Device arrays.
    pub gm: SystemHandles<T>,
}

/// Per-level de-interleaved coefficient storage: element `j` of level `l`'s
/// arrays holds the *even-local* equation `2j` of that level. Odd-local
/// equations live in a scratch set reused across levels (they become the
/// next level and die immediately after).
struct EvenOddArrays<T> {
    /// `even[l]` = (a, b, c, d) of level `l`'s even-local equations.
    even: Vec<[Shared<T>; 4]>,
    /// Scratch (a, b, c, d) holding the current level's odd-local equations.
    odd: [Shared<T>; 4],
    /// Full-size solution vector in original indexing.
    x: Shared<T>,
}

/// Pads the arena with 1-element dummy arrays until the next allocation
/// starts at `offset` modulo 16 words — the staggering that keeps mixed
/// even/odd writes conflict-free.
fn align_to<T: Real>(ctx: &mut BlockCtx<'_, T>, offset: usize) {
    while ctx.shared_words_used() % 16 != offset {
        let _ = ctx.alloc(1);
    }
}

/// Mirrors [`align_to`] on a plain word counter (for `shared_words()`).
fn count_align<T: Real>(words: &mut usize, offset: usize) {
    while *words % 16 != offset {
        *words += T::SHARED_WORDS;
    }
}

impl<T: Real> CrEvenOddKernel<T> {
    fn levels(&self) -> u32 {
        log2(self.n) - 1
    }

    /// Allocation plan shared between `shared_words()` (counting) and
    /// `run_block` (allocating): x, then per-level even quadruples aligned
    /// to offset 0, then the odd scratch quadruple aligned to offset 8.
    fn footprint_words(&self) -> usize {
        let n = self.n;
        let mut w = n * T::SHARED_WORDS; // x
        for level in 0..=self.levels() {
            let len = (n >> (level + 1)).max(1);
            for _ in 0..4 {
                count_align::<T>(&mut w, 0);
                w += len * T::SHARED_WORDS;
            }
        }
        for _ in 0..4 {
            count_align::<T>(&mut w, 8);
            w += (n / 2) * T::SHARED_WORDS;
        }
        w
    }

    fn alloc_arrays(&self, ctx: &mut BlockCtx<'_, T>) -> EvenOddArrays<T> {
        let n = self.n;
        let x = ctx.alloc(n);
        let mut even = Vec::new();
        for level in 0..=self.levels() {
            let len = (n >> (level + 1)).max(1);
            let quad = core::array::from_fn(|_| {
                align_to(ctx, 0);
                ctx.alloc(len)
            });
            even.push(quad);
        }
        let odd = core::array::from_fn(|_| {
            align_to(ctx, 8);
            ctx.alloc(n / 2)
        });
        EvenOddArrays { even, odd, x }
    }
}

impl<T: Real> GridKernel<T> for CrEvenOddKernel<T> {
    fn block_dim(&self) -> usize {
        self.n / 2
    }

    fn shared_words(&self) -> usize {
        self.footprint_words()
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        assert!(n >= 4, "even/odd CR needs n >= 4");
        let base = block_id * n;
        let ar = self.alloc_arrays(ctx);
        let gm = self.gm;
        let levels = self.levels();

        // De-interleaving load: thread t fetches original equations 2t and
        // 2t+1 into the level-0 even arrays and the odd scratch.
        let globals = [gm.a, gm.b, gm.c, gm.d];
        ctx.step(Phase::GlobalLoad, 0..n / 2, |t| {
            let j = t.tid();
            for (k, &g) in globals.iter().enumerate() {
                let v = t.load_global(g, base + 2 * j);
                t.store(ar.even[0][k], j, v);
                let v = t.load_global(g, base + 2 * j + 1);
                t.store(ar.odd[k], j, v);
            }
        });

        // Forward reduction: produce level l+1 (the odds of level l,
        // updated) from level l. All coefficient accesses are unit-stride.
        for level in 0..levels {
            let m_next = n >> (level + 1); // equations in the new level
            let [ea, eb, ec, ed] = ar.even[level as usize];
            let [na, nb, nc, nd] = ar.even[(level + 1) as usize];
            let [oa, ob, oc, od] = ar.odd;
            ctx.step(Phase::ForwardReduction, 0..m_next, |t| {
                let j = t.tid();
                // Branchless boundary: the last new equation's right index
                // clamps to itself-adjacent storage and its own c (the
                // original last equation's) is zero, so k2 vanishes.
                let jr = (j + 1).min(m_next - 1);
                let a_own = t.load(oa, j);
                let b_left = t.load(eb, j);
                let k1 = t.div(a_own, b_left);
                let a_left = t.load(ea, j);
                let c_left = t.load(ec, j);
                let d_left = t.load(ed, j);
                let b_own = t.load(ob, j);
                let c_own = t.load(oc, j);
                let d_own = t.load(od, j);
                let new_a = {
                    let p = t.mul(a_left, k1);
                    t.neg(p)
                };
                let b_right = t.load(eb, jr);
                let k2 = t.div(c_own, b_right);
                let a_right = t.load(ea, jr);
                let c_right = t.load(ec, jr);
                let d_right = t.load(ed, jr);
                let new_b = {
                    let p1 = t.mul(c_left, k1);
                    let p2 = t.mul(a_right, k2);
                    let s = t.sub(b_own, p1);
                    t.sub(s, p2)
                };
                let new_d = {
                    let p1 = t.mul(d_left, k1);
                    let p2 = t.mul(d_right, k2);
                    let s = t.sub(d_own, p1);
                    t.sub(s, p2)
                };
                let new_c = {
                    let p = t.mul(c_right, k2);
                    t.neg(p)
                };
                // New equation j goes to the evens of level+1 (j even) or
                // back into the odd scratch (j odd) — mixed-array writes
                // whose 8-word stagger keeps them conflict-free.
                if j % 2 == 0 {
                    t.store(na, j / 2, new_a);
                    t.store(nb, j / 2, new_b);
                    t.store(nc, j / 2, new_c);
                    t.store(nd, j / 2, new_d);
                } else {
                    t.store(oa, j / 2, new_a);
                    t.store(ob, j / 2, new_b);
                    t.store(oc, j / 2, new_c);
                    t.store(od, j / 2, new_d);
                }
            });
        }

        // Two unknowns left: the even of level `levels` (orig n/2-1) and the
        // single remaining odd in scratch (orig n-1).
        {
            let [eb, ec, ed] = [
                ar.even[levels as usize][1],
                ar.even[levels as usize][2],
                ar.even[levels as usize][3],
            ];
            let [oa, ob, od] = [ar.odd[0], ar.odd[1], ar.odd[3]];
            let x = ar.x;
            ctx.step(Phase::SolveTwoUnknown, 0..1, |t| {
                let b1 = t.load(eb, 0);
                let c1 = t.load(ec, 0);
                let d1 = t.load(ed, 0);
                let a2 = t.load(oa, 0);
                let b2 = t.load(ob, 0);
                let d2 = t.load(od, 0);
                let det = {
                    let p1 = t.mul(b1, b2);
                    let p2 = t.mul(c1, a2);
                    t.sub(p1, p2)
                };
                let x1 = {
                    let p1 = t.mul(d1, b2);
                    let p2 = t.mul(c1, d2);
                    let num = t.sub(p1, p2);
                    t.div(num, det)
                };
                let x2 = {
                    let p1 = t.mul(b1, d2);
                    let p2 = t.mul(d1, a2);
                    let num = t.sub(p1, p2);
                    t.div(num, det)
                };
                t.store(x, n / 2 - 1, x1);
                t.store(x, n - 1, x2);
            });
        }

        // Backward substitution: level l solves its even-local equations
        // (orig positions 2^l (2j+1) - 1). Coefficients are unit-stride;
        // only the solution vector is accessed at the original stride.
        for level in (0..levels).rev() {
            let m_half = n >> (level + 1);
            let [ea, eb, ec, ed] = ar.even[level as usize];
            let x = ar.x;
            let s = 1usize << level;
            ctx.step(Phase::BackwardSubstitution, 0..m_half, |t| {
                let j = t.tid();
                let o = s * (2 * j + 1) - 1;
                let d_i = t.load(ed, j);
                let b_i = t.load(eb, j);
                let c_i = t.load(ec, j);
                let x_r = t.load(x, o + s);
                // Branchless first-unknown handling: a_e[0] is zero by
                // invariant, so the clamped left read contributes nothing.
                // Clamp to the (already-solved) right neighbour, not x[0],
                // which is only written at the final level.
                let a_i = t.load(ea, j);
                let x_l = t.load(x, if o >= s { o - s } else { o + s });
                let num = {
                    let p1 = t.mul(a_i, x_l);
                    let p2 = t.mul(c_i, x_r);
                    let su = t.sub(d_i, p1);
                    t.sub(su, p2)
                };
                let v = t.div(num, b_i);
                t.store(x, o, v);
            });
        }

        // Unit-stride store of the solution.
        let x = ar.x;
        ctx.step(Phase::GlobalStore, 0..n / 2, |t| {
            let tdx = t.tid();
            for k in 0..2 {
                let i = 2 * tdx + k;
                let v = t.load(x, i);
                t.store_global(gm.x, base + i, v);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMem, LaunchReport, Launcher};
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SystemBatch, Workload};

    fn run_even_odd(
        n: usize,
        count: usize,
    ) -> (SystemBatch<f32>, LaunchReport, tridiag_core::SolutionBatch<f32>) {
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::DiagonallyDominant, n, count).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = CrEvenOddKernel { n, gm };
        let report = Launcher::gtx280().launch(&kernel, count, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        (batch, report, sol)
    }

    #[test]
    fn even_odd_cr_is_correct() {
        for n in [4usize, 8, 64, 512] {
            let (batch, _, sol) = run_even_odd(n, 3);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "n={n}");
            assert!(r.max_l2 < 2e-4, "n={n}: {}", r.max_l2);
        }
    }

    #[test]
    fn even_odd_forward_reduction_is_conflict_free() {
        let (_, report, _) = run_even_odd(512, 1);
        for s in report.stats.steps_in_phase(Phase::ForwardReduction) {
            assert_eq!(s.max_conflict_degree, 1, "forward step has conflicts");
        }
        // Backward substitution still touches x at the original stride;
        // conflicts there are expected but bounded by the x accesses only.
        let worst_back = report
            .stats
            .steps_in_phase(Phase::BackwardSubstitution)
            .map(|s| s.max_conflict_degree)
            .max()
            .unwrap();
        assert!(worst_back > 1, "x accesses are strided by construction");
    }

    #[test]
    fn even_odd_uses_more_shared_memory_than_cr() {
        // The footnote's cost: extra shared memory versus plain CR.
        let (_, report, _) = run_even_odd(512, 1);
        let plain = 5 * 512;
        let ratio = report.stats.shared_words as f64 / plain as f64;
        assert!((1.2..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn even_odd_matches_plain_cr_step_count() {
        let (batch, report, _) = run_even_odd(512, 1);
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let plain =
            Launcher::gtx280().launch(&crate::cr::CrKernel { n: 512, gm }, 1, &mut gmem).unwrap();
        assert_eq!(report.stats.num_steps(), plain.stats.num_steps());
    }

    #[test]
    fn stride_one_variant_matches_cr_structure_without_conflicts() {
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::DiagonallyDominant, 512, 1).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let fake =
            Launcher::gtx280().launch(&CrStrideOneKernel { n: 512, gm }, 1, &mut gmem).unwrap();
        let mut gmem2 = GlobalMem::new();
        let gm2 = SystemHandles::upload(&mut gmem2, &batch);
        let real = Launcher::gtx280()
            .launch(&crate::cr::CrKernel { n: 512, gm: gm2 }, 1, &mut gmem2)
            .unwrap();
        // Same instruction mix...
        assert_eq!(fake.stats.num_steps(), real.stats.num_steps());
        assert_eq!(fake.stats.total_ops(), real.stats.total_ops());
        assert_eq!(fake.stats.total_shared_accesses(), real.stats.total_shared_accesses());
        // ...but conflict-free, hence faster (Figure 9's overall 1.7x-4.8x).
        assert_eq!(fake.stats.max_conflict_degree(), 1);
        assert!(fake.timing.kernel_ms < real.timing.kernel_ms);
    }
}
