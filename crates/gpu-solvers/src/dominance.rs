//! Dominance propagation through cyclic-reduction levels (Heller 1976).
//!
//! Write each row's off-diagonal ratio as `r_i = (|a_i| + |c_i|) / |b_i|`;
//! strict diagonal dominance is `r < 1` where `r = max_i r_i`. One CR
//! forward-reduction step replaces a row by its Schur complement against
//! its odd neighbours, and Heller's lemma shows the worst-case ratio after
//! the step obeys
//!
//! ```text
//! r' <= r^2 / (2 - r^2) <= r^2        (for r < 1)
//! ```
//!
//! so dominance is not merely *preserved* level by level — it squares,
//! converging quadratically toward a perfectly diagonal system. This is
//! why the paper's pivoting-free CR is safe on dominant batches, and why
//! `numeric-verify` can certify a whole CR/PCR reduction tree from one
//! top-level scan: every level's pivots are at least as safe as level 0's.
//!
//! The analyzer does **not** take the lemma on faith: it re-checks each
//! reduction level numerically in `f64` (see `numeric-verify`). These
//! constants exist so the analytic bound is stated once, testably, next
//! to the kernels it licenses.

/// Worst-case off-diagonal ratio after one CR reduction level, given the
/// ratio `r < 1` before the level (Heller's bound, the loose `r²` form).
///
/// Returns `r` unchanged when `r >= 1` — the lemma only speaks for
/// strictly dominant inputs, and callers treat a non-contracting level as
/// "no guarantee".
pub fn cr_level_ratio_bound(r: f64) -> f64 {
    if r >= 1.0 || !r.is_finite() {
        return r;
    }
    r * r
}

/// Number of CR levels after which the dominance ratio provably drops
/// below `target`, starting from `r0 < 1` (each level squares the ratio).
///
/// Returns `None` when `r0 >= 1` (no guarantee to propagate).
pub fn levels_until_ratio(r0: f64, target: f64) -> Option<u32> {
    if !(0.0..1.0).contains(&r0) || target <= 0.0 {
        return None;
    }
    let mut r = r0;
    let mut levels = 0u32;
    while r > target && levels < 64 {
        r = cr_level_ratio_bound(r);
        levels += 1;
    }
    Some(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_squares_below_one_and_is_identity_above() {
        assert!((cr_level_ratio_bound(0.5) - 0.25).abs() < 1e-15);
        assert!((cr_level_ratio_bound(0.9) - 0.81).abs() < 1e-15);
        assert_eq!(cr_level_ratio_bound(1.0), 1.0);
        assert_eq!(cr_level_ratio_bound(3.0), 3.0);
    }

    #[test]
    fn bound_is_monotone_and_contracts_quadratically() {
        // r = 0.9: 0.81, 0.6561, 0.4305, 0.1853, 0.0343, 1.18e-3,
        // 1.39e-6 — seven squarings to cross 1e-3.
        assert_eq!(levels_until_ratio(0.9, 1e-3), Some(7));
        // Already tiny: zero levels needed.
        assert_eq!(levels_until_ratio(1e-6, 1e-3), Some(0));
        // Not dominant: no guarantee.
        assert_eq!(levels_until_ratio(1.0, 1e-3), None);
    }

    #[test]
    fn numeric_check_agrees_with_the_lemma_on_a_dominant_system() {
        // One explicit CR reduction step on a constant-coefficient row
        // (a, b, c) = (-1, 4, -1): r = 0.5, and the reduced row is
        // a' = -a²/b, b' = b - 2ac/b, c' = -c²/b = (-0.25, 3.5, -0.25),
        // ratio 1/7 ≈ 0.143 <= 0.25 = r².
        let (a, b, c) = (-1.0f64, 4.0, -1.0);
        let a2 = -a * a / b;
        let b2 = b - 2.0 * (a * c / b);
        let c2 = -c * c / b;
        let r0 = (a.abs() + c.abs()) / b.abs();
        let r1 = (a2.abs() + c2.abs()) / b2.abs();
        assert!(r1 <= cr_level_ratio_bound(r0) + 1e-15, "{r1} vs {}", cr_level_ratio_bound(r0));
    }
}
