//! Deliberately-buggy fixture kernels for sanitizer validation.
//!
//! Each kernel reproduces one bug class the paper's `read / __syncthreads()
//! / write` discipline (§4) exists to prevent, in a minimal CR/PCR/RD-shaped
//! body. They are **test support only** — never dispatched by
//! [`crate::solve_batch`] — and must be launched with a sanitizing
//! [`gpu_sim::Launcher`] (`SanitizeMode::Record`): under the legacy
//! recording path the racy fixture would panic, and under plain debug
//! builds the OOB fixture would trip the shared-arena bounds assert.
//!
//! | kernel | bug | expected [`gpu_sim::DiagnosticKind`] |
//! |---|---|---|
//! | [`MissingBarrierCrKernel`] | CR step fuses two levels, loading a cell the thread stored in the same superstep | `ReadWriteHazard` |
//! | [`RacyCrStepKernel`] | two threads reduce into the same shared cell between barriers | `WriteWriteRace` |
//! | [`OobPcrKernel`] | PCR neighbour index `i + stride` not clamped at the right edge | `SharedOutOfBounds` |
//! | [`UninitRdKernel`] | RD evaluation reads a scan row no store ever initialized | `UninitializedRead` |

use gpu_sim::{BlockCtx, GridKernel, Phase};
use tridiag_core::Real;

/// CR-shaped kernel with a missing barrier: the forward step buffers the
/// reduced coefficient and then *immediately* loads it back, expecting the
/// new value. Compiled CUDA with the barrier removed would read whatever
/// happens to be in shared memory; the simulator's buffered store makes the
/// load observe the stale pre-step value — a `ReadWriteHazard`.
#[derive(Debug, Clone, Copy)]
pub struct MissingBarrierCrKernel {
    /// Elements per block (power of two, >= 4).
    pub n: usize,
}

impl<T: Real> GridKernel<T> for MissingBarrierCrKernel {
    fn block_dim(&self) -> usize {
        self.n / 2
    }

    fn shared_words(&self) -> usize {
        2 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, _block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let b = ctx.alloc(n);
        let d = ctx.alloc(n);
        ctx.step(Phase::GlobalLoad, 0..n / 2, |t| {
            for k in 0..2 {
                let i = t.tid() + k * (n / 2);
                t.store(b, i, T::ONE);
                t.store(d, i, T::ONE);
            }
        });
        // BUG: two reduction levels fused into one superstep. The second
        // half reads `b` values the same thread just stored — the missing
        // `__syncthreads()` between CR levels.
        ctx.step(Phase::ForwardReduction, 0..n / 2, |t| {
            let i = 2 * t.tid();
            let b_i = t.load(b, i);
            let two = t.add(T::ONE, T::ONE);
            t.store(b, i, two);
            let fresh = t.load(b, i); // hazard: observes stale pre-step value
            let s = t.add(b_i, fresh);
            t.store(d, i, s);
        });
    }
}

/// CR-shaped kernel whose reduction maps *two* threads onto each output
/// equation, so both buffer a store to the same shared cell in one
/// superstep — a `WriteWriteRace` (the classic off-by-one in the paper's
/// `2 * stride * (tid + 1) - 1` index arithmetic).
#[derive(Debug, Clone, Copy)]
pub struct RacyCrStepKernel {
    /// Elements per block (power of two, >= 4).
    pub n: usize,
}

impl<T: Real> GridKernel<T> for RacyCrStepKernel {
    fn block_dim(&self) -> usize {
        self.n
    }

    fn shared_words(&self) -> usize {
        self.n * T::SHARED_WORDS
    }

    fn run_block(&self, _block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let b = ctx.alloc(n);
        ctx.step(Phase::GlobalLoad, 0..n, |t| t.store(b, t.tid(), T::ONE));
        // BUG: threads 2j and 2j+1 both write equation j.
        ctx.step(Phase::ForwardReduction, 0..n, |t| {
            let i = t.tid();
            let v = t.load(b, i);
            t.store(b, i / 2, v); // race: i/2 collides for i = 2j, 2j+1
        });
    }
}

/// PCR-shaped kernel whose right-neighbour index is not clamped: at the
/// last stride, `i + stride` walks past the end of the shared array — a
/// `SharedOutOfBounds` (on hardware it would silently read the next
/// `__shared__` array's words).
#[derive(Debug, Clone, Copy)]
pub struct OobPcrKernel {
    /// Elements per block (power of two, >= 4).
    pub n: usize,
}

impl<T: Real> GridKernel<T> for OobPcrKernel {
    fn block_dim(&self) -> usize {
        self.n
    }

    fn shared_words(&self) -> usize {
        2 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, _block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let d = ctx.alloc(n);
        let nx = ctx.alloc(n); // the neighbouring array an OOB read would hit
        ctx.step(Phase::GlobalLoad, 0..n, |t| {
            t.store(d, t.tid(), T::ONE);
            t.store(nx, t.tid(), T::ONE);
        });
        let stride = 1usize;
        ctx.step(Phase::PcrReduction, 0..n, |t| {
            let i = t.tid();
            let il = if i >= stride { i - stride } else { i };
            let d_l = t.load(d, il);
            // BUG: no `.min(n - 1)` clamp — thread n-1 reads d[n].
            let d_r = t.load(d, i + stride);
            let s = t.add(d_l, d_r);
            t.store(nx, i, s);
        });
    }
}

/// RD-shaped kernel that forgets to initialize one scan row: the matrix
/// setup writes only the first row, yet the evaluation step reads the
/// second — an `UninitializedRead` (real `__shared__` memory starts with
/// garbage; the simulator's zero-fill would silently mask the bug).
#[derive(Debug, Clone, Copy)]
pub struct UninitRdKernel {
    /// Elements per block (power of two, >= 4).
    pub n: usize,
}

impl<T: Real> GridKernel<T> for UninitRdKernel {
    fn block_dim(&self) -> usize {
        self.n
    }

    fn shared_words(&self) -> usize {
        3 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, _block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let r1 = ctx.alloc(n);
        let r2 = ctx.alloc(n); // BUG: never written by setup
        let x = ctx.alloc(n);
        ctx.step(Phase::MatrixSetup, 0..n, |t| t.store(r1, t.tid(), T::ONE));
        ctx.step(Phase::SolutionEvaluation, 0..n, |t| {
            let i = t.tid();
            let a = t.load(r1, i);
            let b = t.load(r2, i); // uninitialized read
            let s = t.add(a, b);
            t.store(x, i, s);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_batch, GpuAlgorithm, RdMode};
    use gpu_sim::{DiagnosticKind, GlobalMem, Launcher, SanitizeMode, SanitizeOptions, Severity};
    use tridiag_core::dominant_batch;

    fn sanitizing_launcher() -> Launcher {
        Launcher::gtx280().with_sanitize(SanitizeOptions::record())
    }

    fn run_fixture<K: GridKernel<f32>>(kernel: &K) -> Vec<gpu_sim::Diagnostic> {
        let mut gmem: GlobalMem<f32> = GlobalMem::new();
        let report = sanitizing_launcher().launch(kernel, 2, &mut gmem).expect("launch");
        report.diagnostics
    }

    fn assert_fixture_site(d: &gpu_sim::Diagnostic) {
        assert!(
            d.location.file().ends_with("fixtures.rs"),
            "diagnostic must point into the fixture source, got {}",
            d.site()
        );
    }

    #[test]
    fn missing_barrier_cr_reports_read_write_hazard() {
        let diags = run_fixture(&MissingBarrierCrKernel { n: 16 });
        let h: Vec<_> =
            diags.iter().filter(|d| d.kind == DiagnosticKind::ReadWriteHazard).collect();
        assert!(!h.is_empty(), "expected hazard, got {diags:?}");
        assert_eq!(h[0].severity, Severity::Error);
        assert_eq!(h[0].phase, gpu_sim::Phase::ForwardReduction);
        assert_fixture_site(h[0]);
        assert!(h[0].related.is_some(), "buffered-store site attached");
    }

    #[test]
    fn racy_cr_step_reports_write_write_race_with_both_sites() {
        let diags = run_fixture(&RacyCrStepKernel { n: 16 });
        let r: Vec<_> = diags.iter().filter(|d| d.kind == DiagnosticKind::WriteWriteRace).collect();
        assert!(!r.is_empty(), "expected race, got {diags:?}");
        assert_eq!(r[0].severity, Severity::Error);
        assert_fixture_site(r[0]);
        let related = r[0].related.expect("second colliding site attached");
        assert!(related.file().ends_with("fixtures.rs"));
    }

    #[test]
    fn oob_pcr_reports_shared_out_of_bounds() {
        let n = 16;
        let diags = run_fixture(&OobPcrKernel { n });
        let o: Vec<_> =
            diags.iter().filter(|d| d.kind == DiagnosticKind::SharedOutOfBounds).collect();
        assert!(!o.is_empty(), "expected OOB, got {diags:?}");
        assert_eq!(o[0].severity, Severity::Error);
        assert_eq!(o[0].index, Some(n), "one past the end");
        assert_fixture_site(o[0]);
    }

    #[test]
    fn uninit_rd_reports_uninitialized_read() {
        let diags = run_fixture(&UninitRdKernel { n: 16 });
        let u: Vec<_> =
            diags.iter().filter(|d| d.kind == DiagnosticKind::UninitializedRead).collect();
        assert!(!u.is_empty(), "expected uninit read, got {diags:?}");
        assert_eq!(u[0].severity, Severity::Error);
        assert_eq!(u[0].array, Some(1), "the second (never-written) array");
        assert_fixture_site(u[0]);
        // All n threads x 2 blocks hit the same site.
        assert_eq!(u[0].occurrences, 32);
    }

    #[test]
    fn rd_overflow_pinpoints_non_finite_origin() {
        // §5.2: plain RD on 512-unknown diagonally dominant f32 systems
        // overflows. The sanitizer turns the wrong answer into a located
        // warning at the first overflowing store.
        let batch = dominant_batch::<f32>(11, 512, 2);
        let report = solve_batch(&sanitizing_launcher(), GpuAlgorithm::Rd(RdMode::Plain), &batch)
            .expect("solve");
        let nf: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.kind == DiagnosticKind::NonFiniteOrigin)
            .collect();
        assert!(!nf.is_empty(), "expected overflow origin, got {:?}", report.diagnostics);
        assert_eq!(nf[0].severity, Severity::Warning, "overflow is a warning, not an error");
        assert_eq!(nf[0].phase, gpu_sim::Phase::Scan, "RD overflows inside the scan");
    }

    #[test]
    fn cr_bank_conflict_lint_flags_strided_site() {
        // CR's in-place stride doubling peaks at 16-way conflicts (Fig. 9)
        // — the lint must attribute that to a source site, as a warning.
        let batch = dominant_batch::<f32>(3, 512, 2);
        let report = solve_batch(&sanitizing_launcher(), GpuAlgorithm::Cr, &batch).expect("solve");
        let bc: Vec<_> =
            report.diagnostics.iter().filter(|d| d.kind == DiagnosticKind::BankConflict).collect();
        assert!(!bc.is_empty(), "expected bank-conflict lint");
        let worst = bc.iter().map(|d| d.degree.unwrap_or(0)).max().unwrap();
        assert_eq!(worst, 16, "worst degree attributed");
        assert!(bc.iter().all(|d| d.severity == Severity::Warning));
        assert!(bc.iter().all(|d| d.location.file().ends_with("cr.rs")));
        // PCR is conflict-free: the same lint stays silent.
        let report = solve_batch(&sanitizing_launcher(), GpuAlgorithm::Pcr, &batch).expect("solve");
        assert!(report.diagnostics.iter().all(|d| d.kind != DiagnosticKind::BankConflict));
    }

    #[test]
    fn enforce_mode_panics_on_fixture_errors() {
        let launcher = Launcher::gtx280().with_sanitize_mode(SanitizeMode::Enforce);
        let mut gmem: GlobalMem<f32> = GlobalMem::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            launcher.launch(&RacyCrStepKernel { n: 16 }, 1, &mut gmem)
        }));
        let err = result.expect_err("enforce mode must panic on an error diagnostic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(msg.contains("write_write_race"), "{msg}");
    }
}
