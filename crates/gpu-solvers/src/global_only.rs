//! Global-memory-only cyclic reduction — the paper's fallback for systems
//! too large for shared memory.
//!
//! §4: "With current hardware, systems of more than 512 equations would
//! exceed the size of shared memory. Our solvers do support this case at a
//! cost of roughly 3x performance degradation by using global memory only."
//!
//! The kernel mutates its (private) device copies of the diagonals in place.
//! Because every superstep touches global memory at the reduction stride,
//! the access pattern is poorly coalesced — modeled by a reduced
//! global-bandwidth efficiency instead of per-transaction splitting.

use crate::common::{log2, SystemHandles};
use gpu_sim::{BlockCtx, GridKernel, Phase, ThreadCtx};
use tridiag_core::Real;

/// Fraction of peak global bandwidth the strided reduction pattern achieves
/// (calibrated so the 512-unknown case lands near the paper's ~3x penalty).
const STRIDED_EFFICIENCY: f64 = 0.18;

/// Cyclic reduction operating directly on global memory. Supports any
/// power-of-two `n` with at least 2 equations — including sizes whose
/// shared-memory footprint would not fit (n > 819 for f32).
#[derive(Debug, Clone, Copy)]
pub struct GlobalCrKernel<T> {
    n: usize,
    gm: SystemHandles<T>,
    threads: usize,
}

impl<T: Real> GlobalCrKernel<T> {
    /// Creates the kernel; the block size is capped at the device maximum
    /// (512) with a grid-stride loop covering larger systems.
    pub fn new(n: usize, gm: SystemHandles<T>) -> Self {
        Self { n, gm, threads: (n / 2).clamp(1, 512) }
    }

    /// Runs `body` for each active item, grid-stride style, so systems
    /// larger than `2 * threads` still map onto one block.
    fn for_active(
        &self,
        t: &mut ThreadCtx<'_, '_, T>,
        active: usize,
        step_threads: usize,
        mut body: impl FnMut(&mut ThreadCtx<'_, '_, T>, usize),
    ) {
        let mut e = t.tid();
        while e < active {
            body(t, e);
            e += step_threads;
        }
    }
}

impl<T: Real> GridKernel<T> for GlobalCrKernel<T> {
    fn block_dim(&self) -> usize {
        self.threads
    }

    fn shared_words(&self) -> usize {
        0
    }

    fn global_efficiency(&self) -> f64 {
        STRIDED_EFFICIENCY
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let base = block_id * n;
        let gm = self.gm;
        let threads = self.threads;
        let levels = log2(n) - 1;

        for level in 0..levels {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            let step_threads = threads.min(active.max(1));
            ctx.step(Phase::ForwardReduction, 0..step_threads, |t| {
                self.for_active(t, active, step_threads, |t, e| {
                    let i = base + stride * (e + 1) - 1;
                    let il = i - half;
                    let a_i = t.load_global(gm.a, i);
                    let b_il = t.load_global(gm.b, il);
                    let k1 = t.div(a_i, b_il);
                    let a_il = t.load_global(gm.a, il);
                    let c_il = t.load_global(gm.c, il);
                    let d_il = t.load_global(gm.d, il);
                    let b_i = t.load_global(gm.b, i);
                    let c_i = t.load_global(gm.c, i);
                    let d_i = t.load_global(gm.d, i);
                    let p = t.mul(a_il, k1);
                    let na = t.neg(p);
                    if stride * (e + 1) - 1 + half < n {
                        let ir = i + half;
                        let b_ir = t.load_global(gm.b, ir);
                        let k2 = t.div(c_i, b_ir);
                        let a_ir = t.load_global(gm.a, ir);
                        let c_ir = t.load_global(gm.c, ir);
                        let d_ir = t.load_global(gm.d, ir);
                        let p1 = t.mul(c_il, k1);
                        let p2 = t.mul(a_ir, k2);
                        let s = t.sub(b_i, p1);
                        let nb = t.sub(s, p2);
                        let p1 = t.mul(d_il, k1);
                        let p2 = t.mul(d_ir, k2);
                        let s = t.sub(d_i, p1);
                        let nd = t.sub(s, p2);
                        let p = t.mul(c_ir, k2);
                        let nc = t.neg(p);
                        t.store_global(gm.a, i, na);
                        t.store_global(gm.b, i, nb);
                        t.store_global(gm.c, i, nc);
                        t.store_global(gm.d, i, nd);
                    } else {
                        let p1 = t.mul(c_il, k1);
                        let nb = t.sub(b_i, p1);
                        let p1 = t.mul(d_il, k1);
                        let nd = t.sub(d_i, p1);
                        t.store_global(gm.a, i, na);
                        t.store_global(gm.b, i, nb);
                        t.store_global(gm.c, i, T::ZERO);
                        t.store_global(gm.d, i, nd);
                    }
                });
            });
        }

        // Solve the remaining 2-unknown system.
        ctx.step(Phase::SolveTwoUnknown, 0..1, |t| {
            let i1 = base + n / 2 - 1;
            let i2 = base + n - 1;
            let b1 = t.load_global(gm.b, i1);
            let c1 = t.load_global(gm.c, i1);
            let d1 = t.load_global(gm.d, i1);
            let a2 = t.load_global(gm.a, i2);
            let b2 = t.load_global(gm.b, i2);
            let d2 = t.load_global(gm.d, i2);
            let p1 = t.mul(b1, b2);
            let p2 = t.mul(c1, a2);
            let det = t.sub(p1, p2);
            let p1 = t.mul(d1, b2);
            let p2 = t.mul(c1, d2);
            let num = t.sub(p1, p2);
            let x1 = t.div(num, det);
            let p1 = t.mul(b1, d2);
            let p2 = t.mul(d1, a2);
            let num = t.sub(p1, p2);
            let x2 = t.div(num, det);
            t.store_global(gm.x, i1, x1);
            t.store_global(gm.x, i2, x2);
        });

        for level in (0..levels).rev() {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            let step_threads = threads.min(active.max(1));
            ctx.step(Phase::BackwardSubstitution, 0..step_threads, |t| {
                self.for_active(t, active, step_threads, |t, e| {
                    let local = stride * e + half - 1;
                    let i = base + local;
                    let d_i = t.load_global(gm.d, i);
                    let b_i = t.load_global(gm.b, i);
                    let c_i = t.load_global(gm.c, i);
                    let x_r = t.load_global(gm.x, i + half);
                    let num = if local >= half {
                        let a_i = t.load_global(gm.a, i);
                        let x_l = t.load_global(gm.x, i - half);
                        let p1 = t.mul(a_i, x_l);
                        let p2 = t.mul(c_i, x_r);
                        let s = t.sub(d_i, p1);
                        t.sub(s, p2)
                    } else {
                        let p2 = t.mul(c_i, x_r);
                        t.sub(d_i, p2)
                    };
                    let v = t.div(num, b_i);
                    t.store_global(gm.x, i, v);
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMem, Launcher};
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SystemBatch, Workload};

    fn run(
        n: usize,
        count: usize,
    ) -> (SystemBatch<f32>, tridiag_core::SolutionBatch<f32>, gpu_sim::LaunchReport) {
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::DiagonallyDominant, n, count).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = GlobalCrKernel::new(n, gm);
        let report = Launcher::gtx280().launch(&kernel, count, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        (batch, sol, report)
    }

    #[test]
    fn solves_standard_sizes() {
        for n in [2usize, 64, 512] {
            let (batch, sol, _) = run(n, 3);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(r.max_l2 < 2e-4, "n={n}: {}", r.max_l2);
        }
    }

    #[test]
    fn solves_systems_too_large_for_shared_memory() {
        // n = 2048: 5 arrays x 2048 x 4 B = 40 KB >> 16 KB. The shared
        // kernels refuse; the global-only path handles it.
        let (batch, sol, report) = run(2048, 2);
        let r = batch_residual(&batch, &sol).unwrap();
        assert!(r.max_l2 < 1e-3, "{}", r.max_l2);
        assert_eq!(report.stats.shared_words, 0);
        assert_eq!(report.stats.block_dim, 512);
    }

    #[test]
    fn roughly_three_times_slower_than_shared_cr() {
        let (batch, _, global) = run(512, 64);
        let mut gmem = GlobalMem::new();
        let gm = crate::common::SystemHandles::upload(&mut gmem, &batch);
        let shared =
            Launcher::gtx280().launch(&crate::cr::CrKernel { n: 512, gm }, 64, &mut gmem).unwrap();
        let ratio = global.timing.kernel_ms / shared.timing.kernel_ms;
        assert!(
            (1.5..6.0).contains(&ratio),
            "global-only should be roughly 3x slower, got {ratio:.2}x"
        );
    }

    #[test]
    fn global_traffic_far_exceeds_5n() {
        let (_, _, report) = run(256, 1);
        assert!(report.stats.global_accesses > 4 * 5 * 256);
    }
}
