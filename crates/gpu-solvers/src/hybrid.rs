//! The hybrid CR+PCR and CR+RD kernels — §3 of the paper.
//!
//! "The hybrid algorithms first reduce the system to a certain size using
//! the forward reduction phase of CR, then solve the reduced (intermediate)
//! system with the PCR/RD algorithm. Finally, they substitute the solved
//! unknowns back into the original systems using the backward substitution
//! phase of CR."
//!
//! Following §4, the intermediate system is **copied** into fresh shared
//! arrays ("the copy takes little time and extra storage space ... but makes
//! the solver more modular, because we can directly plug the PCR or RD
//! solver into the intermediate system"). The copy's extra footprint is what
//! caps CR+RD at an intermediate size of 128 for n = 512 (§5.3.5) — the
//! occupancy checker reproduces that limit.

use crate::common::{log2, SystemHandles};
use crate::cr::{backward_update, forward_update, load_system, store_solution, SharedSystem};
use crate::pcr::{pcr_solve_pair, pcr_update};
use crate::rd::{evaluate_solutions, scan_combine, setup_matrix, RdMode, ScanArrays};
use gpu_sim::{hillis_steele, BlockCtx, GridKernel, Phase};
use tridiag_core::Real;

/// Which solver handles the intermediate system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerSolver {
    /// Parallel cyclic reduction (the CR+PCR hybrid).
    Pcr,
    /// Recursive doubling (the CR+RD hybrid).
    Rd(RdMode),
}

/// Hybrid kernel: CR forward reduction to size `m`, inner solve, CR
/// backward substitution. Requires `2 <= m <= n/2` (use the pure PCR/RD
/// kernels for `m == n`).
#[derive(Debug, Clone, Copy)]
pub struct HybridKernel<T> {
    /// Full system size (power of two).
    pub n: usize,
    /// Intermediate system size (power of two, `2 <= m <= n/2`).
    pub m: usize,
    /// Intermediate solver.
    pub inner: InnerSolver,
    /// Device arrays.
    pub gm: SystemHandles<T>,
}

impl<T: Real> HybridKernel<T> {
    fn validate(&self) {
        assert!(self.n.is_power_of_two() && self.n >= 4, "n={}", self.n);
        assert!(
            self.m.is_power_of_two() && self.m >= 2 && self.m <= self.n / 2,
            "m={} invalid for n={}",
            self.m,
            self.n
        );
    }

    /// CR forward-reduction levels before the switch.
    fn cr_levels(&self) -> u32 {
        log2(self.n) - log2(self.m)
    }
}

impl<T: Real> GridKernel<T> for HybridKernel<T> {
    fn block_dim(&self) -> usize {
        self.n / 2
    }

    fn shared_words(&self) -> usize {
        let main = 5 * self.n * T::SHARED_WORDS;
        let intermediate = match self.inner {
            // Fresh a, b, c, d of the intermediate system (the paper's
            // copy "to another five arrays"; the solution array is shared
            // with the full system, the inner solver scatters into it).
            InnerSolver::Pcr => 4 * self.m * T::SHARED_WORDS,
            // Scan matrices (two rows each).
            InnerSolver::Rd(mode) => ScanArrays::<T>::words(self.m, mode),
        };
        main + intermediate
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        self.validate();
        let n = self.n;
        let m = self.m;
        let base = block_id * n;
        let threads = self.block_dim();
        let sh = SharedSystem::alloc(ctx, n);
        load_system(ctx, &sh, &self.gm, base, n, threads);

        // --- CR forward reduction down to m equations.
        let levels = self.cr_levels();
        for level in 0..levels {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            ctx.step(Phase::ForwardReduction, 0..active, |t| {
                let i = stride * (t.tid() + 1) - 1;
                forward_update(t, &sh, i, half, n);
            });
        }
        // The intermediate system lives at indices stride-1, 2*stride-1, ...
        let stride = 1usize << levels;
        debug_assert_eq!(n / stride, m);

        // --- Inner solve on a fresh copy.
        let x = sh.x;
        match self.inner {
            InnerSolver::Pcr => {
                // Fresh coefficient arrays; the solution array is shared
                // with the full system (the pair solve scatters into it).
                let im = SharedSystem {
                    a: ctx.alloc(m),
                    b: ctx.alloc(m),
                    c: ctx.alloc(m),
                    d: ctx.alloc(m),
                    x: sh.x,
                };
                ctx.step(Phase::CopyIntermediate, 0..m, |t| {
                    let k = t.tid();
                    let src = stride * (k + 1) - 1;
                    let v = t.load(sh.a, src);
                    t.store(im.a, k, v);
                    let v = t.load(sh.b, src);
                    t.store(im.b, k, v);
                    let v = t.load(sh.c, src);
                    t.store(im.c, k, v);
                    let v = t.load(sh.d, src);
                    t.store(im.d, k, v);
                });
                let mut delta = 1usize;
                for _ in 0..log2(m) - 1 {
                    ctx.step(Phase::PcrReduction, 0..m, |t| {
                        pcr_update(t, &im, t.tid(), delta, 0, m);
                    });
                    delta *= 2;
                }
                ctx.step(Phase::PcrSolveTwoUnknown, 0..m / 2, |t| {
                    pcr_solve_pair(t, &im, t.tid(), m / 2, |t, k, v| {
                        t.store(x, stride * (k + 1) - 1, v)
                    });
                });
            }
            InnerSolver::Rd(mode) => {
                let mats = ScanArrays::alloc(ctx, m, mode);
                // Copy + matrix setup fused, as in Figure 16's "RD: copy
                // size-128 intermediate system and matrix setup".
                ctx.step(Phase::CopyIntermediate, 0..m, |t| {
                    let k = t.tid();
                    let src = stride * (k + 1) - 1;
                    let a = t.load(sh.a, src);
                    let b = t.load(sh.b, src);
                    let c = t.load(sh.c, src);
                    let d = t.load(sh.d, src);
                    let c = if k == m - 1 { T::ONE } else { c };
                    setup_matrix(t, &mats, k, a, b, c, d);
                });
                hillis_steele(ctx, m, Phase::Scan, |t, i, j| scan_combine(t, &mats, i, j));
                evaluate_solutions(ctx, &mats, m, |t, k, v| t.store(x, stride * (k + 1) - 1, v));
            }
        }

        // --- CR backward substitution.
        for level in (0..levels).rev() {
            let stride = 1usize << (level + 1);
            let half = stride / 2;
            let active = n >> (level + 1);
            ctx.step(Phase::BackwardSubstitution, 0..active, |t| {
                let i = stride * t.tid() + half - 1;
                backward_update(t, &sh, i, half);
            });
        }

        store_solution(ctx, &sh, &self.gm, base, n, threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMem, LaunchReport, Launcher};
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SolutionBatch, SystemBatch, TridiagError, Workload};

    fn run(
        n: usize,
        m: usize,
        inner: InnerSolver,
        count: usize,
        workload: Workload,
    ) -> tridiag_core::Result<(SystemBatch<f32>, SolutionBatch<f32>, LaunchReport)> {
        let batch: SystemBatch<f32> = Generator::new(42).batch(workload, n, count)?;
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = HybridKernel { n, m, inner, gm };
        let report = Launcher::gtx280().launch(&kernel, count, &mut gmem)?;
        let sol = gm.download_solutions(&mut gmem, &batch);
        Ok((batch, sol, report))
    }

    #[test]
    fn cr_pcr_solves_accurately_across_switch_points() {
        for m in [2usize, 8, 64, 256] {
            let (batch, sol, _) =
                run(512, m, InnerSolver::Pcr, 4, Workload::DiagonallyDominant).unwrap();
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "m={m}");
            assert!(r.max_l2 < 2e-4, "m={m}: residual {}", r.max_l2);
        }
    }

    #[test]
    fn cr_rd_solves_close_values_accurately() {
        // The family where RD (and hence CR+RD) is numerically healthy
        // (§5.4). In f64 the agreement with direct solvers is tight.
        for m in [2usize, 8, 32] {
            let batch: SystemBatch<f64> =
                Generator::new(11).batch(Workload::CloseValues, 64, 4).unwrap();
            let mut gmem = gpu_sim::GlobalMem::new();
            let gm = SystemHandles::upload(&mut gmem, &batch);
            let kernel = HybridKernel { n: 64, m, inner: InnerSolver::Rd(RdMode::Plain), gm };
            Launcher::gtx280().launch(&kernel, 4, &mut gmem).unwrap();
            let sol = gm.download_solutions(&mut gmem, &batch);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "m={m}");
            assert!(r.max_l2 < 1e-8, "m={m}: residual {}", r.max_l2);
        }
    }

    #[test]
    fn cr_rd_overflows_on_dominant_f32() {
        // Figure 18: "RD and CR+RD suffer from arithmetic overflow" on the
        // diagonally dominant family in single precision — CR forward
        // reduction shrinks the couplings geometrically, so the RD chain
        // matrices blow up regardless of the switch point.
        let (_, sol, _) =
            run(512, 128, InnerSolver::Rd(RdMode::Plain), 4, Workload::DiagonallyDominant).unwrap();
        assert!(sol.first_non_finite().is_some(), "expected CR+RD overflow");
    }

    #[test]
    fn step_counts_match_table1() {
        // CR+PCR at n=512, m=256: 2*log2(n) - log2(m) - 1 = 9 algorithmic
        // steps (we also count the two copies separately).
        let (_, _, report) =
            run(512, 256, InnerSolver::Pcr, 1, Workload::DiagonallyDominant).unwrap();
        let algo_steps = report
            .stats
            .steps
            .iter()
            .filter(|s| {
                !matches!(s.phase, Phase::GlobalLoad | Phase::GlobalStore | Phase::CopyIntermediate)
            })
            .count();
        assert_eq!(algo_steps, 2 * 9 - 8 - 1 + 1); // fwd(1) + pcr(8) + bwd(1)
    }

    #[test]
    fn cr_rd_at_m256_exceeds_shared_memory() {
        // §5.3.5: "the size of the intermediate systems is 128 instead of
        // 256 in the CR+PCR case, due to the limit of shared memory size".
        let err = run(512, 256, InnerSolver::Rd(RdMode::Plain), 1, Workload::DiagonallyDominant)
            .unwrap_err();
        assert!(matches!(err, TridiagError::SharedMemExceeded { .. }));
        // m = 128 fits.
        assert!(
            run(512, 128, InnerSolver::Rd(RdMode::Plain), 1, Workload::DiagonallyDominant).is_ok()
        );
        // ... and CR+PCR at m = 256 fits.
        assert!(run(512, 256, InnerSolver::Pcr, 1, Workload::DiagonallyDominant).is_ok());
    }

    #[test]
    fn hybrid_avoids_deep_conflict_steps() {
        // Switching at m=256 keeps only the first CR level (2-way
        // conflicts); the 4..16-way conflict steps never run.
        let (_, _, report) =
            run(512, 256, InnerSolver::Pcr, 1, Workload::DiagonallyDominant).unwrap();
        assert!(report.stats.max_conflict_degree() <= 2);
    }

    #[test]
    fn hybrid_with_m2_matches_pure_cr_numerics() {
        let (batch, hybrid_sol, _) =
            run(64, 2, InnerSolver::Pcr, 2, Workload::DiagonallyDominant).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        Launcher::gtx280().launch(&crate::cr::CrKernel { n: 64, gm }, 2, &mut gmem).unwrap();
        let cr_sol = gm.download_solutions(&mut gmem, &batch);
        // The PCR inner solve on a 2-unknown system performs the same 2x2
        // solve as CR's middle step; results agree to rounding.
        for i in 0..hybrid_sol.x.len() {
            assert!((hybrid_sol.x[i] - cr_sol.x[i]).abs() < 1e-4, "i={i}");
        }
    }

    #[test]
    fn fewer_ops_than_pure_pcr() {
        // Table 1: the hybrid trades PCR's n log n work for CR's linear
        // work on the outer levels.
        let (_, _, hybrid) =
            run(512, 256, InnerSolver::Pcr, 1, Workload::DiagonallyDominant).unwrap();
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::DiagonallyDominant, 512, 1).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let pcr =
            Launcher::gtx280().launch(&crate::pcr::PcrKernel { n: 512, gm }, 1, &mut gmem).unwrap();
        assert!(hybrid.stats.total_ops() < pcr.stats.total_ops());
    }

    #[test]
    #[should_panic(expected = "invalid for n=")]
    fn rejects_bad_switch_points() {
        // m == n is not a hybrid (use the pure PCR kernel); the kernel
        // asserts. The public solver facade validates before launching.
        // (Small n so the shared-memory precheck doesn't trip first.)
        let _ = run(8, 8, InnerSolver::Pcr, 1, Workload::DiagonallyDominant);
    }
}
