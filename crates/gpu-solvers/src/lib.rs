//! # gpu-solvers
//!
//! The paper's contribution: five tridiagonal solvers for batches of small
//! systems, implemented as kernels on the [`gpu_sim`] SIMT simulator —
//! cyclic reduction ([`CrKernel`]), parallel cyclic reduction
//! ([`PcrKernel`]), recursive doubling ([`RdKernel`]), and the hybrid
//! CR+PCR / CR+RD solvers ([`HybridKernel`]) that switch algorithms at an
//! intermediate system size. Ablation variants: the Figure 9 stride-one
//! timing kernel, the Göddeke–Strzodka bank-conflict-free CR (footnote 1),
//! and the global-memory-only fallback for oversized systems.
//!
//! Entry point: [`solve_batch`].
//!
//! ```
//! use gpu_sim::Launcher;
//! use gpu_solvers::{solve_batch, GpuAlgorithm};
//! use tridiag_core::{dominant_batch, residual::batch_residual};
//!
//! let batch = dominant_batch::<f32>(7, 64, 16); // 16 systems of 64 unknowns
//! let report = solve_batch(&Launcher::gtx280(), GpuAlgorithm::CrPcr { m: 32 }, &batch).unwrap();
//! let res = batch_residual(&batch, &report.solutions).unwrap();
//! assert!(res.max_l2 < 1e-3);
//! println!("simulated kernel time: {:.3} ms", report.timing.kernel_ms);
//! ```

#![warn(missing_docs)]

pub mod block_cr;
pub mod coarse;
pub mod common;
pub mod cr;
pub mod cr_variants;
pub mod dominance;
pub mod fixtures;
pub mod global_only;
pub mod hybrid;
pub mod partitioned;
pub mod pcr;
pub mod pcr_thomas;
pub mod periodic;
pub mod rd;
pub mod refine;
pub mod robust;
pub mod solver;
pub mod verify;
pub mod warm;

pub use block_cr::{solve_block_batch, BlockCrKernel, BlockSolveReport, BlockSystemHandles};
pub use coarse::{solve_batch_coarse, ThomasPerThreadKernel};
pub use common::SystemHandles;
pub use cr::CrKernel;
pub use cr_variants::{CrEvenOddKernel, CrStrideOneKernel};
pub use dominance::{cr_level_ratio_bound, levels_until_ratio};
pub use global_only::GlobalCrKernel;
pub use hybrid::{HybridKernel, InnerSolver};
pub use partitioned::{
    back_substitute, even_offsets, local_reduce, solve_interface, solve_partitioned_single,
    solve_partitioned_single_with_offsets, BackSubstKernel, InterfaceSystem, LocalPhase,
    LocalReduceKernel, PartitionedReport, PartitionedTiming, MIN_CHUNK,
};
pub use pcr::PcrKernel;
pub use pcr_thomas::PcrThomasKernel;
pub use periodic::{solve_periodic_batch, PeriodicSolveReport};
pub use rd::{RdKernel, RdMode};
pub use refine::{solve_batch_refined, RefinedSolveReport};
pub use robust::{solve_batch_robust, Repair, RepairReason, RobustOptions, RobustSolveReport};
pub use solver::{solve_batch, GpuAlgorithm, GpuSolveReport, ParseGpuAlgorithmError};
pub use verify::{
    block_instance, fixture_instance, solver_instance, verify_family, VerifyInstance, FIXTURE_NAMES,
};
pub use warm::{solve_batch_warm, ThomasWarmKernel, WarmGpuReport};
