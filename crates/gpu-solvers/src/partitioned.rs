//! Substructuring (partitioned) solver kernels for systems too large for
//! one block's shared memory — the "coarse-grained sub-structuring" the
//! paper sets aside for multi-core, rebuilt here as the **local phase of a
//! cross-device solve** (see `device-pool`): the system is cut into
//! chunks; a *modified Thomas* pass reduces every chunk to two interface
//! equations; the resulting **tridiagonal** interface system (two rows per
//! chunk) is solved with the in-shared-memory PCR kernel; and a final
//! embarrassingly-parallel pass back-substitutes every interior unknown.
//!
//! Math (per chunk of rows `0..m`, writing `x_f`/`x_l` for the chunk's
//! first/last unknown):
//!
//! 1. **Forward**: eliminate each `a_i` with the row above, carrying the
//!    dependence on `x_f`: row `i` becomes `aa_i·x_f + bb_i·x_i + c_i·x_{i+1} = dd_i`
//!    with `k = a_i/bb_{i-1}`, `bb_i = b_i − k·c_{i-1}`, `aa_i = −k·aa_{i-1}`,
//!    `dd_i = d_i − k·dd_{i-1}` (seeded `aa_1 = a_1`, `bb_1 = b_1`, `dd_1 = d_1`).
//! 2. **Backward**: starting from the sentinel `x_m ≡ x_l` (i.e.
//!    `(at, ct, dt) = (0, −1, 0)`), normalize each interior row into
//!    `x_i = dt_i − at_i·x_f − ct_i·x_l`.
//! 3. **Interface rows**: substituting `x_1` into the chunk's first raw row
//!    and reading the last forward row directly yields, per chunk, an
//!    *upper* row coupling `(prev x_l, x_f, x_l)` and a *lower* row
//!    coupling `(x_f, x_l, next x_f)` — in the global interface ordering
//!    `[x_f⁰, x_l⁰, x_f¹, x_l¹, …]` the reduced system of `2p` unknowns is
//!    itself tridiagonal (the distributed-memory substructuring result).
//! 4. The reduced system is padded with identity rows to a power of two
//!    and solved by [`crate::pcr::PcrKernel`]; back-substitution then
//!    recovers every interior unknown independently.
//!
//! Layout: chunk arrays are **interleaved** like the coarse kernel —
//! element `i` of chunk `s` lives at `i·chunks + s` — so the per-thread
//! serial recurrences of the local phase issue perfectly coalesced loads.
//! Chunks may have *uneven* lengths (each ≥ 2): shorter chunks simply stop
//! early and the tail rows of the rectangle are never touched.

use crate::common::SystemHandles;
use crate::pcr::PcrKernel;
use gpu_sim::{BlockCtx, GlobalArray, GlobalMem, GridKernel, Launcher, Phase};
use tridiag_core::{Real, Result, TridiagError, TridiagonalSystem};

/// Minimum rows per chunk: a chunk needs a first *and* a last unknown.
pub const MIN_CHUNK: usize = 2;

/// Threads per block for the local-reduction kernel (one thread per
/// chunk, like the coarse Thomas kernel).
const REDUCE_BLOCK_DIM: usize = 64;

/// Threads per block for the back-substitution kernel (one thread per
/// element).
const BACKSUBST_BLOCK_DIM: usize = 128;

/// Near-equal chunk boundaries: `chunks + 1` offsets covering `0..n`,
/// every chunk at least [`MIN_CHUNK`] rows.
///
/// # Errors
/// [`TridiagError::InvalidConfig`] when `chunks == 0` or `n < 2·chunks`.
pub fn even_offsets(n: usize, chunks: usize) -> Result<Vec<usize>> {
    validate_chunking(n, chunks)?;
    let base = n / chunks;
    let extra = n % chunks;
    let mut offsets = Vec::with_capacity(chunks + 1);
    let mut at = 0usize;
    offsets.push(0);
    for s in 0..chunks {
        at += base + usize::from(s < extra);
        offsets.push(at);
    }
    debug_assert_eq!(at, n);
    Ok(offsets)
}

fn validate_chunking(n: usize, chunks: usize) -> Result<()> {
    if chunks == 0 || n < MIN_CHUNK * chunks {
        return Err(TridiagError::InvalidConfig {
            what: "partitioned solve needs >= 1 chunk and >= 2 rows per chunk",
        });
    }
    Ok(())
}

/// Checks a caller-supplied offsets vector (uneven splits allowed).
pub fn validate_offsets(n: usize, offsets: &[usize]) -> Result<()> {
    let ok = offsets.len() >= 2
        && offsets[0] == 0
        && *offsets.last().unwrap() == n
        && offsets.windows(2).all(|w| w[1] >= w[0] + MIN_CHUNK);
    if ok {
        Ok(())
    } else {
        Err(TridiagError::InvalidConfig {
            what: "offsets must rise from 0 to n with >= 2 rows per chunk",
        })
    }
}

/// Interleaves `data[span]` chunk-wise: element `i` of chunk `s` (local
/// row `i`, chunk boundaries from `offsets`) lands at `i·chunks + s` in a
/// `max_len·chunks` rectangle (tail rows of short chunks stay zero).
pub fn interleave_chunks<T: Real>(data: &[T], offsets: &[usize]) -> Vec<T> {
    let chunks = offsets.len() - 1;
    let max_len = max_chunk_len(offsets);
    let mut out = vec![T::ZERO; max_len * chunks];
    for s in 0..chunks {
        for (i, &v) in data[offsets[s]..offsets[s + 1]].iter().enumerate() {
            out[i * chunks + s] = v;
        }
    }
    out
}

/// Longest chunk in an offsets vector.
pub fn max_chunk_len(offsets: &[usize]) -> usize {
    offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
}

/// The modified-Thomas local reduction: **one thread per chunk** over the
/// interleaved rectangle, producing per-row back-substitution coefficients
/// (`x_i = dt_i − at_i·x_f − ct_i·x_l`) and two reduced interface rows per
/// chunk (`ra,rb,rc,rd[2s]` = upper row, `[2s+1]` = lower row).
#[derive(Debug, Clone)]
pub struct LocalReduceKernel<T> {
    /// Number of chunks in the rectangle.
    pub chunks: usize,
    /// Rows in the rectangle (longest chunk).
    pub max_len: usize,
    /// Chunk boundaries (`chunks + 1` entries, local element offsets).
    pub offsets: Vec<usize>,
    /// Sub-diagonals (interleaved).
    pub a: GlobalArray<T>,
    /// Main diagonals (interleaved).
    pub b: GlobalArray<T>,
    /// Super-diagonals (interleaved).
    pub c: GlobalArray<T>,
    /// Right-hand sides (interleaved).
    pub d: GlobalArray<T>,
    /// Out: `x_f` coefficients per interior row (interleaved).
    pub at: GlobalArray<T>,
    /// Scratch: forward-swept diagonal (interleaved).
    pub bt: GlobalArray<T>,
    /// Out: `x_l` coefficients per interior row (interleaved).
    pub ct: GlobalArray<T>,
    /// Out: constant terms per interior row (interleaved).
    pub dt: GlobalArray<T>,
    /// Out: reduced-row sub-diagonals (`2·chunks`).
    pub ra: GlobalArray<T>,
    /// Out: reduced-row main diagonals (`2·chunks`).
    pub rb: GlobalArray<T>,
    /// Out: reduced-row super-diagonals (`2·chunks`).
    pub rc: GlobalArray<T>,
    /// Out: reduced-row right-hand sides (`2·chunks`).
    pub rd: GlobalArray<T>,
}

impl<T: Real> GridKernel<T> for LocalReduceKernel<T> {
    fn block_dim(&self) -> usize {
        REDUCE_BLOCK_DIM.min(self.chunks)
    }

    fn shared_words(&self) -> usize {
        0
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let chunks = self.chunks;
        let dim = self.block_dim();
        let here = dim.min(chunks - block_id * dim);
        // Like the coarse kernel: the whole reduction is one superstep of
        // per-thread serial recurrences, no barriers.
        ctx.step(Phase::Other("partition local reduce"), 0..here, |t| {
            let s = block_id * dim + t.tid();
            let m = self.offsets[s + 1] - self.offsets[s];
            let at_ix = |i: usize| i * chunks + s;

            // Raw first row, kept for the upper interface row.
            let a0 = t.load_global_dependent(self.a, at_ix(0));
            let b0 = t.load_global(self.b, at_ix(0));
            let c0 = t.load_global(self.c, at_ix(0));
            let d0 = t.load_global(self.d, at_ix(0));

            // Forward: carry (aa, bb, dd); cc_i is the raw c_i.
            let mut aa = t.load_global_dependent(self.a, at_ix(1));
            let mut bb = t.load_global(self.b, at_ix(1));
            let mut dd = t.load_global(self.d, at_ix(1));
            t.store_global(self.at, at_ix(1), aa);
            t.store_global(self.bt, at_ix(1), bb);
            t.store_global(self.dt, at_ix(1), dd);
            for i in 2..m {
                let ai = t.load_global_dependent(self.a, at_ix(i));
                let bi = t.load_global(self.b, at_ix(i));
                let di = t.load_global(self.d, at_ix(i));
                let c_prev = t.load_global(self.c, at_ix(i - 1));
                let k = t.div(ai, bb);
                let p = t.mul(k, c_prev);
                bb = t.sub(bi, p);
                let p = t.mul(k, aa);
                aa = t.neg(p);
                let p = t.mul(k, dd);
                dd = t.sub(di, p);
                t.store_global(self.at, at_ix(i), aa);
                t.store_global(self.bt, at_ix(i), bb);
                t.store_global(self.dt, at_ix(i), dd);
            }

            // Lower interface row: aa·x_f + bb·x_l + c_{m-1}·x_f(next) = dd.
            let c_last = t.load_global(self.c, at_ix(m - 1));
            t.store_global(self.ra, 2 * s + 1, aa);
            t.store_global(self.rb, 2 * s + 1, bb);
            t.store_global(self.rc, 2 * s + 1, c_last);
            t.store_global(self.rd, 2 * s + 1, dd);

            // Backward: normalize interior rows to
            //   x_i = dtp − atp·x_f − ctp·x_l,
            // seeded with the sentinel for "row m−1" (x_{m-1} is x_l).
            let mut atp = T::ZERO;
            let mut ctp = T::from_f64(-1.0);
            let mut dtp = T::ZERO;
            for i in (1..m.max(2) - 1).rev() {
                let aa_i = t.load_global_dependent(self.at, at_ix(i));
                let bb_i = t.load_global(self.bt, at_ix(i));
                let dd_i = t.load_global(self.dt, at_ix(i));
                let c_i = t.load_global(self.c, at_ix(i));
                let num = {
                    let p = t.mul(c_i, dtp);
                    t.sub(dd_i, p)
                };
                dtp = t.div(num, bb_i);
                let num = {
                    let p = t.mul(c_i, atp);
                    t.sub(aa_i, p)
                };
                atp = t.div(num, bb_i);
                let num = {
                    let p = t.mul(c_i, ctp);
                    t.neg(p)
                };
                ctp = t.div(num, bb_i);
                t.store_global(self.at, at_ix(i), atp);
                t.store_global(self.ct, at_ix(i), ctp);
                t.store_global(self.dt, at_ix(i), dtp);
            }

            // Upper interface row via x_1 = dtp − atp·x_f − ctp·x_l
            // (sentinel when m == 2, where x_1 *is* x_l).
            let rb0 = {
                let p = t.mul(c0, atp);
                t.sub(b0, p)
            };
            let rc0 = {
                let p = t.mul(c0, ctp);
                t.neg(p)
            };
            let rd0 = {
                let p = t.mul(c0, dtp);
                t.sub(d0, p)
            };
            t.store_global(self.ra, 2 * s, a0);
            t.store_global(self.rb, 2 * s, rb0);
            t.store_global(self.rc, 2 * s, rc0);
            t.store_global(self.rd, 2 * s, rd0);
        });
    }
}

/// Back-substitution: **one thread per element** of the interleaved
/// rectangle. Boundary rows copy their interface value; interior rows
/// evaluate `x_i = dt_i − at_i·x_f − ct_i·x_l`. No recurrence — the fan-out
/// is embarrassingly parallel.
#[derive(Debug, Clone)]
pub struct BackSubstKernel<T> {
    /// Number of chunks in the rectangle.
    pub chunks: usize,
    /// Rows in the rectangle (longest chunk).
    pub max_len: usize,
    /// Chunk boundaries (`chunks + 1` entries).
    pub offsets: Vec<usize>,
    /// `x_f` coefficients (interleaved, from [`LocalReduceKernel`]).
    pub at: GlobalArray<T>,
    /// `x_l` coefficients (interleaved).
    pub ct: GlobalArray<T>,
    /// Constant terms (interleaved).
    pub dt: GlobalArray<T>,
    /// Solved interface values, `(x_f, x_l)` per chunk (`2·chunks`).
    pub xi: GlobalArray<T>,
    /// Out: solutions (interleaved).
    pub x: GlobalArray<T>,
}

impl<T: Real> GridKernel<T> for BackSubstKernel<T> {
    fn block_dim(&self) -> usize {
        BACKSUBST_BLOCK_DIM.min(self.chunks * self.max_len)
    }

    fn shared_words(&self) -> usize {
        0
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let chunks = self.chunks;
        let total = chunks * self.max_len;
        let dim = self.block_dim();
        let here = dim.min(total - block_id * dim);
        ctx.step(Phase::Other("partition back-subst"), 0..here, |t| {
            let e = block_id * dim + t.tid();
            let s = e % chunks;
            let i = e / chunks;
            let m = self.offsets[s + 1] - self.offsets[s];
            if i >= m {
                return; // tail row of a shorter chunk: nothing stored there
            }
            if i == 0 {
                let v = t.load_global(self.xi, 2 * s);
                t.store_global(self.x, e, v);
            } else if i == m - 1 {
                let v = t.load_global(self.xi, 2 * s + 1);
                t.store_global(self.x, e, v);
            } else {
                let at_v = t.load_global(self.at, e);
                let ct_v = t.load_global(self.ct, e);
                let dt_v = t.load_global(self.dt, e);
                let xf = t.load_global(self.xi, 2 * s);
                let xl = t.load_global(self.xi, 2 * s + 1);
                let v = {
                    let p = t.mul(at_v, xf);
                    let q = t.mul(ct_v, xl);
                    let r = t.sub(dt_v, p);
                    t.sub(r, q)
                };
                t.store_global(self.x, e, v);
            }
        });
    }
}

/// The gathered interface system: one tridiagonal row pair per chunk,
/// padded with identity rows to the next power of two so PCR can run it.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceSystem<T> {
    /// Sub-diagonals, `padded` long.
    pub a: Vec<T>,
    /// Main diagonals.
    pub b: Vec<T>,
    /// Super-diagonals.
    pub c: Vec<T>,
    /// Right-hand sides.
    pub d: Vec<T>,
    /// Meaningful rows (`2 × total chunks`).
    pub rows: usize,
    /// Power-of-two padded size actually solved.
    pub padded: usize,
}

impl<T: Real> InterfaceSystem<T> {
    /// Assembles the interface system from per-chunk reduced rows given in
    /// global chunk order (`ra..rd` each `2 × total chunks` long). The
    /// outermost couplings are grounded (`a[0] = c[last] = 0`) and identity
    /// pad rows (`x = 0`) decouple the tail.
    pub fn assemble(ra: &[T], rb: &[T], rc: &[T], rd: &[T]) -> Self {
        let rows = ra.len();
        debug_assert!(rows >= 2 && rows.is_multiple_of(2));
        let padded = rows.next_power_of_two();
        let mut a = vec![T::ZERO; padded];
        let mut b = vec![T::ONE; padded];
        let mut c = vec![T::ZERO; padded];
        let mut d = vec![T::ZERO; padded];
        a[..rows].copy_from_slice(ra);
        b[..rows].copy_from_slice(rb);
        c[..rows].copy_from_slice(rc);
        d[..rows].copy_from_slice(rd);
        a[0] = T::ZERO;
        c[rows - 1] = T::ZERO;
        Self { a, b, c, d, rows, padded }
    }

    /// Largest padded interface size the PCR kernel can take on `device`
    /// (one block: `padded` threads, five shared arrays).
    pub fn max_padded_rows(bytes_per_elem: usize, device: &gpu_sim::DeviceConfig) -> usize {
        let limit = by_threads_and_shared(bytes_per_elem, device);
        // Round DOWN to a power of two: an interface assembled right at the
        // cap pads to `next_power_of_two(rows)`, so a non-pow2 cap (e.g.
        // f64 on 16 KiB shared: 409 rows) must not round up past what the
        // kernel can actually hold.
        let up = limit.next_power_of_two();
        if up > limit {
            up / 2
        } else {
            up
        }
    }
}

/// Raw (un-rounded) one-block capacity: threads and five shared arrays.
fn by_threads_and_shared(bytes_per_elem: usize, device: &gpu_sim::DeviceConfig) -> usize {
    let by_threads = device.max_threads_per_block;
    let by_shared = device.shared_mem_per_sm / (5 * bytes_per_elem);
    by_threads.min(by_shared)
}

/// Simulated timings of one partitioned solve, phase by phase. Multi-device
/// runs take the **max** across devices for the parallel phases (local
/// reduction, back-substitution) and add the serial interface solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PartitionedTiming {
    /// Local modified-Thomas reduction (parallel across devices → max).
    pub local_ms: f64,
    /// Interface PCR solve (one device, serial).
    pub interface_ms: f64,
    /// Back-substitution fan-out (parallel across devices → max).
    pub backsubst_ms: f64,
    /// PCIe traffic (parallel per device → max of per-device sums).
    pub transfer_ms: f64,
}

impl PartitionedTiming {
    /// End-to-end simulated milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.local_ms + self.interface_ms + self.backsubst_ms + self.transfer_ms
    }
}

/// Outcome of a partitioned solve.
#[derive(Debug, Clone)]
pub struct PartitionedReport<T> {
    /// The solution vector, natural (non-interleaved) order.
    pub x: Vec<T>,
    /// Chunks the system was cut into.
    pub chunks: usize,
    /// Meaningful interface rows (`2 × chunks`).
    pub interface_rows: usize,
    /// Padded interface size PCR actually solved.
    pub interface_padded: usize,
    /// Phase timings.
    pub timing: PartitionedTiming,
}

/// Per-device state of the local phase: everything the interface gather
/// and the back-substitution fan-out need. `device-pool` drives one of
/// these per device; [`solve_partitioned_single`] drives one for the whole
/// system.
pub struct LocalPhase<T: Real> {
    /// The device memory holding this span's arrays.
    pub gmem: GlobalMem<T>,
    /// Chunk boundaries within the span.
    pub offsets: Vec<usize>,
    /// Reduced interface rows of this span's chunks (`2 × chunks` each),
    /// in `(ra, rb, rc, rd)` order.
    pub reduced: (Vec<T>, Vec<T>, Vec<T>, Vec<T>),
    /// Simulated kernel ms of the local reduction.
    pub local_ms: f64,
    /// PCIe ms spent uploading the span (simulated).
    pub upload_ms: f64,
    at: GlobalArray<T>,
    ct: GlobalArray<T>,
    dt: GlobalArray<T>,
    chunks: usize,
    max_len: usize,
}

/// Runs the local reduction for one span (`a..d` are the span's slices of
/// the full system) on `launcher`, leaving the coefficient arrays resident
/// for [`back_substitute`].
pub fn local_reduce<T: Real>(
    launcher: &Launcher,
    a: &[T],
    b: &[T],
    c: &[T],
    d: &[T],
    offsets: &[usize],
) -> Result<LocalPhase<T>> {
    let n = a.len();
    validate_offsets(n, offsets)?;
    let chunks = offsets.len() - 1;
    let max_len = max_chunk_len(offsets);
    let mut gmem = GlobalMem::new();
    let kernel = LocalReduceKernel {
        chunks,
        max_len,
        offsets: offsets.to_vec(),
        a: gmem.upload(interleave_chunks(a, offsets)),
        b: gmem.upload(interleave_chunks(b, offsets)),
        c: gmem.upload(interleave_chunks(c, offsets)),
        d: gmem.upload(interleave_chunks(d, offsets)),
        at: gmem.alloc_zeroed(max_len * chunks),
        bt: gmem.alloc_zeroed(max_len * chunks),
        ct: gmem.alloc_zeroed(max_len * chunks),
        dt: gmem.alloc_zeroed(max_len * chunks),
        ra: gmem.alloc_zeroed(2 * chunks),
        rb: gmem.alloc_zeroed(2 * chunks),
        rc: gmem.alloc_zeroed(2 * chunks),
        rd: gmem.alloc_zeroed(2 * chunks),
    };
    let blocks = chunks.div_ceil(kernel.block_dim());
    let report = launcher.launch(&kernel, blocks, &mut gmem)?;
    let upload_bytes = 4 * n * T::BYTES;
    let upload_ms = launcher.cost.pcie_seconds(upload_bytes as u64) * 1e3;
    let reduced = (
        gmem.download(kernel.ra),
        gmem.download(kernel.rb),
        gmem.download(kernel.rc),
        gmem.download(kernel.rd),
    );
    Ok(LocalPhase {
        at: kernel.at,
        ct: kernel.ct,
        dt: kernel.dt,
        chunks,
        max_len,
        offsets: offsets.to_vec(),
        reduced,
        local_ms: report.timing.kernel_ms,
        upload_ms,
        gmem,
    })
}

/// Back-substitutes one span given its chunks' solved interface values
/// (`xi`, `(x_f, x_l)` per chunk). Returns the span's solution in natural
/// order plus the phase's simulated kernel + download ms.
pub fn back_substitute<T: Real>(
    launcher: &Launcher,
    phase: &mut LocalPhase<T>,
    xi: &[T],
) -> Result<(Vec<T>, f64, f64)> {
    debug_assert_eq!(xi.len(), 2 * phase.chunks);
    let chunks = phase.chunks;
    let max_len = phase.max_len;
    let kernel = BackSubstKernel {
        chunks,
        max_len,
        offsets: phase.offsets.clone(),
        at: phase.at,
        ct: phase.ct,
        dt: phase.dt,
        xi: phase.gmem.upload(xi.to_vec()),
        x: phase.gmem.alloc_zeroed(max_len * chunks),
    };
    let blocks = (chunks * max_len).div_ceil(kernel.block_dim());
    let report = launcher.launch(&kernel, blocks, &mut phase.gmem)?;
    let xi_flat = phase.gmem.download(kernel.x);
    let n = *phase.offsets.last().unwrap();
    let mut x = vec![T::ZERO; n];
    for s in 0..chunks {
        for i in 0..(phase.offsets[s + 1] - phase.offsets[s]) {
            x[phase.offsets[s] + i] = xi_flat[i * chunks + s];
        }
    }
    let download_bytes = n * T::BYTES;
    let download_ms = launcher.cost.pcie_seconds(download_bytes as u64) * 1e3;
    Ok((x, report.timing.kernel_ms, download_ms))
}

/// Solves the assembled interface system with the PCR kernel on
/// `launcher`; returns the meaningful rows of the solution and the
/// simulated kernel ms.
pub fn solve_interface<T: Real>(
    launcher: &Launcher,
    interface: &InterfaceSystem<T>,
) -> Result<(Vec<T>, f64)> {
    let cap = InterfaceSystem::<T>::max_padded_rows(T::BYTES, &launcher.device);
    if interface.padded > cap {
        return Err(TridiagError::InvalidConfig {
            what: "interface system exceeds one PCR block (use fewer chunks)",
        });
    }
    let mut gmem = GlobalMem::new();
    let gm = SystemHandles {
        a: gmem.upload(interface.a.clone()),
        b: gmem.upload(interface.b.clone()),
        c: gmem.upload(interface.c.clone()),
        d: gmem.upload(interface.d.clone()),
        x: gmem.alloc_zeroed(interface.padded),
    };
    let kernel = PcrKernel { n: interface.padded, gm };
    let report = launcher.launch(&kernel, 1, &mut gmem)?;
    let mut xi = gmem.download(gm.x);
    xi.truncate(interface.rows);
    Ok((xi, report.timing.kernel_ms))
}

/// Whole partitioned pipeline on **one** launcher (the single-device
/// reference; `device-pool` runs the same phases across many launchers).
pub fn solve_partitioned_single<T: Real>(
    launcher: &Launcher,
    system: &TridiagonalSystem<T>,
    chunks: usize,
) -> Result<PartitionedReport<T>> {
    let offsets = even_offsets(system.n(), chunks)?;
    solve_partitioned_single_with_offsets(launcher, system, &offsets)
}

/// [`solve_partitioned_single`] with explicit (possibly uneven) chunk
/// boundaries.
pub fn solve_partitioned_single_with_offsets<T: Real>(
    launcher: &Launcher,
    system: &TridiagonalSystem<T>,
    offsets: &[usize],
) -> Result<PartitionedReport<T>> {
    let mut phase = local_reduce(launcher, &system.a, &system.b, &system.c, &system.d, offsets)?;
    let (ra, rb, rc, rd) = (
        phase.reduced.0.clone(),
        phase.reduced.1.clone(),
        phase.reduced.2.clone(),
        phase.reduced.3.clone(),
    );
    let interface = InterfaceSystem::assemble(&ra, &rb, &rc, &rd);
    let (xi, interface_ms) = solve_interface(launcher, &interface)?;
    let (x, backsubst_ms, download_ms) = back_substitute(launcher, &mut phase, &xi)?;
    Ok(PartitionedReport {
        x,
        chunks: offsets.len() - 1,
        interface_rows: interface.rows,
        interface_padded: interface.padded,
        timing: PartitionedTiming {
            local_ms: phase.local_ms,
            interface_ms,
            backsubst_ms,
            transfer_ms: phase.upload_ms + download_ms,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::residual::l2_residual;
    use tridiag_core::{Generator, Workload};

    fn dominant(seed: u64, n: usize) -> TridiagonalSystem<f64> {
        Generator::new(seed).system(Workload::DiagonallyDominant, n)
    }

    #[test]
    fn even_offsets_cover_and_respect_min_chunk() {
        let o = even_offsets(10, 3).unwrap();
        assert_eq!(o, vec![0, 4, 7, 10]);
        assert!(even_offsets(5, 3).is_err(), "5 rows cannot feed 3 chunks of >= 2");
        assert!(even_offsets(8, 0).is_err());
        validate_offsets(10, &o).unwrap();
        assert!(validate_offsets(10, &[0, 1, 10]).is_err(), "1-row chunk");
        assert!(validate_offsets(10, &[0, 4, 9]).is_err(), "must end at n");
    }

    #[test]
    fn interleave_rectangles_short_chunks_with_zeros() {
        let data: Vec<f32> = (1..=7).map(|v| v as f32).collect();
        let il = interleave_chunks(&data, &[0, 4, 7]);
        // chunks = 2, max_len = 4: row-major (i * 2 + s).
        assert_eq!(il, vec![1.0, 5.0, 2.0, 6.0, 3.0, 7.0, 4.0, 0.0]);
    }

    #[test]
    fn matches_thomas_for_many_shapes() {
        for (n, chunks) in [(8usize, 1usize), (8, 2), (16, 4), (64, 8), (257, 5), (1024, 16)] {
            let sys = dominant(n as u64, n);
            let report = solve_partitioned_single(&Launcher::gtx280(), &sys, chunks).unwrap();
            let x_ref = cpu_solvers::thomas::solve(&sys).unwrap();
            for i in 0..n {
                assert!(
                    (report.x[i] - x_ref[i]).abs() < 1e-9,
                    "n={n} chunks={chunks} i={i}: {} vs {}",
                    report.x[i],
                    x_ref[i]
                );
            }
            assert_eq!(report.interface_rows, 2 * chunks);
            assert!(report.interface_padded.is_power_of_two());
        }
    }

    #[test]
    fn uneven_offsets_agree_with_even_ones() {
        let sys = dominant(3, 100);
        let uneven =
            solve_partitioned_single_with_offsets(&Launcher::gtx280(), &sys, &[0, 7, 50, 52, 100])
                .unwrap();
        let r = l2_residual(&sys, &uneven.x).unwrap();
        assert!(r < 1e-8, "residual {r}");
    }

    #[test]
    fn handles_oversized_systems_beyond_shared_memory() {
        // n = 2^16 is far past any shared-memory kernel's reach.
        let n = 1 << 16;
        let sys: TridiagonalSystem<f32> = Generator::new(9).system(Workload::DiagonallyDominant, n);
        let report = solve_partitioned_single(&Launcher::gtx280(), &sys, 32).unwrap();
        let r = l2_residual(&sys, &report.x).unwrap();
        let d_norm: f64 = sys.d.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt();
        let bound = 100.0 * d_norm * f32::EPSILON as f64 * n as f64;
        assert!(r < bound, "residual {r} vs bound {bound}");
        assert!(report.timing.total_ms() > 0.0);
    }

    #[test]
    fn interface_cap_is_enforced() {
        let sys = dominant(1, 2048);
        // 512 chunks → 1024 interface rows > the f64 cap (256).
        let err = solve_partitioned_single(&Launcher::gtx280(), &sys, 512).unwrap_err();
        assert!(matches!(err, TridiagError::InvalidConfig { .. }));
    }

    #[test]
    fn assemble_grounds_the_boundary_and_pads_with_identity() {
        let ra = vec![9.0f32, 1.0, 2.0, 3.0, 4.0, 5.0];
        let rb = vec![1.0f32; 6];
        let rc = vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 9.0];
        let rd = vec![1.0f32; 6];
        let s = InterfaceSystem::assemble(&ra, &rb, &rc, &rd);
        assert_eq!(s.rows, 6);
        assert_eq!(s.padded, 8);
        assert_eq!(s.a[0], 0.0, "outermost sub-diagonal grounded");
        assert_eq!(s.c[5], 0.0, "outermost super-diagonal grounded");
        assert_eq!((s.a[6], s.b[6], s.c[6], s.d[6]), (0.0, 1.0, 0.0, 0.0), "identity pad");
    }

    #[test]
    fn local_kernel_is_sanitizer_clean() {
        let sys = dominant(5, 96);
        let launcher = Launcher::gtx280().with_sanitize(gpu_sim::SanitizeOptions::record());
        let report = solve_partitioned_single(&launcher, &sys, 6).unwrap();
        let r = l2_residual(&sys, &report.x).unwrap();
        assert!(r < 1e-8, "residual {r}");
    }
}
