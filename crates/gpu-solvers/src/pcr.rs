//! The parallel cyclic reduction (PCR) kernel — §2.2 of the paper.
//!
//! One block, one system, `n` threads, all active in every step. Each
//! reduction step updates *every* equation against its `±delta` neighbours,
//! splitting the system into independent half-size systems; after
//! `log2(n) - 1` steps the final step solves `n/2` independent 2-unknown
//! systems. Unit-stride accesses keep PCR bank-conflict free — the property
//! driving its 883 GB/s shared bandwidth in Figure 12.

use crate::common::{log2, SystemHandles};
use crate::cr::{load_system, store_solution, SharedSystem};
use gpu_sim::{BlockCtx, GridKernel, Phase, ThreadCtx};
use tridiag_core::Real;

/// Parallel cyclic reduction kernel (one system per block).
#[derive(Debug, Clone, Copy)]
pub struct PcrKernel<T> {
    /// System size (power of two, >= 2).
    pub n: usize,
    /// Device arrays.
    pub gm: SystemHandles<T>,
}

/// One PCR update of equation `i` with neighbour distance `delta` over the
/// index window `[lo, hi)`. Shared with the hybrid kernel, which runs PCR on
/// an intermediate system living in a sub-window of fresh arrays.
///
/// Branchless: boundary neighbour indices clamp into the window and the
/// boundary-zero invariants (`a[lo] == 0` and, inductively, `a[i] == 0`
/// for `i < lo + delta`; symmetrically for `c`) make `k1`/`k2` vanish, so
/// every lane executes the identical instruction stream — the idiom the
/// CUDA kernels use, and what keeps the per-slot conflict accounting exact.
#[inline]
pub(crate) fn pcr_update<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    sh: &SharedSystem<T>,
    i: usize,
    delta: usize,
    lo: usize,
    hi: usize,
) {
    let il = if i >= lo + delta { i - delta } else { lo };
    let ir = if i + delta < hi { i + delta } else { hi - 1 };
    let b_i = t.load(sh.b, i);
    let d_i = t.load(sh.d, i);

    let a_i = t.load(sh.a, i);
    let b_il = t.load(sh.b, il);
    let k1 = t.div(a_i, b_il);
    let a_il = t.load(sh.a, il);
    let c_il = t.load(sh.c, il);
    let d_il = t.load(sh.d, il);

    let c_i = t.load(sh.c, i);
    let b_ir = t.load(sh.b, ir);
    let k2 = t.div(c_i, b_ir);
    let a_ir = t.load(sh.a, ir);
    let c_ir = t.load(sh.c, ir);
    let d_ir = t.load(sh.d, ir);

    let nb = {
        let p1 = t.mul(c_il, k1);
        let p2 = t.mul(a_ir, k2);
        let s = t.sub(b_i, p1);
        t.sub(s, p2)
    };
    let nd = {
        let p1 = t.mul(d_il, k1);
        let p2 = t.mul(d_ir, k2);
        let s = t.sub(d_i, p1);
        t.sub(s, p2)
    };
    let na = {
        let p = t.mul(a_il, k1);
        t.neg(p)
    };
    let nc = {
        let p = t.mul(c_ir, k2);
        t.neg(p)
    };
    t.store(sh.a, i, na);
    t.store(sh.b, i, nb);
    t.store(sh.c, i, nc);
    t.store(sh.d, i, nd);
}

/// Final PCR step: solve the 2-unknown system `{i, i + half}` and hand both
/// unknowns to `write_x` (the plain kernel stores them at their own indices;
/// the hybrid scatters them into the strided positions of the full system).
#[inline]
pub(crate) fn pcr_solve_pair<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    sh: &SharedSystem<T>,
    i: usize,
    half: usize,
    mut write_x: impl FnMut(&mut ThreadCtx<'_, '_, T>, usize, T),
) {
    let j = i + half;
    let b_i = t.load(sh.b, i);
    let c_i = t.load(sh.c, i);
    let d_i = t.load(sh.d, i);
    let a_j = t.load(sh.a, j);
    let b_j = t.load(sh.b, j);
    let d_j = t.load(sh.d, j);
    let det = {
        let p1 = t.mul(b_i, b_j);
        let p2 = t.mul(c_i, a_j);
        t.sub(p1, p2)
    };
    let x_i = {
        let p1 = t.mul(d_i, b_j);
        let p2 = t.mul(c_i, d_j);
        let num = t.sub(p1, p2);
        t.div(num, det)
    };
    let x_j = {
        let p1 = t.mul(b_i, d_j);
        let p2 = t.mul(a_j, d_i);
        let num = t.sub(p1, p2);
        t.div(num, det)
    };
    write_x(t, i, x_i);
    write_x(t, j, x_j);
}

impl<T: Real> GridKernel<T> for PcrKernel<T> {
    fn block_dim(&self) -> usize {
        self.n
    }

    fn shared_words(&self) -> usize {
        5 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let base = block_id * n;
        let sh = SharedSystem::alloc(ctx, n);
        load_system(ctx, &sh, &self.gm, base, n, n);

        let levels = log2(n) - 1;
        let mut delta = 1usize;
        for _ in 0..levels {
            ctx.step(Phase::PcrReduction, 0..n, |t| {
                pcr_update(t, &sh, t.tid(), delta, 0, n);
            });
            delta *= 2;
        }
        debug_assert_eq!(delta, n / 2);

        let x = sh.x;
        ctx.step(Phase::PcrSolveTwoUnknown, 0..n / 2, |t| {
            pcr_solve_pair(t, &sh, t.tid(), n / 2, |t, k, v| t.store(x, k, v));
        });

        store_solution(ctx, &sh, &self.gm, base, n, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMem, LaunchReport, Launcher};
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SolutionBatch, SystemBatch, Workload};

    fn run(n: usize, count: usize) -> (SystemBatch<f32>, SolutionBatch<f32>, LaunchReport) {
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::DiagonallyDominant, n, count).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = PcrKernel { n, gm };
        let report = Launcher::gtx280().launch(&kernel, count, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        (batch, sol, report)
    }

    #[test]
    fn solves_batches_accurately() {
        for n in [2usize, 4, 16, 128, 512] {
            let (batch, sol, _) = run(n, 4);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "n={n}");
            assert!(r.max_l2 < 2e-4, "n={n}: residual {}", r.max_l2);
        }
    }

    #[test]
    fn pcr_is_bank_conflict_free() {
        // §4: "in-place PCR and RD do not suffer from bank conflicts".
        let (_, _, report) = run(512, 1);
        assert_eq!(report.stats.max_conflict_degree(), 1);
    }

    #[test]
    fn step_count_matches_paper() {
        // Table 1: log2 n algorithmic steps.
        let (_, _, report) = run(512, 1);
        let algo_steps = report
            .stats
            .steps
            .iter()
            .filter(|s| !matches!(s.phase, Phase::GlobalLoad | Phase::GlobalStore))
            .count();
        assert_eq!(algo_steps, 9);
    }

    #[test]
    fn all_threads_active_every_reduction_step() {
        let (_, _, report) = run(256, 1);
        for s in report.stats.steps_in_phase(Phase::PcrReduction) {
            assert_eq!(s.active_threads, 256);
        }
    }

    #[test]
    fn work_is_n_log_n() {
        // ops(512)/ops(64): (512*9)/(64*6) = 12 for an n log n algorithm.
        let (_, _, r64) = run(64, 1);
        let (_, _, r512) = run(512, 1);
        let ratio = r512.stats.total_ops() as f64 / r64.stats.total_ops() as f64;
        assert!((10.0..14.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn pcr_does_more_work_but_fewer_steps_than_cr() {
        let (_, _, pcr) = run(512, 1);
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::DiagonallyDominant, 512, 1).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let cr =
            Launcher::gtx280().launch(&crate::cr::CrKernel { n: 512, gm }, 1, &mut gmem).unwrap();
        assert!(pcr.stats.total_ops() > cr.stats.total_ops());
        assert!(pcr.stats.num_steps() < cr.stats.num_steps());
    }

    #[test]
    fn matches_reference_pcr_bitwise_modulo_order() {
        // The kernel and the sequential reference implement the same
        // update; on the same f64 data they agree to rounding.
        let batch: SystemBatch<f64> =
            Generator::new(7).batch(Workload::DiagonallyDominant, 64, 2).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = PcrKernel { n: 64, gm };
        Launcher::gtx280().launch(&kernel, 2, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        for s in 0..2 {
            let sys = batch.system(s);
            let mut x_ref = vec![0.0f64; 64];
            cpu_solvers::reference::pcr::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, &mut x_ref)
                .unwrap();
            for i in 0..64 {
                assert!((sol.system(s)[i] - x_ref[i]).abs() < 1e-12, "sys {s} i {i}");
            }
        }
    }
}
