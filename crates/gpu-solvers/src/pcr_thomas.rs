//! The PCR+pThomas hybrid: PCR splits the system, per-thread Thomas
//! finishes it.
//!
//! A natural follow-on to the paper's hybrids (and the design later used
//! by cuSPARSE's `gtsv`): `k` PCR levels split one n-unknown system into
//! `2^k` independent interleaved subsystems of size `n / 2^k`; each
//! subsystem is then solved *serially by one thread* ("pThomas"). Because
//! consecutive threads own consecutive subsystems, the serial sweeps'
//! shared-memory accesses are **unit-stride across lanes** — the
//! work-efficient serial algorithm runs conflict-free, and the whole solver
//! needs only `log2(n/split) + 2` algorithmic steps.
//!
//! Tradeoff against CR+PCR: fewer steps and no conflicts, but the serial
//! tail has only `2^k` active threads and `O(n)` sequential latency per
//! thread — the same step-vs-work balance the paper analyzes, landed at a
//! different point.

use crate::common::{log2, SystemHandles};
use crate::cr::{load_system, store_solution, SharedSystem};
use crate::pcr::pcr_update;
use gpu_sim::{BlockCtx, GridKernel, Phase};
use tridiag_core::Real;

/// PCR + per-thread-Thomas kernel (one system per block).
#[derive(Debug, Clone, Copy)]
pub struct PcrThomasKernel<T> {
    /// System size (power of two, >= 4).
    pub n: usize,
    /// Subsystem size handed to each serial thread (power of two,
    /// `2 <= split <= n/2`). The classic choice is 8-32.
    pub split: usize,
    /// Device arrays.
    pub gm: SystemHandles<T>,
}

impl<T: Real> GridKernel<T> for PcrThomasKernel<T> {
    fn block_dim(&self) -> usize {
        self.n
    }

    fn shared_words(&self) -> usize {
        5 * self.n * T::SHARED_WORDS
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let split = self.split;
        assert!(
            split.is_power_of_two() && split >= 2 && split <= n / 2,
            "invalid split {split} for n={n}"
        );
        let base = block_id * n;
        let sh = SharedSystem::alloc(ctx, n);
        load_system(ctx, &sh, &self.gm, base, n, n);

        // PCR levels until 2^k interleaved subsystems of size `split` remain.
        let k = log2(n) - log2(split);
        let mut delta = 1usize;
        for _ in 0..k {
            ctx.step(Phase::PcrReduction, 0..n, |t| {
                pcr_update(t, &sh, t.tid(), delta, 0, n);
            });
            delta *= 2;
        }
        let stride = 1usize << k;
        debug_assert_eq!(n / stride, split);

        // Serial Thomas per subsystem: thread r owns indices r, r+stride, ...
        // Element i of every thread's sweep touches addresses r + i*stride:
        // unit stride across lanes, hence conflict-free. The sweep scratch
        // (c', d') stays in registers, as in the real implementations —
        // splits beyond ~32 would spill on hardware (we model the accesses
        // as registers regardless and note the pressure in docs).
        let x = sh.x;
        ctx.step(Phase::Other("pThomas"), 0..stride, |t| {
            let r = t.tid();
            let at = |i: usize| r + i * stride;
            // Register-resident sweep scratch.
            let mut cp_reg = vec![T::ZERO; split];
            let mut dp_reg = vec![T::ZERO; split];
            // Forward elimination within the subsystem. The boundary-zero
            // invariant of PCR guarantees a[at(0)] == 0 and c[at(split-1)]
            // == 0.
            let b0 = t.load(sh.b, at(0));
            let c0 = t.load(sh.c, at(0));
            let d0 = t.load(sh.d, at(0));
            cp_reg[0] = t.div(c0, b0);
            dp_reg[0] = t.div(d0, b0);
            for i in 1..split {
                let ai = t.load(sh.a, at(i));
                let bi = t.load(sh.b, at(i));
                let ci = t.load(sh.c, at(i));
                let di = t.load(sh.d, at(i));
                let p = t.mul(cp_reg[i - 1], ai);
                let denom = t.sub(bi, p);
                cp_reg[i] = t.div(ci, denom);
                let p = t.mul(dp_reg[i - 1], ai);
                let num = t.sub(di, p);
                dp_reg[i] = t.div(num, denom);
            }
            // Backward substitution.
            let mut xnext = dp_reg[split - 1];
            t.store(x, at(split - 1), xnext);
            for i in (0..split - 1).rev() {
                let p = t.mul(cp_reg[i], xnext);
                xnext = t.sub(dp_reg[i], p);
                t.store(x, at(i), xnext);
            }
        });

        store_solution(ctx, &sh, &self.gm, base, n, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_batch, GpuAlgorithm};
    use gpu_sim::{GlobalMem, LaunchReport, Launcher};
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{dominant_batch, SolutionBatch, SystemBatch};

    fn run(
        n: usize,
        split: usize,
        count: usize,
    ) -> (SystemBatch<f32>, SolutionBatch<f32>, LaunchReport) {
        let batch = dominant_batch::<f32>(42, n, count);
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = PcrThomasKernel { n, split, gm };
        let report = Launcher::gtx280().launch(&kernel, count, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        (batch, sol, report)
    }

    #[test]
    fn solves_accurately_across_splits() {
        for (n, split) in [(64usize, 2usize), (64, 8), (64, 32), (512, 8), (512, 16), (512, 64)] {
            let (batch, sol, _) = run(n, split, 4);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "n={n} split={split}");
            assert!(r.max_l2 < 2e-4, "n={n} split={split}: {}", r.max_l2);
        }
    }

    #[test]
    fn serial_tail_is_conflict_free() {
        let (_, _, report) = run(512, 16, 1);
        for s in &report.stats.steps {
            if matches!(s.phase, Phase::Other("pThomas")) {
                assert_eq!(s.max_conflict_degree, 1, "pThomas must be unit-stride");
            }
        }
    }

    #[test]
    fn fewer_steps_than_pure_pcr() {
        let (_, _, report) = run(512, 16, 1);
        let algo_steps = report.stats.steps.iter().filter(|s| !s.phase.is_straight_line()).count();
        // log2(512/16) PCR levels + 1 serial step = 6 (vs PCR's 9).
        assert_eq!(algo_steps, 6);
    }

    #[test]
    fn competitive_with_the_paper_hybrid() {
        // Not asserted to win — only to land in the same league (within
        // 2x of CR+PCR and faster than plain CR).
        let batch = dominant_batch::<f32>(42, 512, 512);
        let (_, _, report) = run(512, 16, 512);
        let this = report.timing.kernel_ms;
        let launcher = Launcher::gtx280();
        let crpcr = solve_batch(&launcher, GpuAlgorithm::CrPcr { m: 256 }, &batch)
            .unwrap()
            .timing
            .kernel_ms;
        let cr = solve_batch(&launcher, GpuAlgorithm::Cr, &batch).unwrap().timing.kernel_ms;
        assert!(this < cr, "pcr+pThomas {this} vs CR {cr}");
        assert!(this < 2.0 * crpcr, "pcr+pThomas {this} vs CR+PCR {crpcr}");
    }

    #[test]
    fn matches_scalar_reference_in_f64() {
        let batch: SystemBatch<f64> = tridiag_core::Generator::new(3)
            .batch(tridiag_core::Workload::DiagonallyDominant, 128, 2)
            .unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = PcrThomasKernel { n: 128, split: 16, gm };
        Launcher::gtx280().launch(&kernel, 2, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        for s in 0..2 {
            let sys = batch.system(s);
            let x_ref = cpu_solvers::thomas::solve(&sys).unwrap();
            for i in 0..128 {
                assert!((sol.system(s)[i] - x_ref[i]).abs() < 1e-10, "sys {s} i {i}");
            }
        }
    }
}
