//! Periodic (cyclic) tridiagonal batches on the GPU.
//!
//! Sherman–Morrison turns each cyclic system into **two** ordinary
//! tridiagonal solves against the same modified matrix (right-hand sides
//! `d` and `u`). The batch therefore doubles: systems `2k` and `2k+1` of
//! the device batch are the `(d, u)` pair of cyclic system `k`, solved in a
//! single launch by any of the paper's kernels; the `O(n)` rank-one
//! combination runs on the host (it is bandwidth-trivial next to the
//! solve, and on real hardware would fold into the consuming kernel).

use crate::solver::{solve_batch, GpuAlgorithm, GpuSolveReport};
use gpu_sim::Launcher;
use tridiag_core::{
    PeriodicTridiagonalSystem, Real, Result, SolutionBatch, SystemBatch, TridiagError,
};

/// Result of a periodic batch solve.
#[derive(Debug, Clone)]
pub struct PeriodicSolveReport<T: Real> {
    /// Cyclic solutions, one per input system.
    pub solutions: SolutionBatch<T>,
    /// The underlying (doubled-batch) GPU report: timing covers both
    /// Sherman–Morrison solves.
    pub inner: GpuSolveReport<T>,
}

/// Solves a batch of periodic systems with `algorithm` on the simulated
/// GPU.
///
/// # Errors
/// Same configuration errors as [`solve_batch`], plus
/// [`TridiagError::ZeroPivot`] when a system's `b[0]` is zero (the
/// Sherman–Morrison pivot).
pub fn solve_periodic_batch<T: Real>(
    launcher: &Launcher,
    algorithm: GpuAlgorithm,
    systems: &[PeriodicTridiagonalSystem<T>],
) -> Result<PeriodicSolveReport<T>> {
    if systems.is_empty() {
        return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
    }
    let n = systems[0].n();

    // Build the doubled batch of modified systems.
    let mut doubled = Vec::with_capacity(systems.len() * 2);
    for sys in systems {
        if sys.n() != n {
            return Err(TridiagError::DimensionMismatch {
                what: "system size in periodic batch",
                expected: n,
                got: sys.n(),
            });
        }
        if sys.b[0] == T::ZERO {
            return Err(TridiagError::ZeroPivot { row: 0 });
        }
        let (modified, _, _, _) = sys.sherman_morrison_parts();
        let u = sys.sherman_morrison_u();
        let mut with_u = modified.clone();
        with_u.d = u;
        doubled.push(modified);
        doubled.push(with_u);
    }
    let batch = SystemBatch::from_systems(&doubled)?;
    let inner = solve_batch(launcher, algorithm, &batch)?;

    // Host-side rank-one combination.
    let mut solutions =
        SolutionBatch::from_flat(n, systems.len(), vec![T::ZERO; n * systems.len()])?;
    for (k, sys) in systems.iter().enumerate() {
        let y = inner.solutions.system(2 * k);
        let z = inner.solutions.system(2 * k + 1);
        sys.sherman_morrison_combine(y, z, solutions.system_mut(k));
    }
    Ok(PeriodicSolveReport { solutions, inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_dominant(seed: u64, n: usize) -> PeriodicTridiagonalSystem<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> =
            (0..n).map(|i| a[i].abs() + c[i].abs() + rng.gen_range(0.5..1.5)).collect();
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        PeriodicTridiagonalSystem::new(a, b, c, d).unwrap()
    }

    #[test]
    fn gpu_periodic_matches_cpu_cyclic() {
        let launcher = Launcher::gtx280();
        let systems: Vec<_> = (0..6).map(|s| random_dominant(s, 64)).collect();
        for alg in [GpuAlgorithm::Cr, GpuAlgorithm::Pcr, GpuAlgorithm::CrPcr { m: 16 }] {
            let report = solve_periodic_batch(&launcher, alg, &systems).unwrap();
            for (k, sys) in systems.iter().enumerate() {
                let x_cpu = cpu_solvers::cyclic::solve(sys).unwrap();
                let x_gpu = report.solutions.system(k);
                for i in 0..64 {
                    assert!((x_cpu[i] - x_gpu[i]).abs() < 1e-10, "{} sys {k} i {i}", alg.name());
                }
                assert!(sys.l2_residual(x_gpu).unwrap() < 1e-10);
            }
        }
    }

    #[test]
    fn doubled_batch_shape_and_timing() {
        let launcher = Launcher::gtx280();
        let systems: Vec<_> = (0..4).map(|s| random_dominant(s + 10, 32)).collect();
        let report = solve_periodic_batch(&launcher, GpuAlgorithm::Pcr, &systems).unwrap();
        assert_eq!(report.inner.timing.blocks, 8); // two solves per system
        assert_eq!(report.solutions.count(), 4);
        assert!(report.inner.timing.kernel_ms > 0.0);
    }

    #[test]
    fn rejects_mixed_sizes_and_zero_pivot() {
        let launcher = Launcher::gtx280();
        let mut systems = vec![random_dominant(1, 32), random_dominant(2, 64)];
        assert!(matches!(
            solve_periodic_batch(&launcher, GpuAlgorithm::Cr, &systems),
            Err(TridiagError::DimensionMismatch { .. })
        ));
        systems.truncate(1);
        systems[0].b[0] = 0.0;
        assert!(matches!(
            solve_periodic_batch(&launcher, GpuAlgorithm::Cr, &systems),
            Err(TridiagError::ZeroPivot { .. })
        ));
        let empty: Vec<PeriodicTridiagonalSystem<f64>> = vec![];
        assert!(solve_periodic_batch(&launcher, GpuAlgorithm::Cr, &empty).is_err());
    }

    #[test]
    fn f32_periodic_accuracy_is_reasonable() {
        let launcher = Launcher::gtx280();
        let systems: Vec<PeriodicTridiagonalSystem<f32>> = (0..4)
            .map(|s| {
                let d = random_dominant(s + 20, 128);
                PeriodicTridiagonalSystem::new(
                    d.a.iter().map(|&v| v as f32).collect(),
                    d.b.iter().map(|&v| v as f32).collect(),
                    d.c.iter().map(|&v| v as f32).collect(),
                    d.d.iter().map(|&v| v as f32).collect(),
                )
                .unwrap()
            })
            .collect();
        let report =
            solve_periodic_batch(&launcher, GpuAlgorithm::CrPcr { m: 32 }, &systems).unwrap();
        for (k, sys) in systems.iter().enumerate() {
            let r = sys.l2_residual(report.solutions.system(k)).unwrap();
            assert!(r < 1e-4, "sys {k}: residual {r}");
        }
    }
}
