//! The recursive doubling (RD) kernel — §2.3 of the paper.
//!
//! RD rewrites the recurrence as a chain of 3×3 matrix products evaluated
//! with a step-efficient Hillis–Steele scan. Only the first two rows of each
//! matrix are stored ("special matrices, which enable us to only store the
//! first two rows ... and save several floating point operations"), i.e. six
//! shared arrays; the third row stays `[0 0 1]` (or `[0 0 s]` for the
//! rescaled variant).
//!
//! Supersteps: matrix setup (fused with the global load, as in the paper's
//! Figure 13 grouping), `log2 n` scan steps, one solution-evaluation step,
//! one global store — `log2 n + 2` algorithmic steps, matching Table 1.
//!
//! The scan contains **no divisions** (Table 1) and is bank-conflict free.
//! The optional [`RdMode::Rescaled`] variant implements the overflow remedy
//! of §5.4 (normalize partial products, carrying the scale in the
//! homogeneous coordinate) at the cost of extra work per scan step.

use crate::common::SystemHandles;
use gpu_sim::{hillis_steele, BlockCtx, GridKernel, Phase, Shared, ThreadCtx};
use tridiag_core::Real;

/// Overflow-handling mode for recursive doubling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RdMode {
    /// Plain scan — overflows in `f32` for diagonally dominant systems
    /// larger than ~64 unknowns (paper §5.4); overflow is surfaced as
    /// non-finite solution values, not an error.
    #[default]
    Plain,
    /// Scan with projective rescaling — never produces non-finite values,
    /// at the price of extra operations and control per scan step.
    Rescaled,
}

/// Recursive-doubling kernel (one system per block).
#[derive(Debug, Clone, Copy)]
pub struct RdKernel<T> {
    /// System size (power of two, >= 2).
    pub n: usize,
    /// Device arrays.
    pub gm: SystemHandles<T>,
    /// Overflow handling.
    pub mode: RdMode,
}

/// The six shared arrays holding rows 1-2 of the scan matrices, plus the
/// scale array for the rescaled variant. Shared with the hybrid kernel.
pub(crate) struct ScanArrays<T> {
    pub r1x: Shared<T>,
    pub r1y: Shared<T>,
    pub r1z: Shared<T>,
    pub r2x: Shared<T>,
    pub r2y: Shared<T>,
    pub r2z: Shared<T>,
    /// Present only in rescaled mode.
    pub scale: Option<Shared<T>>,
}

impl<T: Real> ScanArrays<T> {
    pub fn alloc(ctx: &mut BlockCtx<'_, T>, m: usize, mode: RdMode) -> Self {
        Self {
            r1x: ctx.alloc(m),
            r1y: ctx.alloc(m),
            r1z: ctx.alloc(m),
            r2x: ctx.alloc(m),
            r2y: ctx.alloc(m),
            r2z: ctx.alloc(m),
            scale: (mode == RdMode::Rescaled).then(|| ctx.alloc(m)),
        }
    }

    /// Number of 32-bit words `alloc` consumes for size `m`.
    pub fn words(m: usize, mode: RdMode) -> usize {
        let arrays = if mode == RdMode::Rescaled { 7 } else { 6 };
        arrays * m * T::SHARED_WORDS
    }
}

/// Builds matrix `B_k` (thread-local) from equation coefficients and stores
/// it at scan position `k`. The caller passes `c = 1` for the last equation
/// of the (sub)system. Counted: 1 division, 3 multiplies, 2 negations.
#[inline]
pub(crate) fn setup_matrix<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    mats: &ScanArrays<T>,
    k: usize,
    a: T,
    b: T,
    c: T,
    d: T,
) {
    let inv = t.div(T::ONE, c);
    let p = t.mul(b, inv);
    let r1x = t.neg(p);
    let p = t.mul(a, inv);
    let r1y = t.neg(p);
    let r1z = t.mul(d, inv);
    t.store(mats.r1x, k, r1x);
    t.store(mats.r1y, k, r1y);
    t.store(mats.r1z, k, r1z);
    t.store(mats.r2x, k, T::ONE);
    t.store(mats.r2y, k, T::ZERO);
    t.store(mats.r2z, k, T::ZERO);
    if let Some(s) = mats.scale {
        t.store(s, k, T::ONE);
    }
}

/// One scan combine: `S_i := S_i * S_j` (later-index matrix on the left),
/// with optional rescaling. Shared with the hybrid kernel.
#[inline]
pub(crate) fn scan_combine<T: Real>(
    t: &mut ThreadCtx<'_, '_, T>,
    mats: &ScanArrays<T>,
    i: usize,
    j: usize,
) {
    let l1x = t.load(mats.r1x, i);
    let l1y = t.load(mats.r1y, i);
    let l1z = t.load(mats.r1z, i);
    let l2x = t.load(mats.r2x, i);
    let l2y = t.load(mats.r2y, i);
    let l2z = t.load(mats.r2z, i);
    let rj1x = t.load(mats.r1x, j);
    let rj1y = t.load(mats.r1y, j);
    let rj1z = t.load(mats.r1z, j);
    let rj2x = t.load(mats.r2x, j);
    let rj2y = t.load(mats.r2y, j);
    let rj2z = t.load(mats.r2z, j);
    let s_j = mats.scale.map(|s| t.load(s, j));

    let p = t.mul(l1y, rj2x);
    let p1x = t.fma(l1x, rj1x, p);
    let p = t.mul(l1y, rj2y);
    let p1y = t.fma(l1x, rj1y, p);
    let p = t.mul(l2y, rj2x);
    let p2x = t.fma(l2x, rj1x, p);
    let p = t.mul(l2y, rj2y);
    let p2y = t.fma(l2x, rj1y, p);

    // Homogeneous column: + l?z (times s_j when rescaling).
    let (mut p1z, mut p2z) = {
        let q = t.mul(l1y, rj2z);
        let q = t.fma(l1x, rj1z, q);
        let r = t.mul(l2y, rj2z);
        let r = t.fma(l2x, rj1z, r);
        match s_j {
            None => (t.add(q, l1z), t.add(r, l2z)),
            Some(sj) => (t.fma(l1z, sj, q), t.fma(l2z, sj, r)),
        }
    };
    let mut p1x = p1x;
    let mut p1y = p1y;
    let mut p2x = p2x;
    let mut p2y = p2y;

    if let (Some(s_arr), Some(sj)) = (mats.scale, s_j) {
        let s_i = t.load(s_arr, i);
        let mut ns = t.mul(s_i, sj);
        // Normalize if the largest magnitude exceeds the threshold.
        let mut m = ns.abs();
        for v in [p1x, p1y, p1z, p2x, p2y, p2z] {
            m = m.max(v.abs());
        }
        t.ops_charge(6); // the max/abs chain issues compare instructions
        let threshold = T::from_f64(1e18);
        if m > threshold {
            let inv = t.div(T::ONE, m);
            p1x = t.mul(p1x, inv);
            p1y = t.mul(p1y, inv);
            p1z = t.mul(p1z, inv);
            p2x = t.mul(p2x, inv);
            p2y = t.mul(p2y, inv);
            p2z = t.mul(p2z, inv);
            ns = t.mul(ns, inv);
        }
        t.store(s_arr, i, ns);
    }

    t.store(mats.r1x, i, p1x);
    t.store(mats.r1y, i, p1y);
    t.store(mats.r1z, i, p1z);
    t.store(mats.r2x, i, p2x);
    t.store(mats.r2y, i, p2y);
    t.store(mats.r2z, i, p2z);
}

/// Solution evaluation over scan positions `0..m`, writing `x` through
/// `write_x(t, k, value)` (the hybrid redirects this into the strided
/// positions of the full system). One superstep; every thread reads the
/// chain tail broadcast-style and needs one division.
pub(crate) fn evaluate_solutions<T: Real>(
    ctx: &mut BlockCtx<'_, T>,
    mats: &ScanArrays<T>,
    m: usize,
    mut write_x: impl FnMut(&mut ThreadCtx<'_, '_, T>, usize, T),
) {
    ctx.step(Phase::SolutionEvaluation, 0..m, |t| {
        let tail_z = t.load(mats.r1z, m - 1);
        let tail_x = t.load(mats.r1x, m - 1);
        let neg_z = t.neg(tail_z);
        let x0 = t.div(neg_z, tail_x);
        let k = t.tid();
        // Branchless: thread 0 performs the same loads (at clamped index 0)
        // and simply selects x0 instead of the prefix evaluation.
        let p = k.saturating_sub(1);
        let r1x = t.load(mats.r1x, p);
        let r1z = t.load(mats.r1z, p);
        let mut v = t.fma(r1x, x0, r1z);
        if let Some(s_arr) = mats.scale {
            let s = t.load(s_arr, p);
            v = t.div(v, s);
            if !v.is_finite() {
                // Scale underflowed past the format; saturate (see the
                // reference implementation for the rationale).
                v = T::ZERO;
            }
        }
        let v = if k == 0 { x0 } else { v };
        write_x(t, k, v);
    });
}

impl<T: Real> GridKernel<T> for RdKernel<T> {
    fn block_dim(&self) -> usize {
        self.n
    }

    fn shared_words(&self) -> usize {
        ScanArrays::<T>::words(self.n, self.mode)
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let n = self.n;
        let base = block_id * n;
        let mats = ScanArrays::alloc(ctx, n, self.mode);
        // The second matrix row is dead after the scan; its first column
        // array is reused as the solution vector (saves n words of shared
        // memory — without this the rescaled variant would not fit at
        // n = 512).
        let x = mats.r2x;

        // Matrix setup, fused with the global load (Figure 13's "global
        // memory access and matrix setup" phase).
        let gm = self.gm;
        ctx.step(Phase::MatrixSetup, 0..n, |t| {
            let i = t.tid();
            let a = t.load_global(gm.a, base + i);
            let b = t.load_global(gm.b, base + i);
            let c = t.load_global(gm.c, base + i);
            let d = t.load_global(gm.d, base + i);
            let c = if i == n - 1 { T::ONE } else { c };
            setup_matrix(t, &mats, i, a, b, c, d);
        });

        hillis_steele(ctx, n, Phase::Scan, |t, i, j| scan_combine(t, &mats, i, j));

        evaluate_solutions(ctx, &mats, n, |t, k, v| t.store(x, k, v));

        ctx.step(Phase::GlobalStore, 0..n, |t| {
            let i = t.tid();
            let v = t.load(x, i);
            t.store_global(gm.x, base + i, v);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMem, LaunchReport, Launcher};
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SolutionBatch, SystemBatch, Workload};

    fn run(
        n: usize,
        count: usize,
        workload: Workload,
        mode: RdMode,
    ) -> (SystemBatch<f32>, SolutionBatch<f32>, LaunchReport) {
        let batch: SystemBatch<f32> = Generator::new(42).batch(workload, n, count).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = RdKernel { n, gm, mode };
        let report = Launcher::gtx280().launch(&kernel, count, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        (batch, sol, report)
    }

    #[test]
    fn solves_close_values_accurately() {
        for n in [2usize, 16, 128, 512] {
            let (batch, sol, _) = run(n, 4, Workload::CloseValues, RdMode::Plain);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "n={n}");
            // f32 RD accuracy on this family is mediocre by nature —
            // Figure 18 reports residuals around 1e-1 here.
            assert!(r.max_l2 < 1.0, "n={n}: residual {}", r.max_l2);
        }
    }

    #[test]
    fn solves_small_dominant_accurately() {
        for n in [2usize, 8, 32] {
            let (batch, sol, _) = run(n, 4, Workload::DiagonallyDominant, RdMode::Plain);
            let r = batch_residual(&batch, &sol).unwrap();
            assert!(!r.has_overflow(), "n={n}");
        }
    }

    #[test]
    fn overflows_on_large_dominant_systems() {
        // Paper §5.4: "RD and PCR+RD suffer from arithmetic overflow" on
        // the 512-unknown diagonally dominant family.
        let (_, sol, _) = run(512, 8, Workload::DiagonallyDominant, RdMode::Plain);
        assert!(sol.first_non_finite().is_some(), "expected overflow");
    }

    #[test]
    fn rescaled_mode_stays_finite() {
        let (_, sol, _) = run(512, 8, Workload::DiagonallyDominant, RdMode::Rescaled);
        assert_eq!(sol.first_non_finite(), None);
    }

    #[test]
    fn scan_is_bank_conflict_free_and_div_free() {
        let (_, _, report) = run(512, 1, Workload::CloseValues, RdMode::Plain);
        for s in report.stats.steps_in_phase(Phase::Scan) {
            assert_eq!(s.max_conflict_degree, 1);
            assert_eq!(s.divs, 0, "Table 1: no div in the scan");
        }
    }

    #[test]
    fn step_count_matches_paper() {
        // Table 1: log2 n + 2 algorithmic steps (setup + scan + eval).
        let (_, _, report) = run(512, 1, Workload::CloseValues, RdMode::Plain);
        let algo_steps =
            report.stats.steps.iter().filter(|s| !matches!(s.phase, Phase::GlobalStore)).count();
        assert_eq!(algo_steps, 9 + 2);
    }

    #[test]
    fn scan_active_threads_shrink() {
        // §4: RD's active thread count starts at n and reduces toward half
        // during the scan.
        let (_, _, report) = run(64, 1, Workload::CloseValues, RdMode::Plain);
        let actives: Vec<usize> =
            report.stats.steps_in_phase(Phase::Scan).map(|s| s.active_threads).collect();
        assert_eq!(actives, vec![63, 62, 60, 56, 48, 32]);
    }

    #[test]
    fn rd_does_roughly_twice_pcr_flops() {
        // Table 1: 20 n log n vs 12 n log n.
        let (_, _, rd) = run(256, 1, Workload::CloseValues, RdMode::Plain);
        let batch: SystemBatch<f32> =
            Generator::new(42).batch(Workload::CloseValues, 256, 1).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let pcr =
            Launcher::gtx280().launch(&crate::pcr::PcrKernel { n: 256, gm }, 1, &mut gmem).unwrap();
        let ratio = rd.stats.total_ops() as f64 / pcr.stats.total_ops() as f64;
        assert!((1.2..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn matches_reference_rd() {
        let batch: SystemBatch<f64> =
            Generator::new(9).batch(Workload::CloseValues, 64, 2).unwrap();
        let mut gmem = GlobalMem::new();
        let gm = SystemHandles::upload(&mut gmem, &batch);
        let kernel = RdKernel { n: 64, gm, mode: RdMode::Plain };
        Launcher::gtx280().launch(&kernel, 2, &mut gmem).unwrap();
        let sol = gm.download_solutions(&mut gmem, &batch);
        for s in 0..2 {
            let sys = batch.system(s);
            let mut x_ref = vec![0.0f64; 64];
            cpu_solvers::reference::rd::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, &mut x_ref)
                .unwrap();
            for i in 0..64 {
                assert!((sol.system(s)[i] - x_ref[i]).abs() < 1e-9, "sys {s} i {i}");
            }
        }
    }
}
