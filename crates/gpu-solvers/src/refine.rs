//! Mixed-precision iterative refinement: single-precision GPU solves,
//! double-precision accuracy.
//!
//! The paper chooses f32 because "today's GPU features substantially more
//! single-precision throughput than double-precision", and its footnote-1
//! reference (Göddeke & Strzodka, *Accurate mixed-precision GPU-multigrid
//! solvers*) is exactly about recovering accuracy anyway. Classic
//! refinement does that for direct solvers:
//!
//! ```text
//! x = solve_f32(A, d)
//! repeat: r = d - A x        (in f64)
//!         delta = solve_f32(A, r)
//!         x += delta
//! ```
//!
//! Each iteration multiplies the error by O(eps_f32 * kappa(A)), so a
//! handful of f32 solves reaches f64-level residuals on well-conditioned
//! systems — while the GPU only ever runs its fast single-precision
//! kernels (and f32 halves the shared-memory footprint, admitting twice
//! the system size of a native f64 solve).

use crate::solver::{solve_batch, GpuAlgorithm};
use gpu_sim::{Launcher, TimingReport};
use tridiag_core::{Result, SolutionBatch, SystemBatch};

/// Report of a refined batch solve.
#[derive(Debug, Clone)]
pub struct RefinedSolveReport {
    /// Double-precision solutions.
    pub solutions: SolutionBatch<f64>,
    /// Worst-system L2 residual after each pass (index 0 = initial f32
    /// solve), so convergence is observable.
    pub residual_history: Vec<f64>,
    /// Accumulated simulated GPU time across all refinement solves.
    pub total_kernel_ms: f64,
    /// Timing of the first (largest-impact) solve.
    pub first_solve: TimingReport,
}

fn downcast(batch: &SystemBatch<f64>) -> SystemBatch<f32> {
    let systems: Vec<_> = (0..batch.count())
        .map(|s| {
            let sys = batch.system(s);
            tridiag_core::TridiagonalSystem {
                a: sys.a.iter().map(|&v| v as f32).collect(),
                b: sys.b.iter().map(|&v| v as f32).collect(),
                c: sys.c.iter().map(|&v| v as f32).collect(),
                d: sys.d.iter().map(|&v| v as f32).collect(),
            }
        })
        .collect();
    SystemBatch::from_systems(&systems).expect("same shape")
}

/// Worst-system residual `max_s ||A_s x_s - d_s||_2`, f64 accumulation.
fn worst_residual(batch: &SystemBatch<f64>, x: &SolutionBatch<f64>) -> Result<f64> {
    let mut worst = 0.0f64;
    for s in 0..batch.count() {
        let sys = batch.system(s);
        worst = worst.max(tridiag_core::residual::l2_residual(&sys, x.system(s))?);
    }
    Ok(worst)
}

/// Solves an f64 batch with f32 GPU kernels plus `iterations` refinement
/// passes.
pub fn solve_batch_refined(
    launcher: &Launcher,
    algorithm: GpuAlgorithm,
    batch: &SystemBatch<f64>,
    iterations: usize,
) -> Result<RefinedSolveReport> {
    let n = batch.n();
    let count = batch.count();

    // Initial f32 solve.
    let f32_batch = downcast(batch);
    let first = solve_batch(launcher, algorithm, &f32_batch)?;
    let mut total_kernel_ms = first.timing.kernel_ms;
    let mut x =
        SolutionBatch::from_flat(n, count, first.solutions.x.iter().map(|&v| v as f64).collect())?;
    let mut residual_history = vec![worst_residual(batch, &x)?];

    for _ in 0..iterations {
        // r = d - A x in f64, per system; re-solve the correction in f32.
        let correction_systems: Vec<_> = (0..count)
            .map(|s| {
                let sys = batch.system(s);
                let ax = sys.matvec(x.system(s)).expect("shape");
                let r: Vec<f32> =
                    ax.iter().zip(&sys.d).map(|(&lhs, &rhs)| (rhs - lhs) as f32).collect();
                tridiag_core::TridiagonalSystem {
                    a: sys.a.iter().map(|&v| v as f32).collect(),
                    b: sys.b.iter().map(|&v| v as f32).collect(),
                    c: sys.c.iter().map(|&v| v as f32).collect(),
                    d: r,
                }
            })
            .collect();
        let cbatch = SystemBatch::from_systems(&correction_systems)?;
        let delta = solve_batch(launcher, algorithm, &cbatch)?;
        total_kernel_ms += delta.timing.kernel_ms;
        for s in 0..count {
            let ds = delta.solutions.system(s).to_vec();
            for (xi, di) in x.system_mut(s).iter_mut().zip(ds) {
                *xi += di as f64;
            }
        }
        residual_history.push(worst_residual(batch, &x)?);
    }

    Ok(RefinedSolveReport {
        solutions: x,
        residual_history,
        total_kernel_ms,
        first_solve: first.timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::{Generator, Workload};

    fn batch(n: usize, count: usize) -> SystemBatch<f64> {
        Generator::new(77).batch(Workload::DiagonallyDominant, n, count).unwrap()
    }

    #[test]
    fn refinement_reaches_near_f64_accuracy() {
        let launcher = Launcher::gtx280();
        let b = batch(256, 8);
        let r = solve_batch_refined(&launcher, GpuAlgorithm::CrPcr { m: 128 }, &b, 3).unwrap();
        // Initial f32 residual ~1e-6; refined should approach f64 rounding.
        assert!(r.residual_history[0] > 1e-8, "f32 start: {:?}", r.residual_history);
        let last = *r.residual_history.last().unwrap();
        assert!(last < 1e-12, "refined residual {last}");
    }

    #[test]
    fn residuals_decrease_monotonically_until_floor() {
        let launcher = Launcher::gtx280();
        let b = batch(128, 4);
        let r = solve_batch_refined(&launcher, GpuAlgorithm::Pcr, &b, 4).unwrap();
        for w in r.residual_history.windows(2) {
            assert!(w[1] <= w[0] * 1.5 || w[1] < 1e-12, "history {:?}", r.residual_history);
        }
        // First step should contract strongly (eps_f32 * kappa << 1 here).
        assert!(r.residual_history[1] < r.residual_history[0] * 1e-2);
    }

    #[test]
    fn matches_native_f64_solve() {
        let launcher = Launcher::gtx280();
        let b = batch(128, 4);
        let refined = solve_batch_refined(&launcher, GpuAlgorithm::Cr, &b, 3).unwrap();
        let native = solve_batch(&launcher, GpuAlgorithm::Cr, &b).unwrap();
        let diff = tridiag_core::residual::max_abs_diff(&refined.solutions.x, &native.solutions.x);
        assert!(diff < 1e-9, "diff {diff}");
    }

    #[test]
    fn refinement_beats_native_f64_on_footprint() {
        // n = 512 f64 does not fit shared memory natively, but refinement
        // only ever launches f32 kernels, so it handles it.
        let launcher = Launcher::gtx280();
        let b = batch(512, 4);
        assert!(solve_batch(&launcher, GpuAlgorithm::Cr, &b).is_err());
        let r = solve_batch_refined(&launcher, GpuAlgorithm::Cr, &b, 3).unwrap();
        assert!(*r.residual_history.last().unwrap() < 1e-11);
    }

    #[test]
    fn timing_accumulates_across_passes() {
        let launcher = Launcher::gtx280();
        let b = batch(128, 4);
        let r0 = solve_batch_refined(&launcher, GpuAlgorithm::Pcr, &b, 0).unwrap();
        let r3 = solve_batch_refined(&launcher, GpuAlgorithm::Pcr, &b, 3).unwrap();
        assert!((r3.total_kernel_ms - 4.0 * r0.total_kernel_ms).abs() < 1e-9);
    }
}
