//! Robust solving: GPU speed with a pivoting safety net.
//!
//! The paper's solvers "do not include pivoting; therefore they might fail
//! for a general tridiagonal matrix", and its future work asks to
//! "incorporate a pivoting strategy to GPU-based tridiagonal solvers for
//! numerical stability". True in-kernel pivoting breaks the regular
//! communication pattern the algorithms rely on; what a production library
//! can do instead is **verify and repair**: solve the whole batch on the
//! GPU, check each system's residual, and re-solve only the failures with
//! the pivoted CPU solver (GEP). For workloads that are mostly
//! well-conditioned — the common case — this keeps GPU throughput while
//! guaranteeing GEP-quality answers everywhere.

use crate::solver::{solve_batch, GpuAlgorithm, GpuSolveReport};
use cpu_solvers::gep;
use gpu_sim::Launcher;
use tridiag_core::residual::l2_residual;
use tridiag_core::{Real, Result, SystemBatch};

/// Outcome of a robust batch solve.
#[derive(Debug, Clone)]
pub struct RobustSolveReport<T: Real> {
    /// The underlying GPU report; `solutions` has been repaired in place.
    pub gpu: GpuSolveReport<T>,
    /// Indices of systems re-solved on the CPU and why.
    pub repaired: Vec<Repair>,
    /// Residual threshold used for acceptance.
    pub threshold: f64,
}

/// Why a system needed CPU repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairReason {
    /// The GPU solution contained NaN/Inf (e.g. RD overflow or a zero
    /// pivot hit by the pivoting-free reduction).
    NonFinite,
    /// The residual exceeded the acceptance threshold.
    LargeResidual,
}

/// One repaired system.
#[derive(Debug, Clone, Copy)]
pub struct Repair {
    /// System index within the batch.
    pub system: usize,
    /// What triggered the repair.
    pub reason: RepairReason,
    /// Residual after the CPU re-solve.
    pub final_residual: f64,
}

/// Options for [`solve_batch_robust`].
#[derive(Debug, Clone, Copy)]
pub struct RobustOptions {
    /// Accept a GPU solution when `||Ax - d||_2 <= threshold_scale *
    /// ||d||_2 * eps_of_T * n` (a normwise backward-error style bound).
    pub threshold_scale: f64,
    /// Skip the O(n) residual computation entirely and accept any finite
    /// solution. Only sound when a `NumericCertificate` guarantees
    /// pivot-free stability for every system in the batch; the NaN/Inf
    /// check is always retained (it is O(n) reads with no matrix access
    /// and catches exponent-corrupting faults instantly).
    pub skip_residual_verify: bool,
}

impl Default for RobustOptions {
    fn default() -> Self {
        Self { threshold_scale: 100.0, skip_residual_verify: false }
    }
}

impl RobustOptions {
    /// Condition-informed acceptance threshold: widens `base` by one
    /// decade per decade of 1-norm condition number above 1, so that
    /// sampled verifies of certified-but-worse-conditioned matrices are
    /// not spuriously flagged as corrupt. Monotone in `kappa1`; `base` is
    /// returned unchanged for `kappa1 <= 1` or non-finite estimates.
    pub fn scaled_by_condition(base: f64, kappa1: f64) -> Self {
        let scale = if kappa1.is_finite() && kappa1 > 1.0 {
            base * (1.0 + kappa1.log10().max(0.0))
        } else {
            base
        };
        Self { threshold_scale: scale, skip_residual_verify: false }
    }
}

/// Solves on the GPU, then verifies every system and repairs failures with
/// the pivoted CPU solver.
pub fn solve_batch_robust<T: Real>(
    launcher: &Launcher,
    algorithm: GpuAlgorithm,
    batch: &SystemBatch<T>,
    options: RobustOptions,
) -> Result<RobustSolveReport<T>> {
    let mut gpu = solve_batch(launcher, algorithm, batch)?;
    let n = batch.n();
    let eps = T::EPSILON.to_f64();
    let mut repaired = Vec::new();
    let mut threshold_used = 0.0f64;

    for s in 0..batch.count() {
        let sys = batch.system(s);
        let d_norm: f64 =
            sys.d.iter().map(|&v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt().max(1e-30);
        let threshold = options.threshold_scale * d_norm * eps * n as f64;
        threshold_used = threshold; // same formula per system; keep last
        let x = gpu.solutions.system(s);
        let reason = if x.iter().any(|v| !v.is_finite()) {
            Some(RepairReason::NonFinite)
        } else if options.skip_residual_verify {
            None
        } else {
            let r = l2_residual(&sys, x)?;
            (r > threshold).then_some(RepairReason::LargeResidual)
        };
        if let Some(reason) = reason {
            let mut fixed = vec![T::ZERO; n];
            gep::solve_into(&sys.a, &sys.b, &sys.c, &sys.d, &mut fixed)?;
            let final_residual = l2_residual(&sys, &fixed)?;
            gpu.solutions.system_mut(s).copy_from_slice(&fixed);
            repaired.push(Repair { system: s, reason, final_residual });
        }
    }
    Ok(RobustSolveReport { gpu, repaired, threshold: threshold_used })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rd::RdMode;
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SystemBatch, TridiagonalSystem, Workload};

    #[test]
    fn clean_batches_need_no_repair() {
        let launcher = Launcher::gtx280();
        let batch: SystemBatch<f32> =
            Generator::new(1).batch(Workload::DiagonallyDominant, 128, 8).unwrap();
        let r = solve_batch_robust(
            &launcher,
            GpuAlgorithm::CrPcr { m: 32 },
            &batch,
            RobustOptions::default(),
        )
        .unwrap();
        assert!(r.repaired.is_empty(), "{:?}", r.repaired);
    }

    #[test]
    fn rd_overflow_is_repaired() {
        let launcher = Launcher::gtx280();
        let batch: SystemBatch<f32> =
            Generator::new(2).batch(Workload::DiagonallyDominant, 512, 8).unwrap();
        let r = solve_batch_robust(
            &launcher,
            GpuAlgorithm::Rd(RdMode::Plain),
            &batch,
            RobustOptions::default(),
        )
        .unwrap();
        assert!(!r.repaired.is_empty());
        assert!(r.repaired.iter().all(|rep| rep.reason == RepairReason::NonFinite));
        // After repair, everything is accurate.
        let res = batch_residual(&batch, &r.gpu.solutions).unwrap();
        assert!(!res.has_overflow());
        assert!(res.max_l2 < 1e-3, "{}", res.max_l2);
    }

    #[test]
    fn systems_needing_pivoting_are_repaired() {
        // Mix well-conditioned systems with one that has a zero leading
        // pivot (fatal for every pivoting-free reduction, fine for GEP).
        let launcher = Launcher::gtx280();
        let mut systems: Vec<TridiagonalSystem<f32>> = {
            let mut gen = Generator::new(3);
            (0..7).map(|_| gen.system(Workload::DiagonallyDominant, 64)).collect()
        };
        let mut bad = systems[3].clone();
        bad.b[0] = 0.0; // needs a row interchange
        systems[3] = bad;
        let batch = SystemBatch::from_systems(&systems).unwrap();

        let r = solve_batch_robust(&launcher, GpuAlgorithm::Cr, &batch, RobustOptions::default())
            .unwrap();
        assert_eq!(r.repaired.len(), 1);
        assert_eq!(r.repaired[0].system, 3);
        let res = batch_residual(&batch, &r.gpu.solutions).unwrap();
        assert!(!res.has_overflow());
        assert!(res.max_l2 < 1e-3, "{}", res.max_l2);
    }

    #[test]
    fn random_general_batches_end_up_accurate() {
        // The stress family: no stability promises on the GPU, but the
        // robust wrapper must always deliver GEP-quality answers.
        let launcher = Launcher::gtx280();
        let batch: SystemBatch<f32> =
            Generator::new(4).batch(Workload::RandomGeneral, 64, 16).unwrap();
        let r = solve_batch_robust(&launcher, GpuAlgorithm::Pcr, &batch, RobustOptions::default())
            .unwrap();
        let res = batch_residual(&batch, &r.gpu.solutions).unwrap();
        assert!(!res.has_overflow());
        assert!(res.max_l2 < 1e-2, "{}", res.max_l2);
    }

    #[test]
    fn injected_corruption_is_caught_and_repaired() {
        // An ECC-style bit flip in the downloaded solution must never
        // survive the robust wrapper: verify flags it, GEP repairs it.
        use gpu_sim::{FaultConfig, FaultPlan};
        use std::sync::Arc;
        for seed in 0..8u64 {
            let plan = Arc::new(FaultPlan::new(FaultConfig {
                seed,
                bit_flip_rate: 1.0,
                ..Default::default()
            }));
            let launcher = Launcher::gtx280().with_fault_plan(Arc::clone(&plan));
            let batch: SystemBatch<f64> =
                Generator::new(seed).batch(Workload::DiagonallyDominant, 128, 8).unwrap();
            let r = solve_batch_robust(
                &launcher,
                GpuAlgorithm::CrPcr { m: 32 },
                &batch,
                RobustOptions::default(),
            )
            .unwrap();
            assert_eq!(r.gpu.corruption_count(), 1, "seed {seed}");
            assert_eq!(plan.stats().bit_flips, 1, "seed {seed}");
            assert!(!r.repaired.is_empty(), "seed {seed}: flip not caught");
            let res = batch_residual(&batch, &r.gpu.solutions).unwrap();
            assert!(!res.has_overflow(), "seed {seed}");
            assert!(res.max_l2 <= r.threshold, "seed {seed}: {}", res.max_l2);
        }
    }

    #[test]
    fn skip_mode_still_catches_non_finite_solutions() {
        // Residual verify off: RD's overflow (NaN/Inf) must still be
        // repaired — the finiteness guard never turns off.
        let launcher = Launcher::gtx280();
        let batch: SystemBatch<f32> =
            Generator::new(2).batch(Workload::DiagonallyDominant, 512, 8).unwrap();
        let r = solve_batch_robust(
            &launcher,
            GpuAlgorithm::Rd(RdMode::Plain),
            &batch,
            RobustOptions { skip_residual_verify: true, ..Default::default() },
        )
        .unwrap();
        assert!(!r.repaired.is_empty());
        assert!(r.repaired.iter().all(|rep| rep.reason == RepairReason::NonFinite));
    }

    #[test]
    fn skip_mode_never_pays_for_residual_repairs() {
        // Even a threshold that would repair everything is ignored when
        // the residual verify is skipped on finite solutions.
        let launcher = Launcher::gtx280();
        let batch: SystemBatch<f32> =
            Generator::new(5).batch(Workload::DiagonallyDominant, 128, 8).unwrap();
        let r = solve_batch_robust(
            &launcher,
            GpuAlgorithm::Pcr,
            &batch,
            RobustOptions { threshold_scale: 0.0, skip_residual_verify: true },
        )
        .unwrap();
        assert!(r.repaired.is_empty(), "{:?}", r.repaired);
    }

    #[test]
    fn condition_scaling_is_monotone_and_bounded_below_by_base() {
        let base = 100.0;
        let s1 = RobustOptions::scaled_by_condition(base, 1.0).threshold_scale;
        let s2 = RobustOptions::scaled_by_condition(base, 1e3).threshold_scale;
        let s3 = RobustOptions::scaled_by_condition(base, 1e6).threshold_scale;
        assert_eq!(s1, base);
        assert!(s2 > s1 && s3 > s2, "{s1} {s2} {s3}");
        assert_eq!(RobustOptions::scaled_by_condition(base, f64::NAN).threshold_scale, base);
        assert!(!RobustOptions::scaled_by_condition(base, 1e9).skip_residual_verify);
    }

    #[test]
    fn tighter_threshold_repairs_more() {
        let launcher = Launcher::gtx280();
        let batch: SystemBatch<f32> =
            Generator::new(5).batch(Workload::CloseValues, 128, 16).unwrap();
        let loose = solve_batch_robust(
            &launcher,
            GpuAlgorithm::Pcr,
            &batch,
            RobustOptions { threshold_scale: 1e9, ..Default::default() },
        )
        .unwrap();
        let tight = solve_batch_robust(
            &launcher,
            GpuAlgorithm::Pcr,
            &batch,
            RobustOptions { threshold_scale: 1.0, ..Default::default() },
        )
        .unwrap();
        assert!(tight.repaired.len() >= loose.repaired.len());
    }
}
