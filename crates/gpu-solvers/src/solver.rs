//! High-level solver facade: pick an algorithm, hand it a batch, get
//! solutions plus the simulated timing/instrumentation report.

use crate::common::SystemHandles;
use crate::cr::CrKernel;
use crate::cr_variants::CrEvenOddKernel;
use crate::global_only::GlobalCrKernel;
use crate::hybrid::{HybridKernel, InnerSolver};
use crate::pcr::PcrKernel;
use crate::rd::{RdKernel, RdMode};
use gpu_sim::{GlobalMem, KernelStats, Launcher, TimingReport};
use tridiag_core::{
    require_pow2, Algorithm, Real, Result, SolutionBatch, SystemBatch, TridiagError,
};

/// Every GPU solver this crate provides: the paper's five plus the ablation
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuAlgorithm {
    /// Cyclic reduction.
    Cr,
    /// Parallel cyclic reduction.
    Pcr,
    /// Recursive doubling.
    Rd(RdMode),
    /// Hybrid CR+PCR with intermediate size `m`.
    CrPcr {
        /// Intermediate system size.
        m: usize,
    },
    /// Hybrid CR+RD with intermediate size `m`.
    CrRd {
        /// Intermediate system size.
        m: usize,
        /// Overflow handling of the inner RD.
        mode: RdMode,
    },
    /// Bank-conflict-free CR via even/odd level separation
    /// (Göddeke & Strzodka, paper footnote 1) — an ablation.
    CrEvenOdd,
    /// CR operating on global memory only (the paper's fallback for systems
    /// exceeding shared memory, "at a cost of roughly 3x performance
    /// degradation").
    CrGlobalOnly,
    /// Coarse-grained batched Thomas: one thread per system over an
    /// interleaved layout (the approach the paper sets aside as
    /// CPU-suited; latency-bound on the GPU, wins only for huge batches).
    ThomasPerThread,
}

impl GpuAlgorithm {
    /// The five solvers evaluated in the paper's figures, using the best
    /// switch points of §5.3 for `n = 512` (scaled as `n/2` and `n/4`).
    pub fn paper_five(n: usize) -> [GpuAlgorithm; 5] {
        [
            GpuAlgorithm::CrPcr { m: (n / 2).max(2) },
            GpuAlgorithm::CrRd { m: (n / 4).max(2), mode: RdMode::Plain },
            GpuAlgorithm::Pcr,
            GpuAlgorithm::Rd(RdMode::Plain),
            GpuAlgorithm::Cr,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            GpuAlgorithm::Cr => "CR",
            GpuAlgorithm::Pcr => "PCR",
            GpuAlgorithm::Rd(RdMode::Plain) => "RD",
            GpuAlgorithm::Rd(RdMode::Rescaled) => "RD (rescaled)",
            GpuAlgorithm::CrPcr { .. } => "CR+PCR",
            GpuAlgorithm::CrRd { mode: RdMode::Plain, .. } => "CR+RD",
            GpuAlgorithm::CrRd { mode: RdMode::Rescaled, .. } => "CR+RD (rescaled)",
            GpuAlgorithm::CrEvenOdd => "CR (no bank conflicts)",
            GpuAlgorithm::CrGlobalOnly => "CR (global memory only)",
            GpuAlgorithm::ThomasPerThread => "Thomas (thread per system)",
        }
    }

    /// The corresponding Table 1 row, when the paper models this variant.
    pub fn paper_algorithm(self) -> Option<Algorithm> {
        match self {
            GpuAlgorithm::Cr | GpuAlgorithm::CrEvenOdd | GpuAlgorithm::CrGlobalOnly => {
                Some(Algorithm::Cr)
            }
            GpuAlgorithm::Pcr => Some(Algorithm::Pcr),
            GpuAlgorithm::Rd(_) => Some(Algorithm::Rd),
            GpuAlgorithm::CrPcr { m } => Some(Algorithm::CrPcr { m }),
            GpuAlgorithm::CrRd { m, .. } => Some(Algorithm::CrRd { m }),
            GpuAlgorithm::ThomasPerThread => None,
        }
    }

    /// Validates the algorithm for system size `n`.
    pub fn validate(self, n: usize) -> Result<()> {
        require_pow2(n, 2)?;
        match self {
            GpuAlgorithm::CrPcr { m } | GpuAlgorithm::CrRd { m, .. } => {
                // The hybrid kernel needs at least one CR level (m <= n/2);
                // m == n degenerates to the pure inner solver and is
                // dispatched as such.
                if m < 2 || m > n || !m.is_power_of_two() {
                    return Err(TridiagError::InvalidIntermediateSize { n, m });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Per-block shared-memory bytes the in-shared-memory kernels need for
    /// one system of size `n` (the paper's five arrays), or `None` when the
    /// variant does not stage systems in shared memory.
    pub fn shared_bytes_per_system(self, n: usize, element_bytes: usize) -> Option<usize> {
        match self {
            GpuAlgorithm::CrGlobalOnly | GpuAlgorithm::ThomasPerThread => None,
            _ => Some(5 * n * element_bytes),
        }
    }

    /// Whether a system of size `n` (elements of `element_bytes`) fits this
    /// variant's shared-memory footprint on `device` — the planner's
    /// admission rule for routing oversized systems to the global-memory
    /// path instead.
    pub fn fits_shared(
        self,
        n: usize,
        element_bytes: usize,
        device: &gpu_sim::DeviceConfig,
    ) -> bool {
        match self.shared_bytes_per_system(n, element_bytes) {
            None => true,
            Some(bytes) => bytes + device.shared_mem_reserved_per_block <= device.shared_mem_per_sm,
        }
    }
}

/// Canonical machine-readable spelling, round-trippable through
/// [`FromStr`](core::str::FromStr): `cr`, `pcr`, `rd`, `rd-rescaled`,
/// `cr+pcr@256`, `cr+rd@128`, `cr+rd-rescaled@128`, `cr-evenodd`,
/// `cr-global`, `thomas-per-thread`.
impl core::fmt::Display for GpuAlgorithm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GpuAlgorithm::Cr => f.write_str("cr"),
            GpuAlgorithm::Pcr => f.write_str("pcr"),
            GpuAlgorithm::Rd(RdMode::Plain) => f.write_str("rd"),
            GpuAlgorithm::Rd(RdMode::Rescaled) => f.write_str("rd-rescaled"),
            GpuAlgorithm::CrPcr { m } => write!(f, "cr+pcr@{m}"),
            GpuAlgorithm::CrRd { m, mode: RdMode::Plain } => write!(f, "cr+rd@{m}"),
            GpuAlgorithm::CrRd { m, mode: RdMode::Rescaled } => {
                write!(f, "cr+rd-rescaled@{m}")
            }
            GpuAlgorithm::CrEvenOdd => f.write_str("cr-evenodd"),
            GpuAlgorithm::CrGlobalOnly => f.write_str("cr-global"),
            GpuAlgorithm::ThomasPerThread => f.write_str("thomas-per-thread"),
        }
    }
}

/// Error parsing a [`GpuAlgorithm`] from its canonical spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGpuAlgorithmError {
    /// The rejected input.
    pub input: String,
}

impl core::fmt::Display for ParseGpuAlgorithmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown GPU algorithm '{}' (expected cr, pcr, rd, rd-rescaled, cr+pcr@<m>, \
             cr+rd@<m>, cr+rd-rescaled@<m>, cr-evenodd, cr-global, or thomas-per-thread)",
            self.input
        )
    }
}

impl std::error::Error for ParseGpuAlgorithmError {}

impl core::str::FromStr for GpuAlgorithm {
    type Err = ParseGpuAlgorithmError;

    fn from_str(s: &str) -> core::result::Result<Self, Self::Err> {
        let err = || ParseGpuAlgorithmError { input: s.to_string() };
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "cr" => return Ok(GpuAlgorithm::Cr),
            "pcr" => return Ok(GpuAlgorithm::Pcr),
            "rd" => return Ok(GpuAlgorithm::Rd(RdMode::Plain)),
            "rd-rescaled" => return Ok(GpuAlgorithm::Rd(RdMode::Rescaled)),
            "cr-evenodd" => return Ok(GpuAlgorithm::CrEvenOdd),
            "cr-global" => return Ok(GpuAlgorithm::CrGlobalOnly),
            "thomas-per-thread" => return Ok(GpuAlgorithm::ThomasPerThread),
            _ => {}
        }
        let (head, m) = lower.split_once('@').ok_or_else(err)?;
        let m: usize = m.parse().map_err(|_| err())?;
        match head {
            "cr+pcr" => Ok(GpuAlgorithm::CrPcr { m }),
            "cr+rd" => Ok(GpuAlgorithm::CrRd { m, mode: RdMode::Plain }),
            "cr+rd-rescaled" => Ok(GpuAlgorithm::CrRd { m, mode: RdMode::Rescaled }),
            _ => Err(err()),
        }
    }
}

/// Result of a GPU batch solve.
#[derive(Debug, Clone)]
pub struct GpuSolveReport<T: Real> {
    /// Which solver ran.
    pub algorithm: GpuAlgorithm,
    /// Solutions, one per system (may contain non-finite values if the
    /// algorithm overflowed — see `SolutionBatch::first_non_finite`).
    pub solutions: SolutionBatch<T>,
    /// Per-block instrumentation of the representative block.
    pub stats: KernelStats,
    /// Simulated timing; `transfer_ms` is pre-filled with the PCIe cost of
    /// the batch's five arrays so callers can report either the
    /// "without transfer" (`kernel_ms`) or "with transfer" (`total_ms()`)
    /// variant of Figures 6 and 7.
    pub timing: TimingReport,
    /// Sanitizer findings across all blocks (empty unless the launcher's
    /// sanitize mode is on — see [`gpu_sim::SanitizeOptions`]).
    pub diagnostics: Vec<gpu_sim::Diagnostic>,
    /// Faults the launcher's fault plan injected into this solve
    /// (corruptions of the downloaded solutions, stalls). Always empty when
    /// no [`gpu_sim::FaultPlan`] is installed.
    pub injected_faults: Vec<gpu_sim::InjectedFault>,
}

impl<T: Real> GpuSolveReport<T> {
    /// Number of `Error`-severity sanitizer diagnostics.
    pub fn sanitizer_error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == gpu_sim::Severity::Error).count()
    }

    /// Number of `Warning`-severity sanitizer diagnostics.
    pub fn sanitizer_warning_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == gpu_sim::Severity::Warning).count()
    }

    /// Number of injected output corruptions (bit flips + NaN poisonings) —
    /// nonzero only under an active fault plan.
    pub fn corruption_count(&self) -> usize {
        self.injected_faults
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    gpu_sim::InjectedFault::BitFlip { .. }
                        | gpu_sim::InjectedFault::NanPoison { .. }
                )
            })
            .count()
    }
}

/// Solves every system of `batch` with `algorithm` on the simulated GPU.
///
/// # Errors
/// Configuration errors (bad sizes, shared-memory overflow for the chosen
/// variant). Numerical overflow is *not* an error — it is visible in the
/// returned solutions, as on real hardware.
pub fn solve_batch<T: Real>(
    launcher: &Launcher,
    algorithm: GpuAlgorithm,
    batch: &SystemBatch<T>,
) -> Result<GpuSolveReport<T>> {
    let n = batch.n();
    algorithm.validate(n)?;
    if algorithm == GpuAlgorithm::ThomasPerThread {
        return crate::coarse::solve_batch_coarse(launcher, batch);
    }
    let mut gmem = GlobalMem::new();
    let gm = SystemHandles::upload(&mut gmem, batch);
    let count = batch.count();

    let report = match algorithm {
        GpuAlgorithm::Cr => launcher.launch(&CrKernel { n, gm }, count, &mut gmem)?,
        GpuAlgorithm::Pcr => launcher.launch(&PcrKernel { n, gm }, count, &mut gmem)?,
        GpuAlgorithm::Rd(mode) => launcher.launch(&RdKernel { n, gm, mode }, count, &mut gmem)?,
        GpuAlgorithm::CrPcr { m } => {
            if m >= n {
                launcher.launch(&PcrKernel { n, gm }, count, &mut gmem)?
            } else if m <= 2 && n == 2 {
                launcher.launch(&CrKernel { n, gm }, count, &mut gmem)?
            } else {
                let kernel = HybridKernel { n, m, inner: InnerSolver::Pcr, gm };
                launcher.launch(&kernel, count, &mut gmem)?
            }
        }
        GpuAlgorithm::CrRd { m, mode } => {
            if m >= n {
                launcher.launch(&RdKernel { n, gm, mode }, count, &mut gmem)?
            } else {
                let kernel = HybridKernel { n, m, inner: InnerSolver::Rd(mode), gm };
                launcher.launch(&kernel, count, &mut gmem)?
            }
        }
        GpuAlgorithm::CrEvenOdd => launcher.launch(&CrEvenOddKernel { n, gm }, count, &mut gmem)?,
        GpuAlgorithm::CrGlobalOnly => {
            launcher.launch(&GlobalCrKernel::new(n, gm), count, &mut gmem)?
        }
        GpuAlgorithm::ThomasPerThread => unreachable!("dispatched above"),
    };

    let solutions = gm.download_solutions(&mut gmem, batch);
    let timing = report.timing.with_transfer(&launcher.cost, batch.transfer_bytes() as u64);
    Ok(GpuSolveReport {
        algorithm,
        solutions,
        stats: report.stats,
        timing,
        diagnostics: report.diagnostics,
        injected_faults: report.injected_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, Workload};

    fn batch(n: usize, count: usize) -> SystemBatch<f32> {
        Generator::new(42).batch(Workload::DiagonallyDominant, n, count).unwrap()
    }

    #[test]
    fn all_stable_algorithms_agree() {
        let launcher = Launcher::gtx280();
        let b = batch(128, 4);
        // CR+RD is excluded: it overflows on diagonally dominant input in
        // f32 (Figure 18's finding) — covered by its own tests.
        let algs = [
            GpuAlgorithm::Cr,
            GpuAlgorithm::Pcr,
            GpuAlgorithm::CrPcr { m: 32 },
            GpuAlgorithm::CrEvenOdd,
            GpuAlgorithm::CrGlobalOnly,
        ];
        for alg in algs {
            let r = solve_batch(&launcher, alg, &b).unwrap();
            let res = batch_residual(&b, &r.solutions).unwrap();
            assert!(!res.has_overflow(), "{}", alg.name());
            assert!(res.max_l2 < 2e-4, "{}: {}", alg.name(), res.max_l2);
        }
    }

    #[test]
    fn cr_rd_works_on_close_values() {
        let launcher = Launcher::gtx280();
        let b: SystemBatch<f32> = Generator::new(3).batch(Workload::CloseValues, 128, 4).unwrap();
        let r =
            solve_batch(&launcher, GpuAlgorithm::CrRd { m: 32, mode: RdMode::Plain }, &b).unwrap();
        let res = batch_residual(&b, &r.solutions).unwrap();
        assert!(!res.has_overflow());
        assert!(res.max_l2 < 1.0, "{}", res.max_l2);
    }

    #[test]
    fn hybrid_m_equals_n_degenerates_to_inner() {
        let launcher = Launcher::gtx280();
        let b = batch(64, 2);
        let hybrid = solve_batch(&launcher, GpuAlgorithm::CrPcr { m: 64 }, &b).unwrap();
        let pure = solve_batch(&launcher, GpuAlgorithm::Pcr, &b).unwrap();
        assert_eq!(hybrid.solutions.x, pure.solutions.x);
        assert_eq!(hybrid.stats.num_steps(), pure.stats.num_steps());
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        let launcher = Launcher::gtx280();
        let b: SystemBatch<f32> = Generator::new(1).batch(Workload::Poisson, 48, 2).unwrap();
        assert!(matches!(
            solve_batch(&launcher, GpuAlgorithm::Cr, &b),
            Err(TridiagError::NotPowerOfTwo { n: 48 })
        ));
        let b = batch(64, 1);
        assert!(solve_batch(&launcher, GpuAlgorithm::CrPcr { m: 3 }, &b).is_err());
        assert!(solve_batch(&launcher, GpuAlgorithm::CrPcr { m: 128 }, &b).is_err());
    }

    #[test]
    fn transfer_time_is_populated() {
        let launcher = Launcher::gtx280();
        let b = batch(64, 8);
        let r = solve_batch(&launcher, GpuAlgorithm::Pcr, &b).unwrap();
        assert!(r.timing.transfer_ms > 0.0);
        assert!(r.timing.total_ms() > r.timing.kernel_ms);
    }

    #[test]
    fn paper_five_names() {
        let names: Vec<_> = GpuAlgorithm::paper_five(512).iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["CR+PCR", "CR+RD", "PCR", "RD", "CR"]);
    }

    #[test]
    fn display_from_str_round_trips() {
        let algs = [
            GpuAlgorithm::Cr,
            GpuAlgorithm::Pcr,
            GpuAlgorithm::Rd(RdMode::Plain),
            GpuAlgorithm::Rd(RdMode::Rescaled),
            GpuAlgorithm::CrPcr { m: 256 },
            GpuAlgorithm::CrRd { m: 128, mode: RdMode::Plain },
            GpuAlgorithm::CrRd { m: 64, mode: RdMode::Rescaled },
            GpuAlgorithm::CrEvenOdd,
            GpuAlgorithm::CrGlobalOnly,
            GpuAlgorithm::ThomasPerThread,
        ];
        for alg in algs {
            let text = alg.to_string();
            let parsed: GpuAlgorithm = text.parse().unwrap();
            assert_eq!(parsed, alg, "{text}");
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trimmed() {
        assert_eq!(" CR ".parse::<GpuAlgorithm>().unwrap(), GpuAlgorithm::Cr);
        assert_eq!(
            "Cr+Rd@64".parse::<GpuAlgorithm>().unwrap(),
            GpuAlgorithm::CrRd { m: 64, mode: RdMode::Plain }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "thomas", "cr+", "cr+pcr", "cr+pcr@", "cr+pcr@x", "pcr@8", "rd@4"] {
            let e = bad.parse::<GpuAlgorithm>().unwrap_err();
            assert_eq!(e.input, bad, "{bad}");
        }
    }

    #[test]
    fn fits_shared_matches_gtx280_limits() {
        let device = Launcher::gtx280().device;
        // f32, n = 512: 5*512*4 = 10240 B + reserve fits in 16 KiB.
        assert!(GpuAlgorithm::Cr.fits_shared(512, 4, &device));
        // f32, n = 1024: 5*1024*4 = 20480 B does not fit.
        assert!(!GpuAlgorithm::Pcr.fits_shared(1024, 4, &device));
        // The global-memory and coarse paths never stage in shared memory.
        assert!(GpuAlgorithm::CrGlobalOnly.fits_shared(1 << 20, 4, &device));
        assert!(GpuAlgorithm::ThomasPerThread.fits_shared(1 << 20, 4, &device));
    }

    #[test]
    fn f64_solves_work_end_to_end() {
        let launcher = Launcher::gtx280();
        let b: SystemBatch<f64> =
            Generator::new(5).batch(Workload::DiagonallyDominant, 64, 2).unwrap();
        // f64 doubles the shared footprint: 5*64*2 words is still fine.
        for alg in [GpuAlgorithm::Cr, GpuAlgorithm::Pcr, GpuAlgorithm::CrPcr { m: 16 }] {
            let r = solve_batch(&launcher, alg, &b).unwrap();
            let res = batch_residual(&b, &r.solutions).unwrap();
            assert!(res.max_l2 < 1e-12, "{}: {}", alg.name(), res.max_l2);
        }
    }
}
