//! Instantiation glue and size-family declarations for the static kernel
//! verifier (`kernel-verify`).
//!
//! The verifier proves properties of a *launch family*: one solver
//! algorithm over the declared set of system sizes it may be admitted at.
//! This module owns the two repo-specific ingredients the verifier needs:
//!
//! * [`solver_instance`] / [`block_instance`] / [`fixture_instance`] build
//!   a concrete, type-erased launch (`GlobalMem` + `Box<dyn GridKernel>` +
//!   grid dimension) exactly the way [`crate::solve_batch`] would dispatch
//!   it, so what gets verified is what production runs;
//! * [`verify_family`] declares, per algorithm, the size family a proof is
//!   expected to cover — every power of two the device can admit for the
//!   in-shared-memory kernels, a documented cap of `2^16` for the
//!   global-memory CR path (capture budget, see DESIGN.md §11), and the
//!   per-thread Thomas family that is *documented* `Unproven` (its
//!   interleaved index `i·count + s` is bilinear in `(thread, count)`,
//!   outside the affine domain the verifier reasons in).
//!
//! Periodic solves need no family of their own: `solve_periodic_batch`
//! reuses `solve_batch` on a Sherman–Morrison doubled batch, so the proofs
//! of the underlying algorithms cover them.

use crate::block_cr::BlockCrKernel;
use crate::coarse::ThomasPerThreadKernel;
use crate::common::SystemHandles;
use crate::cr::CrKernel;
use crate::cr_variants::CrEvenOddKernel;
use crate::fixtures::{MissingBarrierCrKernel, OobPcrKernel, RacyCrStepKernel, UninitRdKernel};
use crate::global_only::GlobalCrKernel;
use crate::hybrid::{HybridKernel, InnerSolver};
use crate::pcr::PcrKernel;
use crate::rd::RdKernel;
use crate::solver::GpuAlgorithm;
use gpu_sim::{DeviceConfig, GlobalMem, GridKernel};
use tridiag_core::block::BlockTridiagonalSystem;
use tridiag_core::{Generator, Real, Result, SystemBatch, Workload};

/// A concrete launch the verifier can shadow-capture: uploaded inputs, the
/// type-erased kernel, and the grid dimension the production dispatch
/// would launch it with.
pub struct VerifyInstance<T: Real> {
    /// Device memory with the launch inputs uploaded.
    pub gmem: GlobalMem<T>,
    /// The kernel under verification.
    pub kernel: Box<dyn GridKernel<T>>,
    /// Number of blocks of the launch.
    pub grid_dim: usize,
}

/// Builds a capture instance for a production solver at size `n` with
/// `count` systems, mirroring [`crate::solve_batch`]'s kernel dispatch
/// (including the hybrid degeneration rules). Data is a seeded
/// diagonally-dominant batch — the verifier runs two seeds and rejects
/// any kernel whose access *skeleton* depends on the values.
pub fn solver_instance<T: Real>(
    alg: GpuAlgorithm,
    n: usize,
    count: usize,
    seed: u64,
) -> Result<VerifyInstance<T>> {
    alg.validate(n)?;
    let batch: SystemBatch<T> =
        Generator::new(seed).batch(Workload::DiagonallyDominant, n, count)?;
    if alg == GpuAlgorithm::ThomasPerThread {
        return Ok(thomas_instance(&batch));
    }
    let mut gmem = GlobalMem::new();
    let gm = SystemHandles::upload(&mut gmem, &batch);
    let kernel: Box<dyn GridKernel<T>> = match alg {
        GpuAlgorithm::Cr => Box::new(CrKernel { n, gm }),
        GpuAlgorithm::Pcr => Box::new(PcrKernel { n, gm }),
        GpuAlgorithm::Rd(mode) => Box::new(RdKernel { n, gm, mode }),
        GpuAlgorithm::CrPcr { m } => {
            if m >= n {
                Box::new(PcrKernel { n, gm })
            } else if m <= 2 && n == 2 {
                Box::new(CrKernel { n, gm })
            } else {
                Box::new(HybridKernel { n, m, inner: InnerSolver::Pcr, gm })
            }
        }
        GpuAlgorithm::CrRd { m, mode } => {
            if m >= n {
                Box::new(RdKernel { n, gm, mode })
            } else {
                Box::new(HybridKernel { n, m, inner: InnerSolver::Rd(mode), gm })
            }
        }
        GpuAlgorithm::CrEvenOdd => Box::new(CrEvenOddKernel { n, gm }),
        GpuAlgorithm::CrGlobalOnly => Box::new(GlobalCrKernel::new(n, gm)),
        GpuAlgorithm::ThomasPerThread => unreachable!("dispatched above"),
    };
    Ok(VerifyInstance { gmem, kernel, grid_dim: count })
}

/// The per-thread Thomas launch, with its interleaved layout and
/// `ceil(count / 64)` grid — kept so the verifier can *observe* (and
/// report) why the kernel degrades to `Unproven` rather than hard-coding
/// the answer.
fn thomas_instance<T: Real>(batch: &SystemBatch<T>) -> VerifyInstance<T> {
    let n = batch.n();
    let count = batch.count();
    let interleave = |data: &[T]| -> Vec<T> {
        let mut out = vec![T::ZERO; n * count];
        for s in 0..count {
            for i in 0..n {
                out[i * count + s] = data[s * n + i];
            }
        }
        out
    };
    let mut gmem = GlobalMem::new();
    let kernel = ThomasPerThreadKernel {
        n,
        count,
        a: gmem.upload(interleave(&batch.a)),
        b: gmem.upload(interleave(&batch.b)),
        c: gmem.upload(interleave(&batch.c)),
        d: gmem.upload(interleave(&batch.d)),
        cp: gmem.alloc_zeroed(n * count),
        dp: gmem.alloc_zeroed(n * count),
        x: gmem.alloc_zeroed(n * count),
    };
    let grid_dim = count.div_ceil(kernel.block_dim());
    VerifyInstance { gmem, kernel: Box::new(kernel), grid_dim }
}

/// Builds a capture instance for the block-tridiagonal CR kernel
/// ([`BlockCrKernel`]) at block-row count `n` with `count` systems,
/// flattening component-major exactly like [`crate::solve_block_batch`].
pub fn block_instance<T: Real>(n: usize, count: usize, seed: u64) -> Result<VerifyInstance<T>> {
    let systems: Vec<BlockTridiagonalSystem<T>> =
        (0..count as u64).map(|s| BlockTridiagonalSystem::random_dominant(seed ^ s, n)).collect();
    let mut gmem = GlobalMem::new();
    let gm = crate::block_cr::upload_block_systems(&mut gmem, &systems)?;
    Ok(VerifyInstance { gmem, kernel: Box::new(BlockCrKernel { n, gm }), grid_dim: count })
}

/// The deliberately-buggy fixture kernels, by stable name.
pub const FIXTURE_NAMES: [&str; 4] = ["missing-barrier-cr", "racy-cr-step", "oob-pcr", "uninit-rd"];

/// Builds a capture instance for one [`crate::fixtures`] kernel. The
/// fixtures touch no global arrays, so `count` only sets the grid size.
pub fn fixture_instance<T: Real>(name: &str, n: usize, count: usize) -> Option<VerifyInstance<T>> {
    let kernel: Box<dyn GridKernel<T>> = match name {
        "missing-barrier-cr" => Box::new(MissingBarrierCrKernel { n }),
        "racy-cr-step" => Box::new(RacyCrStepKernel { n }),
        "oob-pcr" => Box::new(OobPcrKernel { n }),
        "uninit-rd" => Box::new(UninitRdKernel { n }),
        _ => return None,
    };
    Some(VerifyInstance { gmem: GlobalMem::new(), kernel, grid_dim: count })
}

/// The declared size family for `alg` with elements of `element_bytes`,
/// on `device`: every power-of-two `n >= 4` the device can admit (block
/// dimension and shared footprint both in range), capped at `2^16` for
/// the global-memory path. [`GpuAlgorithm::ThomasPerThread`] returns its
/// probe sizes — the verifier inspects it and reports `Unproven`.
pub fn verify_family(alg: GpuAlgorithm, element_bytes: usize, device: &DeviceConfig) -> Vec<usize> {
    /// Hard cap for the global-memory family: a capture at `2^16` is
    /// already ~1M events; beyond it the proof budget, not the device,
    /// is the binding constraint. Documented in DESIGN.md §11.
    const GLOBAL_FAMILY_CAP: usize = 1 << 16;
    let mut family = Vec::new();
    let mut n = 4usize;
    loop {
        if alg.validate(n).is_err() {
            n *= 2;
            if n > GLOBAL_FAMILY_CAP {
                break;
            }
            continue;
        }
        let admitted = match alg {
            GpuAlgorithm::CrGlobalOnly => n <= GLOBAL_FAMILY_CAP,
            GpuAlgorithm::ThomasPerThread => n <= 256,
            _ => {
                let block_dim = match alg {
                    GpuAlgorithm::Pcr | GpuAlgorithm::Rd(_) => n,
                    _ => n / 2,
                };
                alg.fits_shared(n, element_bytes, device)
                    && block_dim >= 1
                    && block_dim <= device.max_threads_per_block
            }
        };
        if !admitted {
            break;
        }
        family.push(n);
        n *= 2;
        if n > GLOBAL_FAMILY_CAP {
            break;
        }
    }
    family
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Launcher;

    #[test]
    fn families_match_device_admission() {
        let device = DeviceConfig::gtx280();
        // f32 shared kernels top out at 512 on 16 KB (5 * 512 * 4 = 10 KB,
        // 5 * 1024 * 4 = 20 KB which exceeds the SM).
        let f = verify_family(GpuAlgorithm::Cr, 4, &device);
        assert_eq!(f.first(), Some(&4));
        assert_eq!(f.last(), Some(&512));
        // f64 halves the top size.
        let f = verify_family(GpuAlgorithm::Cr, 8, &device);
        assert_eq!(f.last(), Some(&256));
        // PCR needs n threads, same shared footprint.
        let f = verify_family(GpuAlgorithm::Pcr, 4, &device);
        assert_eq!(f.last(), Some(&512));
        // The global path is capped by capture budget, not the device.
        let f = verify_family(GpuAlgorithm::CrGlobalOnly, 4, &device);
        assert_eq!(f.last(), Some(&(1 << 16)));
        // Hybrids exclude sizes below their switch point.
        let f = verify_family(GpuAlgorithm::CrPcr { m: 32 }, 4, &device);
        assert!(f.iter().all(|&n| n >= 32));
    }

    #[test]
    fn instances_mirror_production_dispatch() {
        for alg in [
            GpuAlgorithm::Cr,
            GpuAlgorithm::Pcr,
            GpuAlgorithm::CrPcr { m: 16 },
            GpuAlgorithm::CrGlobalOnly,
            GpuAlgorithm::ThomasPerThread,
        ] {
            let inst = solver_instance::<f32>(alg, 64, 5, 7).unwrap();
            assert!(inst.grid_dim >= 1, "{alg:?}");
            assert!(inst.kernel.block_dim() >= 1, "{alg:?}");
        }
        // Verify instances actually run (the launcher accepts them).
        let inst = solver_instance::<f32>(GpuAlgorithm::Cr, 64, 3, 7).unwrap();
        let mut gmem = inst.gmem;
        Launcher::gtx280().launch(&&*inst.kernel, inst.grid_dim, &mut gmem).unwrap();
    }

    #[test]
    fn fixture_instances_cover_all_names() {
        for name in FIXTURE_NAMES {
            assert!(fixture_instance::<f32>(name, 16, 2).is_some(), "{name}");
        }
        assert!(fixture_instance::<f32>("nope", 16, 2).is_none());
    }

    #[test]
    fn block_instance_builds() {
        let inst = block_instance::<f32>(32, 3, 11).unwrap();
        assert_eq!(inst.grid_dim, 3);
    }
}
