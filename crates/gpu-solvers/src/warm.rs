//! Warm-path batched solve: **back-substitution only**, consuming a
//! precomputed Thomas factorization.
//!
//! The cold per-thread kernel ([`crate::coarse`]) eliminates and
//! substitutes; this kernel skips elimination entirely. The factor arrays
//! (`wk1` reciprocal pivots, `wk2` swept super-diagonal, `sub`
//! sub-diagonal — see [`cpu_solvers::ThomasFactors`]) describe one matrix
//! shared by *every* system in the batch, so they are uploaded once as
//! plain length-`n` arrays and read as warp broadcasts; only the
//! right-hand sides are per-system (interleaved, coalesced).
//!
//! Per row that leaves one `d'` multiply-add-multiply and one
//! back-substitution multiply-subtract — the `5n` warm flops versus the
//! cold `8n`, with no divisions — and the PCIe bill drops from five
//! arrays to two (`d` up, `x` down).

use gpu_sim::{
    BlockCtx, Diagnostic, GlobalArray, GlobalMem, GridKernel, InjectedFault, KernelStats, Launcher,
    Phase, TimingReport,
};
use tridiag_core::{Real, Result, SolutionBatch, TridiagError};

/// Threads per block (matches the coarse kernel: many small blocks keep
/// the latency-bound chains overlapped).
const BLOCK_DIM: usize = 64;

/// One-thread-per-system warm Thomas kernel: shared factor arrays,
/// interleaved right-hand sides.
#[derive(Debug, Clone, Copy)]
pub struct ThomasWarmKernel<T> {
    /// System size.
    pub n: usize,
    /// Number of right-hand sides.
    pub count: usize,
    /// Sub-diagonal of the factored matrix (length `n`, shared).
    pub sub: GlobalArray<T>,
    /// Reciprocal pivots (length `n`, shared).
    pub wk1: GlobalArray<T>,
    /// Swept super-diagonal (length `n`, shared).
    pub wk2: GlobalArray<T>,
    /// Right-hand sides (interleaved: element `i` of system `s` at
    /// `i * count + s`).
    pub d: GlobalArray<T>,
    /// Solutions (interleaved).
    pub x: GlobalArray<T>,
}

impl<T: Real> GridKernel<T> for ThomasWarmKernel<T> {
    fn block_dim(&self) -> usize {
        BLOCK_DIM.min(self.count)
    }

    fn shared_words(&self) -> usize {
        0
    }

    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx<'_, T>) {
        let count = self.count;
        let n = self.n;
        let dim = self.block_dim();
        let systems_here = dim.min(count - block_id * dim);
        let k = *self;
        // One superstep, no barriers: each thread owns one RHS column.
        ctx.step(Phase::Other("thomas warm back-substitution"), 0..systems_here, |t| {
            let s = block_id * dim + t.tid();
            let at = |i: usize| i * count + s;
            // Forward d' sweep straight into x. The factor loads hit the
            // same address across the warp (broadcast); the recurrence on
            // the register dp is the dependent chain.
            let d0 = t.load_global_dependent(k.d, at(0));
            let w0 = t.load_global(k.wk1, 0);
            let mut dp = t.mul(d0, w0);
            t.store_global(k.x, at(0), dp);
            for i in 1..n {
                let di = t.load_global_dependent(k.d, at(i));
                let si = t.load_global(k.sub, i);
                let wi = t.load_global(k.wk1, i);
                let p = t.mul(si, dp);
                let num = t.sub(di, p);
                dp = t.mul(num, wi);
                t.store_global(k.x, at(i), dp);
            }
            // Backward substitution — the second dependent chain.
            let mut x_next = dp;
            for i in (0..n - 1).rev() {
                let w2 = t.load_global_dependent(k.wk2, i);
                let xi = t.load_global(k.x, at(i));
                let p = t.mul(w2, x_next);
                x_next = t.sub(xi, p);
                t.store_global(k.x, at(i), x_next);
            }
        });
    }
}

/// Result of a warm batched solve. Unlike [`crate::solver::GpuSolveReport`]
/// this carries no `GpuAlgorithm`: the warm kernel is not an autotune
/// candidate — it is only reachable through a cached factorization.
#[derive(Debug, Clone)]
pub struct WarmGpuReport<T: Real> {
    /// Solutions, one per right-hand side.
    pub solutions: SolutionBatch<T>,
    /// Per-block instrumentation of the representative block.
    pub stats: KernelStats,
    /// Simulated timing; `transfer_ms` prices only `d` up and `x` down —
    /// the factors live on-device for the lifetime of the cache entry.
    pub timing: TimingReport,
    /// Sanitizer findings (empty unless the launcher's sanitize mode is on).
    pub diagnostics: Vec<Diagnostic>,
    /// Faults injected by the launcher's fault plan, if any.
    pub injected_faults: Vec<InjectedFault>,
}

/// Solves `count` right-hand sides against one factored matrix on the
/// simulated GPU. `rhs` holds the systems' `d` vectors, each of length
/// `factors.n()`.
///
/// # Errors
/// Size-mismatch configuration errors; launch faults surface as
/// [`TridiagError`] from the launcher exactly as on the cold paths.
pub fn solve_batch_warm<T: Real>(
    launcher: &Launcher,
    factors: &cpu_solvers::ThomasFactors<T>,
    rhs: &[&[T]],
) -> Result<WarmGpuReport<T>> {
    let n = factors.n();
    let count = rhs.len();
    if count == 0 {
        return Err(TridiagError::SizeTooSmall { n: 0, min: 1 });
    }
    for d in rhs {
        if d.len() != n {
            return Err(TridiagError::DimensionMismatch { what: "rhs", expected: n, got: d.len() });
        }
    }

    // Interleave the right-hand sides (element i of system s at i*count+s).
    let mut d = vec![T::ZERO; n * count];
    for (s, sys) in rhs.iter().enumerate() {
        for i in 0..n {
            d[i * count + s] = sys[i];
        }
    }

    let mut gmem = GlobalMem::new();
    let kernel = ThomasWarmKernel {
        n,
        count,
        sub: gmem.upload(factors.sub.clone()),
        wk1: gmem.upload(factors.wk1.clone()),
        wk2: gmem.upload(factors.wk2.clone()),
        d: gmem.upload(d),
        x: gmem.alloc_zeroed(n * count),
    };
    let blocks = count.div_ceil(kernel.block_dim());
    let report = launcher.launch(&kernel, blocks, &mut gmem)?;

    // De-interleave the solutions.
    let xi = gmem.download(kernel.x);
    let mut x = vec![T::ZERO; n * count];
    for s in 0..count {
        for i in 0..n {
            x[s * n + i] = xi[i * count + s];
        }
    }
    let solutions = SolutionBatch::from_flat(n, count, x)?;
    // Warm transfers: d up + x down only.
    let transfer_bytes = (2 * n * count * T::BYTES) as u64;
    let timing = report.timing.with_transfer(&launcher.cost, transfer_bytes);
    Ok(WarmGpuReport {
        solutions,
        stats: report.stats,
        timing,
        diagnostics: report.diagnostics,
        injected_faults: report.injected_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_solvers::ThomasFactors;
    use tridiag_core::residual::batch_residual;
    use tridiag_core::{Generator, SystemBatch, TridiagonalSystem, Workload};

    fn shared_matrix_batch(seed: u64, n: usize, count: usize) -> SystemBatch<f32> {
        let mut g = Generator::new(seed);
        let base: TridiagonalSystem<f32> = g.system(Workload::DiagonallyDominant, n);
        let systems: Vec<TridiagonalSystem<f32>> = (0..count)
            .map(|_| {
                let fresh: TridiagonalSystem<f32> = g.system(Workload::DiagonallyDominant, n);
                TridiagonalSystem::new(base.a.clone(), base.b.clone(), base.c.clone(), fresh.d)
                    .unwrap()
            })
            .collect();
        SystemBatch::from_systems(&systems).unwrap()
    }

    #[test]
    fn warm_gpu_matches_residual_tolerance() {
        let launcher = Launcher::gtx280();
        let batch = shared_matrix_batch(11, 128, 37);
        let factors =
            ThomasFactors::factor(&batch.a[..128], &batch.b[..128], &batch.c[..128]).unwrap();
        let rhs: Vec<&[f32]> = (0..batch.count()).map(|s| &batch.d[batch.range(s)]).collect();
        let r = solve_batch_warm(&launcher, &factors, &rhs).unwrap();
        let res = batch_residual(&batch, &r.solutions).unwrap();
        assert!(!res.has_overflow());
        assert!(res.max_l2 < 1e-3, "{}", res.max_l2);
    }

    #[test]
    fn warm_gpu_matches_cpu_warm_exactly_in_f64() {
        let launcher = Launcher::gtx280();
        let mut g = Generator::new(5);
        let base: TridiagonalSystem<f64> = g.system(Workload::DiagonallyDominant, 64);
        let factors = ThomasFactors::factor(&base.a, &base.b, &base.c).unwrap();
        let rhs: Vec<Vec<f64>> =
            (0..10).map(|k| (0..64).map(|i| ((i + k) % 9) as f64 - 4.0).collect()).collect();
        let refs: Vec<&[f64]> = rhs.iter().map(Vec::as_slice).collect();
        let r = solve_batch_warm(&launcher, &factors, &refs).unwrap();
        for (s, d) in rhs.iter().enumerate() {
            assert_eq!(r.solutions.system(s), factors.solve(d), "same arithmetic order");
        }
    }

    #[test]
    fn warm_is_clean_under_sanitizer_enforce() {
        let launcher = Launcher::gtx280().with_sanitize(gpu_sim::SanitizeOptions::enforce());
        let batch = shared_matrix_batch(3, 64, 16);
        let factors =
            ThomasFactors::factor(&batch.a[..64], &batch.b[..64], &batch.c[..64]).unwrap();
        let rhs: Vec<&[f32]> = (0..batch.count()).map(|s| &batch.d[batch.range(s)]).collect();
        let r = solve_batch_warm(&launcher, &factors, &rhs).unwrap();
        assert!(
            r.diagnostics.iter().all(|d| d.severity != gpu_sim::Severity::Error),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn warm_transfer_prices_two_arrays() {
        let launcher = Launcher::gtx280();
        let batch = shared_matrix_batch(7, 64, 8);
        let factors =
            ThomasFactors::factor(&batch.a[..64], &batch.b[..64], &batch.c[..64]).unwrap();
        let rhs: Vec<&[f32]> = (0..batch.count()).map(|s| &batch.d[batch.range(s)]).collect();
        let warm = solve_batch_warm(&launcher, &factors, &rhs).unwrap();
        let cold = crate::solver::solve_batch(
            &launcher,
            crate::solver::GpuAlgorithm::ThomasPerThread,
            &batch,
        )
        .unwrap();
        assert!(warm.timing.transfer_ms < cold.timing.transfer_ms);
        // Fewer loads, no divisions: the warm kernel is never slower.
        assert!(warm.timing.kernel_ms <= cold.timing.kernel_ms);
    }

    #[test]
    fn rhs_size_mismatch_is_rejected() {
        let launcher = Launcher::gtx280();
        let batch = shared_matrix_batch(7, 64, 2);
        let factors =
            ThomasFactors::factor(&batch.a[..64], &batch.b[..64], &batch.c[..64]).unwrap();
        let short = vec![0.0f32; 32];
        assert!(solve_batch_warm(&launcher, &factors, &[&short]).is_err());
        let empty: [&[f32]; 0] = [];
        assert!(solve_batch_warm(&launcher, &factors, &empty).is_err());
    }
}
