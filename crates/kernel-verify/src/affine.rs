//! Affine classification of access sites and analytic bank-conflict
//! degrees.
//!
//! A *site group* is one source location accessing one array in one step.
//! Its samples are `(tid, ordinal, index)` triples — `ordinal` numbers the
//! thread's successive accesses through the site (loop iterations). The
//! fitter classifies the group as:
//!
//! * **affine** — `index = α·tid + β·ordinal + γ` for every sample, up to
//!   a bounded number of *exceptions* (the branchless boundary clamps of
//!   the CR/PCR kernels, e.g. `(i + half).min(n - 1)`, perturb a handful
//!   of edge lanes);
//! * **piecewise affine** — a bounded number of contiguous thread ranges,
//!   each exactly affine (PCR's window clamps make whole index ranges
//!   constant at late levels: left clamp, interior, right clamp);
//! * **non-affine** — anything else. The engine degrades the verdict to
//!   `Unproven`: a data-dependent index can never yield a proof.

use std::collections::HashMap;

/// The fitted model of one site group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteModel {
    /// Thread coefficient (elements per thread index).
    pub alpha: i64,
    /// Ordinal (loop-trip) coefficient.
    pub beta: i64,
    /// Constant term.
    pub gamma: i64,
    /// Samples not matching the model (boundary clamps); 0 for piecewise.
    pub exceptions: usize,
    /// Contiguous affine pieces (1 = a single global fit).
    pub pieces: usize,
}

/// The most frequent value of an iterator, or `None` when empty.
fn mode<I: IntoIterator<Item = i64>>(values: I) -> Option<i64> {
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts.into_iter().max_by_key(|&(v, c)| (c, -v)).map(|(v, _)| v)
}

/// Fits one site group. `samples` must be sorted by `(tid, ordinal)` with
/// ordinals dense per thread (0, 1, ...). Returns `None` when the group is
/// not (piecewise-)affine within the given bounds.
///
/// The thread coordinate is the *rank* of the tid among the group's
/// participating threads, not the raw tid: guarded code like the even-odd
/// CR variant's `if j % 2 == 0 { store(.., j / 2, ..) }` runs only every
/// second thread with indices affine in the thread's rank (slope 1/2 in
/// raw tids). For contiguous participants rank and tid coincide up to the
/// constant term, so the common case is unchanged.
pub fn fit_site(
    samples: &[(u32, u32, i64)],
    max_exceptions: usize,
    max_pieces: usize,
) -> Option<SiteModel> {
    if samples.is_empty() {
        return None;
    }
    // Re-parametrize tids to ranks.
    let ranks: HashMap<u32, u32> = {
        let mut tids: Vec<u32> = samples.iter().map(|&(t, _, _)| t).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.into_iter().enumerate().map(|(r, t)| (t, r as u32)).collect()
    };
    let remapped: Vec<(u32, u32, i64)> =
        samples.iter().map(|&(t, j, idx)| (ranks[&t], j, idx)).collect();
    let samples: &[(u32, u32, i64)] = &remapped;
    // β: mode of successive in-thread differences.
    let beta =
        mode(samples.windows(2).filter(|w| w[0].0 == w[1].0).map(|w| w[1].2 - w[0].2)).unwrap_or(0);

    // First sample of each thread, in tid order.
    let bases: Vec<(u32, i64)> = {
        let mut b = Vec::new();
        for &(tid, j, idx) in samples {
            if j == 0 {
                b.push((tid, idx));
            }
        }
        b
    };

    // α: mode of adjacent-thread slopes that divide evenly.
    let alpha = mode(bases.windows(2).filter_map(|w| {
        let dt = (w[1].0 - w[0].0) as i64;
        let di = w[1].1 - w[0].1;
        (dt > 0 && di % dt == 0).then_some(di / dt)
    }))
    .unwrap_or(0);

    // γ: mode of residuals; exceptions = samples the model misses.
    let gamma = mode(samples.iter().map(|&(t, j, idx)| idx - alpha * t as i64 - beta * j as i64))?;
    let exceptions = samples
        .iter()
        .filter(|&&(t, j, idx)| idx != alpha * t as i64 + beta * j as i64 + gamma)
        .count();
    if exceptions <= max_exceptions {
        return Some(SiteModel { alpha, beta, gamma, exceptions, pieces: 1 });
    }

    // Piecewise fallback: contiguous runs of threads, each exactly affine
    // with the shared β. Greedy segmentation over thread bases.
    let mut pieces: Vec<SiteModel> = Vec::new();
    let mut run_start = 0usize;
    while run_start < bases.len() {
        let (t0, i0) = bases[run_start];
        let mut run_alpha: Option<i64> = None;
        let mut run_end = run_start + 1;
        while run_end < bases.len() {
            let (tp, ip) = bases[run_end - 1];
            let (tn, inx) = bases[run_end];
            let dt = (tn - tp) as i64;
            if dt == 0 || (inx - ip) % dt != 0 {
                break;
            }
            let slope = (inx - ip) / dt;
            match run_alpha {
                None => run_alpha = Some(slope),
                Some(a) if a != slope => break,
                Some(_) => {}
            }
            run_end += 1;
        }
        let a = run_alpha.unwrap_or(0);
        let g = i0 - a * t0 as i64;
        // Validate every sample of the run's threads against (a, β, g).
        let run_tids: std::collections::HashSet<u32> =
            bases[run_start..run_end].iter().map(|&(t, _)| t).collect();
        let exact = samples
            .iter()
            .filter(|&&(t, _, _)| run_tids.contains(&t))
            .all(|&(t, j, idx)| idx == a * t as i64 + beta * j as i64 + g);
        if !exact {
            // A run whose loop structure deviates from the global β is not
            // a clamp artifact — give up on this group.
            return None;
        }
        pieces.push(SiteModel { alpha: a, beta, gamma: g, exceptions: 0, pieces: 1 });
        run_start = run_end;
    }
    if pieces.len() > max_pieces {
        return None;
    }
    // Report the widest piece's coefficients as the group's model.
    let dominant = pieces
        .iter()
        .enumerate()
        .max_by_key(|&(i, _)| {
            let lo = if i == 0 { 0 } else { pieces[..i].len() };
            let _ = lo;
            i
        })
        .map(|(_, m)| *m)
        .unwrap_or(SiteModel { alpha: 0, beta, gamma: 0, exceptions: 0, pieces: 1 });
    Some(SiteModel { pieces: pieces.len(), exceptions: 0, ..dominant })
}

/// Analytic worst-case bank-conflict degree of a half-warp of `lanes`
/// consecutive threads whose word addresses advance by `alpha_words` per
/// thread, on `banks` word-interleaved banks — the closed form behind the
/// Figure 9 series (`min(2^(l+1), 16)` rising then falling for CR).
/// Matches the simulator's hardware model: *distinct words* per bank
/// serialize, identical words broadcast (so `alpha_words == 0` is 1-way).
pub fn analytic_bank_degree(alpha_words: i64, lanes: usize, banks: usize) -> u32 {
    if lanes == 0 || banks == 0 {
        return 1;
    }
    let mut distinct: Vec<std::collections::HashSet<i64>> =
        (0..banks).map(|_| std::collections::HashSet::new()).collect();
    for t in 0..lanes as i64 {
        let word = alpha_words * t;
        distinct[word.rem_euclid(banks as i64) as usize].insert(word);
    }
    distinct.into_iter().map(|s| s.len() as u32).max().unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(samples: &[(u32, u32, i64)]) -> Option<SiteModel> {
        fit_site(samples, 8, 6)
    }

    #[test]
    fn pure_affine_fits_exactly() {
        // i = 2*(tid+1) - 1 = 2*tid + 1 (CR level 0).
        let samples: Vec<_> = (0..256u32).map(|t| (t, 0, 2 * t as i64 + 1)).collect();
        let m = fit(&samples).unwrap();
        assert_eq!((m.alpha, m.beta, m.gamma, m.exceptions, m.pieces), (2, 0, 1, 0, 1));
    }

    #[test]
    fn loop_ordinal_is_fit_as_beta() {
        // i = tid + k*threads (the coalesced global load, 2 per thread).
        let threads = 64i64;
        let mut samples = Vec::new();
        for t in 0..64u32 {
            for k in 0..2u32 {
                samples.push((t, k, t as i64 + k as i64 * threads));
            }
        }
        let m = fit(&samples).unwrap();
        assert_eq!((m.alpha, m.beta, m.gamma), (1, 64, 0));
    }

    #[test]
    fn boundary_clamp_is_an_exception_not_nonaffine() {
        // ir = (i + half).min(n - 1): only the last lane clamps.
        let n = 64i64;
        let samples: Vec<_> = (0..32u32).map(|t| (t, 0, (2 * t as i64 + 2).min(n - 1))).collect();
        let m = fit(&samples).unwrap();
        assert_eq!(m.alpha, 2);
        assert_eq!(m.exceptions, 1);
    }

    #[test]
    fn pcr_window_clamps_fit_piecewise() {
        // il = if i >= delta { i - delta } else { 0 } at delta = n/2: half
        // the lanes constant, half affine — two exact pieces.
        let n = 64i64;
        let delta = n / 2;
        let samples: Vec<_> = (0..64u32)
            .map(|t| {
                let i = t as i64;
                (t, 0, if i >= delta { i - delta } else { 0 })
            })
            .collect();
        let m = fit(&samples).unwrap();
        assert_eq!(m.pieces, 2);
        assert_eq!(m.exceptions, 0);
    }

    #[test]
    fn strided_participants_fit_in_rank_basis() {
        // Only even tids run: store(.., tid / 2, ..) — slope 1/2 in raw
        // tids, slope 1 in participant rank.
        let samples: Vec<_> = (0..32u32).map(|t| (2 * t, 0, t as i64)).collect();
        let m = fit(&samples).unwrap();
        assert_eq!((m.alpha, m.beta, m.gamma, m.pieces), (1, 0, 0, 1));
    }

    #[test]
    fn data_dependent_permutation_is_rejected() {
        // A pseudo-random permutation: no affine structure.
        let samples: Vec<_> = (0..64u32).map(|t| (t, 0, ((t as i64 * 37) % 64) * 7 % 61)).collect();
        assert!(fit(&samples).is_none());
    }

    #[test]
    fn analytic_degrees_reproduce_figure9_series() {
        // CR at n = 512: forward level l has word stride 2^(l+1) over
        // min(active, 16) lanes; degrees 2,4,8,16,16,8,4,2.
        let n = 512usize;
        let degrees: Vec<u32> = (0..8)
            .map(|l| {
                let stride = 1i64 << (l + 1);
                let active = n >> (l + 1);
                analytic_bank_degree(stride, active.min(16), 16)
            })
            .collect();
        assert_eq!(degrees, vec![2, 4, 8, 16, 16, 8, 4, 2]);
        // Unit stride is conflict-free; f64 (2-word) stride is 2-way.
        assert_eq!(analytic_bank_degree(1, 16, 16), 1);
        assert_eq!(analytic_bank_degree(2, 16, 16), 2);
        // A broadcast (all lanes, one word) is serviced in one cycle.
        assert_eq!(analytic_bank_degree(0, 16, 16), 1);
    }
}
