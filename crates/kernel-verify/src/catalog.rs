//! The proof catalog consulted by serving admission.
//!
//! [`VerifiedCatalog`] memoizes [`verify_solver`] verdicts per
//! `(algorithm, n, element width)`. Solver-service admission asks
//! [`VerifiedCatalog::is_proven`] before scheduling the first-flush dynamic
//! sanitize of a size class: a `Proven` family member makes the sanitize
//! redundant (the proof covers every launch of the family, not just the
//! first), so the flush runs at full speed and the skip is counted in the
//! service metrics. `Unproven` and `Violated` keep the dynamic sanitizer in
//! charge — the catalog can only ever *remove* redundant work, never a
//! safety net.

use crate::engine::{verify_solver, VerifyOptions};
use crate::verdict::ProofStatus;
use gpu_sim::DeviceConfig;
use gpu_solvers::{verify_family, GpuAlgorithm};
use std::collections::HashMap;
use std::sync::Mutex;
use tridiag_core::Real;

/// Thread-safe, lazily-populated proof memo.
///
/// Keys are the catalog spelling of the algorithm (its `Display` form, the
/// same string the service plans under), the system size, and the element
/// width in bytes.
#[derive(Debug, Default)]
pub struct VerifiedCatalog {
    verdicts: Mutex<HashMap<(String, usize, usize), ProofStatus>>,
    opts: VerifyOptions,
}

impl VerifiedCatalog {
    /// An empty catalog verifying with default options on demand.
    pub fn new() -> Self {
        VerifiedCatalog { verdicts: Mutex::new(HashMap::new()), opts: VerifyOptions::default() }
    }

    /// An empty catalog with explicit verification options.
    pub fn with_options(opts: VerifyOptions) -> Self {
        VerifiedCatalog { verdicts: Mutex::new(HashMap::new()), opts }
    }

    /// The proof status of `(alg, n)` at width `T::BYTES` on `device`,
    /// verifying (and caching) on first demand. Sizes outside the declared
    /// family ([`verify_family`]) are `Unproven` without running the
    /// engine — a proof only covers the family it was stated for.
    pub fn status_for<T: Real>(
        &self,
        device: &DeviceConfig,
        alg: GpuAlgorithm,
        n: usize,
    ) -> ProofStatus {
        let key = (alg.to_string(), n, T::BYTES);
        if let Some(&s) = self.verdicts.lock().unwrap().get(&key) {
            return s;
        }
        let status = if verify_family(alg, T::BYTES, device).contains(&n) {
            let mut opts = self.opts.clone();
            opts.device = device.clone();
            verify_solver::<T>(alg, n, &opts).status
        } else {
            ProofStatus::Unproven
        };
        self.verdicts.lock().unwrap().insert(key, status);
        status
    }

    /// `true` when `(alg, n, T)` is statically proven safe on `device`.
    pub fn is_proven<T: Real>(&self, device: &DeviceConfig, alg: GpuAlgorithm, n: usize) -> bool {
        self.status_for::<T>(device, alg, n) == ProofStatus::Proven
    }

    /// Number of memoized verdicts (for reporting).
    pub fn len(&self) -> usize {
        self.verdicts.lock().unwrap().len()
    }

    /// `true` when nothing has been verified yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proven_solver_is_cached_and_reported() {
        let cat = VerifiedCatalog::new();
        let device = DeviceConfig::gtx280();
        assert!(cat.is_proven::<f32>(&device, GpuAlgorithm::Cr, 64));
        assert_eq!(cat.len(), 1);
        // Second query hits the memo (no way to observe directly; the
        // status must at least be stable).
        assert!(cat.is_proven::<f32>(&device, GpuAlgorithm::Cr, 64));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn out_of_family_sizes_are_unproven_without_verification() {
        let cat = VerifiedCatalog::new();
        let device = DeviceConfig::gtx280();
        // 1024 f32 exceeds the 16 KB shared budget: outside the family.
        assert_eq!(cat.status_for::<f32>(&device, GpuAlgorithm::Cr, 1024), ProofStatus::Unproven);
    }

    #[test]
    fn thomas_is_never_proven() {
        let cat = VerifiedCatalog::new();
        let device = DeviceConfig::gtx280();
        assert!(!cat.is_proven::<f32>(&device, GpuAlgorithm::ThomasPerThread, 64));
    }
}
